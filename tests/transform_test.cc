#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/random.h"
#include "sql/engine.h"
#include "transform/coding.h"
#include "transform/recode_map.h"
#include "transform/transformer.h"
#include "transform/udfs.h"

namespace sqlink {
namespace {

// --- Coding math ---

TEST(CodingTest, DummyMatrixIsIdentity) {
  auto matrix = CodingMatrix(CodingScheme::kDummy, 3);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(*matrix, (std::vector<std::vector<double>>{
                         {1, 0, 0}, {0, 1, 0}, {0, 0, 1}}));
}

TEST(CodingTest, EffectMatrixReferenceLevel) {
  auto matrix = CodingMatrix(CodingScheme::kEffect, 3);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(*matrix, (std::vector<std::vector<double>>{
                         {1, 0}, {0, 1}, {-1, -1}}));
}

TEST(CodingTest, OrthogonalColumnsAreOrthonormalAndCentered) {
  for (int k : {2, 3, 4, 5, 7}) {
    auto matrix = CodingMatrix(CodingScheme::kOrthogonal, k);
    ASSERT_TRUE(matrix.ok());
    const int cols = k - 1;
    for (int a = 0; a < cols; ++a) {
      double sum = 0;
      for (int row = 0; row < k; ++row) {
        sum += (*matrix)[static_cast<size_t>(row)][static_cast<size_t>(a)];
      }
      EXPECT_NEAR(sum, 0.0, 1e-9) << "k=" << k << " col=" << a;  // Centered.
      for (int b = 0; b < cols; ++b) {
        double dot = 0;
        for (int row = 0; row < k; ++row) {
          dot += (*matrix)[static_cast<size_t>(row)][static_cast<size_t>(a)] *
                 (*matrix)[static_cast<size_t>(row)][static_cast<size_t>(b)];
        }
        EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9)
            << "k=" << k << " (" << a << "," << b << ")";
      }
    }
  }
}

TEST(CodingTest, OrthogonalMatchesRContrPolyForK3) {
  // R: contr.poly(3) -> linear (-0.7071, 0, 0.7071), quadratic
  // (0.4082, -0.8165, 0.4082).
  auto matrix = CodingMatrix(CodingScheme::kOrthogonal, 3);
  ASSERT_TRUE(matrix.ok());
  EXPECT_NEAR((*matrix)[0][0], -1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR((*matrix)[1][0], 0.0, 1e-9);
  EXPECT_NEAR((*matrix)[2][0], 1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR((*matrix)[0][1], 1.0 / std::sqrt(6.0), 1e-9);
  EXPECT_NEAR((*matrix)[1][1], -2.0 / std::sqrt(6.0), 1e-9);
  EXPECT_NEAR((*matrix)[2][1], 1.0 / std::sqrt(6.0), 1e-9);
}

TEST(CodingTest, CardinalityOneRejected) {
  EXPECT_TRUE(CodingMatrix(CodingScheme::kDummy, 1).status().IsInvalidArgument());
}

TEST(CodingTest, SchemeNamesRoundTrip) {
  for (CodingScheme s : {CodingScheme::kDummy, CodingScheme::kEffect,
                         CodingScheme::kOrthogonal}) {
    auto parsed = CodingSchemeFromString(CodingSchemeToString(s));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, s);
  }
}

TEST(CodingSpecTest, ParseCountsAndLabels) {
  auto specs = ParseCodedColumnSpecs("gender=F|M, abandoned:2");
  ASSERT_TRUE(specs.ok()) << specs.status();
  ASSERT_EQ(specs->size(), 2u);
  EXPECT_EQ((*specs)[0].column, "gender");
  EXPECT_EQ((*specs)[0].cardinality, 2);
  EXPECT_EQ((*specs)[0].labels, (std::vector<std::string>{"F", "M"}));
  EXPECT_EQ((*specs)[1].column, "abandoned");
  EXPECT_EQ((*specs)[1].cardinality, 2);
  EXPECT_TRUE((*specs)[1].labels.empty());
}

TEST(CodingSpecTest, RoundTripThroughFormat) {
  auto specs = ParseCodedColumnSpecs("a=x|y|z,b:4");
  ASSERT_TRUE(specs.ok());
  EXPECT_EQ(FormatCodedColumnSpecs(*specs), "a=x|y|z,b:4");
}

TEST(CodingSpecTest, InvalidSpecsRejected) {
  EXPECT_FALSE(ParseCodedColumnSpecs("").ok());
  EXPECT_FALSE(ParseCodedColumnSpecs("gender").ok());
  EXPECT_FALSE(ParseCodedColumnSpecs("gender:1").ok());
  EXPECT_FALSE(ParseCodedColumnSpecs(":3").ok());
  EXPECT_FALSE(ParseCodedColumnSpecs("a:2,,b:2").ok());
}

TEST(CodingSpecTest, GeneratedColumnNames) {
  CodedColumnSpec with_labels{"gender", 2, {"F", "M"}};
  EXPECT_EQ(CodedColumnNames(with_labels, CodingScheme::kDummy),
            (std::vector<std::string>{"gender_F", "gender_M"}));
  // Effect coding drops the reference level's column.
  EXPECT_EQ(CodedColumnNames(with_labels, CodingScheme::kEffect),
            (std::vector<std::string>{"gender_F"}));
  CodedColumnSpec without{"city", 3, {}};
  EXPECT_EQ(CodedColumnNames(without, CodingScheme::kDummy),
            (std::vector<std::string>{"city_1", "city_2", "city_3"}));
}

// --- RecodeMap ---

TEST(RecodeMapTest, AddLookupRoundTrip) {
  RecodeMap map;
  ASSERT_TRUE(map.Add("gender", "F", 1).ok());
  ASSERT_TRUE(map.Add("gender", "M", 2).ok());
  EXPECT_EQ(*map.Code("gender", "F"), 1);
  EXPECT_EQ(*map.Code("gender", "M"), 2);
  EXPECT_TRUE(map.Code("gender", "X").status().IsNotFound());
  EXPECT_TRUE(map.Code("city", "F").status().IsNotFound());
  EXPECT_EQ(map.Cardinality("gender"), 2);
  EXPECT_EQ(map.Cardinality("city"), 0);
  EXPECT_TRUE(map.Add("gender", "F", 3).IsAlreadyExists());
}

TEST(RecodeMapTest, TableRoundTrip) {
  RecodeMap map;
  ASSERT_TRUE(map.Add("gender", "F", 1).ok());
  ASSERT_TRUE(map.Add("gender", "M", 2).ok());
  ASSERT_TRUE(map.Add("abandoned", "No", 2).ok());
  ASSERT_TRUE(map.Add("abandoned", "Yes", 1).ok());
  TablePtr table = map.ToTable("m", 4);
  auto parsed = RecodeMap::FromTable(*table);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, map);
}

TEST(RecodeMapTest, NonConsecutiveCodesRejected) {
  auto table = std::make_shared<Table>("m", RecodeMap::TableSchema(), 1);
  table->AppendRow(0, Row{Value::String("gender"), Value::String("F"),
                          Value::Int64(1)});
  table->AppendRow(0, Row{Value::String("gender"), Value::String("M"),
                          Value::Int64(3)});  // Gap.
  EXPECT_TRUE(RecodeMap::FromTable(*table).status().IsInvalidArgument());
}

TEST(RecodeMapTest, LabelsOrderedByCode) {
  RecodeMap map;
  ASSERT_TRUE(map.Add("abandoned", "Yes", 1).ok());
  ASSERT_TRUE(map.Add("abandoned", "No", 2).ok());
  auto labels = map.Labels("abandoned");
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(*labels, (std::vector<std::string>{"Yes", "No"}));
}

// --- UDFs through the engine ---

class TransformUdfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("transform_test");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    engine_ = SqlEngine::Make(*cluster);
    ASSERT_TRUE(RegisterTransformUdfs(engine_.get()).ok());

    // Figure 1(a)'s table, spread over partitions.
    auto schema = Schema::Make({{"age", DataType::kInt64},
                                {"gender", DataType::kString},
                                {"amount", DataType::kDouble},
                                {"abandoned", DataType::kString}});
    auto table = engine_->MakeTable("t", schema);
    auto add = [&](int64_t age, const char* g, double amount, const char* ab,
                   size_t part) {
      table->AppendRow(part, Row{Value::Int64(age), Value::String(g),
                                 Value::Double(amount), Value::String(ab)});
    };
    add(57, "F", 153.99, "Yes", 0);
    add(40, "M", 99.50, "Yes", 1);
    add(35, "F", 75.25, "No", 2);
    add(61, "F", 12.00, "No", 3);
    add(22, "M", 300.00, "0" /* odd but valid category */, 0);
    ASSERT_TRUE(engine_->catalog()->RegisterTable(table).ok());
  }

  std::unique_ptr<ScopedTempDir> temp_;
  SqlEnginePtr engine_;
};

TEST_F(TransformUdfTest, LocalDistinctEmitsAllValues) {
  auto result = engine_->ExecuteSql(
      "SELECT DISTINCT colname, colval FROM "
      "TABLE(recode_local_distinct((SELECT * FROM t), 'gender,abandoned'))");
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<std::pair<std::string, std::string>> pairs;
  for (const Row& row : (*result)->GatherRows()) {
    pairs.emplace(row[0].string_value(), row[1].string_value());
  }
  EXPECT_EQ(pairs.size(), 5u);
  EXPECT_TRUE(pairs.count({"gender", "F"}));
  EXPECT_TRUE(pairs.count({"gender", "M"}));
  EXPECT_TRUE(pairs.count({"abandoned", "Yes"}));
  EXPECT_TRUE(pairs.count({"abandoned", "No"}));
  EXPECT_TRUE(pairs.count({"abandoned", "0"}));
}

TEST_F(TransformUdfTest, LocalDistinctRejectsNumericColumn) {
  auto status = engine_
                    ->ExecuteSql(
                        "SELECT * FROM TABLE(recode_local_distinct("
                        "(SELECT * FROM t), 'age'))")
                    .status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("categorical"), std::string::npos);
}

TEST_F(TransformUdfTest, FullRecodeMapPipeline) {
  InSqlTransformer transformer(engine_);
  auto map = transformer.ComputeRecodeMap("SELECT * FROM t",
                                          {"gender", "abandoned"});
  ASSERT_TRUE(map.ok()) << map.status();
  // Sorted assignment: F=1, M=2; '0'<'No'<'Yes' lexicographically.
  EXPECT_EQ(*map->Code("gender", "F"), 1);
  EXPECT_EQ(*map->Code("gender", "M"), 2);
  EXPECT_EQ(*map->Code("abandoned", "0"), 1);
  EXPECT_EQ(*map->Code("abandoned", "No"), 2);
  EXPECT_EQ(*map->Code("abandoned", "Yes"), 3);
  EXPECT_EQ(map->Cardinality("abandoned"), 3);
}

TEST_F(TransformUdfTest, PerColumnSqlProducesSameMap) {
  InSqlTransformer transformer(engine_);
  auto fast = transformer.ComputeRecodeMap("SELECT * FROM t",
                                           {"gender", "abandoned"});
  auto slow = transformer.ComputeRecodeMapPerColumnSql(
      "SELECT * FROM t", {"gender", "abandoned"});
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_EQ(*fast, *slow);
}

TEST_F(TransformUdfTest, RecodeMapIsDeterministicAcrossRuns) {
  InSqlTransformer transformer(engine_);
  auto a = transformer.ComputeRecodeMap("SELECT * FROM t", {"gender"});
  auto b = transformer.ComputeRecodeMap("SELECT * FROM t", {"gender"});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(TransformUdfTest, RecodeAssignRejectsScatteredInput) {
  // Without ORDER BY the distinct rows stay scattered over workers.
  auto status = engine_
                    ->ExecuteSql(
                        "SELECT * FROM TABLE(recode_assign((SELECT DISTINCT "
                        "colname, colval FROM TABLE(recode_local_distinct("
                        "(SELECT * FROM t), 'gender,abandoned')))))")
                    .status();
  EXPECT_TRUE(status.IsFailedPrecondition()) << status;
}

TEST_F(TransformUdfTest, DummyCodingMatchesFigure1) {
  // Recoded table of Figure 1(b) via map join, then dummy coding of gender
  // as in Figure 1(c).
  InSqlTransformer transformer(engine_);
  auto map = transformer.ComputeRecodeMap(
      "SELECT * FROM t", {"gender", "abandoned"}, "recode_maps");
  ASSERT_TRUE(map.ok());

  auto result = engine_->ExecuteSql(
      "SELECT * FROM TABLE(dummy_code((SELECT T.age, Mg.recodeval AS gender, "
      "T.amount, Ma.recodeval AS abandoned "
      "FROM t T, recode_maps Mg, recode_maps Ma "
      "WHERE Mg.colname = 'gender' AND T.gender = Mg.colval "
      "AND Ma.colname = 'abandoned' AND T.abandoned = Ma.colval), "
      "'gender=female|male'))");
  ASSERT_TRUE(result.ok()) << result.status();
  const auto& schema = *(*result)->schema();
  EXPECT_EQ(schema.ToString(),
            "age:INT64, gender_female:INT64, gender_male:INT64, "
            "amount:DOUBLE, abandoned:INT64");
  ASSERT_EQ((*result)->TotalRows(), 5u);
  for (const Row& row : (*result)->GatherRows()) {
    // Exactly one of the dummy columns is 1.
    EXPECT_EQ(row[1].int64_value() + row[2].int64_value(), 1);
    if (row[0].int64_value() == 57) {  // The 'F' row of Figure 1.
      EXPECT_EQ(row[1], Value::Int64(1));
      EXPECT_EQ(row[2], Value::Int64(0));
    }
    if (row[0].int64_value() == 40) {  // 'M'.
      EXPECT_EQ(row[1], Value::Int64(0));
      EXPECT_EQ(row[2], Value::Int64(1));
    }
  }
}

TEST_F(TransformUdfTest, EffectCodingSumsToMinusOneForReference) {
  InSqlTransformer transformer(engine_);
  auto map =
      transformer.ComputeRecodeMap("SELECT * FROM t", {"abandoned"}, "m2");
  ASSERT_TRUE(map.ok());
  auto result = engine_->ExecuteSql(
      "SELECT * FROM TABLE(effect_code((SELECT T.age, M.recodeval AS "
      "abandoned FROM t T, m2 M WHERE M.colname = 'abandoned' AND "
      "T.abandoned = M.colval), 'abandoned:3'))");
  ASSERT_TRUE(result.ok()) << result.status();
  // 3 levels -> 2 effect columns.
  EXPECT_EQ((*result)->schema()->num_fields(), 3);
  bool saw_reference = false;
  for (const Row& row : (*result)->GatherRows()) {
    const int64_t a = row[1].int64_value();
    const int64_t b = row[2].int64_value();
    if (a == -1 && b == -1) saw_reference = true;
    EXPECT_TRUE((a == 1 && b == 0) || (a == 0 && b == 1) ||
                (a == -1 && b == -1))
        << a << "," << b;
  }
  EXPECT_TRUE(saw_reference);  // 'Yes' is code 3 = reference level.
}

TEST_F(TransformUdfTest, OrthogonalCodingProducesDoubles) {
  InSqlTransformer transformer(engine_);
  auto map = transformer.ComputeRecodeMap("SELECT * FROM t", {"gender"}, "m3");
  ASSERT_TRUE(map.ok());
  auto result = engine_->ExecuteSql(
      "SELECT * FROM TABLE(orthogonal_code((SELECT M.recodeval AS gender "
      "FROM t T, m3 M WHERE M.colname = 'gender' AND T.gender = M.colval), "
      "'gender:2'))");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)->schema()->field(0).type, DataType::kDouble);
  for (const Row& row : (*result)->GatherRows()) {
    EXPECT_NEAR(std::abs(row[0].double_value()), 1.0 / std::sqrt(2.0), 1e-9);
  }
}

TEST_F(TransformUdfTest, DummyCodeOutOfRangeValueErrors) {
  auto status = engine_
                    ->ExecuteSql(
                        "SELECT * FROM TABLE(dummy_code((SELECT age FROM t), "
                        "'age:2'))")
                    .status();
  EXPECT_TRUE(status.IsOutOfRange()) << status;  // Ages exceed cardinality 2.
}

TEST_F(TransformUdfTest, DummyCodeRequiresIntColumn) {
  auto status = engine_
                    ->ExecuteSql(
                        "SELECT * FROM TABLE(dummy_code((SELECT gender FROM "
                        "t), 'gender:2'))")
                    .status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("recoded"), std::string::npos);
}

TEST_F(TransformUdfTest, RecodedQueryMatchesManualRecoding) {
  // Property: joining through the recode map reproduces RecodeMap::Code on
  // every row.
  InSqlTransformer transformer(engine_);
  auto map =
      transformer.ComputeRecodeMap("SELECT * FROM t", {"gender"}, "m4");
  ASSERT_TRUE(map.ok());
  auto recoded = engine_->ExecuteSql(
      "SELECT T.gender AS original, M.recodeval AS code FROM t T, m4 M "
      "WHERE M.colname = 'gender' AND T.gender = M.colval");
  ASSERT_TRUE(recoded.ok());
  ASSERT_EQ((*recoded)->TotalRows(), 5u);
  for (const Row& row : (*recoded)->GatherRows()) {
    EXPECT_EQ(row[1].int64_value(),
              *map->Code("gender", row[0].string_value()));
  }
}

}  // namespace
}  // namespace sqlink
