#include "transform/coding.h"

#include <cmath>

#include "common/string_util.h"

namespace sqlink {

std::string_view CodingSchemeToString(CodingScheme scheme) {
  switch (scheme) {
    case CodingScheme::kDummy:
      return "dummy";
    case CodingScheme::kEffect:
      return "effect";
    case CodingScheme::kOrthogonal:
      return "orthogonal";
  }
  return "?";
}

Result<CodingScheme> CodingSchemeFromString(std::string_view name) {
  if (EqualsIgnoreCase(name, "dummy")) return CodingScheme::kDummy;
  if (EqualsIgnoreCase(name, "effect")) return CodingScheme::kEffect;
  if (EqualsIgnoreCase(name, "orthogonal")) return CodingScheme::kOrthogonal;
  return Status::InvalidArgument("unknown coding scheme: " +
                                 std::string(name));
}

int CodingOutputColumns(CodingScheme scheme, int k) {
  return scheme == CodingScheme::kDummy ? k : k - 1;
}

Result<std::vector<std::vector<double>>> CodingMatrix(CodingScheme scheme,
                                                      int k) {
  if (k < 2) {
    return Status::InvalidArgument(
        "coding requires at least 2 distinct values, got " +
        std::to_string(k));
  }
  const size_t levels = static_cast<size_t>(k);
  const size_t cols = static_cast<size_t>(CodingOutputColumns(scheme, k));
  std::vector<std::vector<double>> matrix(levels,
                                          std::vector<double>(cols, 0.0));
  switch (scheme) {
    case CodingScheme::kDummy:
      for (size_t i = 0; i < levels; ++i) matrix[i][i] = 1.0;
      return matrix;
    case CodingScheme::kEffect:
      for (size_t i = 0; i + 1 < levels; ++i) matrix[i][i] = 1.0;
      for (size_t j = 0; j < cols; ++j) matrix[levels - 1][j] = -1.0;
      return matrix;
    case CodingScheme::kOrthogonal: {
      // Orthogonal polynomial contrasts (R contr.poly) via the Stieltjes
      // three-term recurrence evaluated on the grid x = 1..k. Unlike
      // Gram-Schmidt over Vandermonde columns, the recurrence stays
      // numerically orthonormal for large k.
      std::vector<double> x(levels);
      for (size_t i = 0; i < levels; ++i) x[i] = static_cast<double>(i + 1);
      std::vector<double> p_prev(levels, 0.0);
      std::vector<double> p_cur(levels, 1.0 / std::sqrt(static_cast<double>(levels)));
      double b_prev = 0.0;
      for (size_t degree = 0; degree + 1 < levels; ++degree) {
        // q = (x - a) * p_cur - b_prev * p_prev, then normalize.
        std::vector<double> q(levels);
        double a = 0.0;
        for (size_t i = 0; i < levels; ++i) a += x[i] * p_cur[i] * p_cur[i];
        for (size_t i = 0; i < levels; ++i) {
          q[i] = (x[i] - a) * p_cur[i] - b_prev * p_prev[i];
        }
        double norm = 0.0;
        for (double v : q) norm += v * v;
        norm = std::sqrt(norm);
        for (double& v : q) v /= norm;
        for (size_t i = 0; i < levels; ++i) matrix[i][degree] = q[i];
        b_prev = norm;
        p_prev = p_cur;
        p_cur = std::move(q);
      }
      return matrix;
    }
  }
  return Status::Internal("unhandled coding scheme");
}

Result<std::vector<CodedColumnSpec>> ParseCodedColumnSpecs(
    const std::string& spec) {
  std::vector<CodedColumnSpec> specs;
  if (TrimWhitespace(spec).empty()) {
    return Status::InvalidArgument("empty coded-column spec");
  }
  for (const std::string& part : SplitString(spec, ',')) {
    const std::string_view trimmed = TrimWhitespace(part);
    if (trimmed.empty()) {
      return Status::InvalidArgument("empty entry in coded-column spec: " +
                                     spec);
    }
    CodedColumnSpec entry;
    const size_t eq = trimmed.find('=');
    const size_t colon = trimmed.find(':');
    if (eq != std::string_view::npos) {
      entry.column = std::string(trimmed.substr(0, eq));
      const std::string labels(trimmed.substr(eq + 1));
      for (const std::string& label : SplitString(labels, '|')) {
        entry.labels.push_back(label);
      }
      entry.cardinality = static_cast<int>(entry.labels.size());
    } else if (colon != std::string_view::npos) {
      entry.column = std::string(trimmed.substr(0, colon));
      auto k = ParseInt64(TrimWhitespace(trimmed.substr(colon + 1)));
      if (!k.ok()) return k.status().WithContext("coded-column spec");
      entry.cardinality = static_cast<int>(*k);
    } else {
      return Status::InvalidArgument(
          "coded-column entry needs 'col:k' or 'col=l1|l2': " +
          std::string(trimmed));
    }
    if (entry.column.empty() || entry.cardinality < 2) {
      return Status::InvalidArgument("invalid coded-column entry: " +
                                     std::string(trimmed));
    }
    specs.push_back(std::move(entry));
  }
  return specs;
}

std::string FormatCodedColumnSpecs(const std::vector<CodedColumnSpec>& specs) {
  std::string out;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (i > 0) out += ",";
    out += specs[i].column;
    if (!specs[i].labels.empty()) {
      out += "=";
      out += JoinStrings(specs[i].labels, "|");
    } else {
      out += ":" + std::to_string(specs[i].cardinality);
    }
  }
  return out;
}

std::vector<std::string> CodedColumnNames(const CodedColumnSpec& spec,
                                          CodingScheme scheme) {
  const int count = CodingOutputColumns(scheme, spec.cardinality);
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    if (!spec.labels.empty() &&
        static_cast<size_t>(i) < spec.labels.size()) {
      names.push_back(spec.column + "_" + spec.labels[static_cast<size_t>(i)]);
    } else {
      names.push_back(spec.column + "_" + std::to_string(i + 1));
    }
  }
  return names;
}

}  // namespace sqlink
