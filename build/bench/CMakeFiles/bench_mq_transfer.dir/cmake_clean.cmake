file(REMOVE_RECURSE
  "CMakeFiles/bench_mq_transfer.dir/bench_mq_transfer.cpp.o"
  "CMakeFiles/bench_mq_transfer.dir/bench_mq_transfer.cpp.o.d"
  "bench_mq_transfer"
  "bench_mq_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mq_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
