SELECT DISTINCT e.k, d.label FROM e1024 e JOIN dims d ON e.k = d.k WHERE e.v > 0
