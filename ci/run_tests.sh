#!/usr/bin/env bash
# Three-stage CI entry point: fast unit suite first, fault-injection chaos
# suite second (so a broken build fails in seconds instead of after the
# slow chaos runs), then a ThreadSanitizer rebuild of both suites — the
# coordinator reaper, heartbeat senders, and replay machinery are
# concurrent, so every run is race-checked.
#
# Usage:
#   ci/run_tests.sh                 # build + unit + chaos + TSan pass
#   SQLINK_SANITIZE=address ci/run_tests.sh   # swap TSan for ASan
#   SQLINK_SANITIZE=none ci/run_tests.sh      # skip the sanitizer stage
#
# Environment:
#   BUILD_DIR        build directory (default: build)
#   SQLINK_SANITIZE  thread|address|undefined|none — sanitizer for stage 3,
#                    in a separate build dir (${BUILD_DIR}-${SQLINK_SANITIZE});
#                    defaults to thread, "none" disables the stage
#   CTEST_PARALLEL   parallel test jobs (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${CTEST_PARALLEL:-$(nproc)}"
SQLINK_SANITIZE="${SQLINK_SANITIZE:-thread}"

run_suites() {
  local dir="$1"
  echo "==> [${dir}] stage 1: unit suite"
  (cd "${dir}" && ctest -L unit --output-on-failure -j "${JOBS}")
  echo "==> [${dir}] stage 2: chaos suite"
  (cd "${dir}" && ctest -L chaos --output-on-failure -j "${JOBS}")
}

echo "==> configure + build (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j "${JOBS}"
run_suites "${BUILD_DIR}"

# The columnar hot path (SQLINK_COLUMNAR, default on) must be a pure
# optimization: the whole suite reruns with the row path forced.
echo "==> [${BUILD_DIR}] row-path suite (SQLINK_COLUMNAR=off)"
(cd "${BUILD_DIR}" &&
 SQLINK_COLUMNAR=off ctest -L 'unit|chaos' --output-on-failure -j "${JOBS}")

# The multiplexed transfer fabric (SQLINK_MUX, default on) must be a pure
# transport optimization: the whole suite reruns with the legacy
# one-socket-per-transfer path forced.
echo "==> [${BUILD_DIR}] legacy-transport suite (SQLINK_MUX=off)"
(cd "${BUILD_DIR}" &&
 SQLINK_MUX=off ctest -L 'unit|chaos' --output-on-failure -j "${JOBS}")

# Likewise the vectorized SQL engine (SQLINK_VECTORIZED_SQL, default on):
# the unit suite reruns with the row-at-a-time operators forced, so both
# engine modes stay green against the same goldens and differential checks.
echo "==> [${BUILD_DIR}] row-engine suite (SQLINK_VECTORIZED_SQL=off)"
(cd "${BUILD_DIR}" &&
 SQLINK_VECTORIZED_SQL=off ctest -L unit --output-on-failure -j "${JOBS}")

# Bench smoke: the default build is Release, so the row-vs-columnar micro
# benches run here directly. --check fails the stage if the columnar path
# is ever slower than the row path; the JSON series lands in BENCH_pr4.json.
echo "==> [${BUILD_DIR}] bench smoke (row vs columnar)"
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_transform bench_ingest
BENCH_JSON="$(pwd)/BENCH_pr4.json"
rm -f "${BENCH_JSON}"
SQLINK_BENCH_JSON="${BENCH_JSON}" "${BUILD_DIR}/bench/bench_transform" 1000000 --check
SQLINK_BENCH_JSON="${BENCH_JSON}" "${BUILD_DIR}/bench/bench_ingest" 400000 --check

# SQL engine smoke: the vectorized executor must be >= 2x faster than the
# row engine on a join+filter+DISTINCT query; series lands in BENCH_pr6.json.
echo "==> [${BUILD_DIR}] bench smoke (row vs vectorized SQL)"
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_sql
SQL_BENCH_JSON="$(pwd)/BENCH_pr6.json"
rm -f "${SQL_BENCH_JSON}"
SQLINK_BENCH_JSON="${SQL_BENCH_JSON}" "${BUILD_DIR}/bench/bench_sql" --smoke 300000 --check

# Serving smoke: the admission-gated query server must hold goodput as
# client concurrency climbs past the admitted window — --check fails if
# qps at 16 clients drops below 90% of the single-client baseline or any
# query fails. Series lands in BENCH_pr8.json.
echo "==> [${BUILD_DIR}] bench smoke (concurrent serving goodput)"
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_serving
SERVING_BENCH_JSON="$(pwd)/BENCH_pr8.json"
rm -f "${SERVING_BENCH_JSON}"
SQLINK_BENCH_JSON="${SERVING_BENCH_JSON}" "${BUILD_DIR}/bench/bench_serving" --smoke --check

# Mux fabric smoke: 1/4/16/64 concurrent streaming pipelines with the
# shared connection pool on and off — --check fails if mux mode dials more
# than 2 x SQLINK_MUX_CONNS_PER_PEER x peers data sockets at 64 clients,
# if p99 regresses past the unmuxed baseline, or if any transfer fails.
# Series lands in BENCH_pr9.json.
echo "==> [${BUILD_DIR}] bench smoke (mux fabric sockets + tail latency)"
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_mux
MUX_BENCH_JSON="$(pwd)/BENCH_pr9.json"
rm -f "${MUX_BENCH_JSON}"
SQLINK_BENCH_JSON="${MUX_BENCH_JSON}" "${BUILD_DIR}/bench/bench_mux" --smoke --check

# Ops-endpoint smoke: start a workload under SQLINK_OPS_PORT, then curl the
# live endpoints — /metrics must be Prometheus text carrying the planner
# q-error feedback, /queries and /tracez must be valid JSON — while
# streaming transfers are still running.
echo "==> [${BUILD_DIR}] ops endpoint smoke (live /metrics, /queries, /tracez)"
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target ops_demo
OPS_LOG="$(mktemp)"
SQLINK_OPS_PORT=0 "${BUILD_DIR}/examples/ops_demo" 6 > "${OPS_LOG}" 2>&1 &
OPS_PID=$!
OPS_PORT=""
for _ in $(seq 1 100); do
  OPS_PORT="$(sed -n 's/^OPS_PORT=//p' "${OPS_LOG}" | head -n1)"
  [[ -n "${OPS_PORT}" ]] && break
  sleep 0.1
done
if [[ -z "${OPS_PORT}" ]]; then
  echo "ops_demo never reported its port:"; cat "${OPS_LOG}"; kill "${OPS_PID}" 2>/dev/null || true; exit 1
fi
# Give the demo a moment to run its EXPLAIN ANALYZE and first transfer.
sleep 2
curl -sf "127.0.0.1:${OPS_PORT}/healthz" | grep -q ok
curl -sf "127.0.0.1:${OPS_PORT}/metrics" > /tmp/ops_metrics.txt
grep -q '^# TYPE sqlink_' /tmp/ops_metrics.txt
grep -q 'sqlink_sql_planner_qerror_x100' /tmp/ops_metrics.txt
curl -sf "127.0.0.1:${OPS_PORT}/queries" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert "active" in doc and "finished" in doc, doc.keys()
assert doc["finished"], "no finished queries on /queries"
assert any(q.get("operators") for q in doc["finished"]), "no operator stats"
'
curl -sf "127.0.0.1:${OPS_PORT}/tracez" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert "traces" in doc, doc.keys()
'
wait "${OPS_PID}"
grep -q '^DONE transfers=' "${OPS_LOG}"
rm -f "${OPS_LOG}" /tmp/ops_metrics.txt
echo "    ops endpoint smoke passed (port ${OPS_PORT})"

# Serving concurrency smoke: one long-lived `sql_shell --serve` process,
# eight parallel `sql_shell --connect` clients each running a real query
# over the wire. Every client must print the exact COUNT(*), in both
# engine modes (vectorized and row-at-a-time), proving the server stays
# correct under concurrent admission. The server stops cleanly on "quit".
serving_smoke() {
  local mode_env="$1" mode_name="$2"
  echo "==> [${BUILD_DIR}] serving concurrency smoke (${mode_name})"
  local serve_log fifo port
  serve_log="$(mktemp)"
  fifo="$(mktemp -u)"
  mkfifo "${fifo}"
  env ${mode_env} SQLINK_MAX_CONCURRENT_QUERIES=4 \
    "${BUILD_DIR}/examples/sql_shell" --serve 0 2000 \
    < "${fifo}" > "${serve_log}" 2>&1 &
  local serve_pid=$!
  exec 9> "${fifo}"  # hold the fifo open so the server's stdin stays live
  port=""
  for _ in $(seq 1 200); do
    port="$(sed -n 's/^SERVE_PORT=//p' "${serve_log}" | head -n1)"
    [[ -n "${port}" ]] && break
    sleep 0.1
  done
  if [[ -z "${port}" ]]; then
    echo "sql_shell --serve never reported its port:"; cat "${serve_log}"
    exec 9>&-; kill "${serve_pid}" 2>/dev/null || true; exit 1
  fi
  local client_pids=() client_logs=() i
  for i in $(seq 1 8); do
    local log; log="$(mktemp)"
    "${BUILD_DIR}/examples/sql_shell" --connect "127.0.0.1:${port}" \
      -e "SELECT COUNT(*) FROM carts" --tenant "t$((i % 2))" \
      > "${log}" 2>/dev/null &
    client_pids+=($!)
    client_logs+=("${log}")
  done
  local failed=0
  for i in $(seq 0 7); do
    wait "${client_pids[$i]}" || failed=1
    if [[ "$(cat "${client_logs[$i]}")" != "2000" ]]; then
      echo "client $i got wrong answer: $(cat "${client_logs[$i]}")"
      failed=1
    fi
    rm -f "${client_logs[$i]}"
  done
  echo quit >&9
  exec 9>&-
  wait "${serve_pid}" || failed=1
  rm -f "${serve_log}" "${fifo}"
  if [[ "${failed}" -ne 0 ]]; then
    echo "serving concurrency smoke (${mode_name}) FAILED"; exit 1
  fi
  echo "    serving concurrency smoke passed (${mode_name}, port ${port})"
}
serving_smoke "" "vectorized engine"
serving_smoke "SQLINK_VECTORIZED_SQL=off" "row engine"
serving_smoke "SQLINK_MUX=off" "legacy transport"

if [[ "${SQLINK_SANITIZE}" != "none" ]]; then
  SAN_DIR="${BUILD_DIR}-${SQLINK_SANITIZE}"
  echo "==> stage 3: sanitizer pass (-fsanitize=${SQLINK_SANITIZE})"
  cmake -B "${SAN_DIR}" -S . -DSQLINK_SANITIZE="${SQLINK_SANITIZE}"
  cmake --build "${SAN_DIR}" -j "${JOBS}"
  run_suites "${SAN_DIR}"
fi

echo "==> all stages passed"
