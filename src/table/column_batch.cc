#include "table/column_batch.h"

#include "common/status_macros.h"

namespace sqlink {

Value ColumnValueAt(const Column& col, size_t row) {
  if (col.IsNull(row)) return Value::Null();
  switch (col.type) {
    case DataType::kBool:
      return Value::Bool(col.bools[row] != 0);
    case DataType::kInt64:
      return Value::Int64(col.ints[row]);
    case DataType::kDouble:
      return Value::Double(col.doubles[row]);
    case DataType::kString:
      return Value::String(std::string(col.dict[col.codes[row]]));
  }
  return Value::Null();
}

Status AppendColumnValue(Column* col, size_t row, const Value& v,
                         const std::string& column_name) {
  const bool null = v.is_null();
  col->AppendNullBit(row, null);
  switch (col->type) {
    case DataType::kBool:
      if (!null && !v.is_bool()) {
        return Status::InvalidArgument("non-bool value in BOOL column '" +
                                       column_name + "'");
      }
      col->bools.push_back(!null && v.bool_value() ? 1 : 0);
      break;
    case DataType::kInt64:
      if (!null && !v.is_int64()) {
        return Status::InvalidArgument("non-integer value in INT64 column '" +
                                       column_name + "'");
      }
      col->ints.push_back(null ? 0 : v.int64_value());
      break;
    case DataType::kDouble: {
      double d = 0;
      if (!null) {
        if (v.is_double()) {
          d = v.double_value();
        } else if (v.is_int64()) {
          d = static_cast<double>(v.int64_value());
        } else {
          return Status::InvalidArgument("non-numeric value in DOUBLE column '" +
                                         column_name + "'");
        }
      }
      col->doubles.push_back(d);
      break;
    }
    case DataType::kString:
      if (!null && !v.is_string()) {
        return Status::InvalidArgument("non-string value in STRING column '" +
                                       column_name + "'");
      }
      col->codes.push_back(null ? 0 : col->dict.GetOrAdd(v.string_value()));
      break;
  }
  return Status::OK();
}

void AppendColumnGather(Column* dst, size_t dst_rows, const Column& src,
                        const int32_t* rows, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst->AppendNullBit(dst_rows + i, src.IsNull(static_cast<size_t>(rows[i])));
  }
  switch (dst->type) {
    case DataType::kBool:
      dst->bools.reserve(dst->bools.size() + n);
      for (size_t i = 0; i < n; ++i) {
        dst->bools.push_back(src.bools[static_cast<size_t>(rows[i])]);
      }
      break;
    case DataType::kInt64:
      dst->ints.reserve(dst->ints.size() + n);
      for (size_t i = 0; i < n; ++i) {
        dst->ints.push_back(src.ints[static_cast<size_t>(rows[i])]);
      }
      break;
    case DataType::kDouble:
      dst->doubles.reserve(dst->doubles.size() + n);
      for (size_t i = 0; i < n; ++i) {
        dst->doubles.push_back(src.doubles[static_cast<size_t>(rows[i])]);
      }
      break;
    case DataType::kString:
      dst->codes.reserve(dst->codes.size() + n);
      if (dst->codes.empty() && dst->dict.size() == 0) {
        // Fresh destination: share the source dictionary wholesale and
        // gather codes directly (unreferenced entries are harmless).
        dst->dict = src.dict;
        for (size_t i = 0; i < n; ++i) {
          dst->codes.push_back(src.codes[static_cast<size_t>(rows[i])]);
        }
      } else if (n < static_cast<size_t>(src.dict.size())) {
        // Few rows against a big dictionary (single-row dedup inserts):
        // remap only the referenced entries instead of the whole dict.
        for (size_t i = 0; i < n; ++i) {
          const size_t r = static_cast<size_t>(rows[i]);
          dst->codes.push_back(
              src.IsNull(r) ? 0 : dst->dict.GetOrAdd(src.dict[src.codes[r]]));
        }
      } else {
        std::vector<int32_t> remap(static_cast<size_t>(src.dict.size()));
        for (int32_t id = 0; id < src.dict.size(); ++id) {
          remap[static_cast<size_t>(id)] = dst->dict.GetOrAdd(src.dict[id]);
        }
        for (size_t i = 0; i < n; ++i) {
          const size_t r = static_cast<size_t>(rows[i]);
          const int32_t code = src.codes[r];
          dst->codes.push_back(
              !src.IsNull(r) && static_cast<size_t>(code) < remap.size()
                  ? remap[static_cast<size_t>(code)]
                  : 0);
        }
      }
      break;
  }
}

void ColumnBatch::Reset(SchemaPtr schema) {
  schema_ = std::move(schema);
  const size_t n =
      schema_ != nullptr ? static_cast<size_t>(schema_->num_fields()) : 0;
  columns_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    Column& col = columns_[i];
    col.type = schema_->field(static_cast<int>(i)).type;
    col.null_words.clear();
    col.bools.clear();
    col.ints.clear();
    col.doubles.clear();
    col.codes.clear();
    col.dict.Clear();
  }
  num_rows_ = 0;
}

void ColumnBatch::Reserve(size_t rows) {
  for (Column& col : columns_) {
    col.null_words.reserve((rows + 63) / 64);
    switch (col.type) {
      case DataType::kBool:
        col.bools.reserve(rows);
        break;
      case DataType::kInt64:
        col.ints.reserve(rows);
        break;
      case DataType::kDouble:
        col.doubles.reserve(rows);
        break;
      case DataType::kString:
        col.codes.reserve(rows);
        break;
    }
  }
}

Status ColumnBatch::AppendRow(const Row& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row width " + std::to_string(row.size()) +
        " does not match batch width " + std::to_string(columns_.size()));
  }
  const size_t r = num_rows_;
  for (size_t i = 0; i < columns_.size(); ++i) {
    RETURN_IF_ERROR(AppendColumnValue(&columns_[i], r, row[i],
                                      schema_->field(static_cast<int>(i)).name));
  }
  ++num_rows_;
  return Status::OK();
}

Status ColumnBatch::AppendGather(const ColumnBatch& src, const int32_t* rows,
                                 size_t n) {
  if (columns_.size() != src.columns_.size()) {
    return Status::InvalidArgument("batch width mismatch in AppendGather");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].type != src.columns_[i].type) {
      return Status::InvalidArgument("column type mismatch in AppendGather");
    }
    AppendColumnGather(&columns_[i], num_rows_, src.columns_[i], rows, n);
  }
  num_rows_ += n;
  return Status::OK();
}

Status ColumnBatch::AppendBatch(const ColumnBatch& other) {
  if (columns_.size() != other.columns_.size()) {
    return Status::InvalidArgument("batch width mismatch in AppendBatch");
  }
  const size_t base = num_rows_;
  const size_t added = other.num_rows_;
  for (size_t i = 0; i < columns_.size(); ++i) {
    Column& dst = columns_[i];
    const Column& src = other.columns_[i];
    if (dst.type != src.type) {
      return Status::InvalidArgument("column type mismatch in AppendBatch");
    }
    for (size_t r = 0; r < added; ++r) {
      dst.AppendNullBit(base + r, src.IsNull(r));
    }
    switch (dst.type) {
      case DataType::kBool:
        dst.bools.insert(dst.bools.end(), src.bools.begin(), src.bools.end());
        break;
      case DataType::kInt64:
        dst.ints.insert(dst.ints.end(), src.ints.begin(), src.ints.end());
        break;
      case DataType::kDouble:
        dst.doubles.insert(dst.doubles.end(), src.doubles.begin(),
                           src.doubles.end());
        break;
      case DataType::kString: {
        // Translate per dictionary entry once, then gather per row.
        std::vector<int32_t> remap(static_cast<size_t>(src.dict.size()));
        for (int32_t id = 0; id < src.dict.size(); ++id) {
          remap[static_cast<size_t>(id)] = dst.dict.GetOrAdd(src.dict[id]);
        }
        dst.codes.reserve(dst.codes.size() + added);
        for (size_t r = 0; r < added; ++r) {
          const int32_t code = src.codes[r];
          dst.codes.push_back(
              !src.IsNull(r) && static_cast<size_t>(code) < remap.size()
                  ? remap[static_cast<size_t>(code)]
                  : 0);
        }
        break;
      }
    }
  }
  num_rows_ += added;
  return Status::OK();
}

void ColumnBatch::Truncate(size_t rows) {
  if (rows >= num_rows_) return;
  const size_t words = (rows + 63) / 64;
  for (Column& col : columns_) {
    if (col.null_words.size() > words) col.null_words.resize(words);
    // Clear bits past the new row count so future appends reuse clean words.
    if (!col.null_words.empty() && (rows & 63) != 0) {
      col.null_words.back() &= (uint64_t{1} << (rows & 63)) - 1;
    }
    switch (col.type) {
      case DataType::kBool:
        col.bools.resize(rows);
        break;
      case DataType::kInt64:
        col.ints.resize(rows);
        break;
      case DataType::kDouble:
        col.doubles.resize(rows);
        break;
      case DataType::kString:
        col.codes.resize(rows);
        break;
    }
  }
  num_rows_ = rows;
}

void ColumnBatch::Clear() {
  for (Column& col : columns_) {
    col.null_words.clear();
    col.bools.clear();
    col.ints.clear();
    col.doubles.clear();
    col.codes.clear();
    col.dict.Clear();
  }
  num_rows_ = 0;
}

Value ColumnBatch::ValueAt(size_t row, size_t col) const {
  return ColumnValueAt(columns_[col], row);
}

void ColumnBatch::EmitRow(size_t row, Row* out) const {
  out->clear();
  out->reserve(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    out->push_back(ValueAt(row, i));
  }
}

ColumnBatch ColumnBatch::Slice(size_t begin) const {
  ColumnBatch out(schema_);
  if (begin >= num_rows_) return out;
  const size_t rows = num_rows_ - begin;
  out.Reserve(rows);
  for (size_t i = 0; i < columns_.size(); ++i) {
    Column& dst = out.columns_[i];
    const Column& src = columns_[i];
    for (size_t r = 0; r < rows; ++r) {
      dst.AppendNullBit(r, src.IsNull(begin + r));
    }
    switch (src.type) {
      case DataType::kBool:
        dst.bools.assign(src.bools.begin() + static_cast<long>(begin),
                         src.bools.end());
        break;
      case DataType::kInt64:
        dst.ints.assign(src.ints.begin() + static_cast<long>(begin),
                        src.ints.end());
        break;
      case DataType::kDouble:
        dst.doubles.assign(src.doubles.begin() + static_cast<long>(begin),
                           src.doubles.end());
        break;
      case DataType::kString:
        dst.dict = src.dict;
        dst.codes.assign(src.codes.begin() + static_cast<long>(begin),
                         src.codes.end());
        break;
    }
  }
  out.num_rows_ = rows;
  return out;
}

size_t ColumnBatch::ByteSize() const {
  size_t total = 0;
  for (const Column& col : columns_) {
    total += col.null_words.size() * 8 + col.bools.size() +
             col.ints.size() * 8 + col.doubles.size() * 8 +
             col.codes.size() * 4 + col.dict.heap_bytes();
  }
  return total;
}

Result<ColumnBatch> ColumnBatch::FromRows(SchemaPtr schema,
                                          const std::vector<Row>& rows) {
  if (schema == nullptr) {
    return Status::InvalidArgument("ColumnBatch needs a schema");
  }
  ColumnBatch batch(std::move(schema));
  batch.Reserve(rows.size());
  for (const Row& row : rows) {
    RETURN_IF_ERROR(batch.AppendRow(row));
  }
  return batch;
}

std::vector<Row> ColumnBatch::ToRows() const {
  std::vector<Row> rows;
  rows.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    Row row;
    EmitRow(r, &row);
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<ColumnBatch> ColumnBatch::FromRecordBatch(const RecordBatch& batch) {
  return FromRows(batch.schema(), batch.rows());
}

RecordBatch ColumnBatch::ToRecordBatch() const {
  return RecordBatch(schema_, ToRows());
}

}  // namespace sqlink
