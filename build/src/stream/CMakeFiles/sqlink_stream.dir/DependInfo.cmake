
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/coordinator.cc" "src/stream/CMakeFiles/sqlink_stream.dir/coordinator.cc.o" "gcc" "src/stream/CMakeFiles/sqlink_stream.dir/coordinator.cc.o.d"
  "/root/repo/src/stream/socket.cc" "src/stream/CMakeFiles/sqlink_stream.dir/socket.cc.o" "gcc" "src/stream/CMakeFiles/sqlink_stream.dir/socket.cc.o.d"
  "/root/repo/src/stream/spill_queue.cc" "src/stream/CMakeFiles/sqlink_stream.dir/spill_queue.cc.o" "gcc" "src/stream/CMakeFiles/sqlink_stream.dir/spill_queue.cc.o.d"
  "/root/repo/src/stream/sql_stream_input_format.cc" "src/stream/CMakeFiles/sqlink_stream.dir/sql_stream_input_format.cc.o" "gcc" "src/stream/CMakeFiles/sqlink_stream.dir/sql_stream_input_format.cc.o.d"
  "/root/repo/src/stream/stream_sink_udf.cc" "src/stream/CMakeFiles/sqlink_stream.dir/stream_sink_udf.cc.o" "gcc" "src/stream/CMakeFiles/sqlink_stream.dir/stream_sink_udf.cc.o.d"
  "/root/repo/src/stream/streaming_transfer.cc" "src/stream/CMakeFiles/sqlink_stream.dir/streaming_transfer.cc.o" "gcc" "src/stream/CMakeFiles/sqlink_stream.dir/streaming_transfer.cc.o.d"
  "/root/repo/src/stream/wire.cc" "src/stream/CMakeFiles/sqlink_stream.dir/wire.cc.o" "gcc" "src/stream/CMakeFiles/sqlink_stream.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/sqlink_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sqlink_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/sqlink_table.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/sqlink_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sqlink_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sqlink_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
