#include "pipeline/table_io.h"

#include <vector>

#include "common/status_macros.h"
#include "common/thread_pool.h"
#include "dfs/line_reader.h"
#include "table/csv.h"

namespace sqlink {

Result<uint64_t> WriteTableToDfs(Dfs* dfs, const Table& table,
                                 const std::string& path_prefix) {
  const size_t num_partitions = table.num_partitions();
  std::vector<Status> statuses(num_partitions);
  std::vector<uint64_t> bytes(num_partitions, 0);
  ParallelFor(num_partitions, [&](size_t p) {
    auto run = [&]() -> Status {
      ASSIGN_OR_RETURN(
          std::unique_ptr<DfsWriter> writer,
          dfs->Create(path_prefix + "/part-" + std::to_string(p),
                      static_cast<int>(p) % dfs->cluster()->num_nodes()));
      CsvCodec codec;
      std::string buffer;
      for (const Row& row : table.partition(p)) {
        codec.AppendRow(row, &buffer);
        if (buffer.size() >= 1 << 20) {
          RETURN_IF_ERROR(writer->Append(buffer));
          buffer.clear();
        }
      }
      if (!buffer.empty()) RETURN_IF_ERROR(writer->Append(buffer));
      RETURN_IF_ERROR(writer->Close());
      bytes[p] = writer->bytes_written();
      return Status::OK();
    };
    statuses[p] = run();
  });
  uint64_t total = 0;
  for (size_t p = 0; p < num_partitions; ++p) {
    RETURN_IF_ERROR(statuses[p]);
    total += bytes[p];
  }
  return total;
}

Result<TablePtr> ReadTableFromDfs(const Dfs& dfs, const std::string& name,
                                  SchemaPtr schema,
                                  const std::string& path_prefix) {
  const std::vector<std::string> files = dfs.List(path_prefix);
  if (files.empty()) {
    return Status::NotFound("no DFS files under " + path_prefix);
  }
  auto table = std::make_shared<Table>(name, schema, files.size());
  std::vector<Status> statuses(files.size());
  ParallelFor(files.size(), [&](size_t i) {
    auto run = [&]() -> Status {
      ASSIGN_OR_RETURN(std::unique_ptr<DfsReader> reader, dfs.Open(files[i]));
      const uint64_t size = reader->file_size();
      DfsLineReader lines(std::move(reader), 0, size);
      CsvCodec codec;
      std::string line;
      while (lines.Next(&line)) {
        ASSIGN_OR_RETURN(Row row, codec.ParseRow(line, *schema));
        table->AppendRow(i, std::move(row));
      }
      return lines.status();
    };
    statuses[i] = run();
  });
  for (const Status& status : statuses) RETURN_IF_ERROR(status);
  return table;
}

}  // namespace sqlink
