SELECT k, v, s, flag FROM e0
