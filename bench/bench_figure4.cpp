// Figure 4 reproduction: effect of caching intermediate or final results of
// the data transformation.
//
// Paper setup: same workload as Figure 3, all three configurations use the
// parallel streaming transfer. Reported (seconds, read off the figure):
//   no cache                 : ~315
//   cache recode maps        : ~210   (~1.5x speedup)
//   cache transformed result : ~145   (~2.2x speedup)
//
// Here: the same three configurations on the simulated cluster. The first
// run computes and populates the caches; the reported numbers are for the
// subsequent (cache-served) run, exactly like re-running the analyst's
// pipeline.

#include "bench_util.h"

using namespace sqlink;
using sqlink::bench::BenchEnv;

namespace {

/// One timed pipeline run; exits on failure.
PipelineResult RunOnce(AnalyticsPipeline* pipeline,
                       const TransformRequest& request,
                       const PipelineOptions& options) {
  auto result = pipeline->Prepare(request, options);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*result);
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t rows = sqlink::bench::RowsArg(argc, argv, 400000);
  const TransformRequest request = BenchEnv::PaperRequest();

  std::printf("=== Figure 4: effect of caching (streaming transfer) ===\n");
  std::printf("carts rows: %lld\n\n", static_cast<long long>(rows));

  // --- no cache: every run recomputes everything. ---
  double no_cache_seconds = 0;
  {
    auto env = BenchEnv::Make(rows);
    PipelineOptions options;
    options.approach = ConnectApproach::kInSqlStream;
    options.use_cache = false;
    RunOnce(env->pipeline.get(), request, options);  // Warmup parity.
    no_cache_seconds =
        RunOnce(env->pipeline.get(), request, options).timings.total_seconds;
  }

  // --- cache recode maps (§5.2): the second run skips the first pass. ---
  double map_cache_seconds = 0;
  {
    auto env = BenchEnv::Make(rows);
    PipelineOptions options;
    options.approach = ConnectApproach::kInSqlStream;
    options.use_cache = true;
    RunOnce(env->pipeline.get(), request, options);  // Populates map cache.
    PipelineResult second = RunOnce(env->pipeline.get(), request, options);
    if (second.source != QueryRewriter::Source::kRecodeMapCache) {
      std::fprintf(stderr, "expected a recode-map cache hit\n");
      return 1;
    }
    map_cache_seconds = second.timings.total_seconds;
  }

  // --- cache fully transformed result (§5.1): the second run streams the
  // materialized table, skipping query + transformation entirely. ---
  double full_cache_seconds = 0;
  {
    auto env = BenchEnv::Make(rows);
    PipelineOptions options;
    options.approach = ConnectApproach::kInSqlStream;
    options.use_cache = true;
    options.cache_full_result = true;
    RunOnce(env->pipeline.get(), request, options);  // Materializes.
    PipelineResult second = RunOnce(env->pipeline.get(), request, options);
    if (second.source != QueryRewriter::Source::kFullResultCache) {
      std::fprintf(stderr, "expected a full-result cache hit\n");
      return 1;
    }
    full_cache_seconds = second.timings.total_seconds;
  }

  std::printf("%-26s %10s %18s\n", "configuration", "time(s)",
              "speedup vs no-cache");
  std::printf("%-26s %10.3f %18s\n", "no cache", no_cache_seconds, "1.00x");
  std::printf("%-26s %10.3f %17.2fx  (paper: ~1.5x)\n", "cache recode maps",
              map_cache_seconds, no_cache_seconds / map_cache_seconds);
  std::printf("%-26s %10.3f %17.2fx  (paper: ~2.2x)\n",
              "cache transformed result", full_cache_seconds,
              no_cache_seconds / full_cache_seconds);

  const bool shape_holds = full_cache_seconds < map_cache_seconds &&
                           map_cache_seconds < no_cache_seconds;
  std::printf("\nshape holds (full < maps < none): %s\n",
              shape_holds ? "YES" : "NO");
  return shape_holds ? 0 : 2;
}
