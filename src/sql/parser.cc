#include "sql/parser.h"

#include <utility>

#include "common/status_macros.h"
#include "common/string_util.h"
#include "sql/lexer.h"

namespace sqlink {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStmt> ParseSelectStmt();
  Result<SqlStatement> ParseStatement();
  Result<ExprPtr> ParseExpr();

  Status ExpectEnd() {
    if (Check(TokenType::kSemicolon)) Advance();
    if (!Check(TokenType::kEnd)) {
      return ErrorHere("unexpected trailing input");
    }
    return Status::OK();
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType type) const { return Peek().type == type; }
  bool CheckKeyword(std::string_view keyword) const {
    return Peek().type == TokenType::kKeyword && Peek().text == keyword;
  }
  bool MatchKeyword(std::string_view keyword) {
    if (CheckKeyword(keyword)) {
      Advance();
      return true;
    }
    return false;
  }
  bool Match(TokenType type) {
    if (Check(type)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ErrorHere(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().position) + " (near '" +
                              Peek().text + "')");
  }
  Status ExpectKeyword(std::string_view keyword) {
    if (!MatchKeyword(keyword)) {
      return ErrorHere("expected " + std::string(keyword));
    }
    return Status::OK();
  }
  Status Expect(TokenType type, const std::string& what) {
    if (!Match(type)) return ErrorHere("expected " + what);
    return Status::OK();
  }

  Result<SelectItem> ParseSelectItem();
  Result<TableRef> ParseTableRef();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParsePrimary();

  /// Parses "[AS] identifier" if present.
  std::string ParseOptionalAlias();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<SelectStmt> Parser::ParseSelectStmt() {
  RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  SelectStmt stmt;
  stmt.distinct = MatchKeyword("DISTINCT");
  do {
    ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
    stmt.items.push_back(std::move(item));
  } while (Match(TokenType::kComma));

  RETURN_IF_ERROR(ExpectKeyword("FROM"));
  // Comma joins and explicit `[INNER] JOIN ... ON ...` mix freely; JOIN/ON
  // desugars into the comma-join form with the ON condition conjoined into
  // WHERE (inner-join semantics).
  ExprPtr join_conditions;
  {
    ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    stmt.from.push_back(std::move(first));
  }
  for (;;) {
    if (Match(TokenType::kComma)) {
      ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      stmt.from.push_back(std::move(ref));
      continue;
    }
    const bool saw_inner = CheckKeyword("INNER");
    if (saw_inner) Advance();
    if (MatchKeyword("JOIN")) {
      ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      stmt.from.push_back(std::move(ref));
      RETURN_IF_ERROR(ExpectKeyword("ON"));
      ASSIGN_OR_RETURN(ExprPtr condition, ParseExpr());
      join_conditions = join_conditions == nullptr
                            ? std::move(condition)
                            : Expr::MakeAnd(std::move(join_conditions),
                                            std::move(condition));
      continue;
    }
    if (saw_inner) return ErrorHere("expected JOIN after INNER");
    break;
  }

  if (MatchKeyword("WHERE")) {
    ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  if (join_conditions != nullptr) {
    stmt.where = stmt.where == nullptr
                     ? join_conditions
                     : Expr::MakeAnd(std::move(join_conditions),
                                     std::move(stmt.where));
  }
  if (MatchKeyword("GROUP")) {
    RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
      stmt.group_by.push_back(std::move(expr));
    } while (Match(TokenType::kComma));
  }
  if (MatchKeyword("HAVING")) {
    ASSIGN_OR_RETURN(stmt.having, ParseExpr());
  }
  if (MatchKeyword("ORDER")) {
    RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      OrderItem item;
      ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.descending = true;
      } else {
        MatchKeyword("ASC");
      }
      stmt.order_by.push_back(std::move(item));
    } while (Match(TokenType::kComma));
  }
  if (MatchKeyword("LIMIT")) {
    if (!Check(TokenType::kInteger)) return ErrorHere("expected LIMIT count");
    ASSIGN_OR_RETURN(stmt.limit, ParseInt64(Advance().text));
  }
  return stmt;
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  // `*` or `alias.*`.
  if (Check(TokenType::kStar)) {
    Advance();
    item.is_star = true;
    return item;
  }
  if (Check(TokenType::kIdentifier) &&
      tokens_[pos_ + 1].type == TokenType::kDot &&
      tokens_[pos_ + 2].type == TokenType::kStar) {
    item.is_star = true;
    item.star_qualifier = Advance().text;
    Advance();  // '.'
    Advance();  // '*'
    return item;
  }
  ASSIGN_OR_RETURN(item.expr, ParseExpr());
  item.alias = ParseOptionalAlias();
  return item;
}

std::string Parser::ParseOptionalAlias() {
  if (MatchKeyword("AS")) {
    if (Check(TokenType::kIdentifier)) return Advance().text;
    return "";
  }
  if (Check(TokenType::kIdentifier)) return Advance().text;
  return "";
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  if (MatchKeyword("TABLE")) {
    RETURN_IF_ERROR(Expect(TokenType::kLeftParen, "'(' after TABLE"));
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected table-function name");
    }
    ref.kind = TableRef::Kind::kTableFunction;
    ref.name = Advance().text;
    RETURN_IF_ERROR(Expect(TokenType::kLeftParen, "'(' after function name"));
    if (!Check(TokenType::kRightParen)) {
      do {
        TableFuncArg arg;
        if (Check(TokenType::kLeftParen) &&
            tokens_[pos_ + 1].type == TokenType::kKeyword &&
            tokens_[pos_ + 1].text == "SELECT") {
          Advance();  // '('
          ASSIGN_OR_RETURN(SelectStmt sub, ParseSelectStmt());
          arg.subquery = std::make_shared<SelectStmt>(std::move(sub));
          RETURN_IF_ERROR(
              Expect(TokenType::kRightParen, "')' closing subquery"));
        } else {
          ASSIGN_OR_RETURN(arg.expr, ParseExpr());
        }
        ref.args.push_back(std::move(arg));
      } while (Match(TokenType::kComma));
    }
    RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')' closing arguments"));
    RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')' closing TABLE(...)"));
    ref.alias = ParseOptionalAlias();
    return ref;
  }
  if (Check(TokenType::kLeftParen)) {
    Advance();
    ref.kind = TableRef::Kind::kSubquery;
    ASSIGN_OR_RETURN(SelectStmt sub, ParseSelectStmt());
    ref.subquery = std::make_shared<SelectStmt>(std::move(sub));
    RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')' closing subquery"));
    ref.alias = ParseOptionalAlias();
    if (ref.alias.empty()) {
      return Status::ParseError("subquery in FROM requires an alias");
    }
    return ref;
  }
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected table name");
  }
  ref.kind = TableRef::Kind::kTable;
  ref.name = Advance().text;
  ref.alias = ParseOptionalAlias();
  return ref;
}

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (MatchKeyword("OR")) {
    ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = Expr::MakeOr(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (MatchKeyword("AND")) {
    ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = Expr::MakeAnd(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return Expr::MakeNot(std::move(operand));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  if (MatchKeyword("IS")) {
    const bool negated = MatchKeyword("NOT");
    RETURN_IF_ERROR(ExpectKeyword("NULL"));
    return Expr::MakeIsNull(std::move(lhs), negated);
  }
  // x [NOT] IN (v1, v2, ...): desugared into OR-of-equalities (or
  // AND-of-inequalities when negated).
  {
    bool negated = false;
    if (CheckKeyword("NOT") && tokens_[pos_ + 1].type == TokenType::kKeyword &&
        tokens_[pos_ + 1].text == "IN") {
      Advance();
      negated = true;
    }
    if (MatchKeyword("IN")) {
      RETURN_IF_ERROR(Expect(TokenType::kLeftParen, "'(' after IN"));
      ExprPtr combined;
      do {
        ASSIGN_OR_RETURN(ExprPtr item, ParseAdditive());
        ExprPtr comparison =
            Expr::MakeComparison(negated ? "<>" : "=", lhs, std::move(item));
        if (combined == nullptr) {
          combined = std::move(comparison);
        } else if (negated) {
          combined = Expr::MakeAnd(std::move(combined), std::move(comparison));
        } else {
          combined = Expr::MakeOr(std::move(combined), std::move(comparison));
        }
      } while (Match(TokenType::kComma));
      RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')' closing IN list"));
      return combined;
    }
  }
  if (MatchKeyword("BETWEEN")) {
    ASSIGN_OR_RETURN(ExprPtr low, ParseAdditive());
    RETURN_IF_ERROR(ExpectKeyword("AND"));
    ASSIGN_OR_RETURN(ExprPtr high, ParseAdditive());
    // Desugar: lhs >= low AND lhs <= high.
    return Expr::MakeAnd(Expr::MakeComparison(">=", lhs, std::move(low)),
                         Expr::MakeComparison("<=", lhs, std::move(high)));
  }
  if (Check(TokenType::kOperator)) {
    const std::string op = Peek().text;
    if (op == "=" || op == "<" || op == ">" || op == "<=" || op == ">=" ||
        op == "<>" || op == "!=") {
      Advance();
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      // Normalize != to <>.
      return Expr::MakeComparison(op == "!=" ? "<>" : op, std::move(lhs),
                                  std::move(rhs));
    }
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAdditive() {
  ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (Check(TokenType::kOperator) &&
         (Peek().text == "+" || Peek().text == "-")) {
    const std::string op = Advance().text;
    ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = Expr::MakeArithmetic(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  ASSIGN_OR_RETURN(ExprPtr lhs, ParsePrimary());
  while ((Check(TokenType::kStar)) ||
         (Check(TokenType::kOperator) && Peek().text == "/")) {
    const std::string op = Check(TokenType::kStar) ? "*" : "/";
    Advance();
    ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimary());
    lhs = Expr::MakeArithmetic(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParsePrimary() {
  // Unary minus on numeric literals / expressions.
  if (Check(TokenType::kOperator) && Peek().text == "-") {
    Advance();
    ASSIGN_OR_RETURN(ExprPtr operand, ParsePrimary());
    return Expr::MakeArithmetic("-", Expr::MakeLiteral(Value::Int64(0)),
                                std::move(operand));
  }
  if (Check(TokenType::kLeftParen)) {
    Advance();
    ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
    RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
    return inner;
  }
  if (Check(TokenType::kString)) {
    return Expr::MakeLiteral(Value::String(Advance().text));
  }
  if (Check(TokenType::kInteger)) {
    ASSIGN_OR_RETURN(int64_t v, ParseInt64(Advance().text));
    return Expr::MakeLiteral(Value::Int64(v));
  }
  if (Check(TokenType::kDouble)) {
    ASSIGN_OR_RETURN(double v, ParseDouble(Advance().text));
    return Expr::MakeLiteral(Value::Double(v));
  }
  if (CheckKeyword("NULL")) {
    Advance();
    return Expr::MakeLiteral(Value::Null());
  }
  if (CheckKeyword("TRUE")) {
    Advance();
    return Expr::MakeLiteral(Value::Bool(true));
  }
  if (CheckKeyword("FALSE")) {
    Advance();
    return Expr::MakeLiteral(Value::Bool(false));
  }
  if (Check(TokenType::kIdentifier)) {
    const std::string first = Advance().text;
    // Function call: name(args) — including COUNT(*) style.
    if (Check(TokenType::kLeftParen)) {
      Advance();
      std::vector<ExprPtr> args;
      if (Check(TokenType::kStar)) {
        // COUNT(*): encode as zero-argument call.
        Advance();
      } else if (!Check(TokenType::kRightParen)) {
        do {
          ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          args.push_back(std::move(arg));
        } while (Match(TokenType::kComma));
      }
      RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')' closing call"));
      return Expr::MakeCall(first, std::move(args));
    }
    // Qualified column: alias.column.
    if (Check(TokenType::kDot)) {
      Advance();
      if (!Check(TokenType::kIdentifier)) {
        return ErrorHere("expected column name after '.'");
      }
      return Expr::MakeColumn(first, Advance().text);
    }
    return Expr::MakeColumn("", first);
  }
  return ErrorHere("expected expression");
}

Result<SqlStatement> Parser::ParseStatement() {
  SqlStatement stmt;
  if (MatchKeyword("EXPLAIN")) {
    stmt.explain =
        MatchKeyword("ANALYZE") ? ExplainMode::kAnalyze : ExplainMode::kPlan;
  }
  ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
  return stmt;
}

}  // namespace

Result<SelectStmt> ParseSelect(const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  ASSIGN_OR_RETURN(SelectStmt stmt, parser.ParseSelectStmt());
  RETURN_IF_ERROR(parser.ExpectEnd());
  return stmt;
}

Result<SqlStatement> ParseStatement(const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  ASSIGN_OR_RETURN(SqlStatement stmt, parser.ParseStatement());
  RETURN_IF_ERROR(parser.ExpectEnd());
  return stmt;
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  ASSIGN_OR_RETURN(ExprPtr expr, parser.ParseExpr());
  RETURN_IF_ERROR(parser.ExpectEnd());
  return expr;
}

}  // namespace sqlink
