#ifndef SQLINK_ML_DECISION_TREE_H_
#define SQLINK_ML_DECISION_TREE_H_

#include <memory>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "ml/dataset.h"

namespace sqlink::ml {

struct DecisionTreeOptions {
  int max_depth = 5;
  size_t min_node_size = 8;      ///< Stop splitting below this many points.
  int max_bins = 32;             ///< Candidate thresholds per feature.
  double min_gain = 1e-7;        ///< Required Gini improvement.
};

/// Binary classification tree (CART with Gini impurity, threshold splits on
/// numeric features). Split search parallelizes over features.
class DecisionTreeModel {
 public:
  /// Tree node; exposed for tests and model inspection.
  struct Node {
    bool is_leaf = true;
    double prediction = 0;   // Leaf: majority class (0/1).
    int feature = -1;        // Split: feature index.
    double threshold = 0;    // Goes left when feature <= threshold.
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };

  double Predict(const DenseVector& features) const;

  int depth() const;
  size_t num_nodes() const;
  const Node* root() const { return root_.get(); }

  /// Binary (de)serialization for model persistence (pre-order walk).
  void Encode(std::string* out) const;
  static Result<DecisionTreeModel> Decode(Decoder* decoder);

 private:
  friend class DecisionTree;

  std::unique_ptr<Node> root_;
};

class DecisionTree {
 public:
  static Result<DecisionTreeModel> Train(
      const Dataset& data, const DecisionTreeOptions& options = {});
};

}  // namespace sqlink::ml

#endif  // SQLINK_ML_DECISION_TREE_H_
