#include "ml/validation.h"

#include <algorithm>

#include "common/random.h"

namespace sqlink::ml {

Result<SplitDatasets> TrainTestSplit(const Dataset& data, double test_fraction,
                                     uint64_t seed) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  const size_t parts = data.num_partitions();
  std::vector<std::vector<LabeledPoint>> train(parts);
  std::vector<std::vector<LabeledPoint>> test(parts);
  for (size_t p = 0; p < parts; ++p) {
    Random rng(seed * 1000003 + p);
    for (const LabeledPoint& point : data.partitions()[p]) {
      (rng.Bernoulli(test_fraction) ? test[p] : train[p]).push_back(point);
    }
  }
  SplitDatasets out;
  out.train = Dataset(std::move(train), data.dimension());
  out.test = Dataset(std::move(test), data.dimension());
  return out;
}

double AreaUnderRoc(const Dataset& data,
                    const std::function<double(const DenseVector&)>& score) {
  // Rank-sum (Mann–Whitney) formulation with midranks for ties.
  std::vector<std::pair<double, bool>> scored;  // (score, is_positive).
  for (const auto& partition : data.partitions()) {
    for (const LabeledPoint& point : partition) {
      scored.emplace_back(score(point.features), point.label > 0.5);
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const size_t n = scored.size();
  size_t positives = 0;
  double positive_rank_sum = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scored[j].first == scored[i].first) ++j;
    const double midrank = (static_cast<double>(i + 1) +
                            static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (scored[k].second) {
        ++positives;
        positive_rank_sum += midrank;
      }
    }
    i = j;
  }
  const size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = positive_rank_sum -
                   static_cast<double>(positives) *
                       (static_cast<double>(positives) + 1) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

}  // namespace sqlink::ml
