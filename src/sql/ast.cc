#include "sql/ast.h"

#include "common/string_util.h"

namespace sqlink {

namespace {

/// Renders a literal as a SQL literal (strings quoted with '' escaping).
std::string LiteralToSql(const Value& value) {
  if (value.is_null()) return "NULL";
  if (value.is_string()) {
    std::string out = "'";
    for (char c : value.string_value()) {
      if (c == '\'') out += "''";
      else out.push_back(c);
    }
    out += "'";
    return out;
  }
  if (value.is_bool()) return value.bool_value() ? "TRUE" : "FALSE";
  return value.ToString();
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case ExprKind::kLiteral:
      return LiteralToSql(literal);
    case ExprKind::kComparison:
    case ExprKind::kArithmetic:
      return "(" + children[0]->ToString() + " " + op + " " +
             children[1]->ToString() + ")";
    case ExprKind::kAnd:
      return "(" + children[0]->ToString() + " AND " +
             children[1]->ToString() + ")";
    case ExprKind::kOr:
      return "(" + children[0]->ToString() + " OR " +
             children[1]->ToString() + ")";
    case ExprKind::kNot:
      return "(NOT " + children[0]->ToString() + ")";
    case ExprKind::kIsNull:
      return "(" + children[0]->ToString() +
             (is_not_null ? " IS NOT NULL)" : " IS NULL)");
    case ExprKind::kFunctionCall: {
      std::string out = function_name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

ExprPtr Expr::MakeColumn(std::string qualifier, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::MakeLiteral(Value value) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(value);
  return e;
}

ExprPtr Expr::MakeComparison(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kComparison;
  e->op = std::move(op);
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::MakeAnd(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAnd;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::MakeOr(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kOr;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::MakeNot(ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kNot;
  e->children = {std::move(operand)};
  return e;
}

ExprPtr Expr::MakeArithmetic(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kArithmetic;
  e->op = std::move(op);
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::MakeCall(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFunctionCall;
  e->function_name = std::move(name);
  e->children = std::move(args);
  return e;
}

ExprPtr Expr::MakeIsNull(ExprPtr operand, bool is_not_null) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kIsNull;
  e->is_not_null = is_not_null;
  e->children = {std::move(operand)};
  return e;
}

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::kColumnRef:
      if (!EqualsIgnoreCase(a.qualifier, b.qualifier) ||
          !EqualsIgnoreCase(a.column, b.column)) {
        return false;
      }
      break;
    case ExprKind::kLiteral:
      if (a.literal != b.literal) return false;
      break;
    case ExprKind::kComparison:
    case ExprKind::kArithmetic:
      if (a.op != b.op) return false;
      break;
    case ExprKind::kFunctionCall:
      if (!EqualsIgnoreCase(a.function_name, b.function_name)) return false;
      break;
    case ExprKind::kIsNull:
      if (a.is_not_null != b.is_not_null) return false;
      break;
    default:
      break;
  }
  if (a.children.size() != b.children.size()) return false;
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!ExprEquals(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

std::string SelectItem::ToString() const {
  if (is_star) {
    return star_qualifier.empty() ? "*" : star_qualifier + ".*";
  }
  std::string out = expr->ToString();
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

std::string TableFuncArg::ToString() const {
  if (subquery != nullptr) return "(" + subquery->ToString() + ")";
  return expr->ToString();
}

std::string TableRef::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kTable:
      out = name;
      break;
    case Kind::kTableFunction: {
      out = "TABLE(" + name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i].ToString();
      }
      out += "))";
      break;
    }
    case Kind::kSubquery:
      out = "(" + subquery->ToString() + ")";
      break;
  }
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].ToString();
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].ToString();
  }
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having != nullptr) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (expr == nullptr) return out;
  if (expr->kind == ExprKind::kAnd) {
    for (const ExprPtr& child : expr->children) {
      auto sub = SplitConjuncts(child);
      out.insert(out.end(), sub.begin(), sub.end());
    }
  } else {
    out.push_back(expr);
  }
  return out;
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out;
  for (const ExprPtr& conjunct : conjuncts) {
    out = (out == nullptr) ? conjunct : Expr::MakeAnd(out, conjunct);
  }
  return out;
}

}  // namespace sqlink
