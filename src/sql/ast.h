#ifndef SQLINK_SQL_AST_H_
#define SQLINK_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "table/value.h"

namespace sqlink {

struct SelectStmt;

/// Scalar expression AST. One node type with a kind tag keeps the parser,
/// binder and rewriter compact; every node can render itself back to SQL
/// (the query rewriter emits SQL text, as in the paper).
enum class ExprKind : int {
  kColumnRef,    // [qualifier.]column
  kLiteral,      // 'USA', 42, 3.14, TRUE, NULL
  kComparison,   // = != <> < <= > >=
  kAnd,
  kOr,
  kNot,
  kArithmetic,   // + - * /
  kFunctionCall, // scalar UDF / builtin
  kIsNull,       // x IS [NOT] NULL
};

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kColumnRef.
  std::string qualifier;  // Table alias; may be empty.
  std::string column;

  // kLiteral.
  Value literal;

  // kComparison / kArithmetic: operator text ("=", "<=", "+", ...).
  std::string op;

  // kFunctionCall.
  std::string function_name;

  // kIsNull: true for IS NOT NULL.
  bool is_not_null = false;

  // Operands: 2 for binary nodes, 1 for kNot/kIsNull, n for calls.
  std::vector<ExprPtr> children;

  /// Renders the expression as SQL.
  std::string ToString() const;

  // -- Construction helpers -------------------------------------------------
  static ExprPtr MakeColumn(std::string qualifier, std::string column);
  static ExprPtr MakeLiteral(Value value);
  static ExprPtr MakeComparison(std::string op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeNot(ExprPtr operand);
  static ExprPtr MakeArithmetic(std::string op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeCall(std::string name, std::vector<ExprPtr> args);
  static ExprPtr MakeIsNull(ExprPtr operand, bool is_not_null);
};

/// Structural equality of expression trees (literal values compared by
/// value; identifiers case-insensitively). Used by the cache matchers.
bool ExprEquals(const Expr& a, const Expr& b);

/// One item of the SELECT list: an expression with an optional alias, or
/// `*` / `alias.*`.
struct SelectItem {
  ExprPtr expr;        // Null when is_star.
  std::string alias;   // Output column name; may be empty.
  bool is_star = false;
  std::string star_qualifier;  // For `alias.*`.

  std::string ToString() const;
};

/// One argument of a table-function call: a scalar expression or a nested
/// query (the paper's transfer/transform UDFs take the prepared query as
/// input).
struct TableFuncArg {
  ExprPtr expr;  // Exactly one of expr/subquery is set.
  std::shared_ptr<SelectStmt> subquery;

  std::string ToString() const;
};

/// A FROM-clause entry: base table, TABLE(f(...)) call, or (subquery).
struct TableRef {
  enum class Kind : int { kTable, kTableFunction, kSubquery };
  Kind kind = Kind::kTable;
  std::string name;   // Table name, or function name for kTableFunction.
  std::string alias;  // May be empty; subqueries require one.
  std::vector<TableFuncArg> args;
  std::shared_ptr<SelectStmt> subquery;

  std::string ToString() const;
  /// The name this relation is referenced by: alias if set, else name.
  const std::string& BindingName() const {
    return alias.empty() ? name : alias;
  }
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

/// A parsed SELECT statement.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // May be null.
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // May be null; aggregates must appear in the SELECT list.
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = none.

  std::string ToString() const;
};

/// EXPLAIN prefix of a statement: kPlan renders the chosen plan without
/// executing; kAnalyze executes and renders estimates next to actuals.
enum class ExplainMode : int { kNone, kPlan, kAnalyze };

/// A full parsed statement: an optional EXPLAIN [ANALYZE] prefix wrapping a
/// SELECT. The engine dispatches on `explain`.
struct SqlStatement {
  ExplainMode explain = ExplainMode::kNone;
  SelectStmt select;
};

/// Splits a conjunction into its AND-ed factors ("a AND b AND c" → [a,b,c]).
/// A null expression yields an empty list.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

/// Rebuilds a conjunction from factors; returns null for an empty list.
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts);

}  // namespace sqlink

#endif  // SQLINK_SQL_AST_H_
