#include "ml/naive_bayes.h"

#include <cmath>
#include <limits>

#include "common/thread_pool.h"

namespace sqlink::ml {

namespace {

struct ClassStats {
  size_t count = 0;
  DenseVector sum;
  DenseVector sum_squares;
};

constexpr double kVarianceFloor = 1e-9;

}  // namespace

std::map<double, double> NaiveBayesModel::Scores(
    const DenseVector& features) const {
  std::map<double, double> scores;
  for (size_t c = 0; c < labels_.size(); ++c) {
    double score = log_priors_[c];
    for (size_t f = 0; f < features.size() && f < means_[c].size(); ++f) {
      const double var = variances_[c][f];
      const double diff = features[f] - means_[c][f];
      score += -0.5 * std::log(2.0 * M_PI * var) - diff * diff / (2.0 * var);
    }
    scores[labels_[c]] = score;
  }
  return scores;
}

double NaiveBayesModel::Predict(const DenseVector& features) const {
  const auto scores = Scores(features);
  double best_label = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const auto& [label, score] : scores) {
    if (score > best_score) {
      best_score = score;
      best_label = label;
    }
  }
  return best_label;
}

namespace {

void EncodeVector(const DenseVector& values, std::string* out) {
  PutVarint64(out, values.size());
  for (double v : values) PutDouble(out, v);
}

Result<DenseVector> DecodeVector(Decoder* decoder) {
  auto count = decoder->GetVarint64();
  if (!count.ok()) return count.status();
  DenseVector values;
  values.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto v = decoder->GetDouble();
    if (!v.ok()) return v.status();
    values.push_back(*v);
  }
  return values;
}

}  // namespace

void NaiveBayesModel::Encode(std::string* out) const {
  EncodeVector(labels_, out);
  EncodeVector(log_priors_, out);
  for (size_t c = 0; c < labels_.size(); ++c) {
    EncodeVector(means_[c], out);
    EncodeVector(variances_[c], out);
  }
}

Result<NaiveBayesModel> NaiveBayesModel::Decode(Decoder* decoder) {
  NaiveBayesModel model;
  auto labels = DecodeVector(decoder);
  if (!labels.ok()) return labels.status();
  model.labels_ = std::move(*labels);
  auto priors = DecodeVector(decoder);
  if (!priors.ok()) return priors.status();
  model.log_priors_ = std::move(*priors);
  if (model.log_priors_.size() != model.labels_.size()) {
    return Status::DataLoss("naive Bayes model: prior count mismatch");
  }
  for (size_t c = 0; c < model.labels_.size(); ++c) {
    auto means = DecodeVector(decoder);
    if (!means.ok()) return means.status();
    model.means_.push_back(std::move(*means));
    auto variances = DecodeVector(decoder);
    if (!variances.ok()) return variances.status();
    model.variances_.push_back(std::move(*variances));
  }
  return model;
}

Result<NaiveBayesModel> NaiveBayes::Train(const Dataset& data) {
  if (data.TotalPoints() == 0) {
    return Status::InvalidArgument("cannot train on an empty dataset");
  }
  const size_t dim = data.dimension();
  const size_t num_parts = data.num_partitions();

  // Map: per-worker per-class sufficient statistics.
  std::vector<std::map<double, ClassStats>> worker_stats(num_parts);
  ParallelFor(num_parts, [&](size_t p) {
    for (const LabeledPoint& point : data.partitions()[p]) {
      ClassStats& stats = worker_stats[p][point.label];
      if (stats.sum.empty()) {
        stats.sum.assign(dim, 0.0);
        stats.sum_squares.assign(dim, 0.0);
      }
      ++stats.count;
      for (size_t f = 0; f < dim; ++f) {
        stats.sum[f] += point.features[f];
        stats.sum_squares[f] += point.features[f] * point.features[f];
      }
    }
  });

  // Reduce: merge across workers.
  std::map<double, ClassStats> merged;
  for (const auto& worker : worker_stats) {
    for (const auto& [label, stats] : worker) {
      ClassStats& into = merged[label];
      if (into.sum.empty()) {
        into.sum.assign(dim, 0.0);
        into.sum_squares.assign(dim, 0.0);
      }
      into.count += stats.count;
      for (size_t f = 0; f < dim; ++f) {
        into.sum[f] += stats.sum[f];
        into.sum_squares[f] += stats.sum_squares[f];
      }
    }
  }

  NaiveBayesModel model;
  const double total = static_cast<double>(data.TotalPoints());
  for (const auto& [label, stats] : merged) {
    model.labels_.push_back(label);
    model.log_priors_.push_back(
        std::log(static_cast<double>(stats.count) / total));
    DenseVector mean(dim);
    DenseVector variance(dim);
    for (size_t f = 0; f < dim; ++f) {
      mean[f] = stats.sum[f] / static_cast<double>(stats.count);
      variance[f] = std::max(
          kVarianceFloor,
          stats.sum_squares[f] / static_cast<double>(stats.count) -
              mean[f] * mean[f]);
    }
    model.means_.push_back(std::move(mean));
    model.variances_.push_back(std::move(variance));
  }
  return model;
}

}  // namespace sqlink::ml
