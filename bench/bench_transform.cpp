// Ablation A6: the §2 transformation hot path, row-at-a-time versus the
// vectorized columnar kernels.
//
// Both paths apply the same work to the same data: recode three categorical
// columns through the RecodeMap (gender k=2, abandoned k=2, city k=64), then
// dummy-code gender and abandoned into contrast columns — the paper's §2
// workload shape. The row path is the pre-columnar implementation —
// one boxed Value per cell, one map lookup per row per column. The columnar
// path runs RecodeColumnKernel (one lookup per *distinct* value, then an
// integer gather) and ApplyCodingKernel over ColumnBatch vectors.
//
// With SQLINK_BENCH_JSON set, one JSON line per mode is emitted; --check
// exits non-zero when the columnar path fails to beat the row path.

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "table/column_batch.h"
#include "transform/coding.h"
#include "transform/kernels.h"
#include "transform/recode_map.h"

using namespace sqlink;

namespace {

constexpr int kCityCardinality = 64;

struct Workload {
  SchemaPtr schema;
  std::vector<Row> rows;
  ColumnBatch batch;
  RecodeMap map;
  std::vector<std::vector<double>> gender_matrix;
  std::vector<std::vector<double>> abandoned_matrix;
};

Workload MakeWorkload(int64_t num_rows) {
  Workload w;
  w.schema = Schema::Make({{"gender", DataType::kString},
                           {"abandoned", DataType::kString},
                           {"city", DataType::kString},
                           {"amount", DataType::kDouble}});
  (void)w.map.Add("gender", "F", 1);
  (void)w.map.Add("gender", "M", 2);
  (void)w.map.Add("abandoned", "Yes", 1);
  (void)w.map.Add("abandoned", "No", 2);
  std::vector<std::string> cities;
  for (int i = 0; i < kCityCardinality; ++i) {
    cities.push_back("city-" + std::to_string(i));
    (void)w.map.Add("city", cities.back(), i + 1);
  }

  Random rng(19);
  w.rows.reserve(static_cast<size_t>(num_rows));
  for (int64_t i = 0; i < num_rows; ++i) {
    w.rows.push_back(
        Row{Value::String(rng.Bernoulli(0.5) ? "F" : "M"),
            Value::String(rng.Bernoulli(0.4) ? "Yes" : "No"),
            Value::String(cities[static_cast<size_t>(
                rng.UniformInt(0, kCityCardinality - 1))]),
            Value::Double(rng.NextDouble() * 500)});
  }
  auto batch = ColumnBatch::FromRows(w.schema, w.rows);
  if (!batch.ok()) {
    std::fprintf(stderr, "batch: %s\n", batch.status().ToString().c_str());
    std::exit(1);
  }
  w.batch = std::move(*batch);
  w.gender_matrix = *CodingMatrix(CodingScheme::kDummy, 2);
  w.abandoned_matrix = *CodingMatrix(CodingScheme::kDummy, 2);
  return w;
}

/// The pre-columnar path: per row, per column, a string-keyed map lookup
/// producing a boxed Value, then per-row contrast expansion.
int64_t RunRowPath(const Workload& w) {
  static const std::string kCols[] = {"gender", "abandoned", "city"};
  int64_t checksum = 0;
  for (const Row& row : w.rows) {
    Row out;
    out.reserve(3 + 2 + 2);
    int gender_code = 0;
    int abandoned_code = 0;
    for (int c = 0; c < 3; ++c) {
      auto code = w.map.Code(kCols[c], row[static_cast<size_t>(c)].string_value());
      if (!code.ok()) std::exit(1);
      if (c == 0) gender_code = *code;
      if (c == 1) abandoned_code = *code;
      out.push_back(Value::Int64(*code));
    }
    for (double v : w.gender_matrix[static_cast<size_t>(gender_code - 1)]) {
      out.push_back(Value::Int64(static_cast<int64_t>(v)));
    }
    for (double v : w.abandoned_matrix[static_cast<size_t>(abandoned_code - 1)]) {
      out.push_back(Value::Int64(static_cast<int64_t>(v)));
    }
    checksum += out[2].int64_value() + out.back().int64_value();
  }
  return checksum;
}

/// The columnar path: translate-table recode + typed-vector contrast gather.
int64_t RunColumnarPath(const Workload& w) {
  static const std::string kCols[] = {"gender", "abandoned", "city"};
  const size_t rows = w.batch.num_rows();
  std::vector<Column> recoded(3);
  for (int c = 0; c < 3; ++c) {
    const RecodeMap::ColumnDict* dict = w.map.FindColumn(kCols[c]);
    Status status =
        RecodeColumnKernel(w.batch.column(static_cast<size_t>(c)), rows,
                           kCols[c], *dict, &recoded[static_cast<size_t>(c)]);
    if (!status.ok()) std::exit(1);
  }
  std::vector<Column> gender_cols;
  std::vector<Column> abandoned_cols;
  if (!ApplyCodingKernel(recoded[0], rows, 2, w.gender_matrix,
                         DataType::kInt64, &gender_cols)
           .ok() ||
      !ApplyCodingKernel(recoded[1], rows, 2, w.abandoned_matrix,
                         DataType::kInt64, &abandoned_cols)
           .ok()) {
    std::exit(1);
  }
  int64_t checksum = 0;
  for (size_t r = 0; r < rows; ++r) {
    checksum += recoded[2].ints[r] + abandoned_cols.back().ints[r];
  }
  return checksum;
}

/// Best-of-three wall milliseconds.
template <typename Fn>
double TimeBest(Fn&& fn, int64_t* checksum) {
  double best_ms = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    *checksum = fn();
    best_ms = std::min(best_ms, watch.ElapsedSeconds() * 1000.0);
  }
  return best_ms;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  int64_t num_rows = 1000000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      num_rows = std::atoll(argv[i]);
    }
  }

  Workload w = MakeWorkload(num_rows);
  std::printf(
      "=== Transform hot path: recode x3 (city k=%d) + dummy-code x2 ===\n",
      kCityCardinality);
  std::printf("rows: %lld\n\n", static_cast<long long>(num_rows));
  std::printf("%-10s %12s %16s\n", "mode", "wall(ms)", "rows/sec");

  int64_t row_sum = 0;
  int64_t col_sum = 0;
  const double row_ms = TimeBest([&] { return RunRowPath(w); }, &row_sum);
  const double col_ms = TimeBest([&] { return RunColumnarPath(w); }, &col_sum);
  if (row_sum != col_sum) {
    std::fprintf(stderr, "checksum mismatch: row %lld vs columnar %lld\n",
                 static_cast<long long>(row_sum),
                 static_cast<long long>(col_sum));
    return 1;
  }

  const double row_rate = static_cast<double>(num_rows) / row_ms * 1000.0;
  const double col_rate = static_cast<double>(num_rows) / col_ms * 1000.0;
  std::printf("%-10s %12.3f %16.0f\n", "row", row_ms, row_rate);
  std::printf("%-10s %12.3f %16.0f\n", "columnar", col_ms, col_rate);
  const double speedup = row_ms / col_ms;
  std::printf("\ncolumnar speedup: %.2fx\n", speedup);

  sqlink::bench::BenchJsonLine("transform.recode_dummy")
      .Param("mode", "row")
      .Param("rows", num_rows)
      .Param("rows_per_sec", row_rate)
      .Emit(row_ms);
  sqlink::bench::BenchJsonLine("transform.recode_dummy")
      .Param("mode", "columnar")
      .Param("rows", num_rows)
      .Param("rows_per_sec", col_rate)
      .Param("speedup", speedup)
      .Emit(col_ms);

  if (check && speedup < 1.0) {
    std::fprintf(stderr, "CHECK FAILED: columnar slower than row path\n");
    return 2;
  }
  return 0;
}
