#ifndef SQLINK_ML_SGD_H_
#define SQLINK_ML_SGD_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"
#include "ml/linear_model.h"

namespace sqlink::ml {

/// Loss functions for the distributed gradient-descent optimizer.
/// AddGradient accumulates d(loss)/d(w,b) at (weights, intercept) for one
/// example into (grad, grad_intercept) and returns the example's loss.
/// Binary labels are 0/1, as in MLlib.
class LossFunction {
 public:
  virtual ~LossFunction() = default;
  virtual double AddGradient(const DenseVector& weights, double intercept,
                             const LabeledPoint& point, DenseVector* grad,
                             double* grad_intercept) const = 0;
};

/// Hinge loss (linear SVM) — the paper's SVMWithSGD.
class HingeLoss final : public LossFunction {
 public:
  double AddGradient(const DenseVector& weights, double intercept,
                     const LabeledPoint& point, DenseVector* grad,
                     double* grad_intercept) const override;
};

/// Log loss (logistic regression).
class LogisticLoss final : public LossFunction {
 public:
  double AddGradient(const DenseVector& weights, double intercept,
                     const LabeledPoint& point, DenseVector* grad,
                     double* grad_intercept) const override;
};

/// Squared loss (linear regression).
class SquaredLoss final : public LossFunction {
 public:
  double AddGradient(const DenseVector& weights, double intercept,
                     const LabeledPoint& point, DenseVector* grad,
                     double* grad_intercept) const override;
};

struct SgdOptions {
  int iterations = 100;
  double step_size = 1.0;
  double reg_param = 0.01;     ///< L2 regularization strength.
  double mini_batch_fraction = 1.0;
  bool fit_intercept = true;
  uint64_t seed = 42;
};

struct SgdResult {
  LinearModel model;
  std::vector<double> loss_history;  ///< Mean regularized loss per iteration.
};

/// Distributed (mini-batch) gradient descent, MLlib-style: each iteration,
/// every worker computes the gradient over (a sample of) its partition in
/// parallel; gradients are summed on the driver and the weights updated with
/// step size step_size/sqrt(iter). Deterministic for a fixed seed.
Result<SgdResult> RunDistributedSgd(const Dataset& data,
                                    const LossFunction& loss,
                                    const SgdOptions& options);

}  // namespace sqlink::ml

#endif  // SQLINK_ML_SGD_H_
