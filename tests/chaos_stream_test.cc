// Chaos suite (ctest -L chaos): end-to-end streaming transfers under
// injected faults. Each test arms a failpoint (common/failpoint.h) at a
// different layer — dialing, mid-frame, spill disk, consumer pacing — and
// asserts the transfer still completes with every row delivered exactly
// once. The suite also tolerates faults injected from the outside via the
// FAILPOINTS env var (e.g. FAILPOINTS="stream.socket.send=error(1)"):
// control-plane RPCs retry with backoff and the data plane recovers via
// the §6 replay protocol.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>

#include "cluster/cluster.h"
#include "common/failpoint.h"
#include "common/fs_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/runtime_flags.h"
#include "common/stopwatch.h"
#include "net/conn_pool.h"
#include "sql/engine.h"
#include "stream/streaming_transfer.h"

namespace sqlink {
namespace {

/// Number of .spill files anywhere under `root` — a finished or aborted
/// transfer must leave zero behind.
int CountSpillFiles(const std::string& root) {
  int count = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && entry.path().extension() == ".spill") {
      ++count;
    }
  }
  return count;
}

class ChaosStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("chaos_stream_test");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    engine_ = SqlEngine::Make(*cluster);

    auto schema = Schema::Make({{"id", DataType::kInt64},
                                {"feature", DataType::kDouble}});
    auto table = engine_->MakeTable("points", schema);
    Random rng(31);
    for (int64_t i = 0; i < 1000; ++i) {
      table->AppendRow(static_cast<size_t>(i) % 4,
                       Row{Value::Int64(i), Value::Double(rng.NextDouble())});
    }
    ASSERT_TRUE(engine_->catalog()->RegisterTable(table).ok());
  }

  /// Runs the transfer and asserts exactly-once delivery of all 1000 rows.
  void ExpectCompleteTransfer(const StreamTransferOptions& options) {
    auto result =
        StreamingTransfer::Run(engine_.get(), "SELECT * FROM points", options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->dataset.TotalRows(), 1000u);
    std::set<int64_t> ids;
    for (const auto& partition : result->dataset.partitions) {
      for (const Row& row : partition) {
        EXPECT_TRUE(ids.insert(row[0].int64_value()).second)
            << "duplicate row " << row[0].int64_value();
      }
    }
    EXPECT_EQ(ids.size(), 1000u);
  }

  /// Kills one shared mux connection mid-transfer. With one pooled socket
  /// per peer and two splits per worker, the transfer's eight concurrent
  /// channels ride shared connections; the kill fails every channel on its
  /// socket at once, and each affected reader must recover via §6 replay —
  /// exactly once, no spill leaks, in the requested wire mode.
  void ExpectMuxConnKillRecovery(int columnar) {
    if (!MuxEnabled()) {
      GTEST_SKIP() << "SQLINK_MUX=off: no shared connection to kill";
    }
    SetColumnarEnabledForTest(columnar);
    SetMuxConnsPerPeerForTest(1);  // Force channels to share sockets.
    MuxConnPool::Global().ResetForTest();
    StreamTransferOptions options;
    options.splits_per_worker = 2;  // 8 channels over 4 shared connections.
    options.sink.resilient = true;  // Retained log enables the §6 replay.
    options.sink.send_buffer_bytes = 256;
    options.reader.recovery_enabled = true;
    ScopedFailpoint fault("net.mux.recv", "after(40):close(1)");
    ASSERT_TRUE(fault.status().ok()) << fault.status();
    ExpectCompleteTransfer(options);
    EXPECT_EQ(fault.fires(), 1);
    EXPECT_EQ(CountSpillFiles(temp_->path()), 0);
    SetMuxConnsPerPeerForTest(0);
    SetColumnarEnabledForTest(-1);
    MuxConnPool::Global().ResetForTest();
  }

  std::unique_ptr<ScopedTempDir> temp_;
  SqlEnginePtr engine_;
};

TEST_F(ChaosStreamTest, ConnectFailureIsRetried) {
  StreamTransferOptions options;
  options.reader.recovery_enabled = true;
  // The first two dials of every reader fail; the backoff-paced retries
  // must land the connection before max_reconnects is exhausted.
  ScopedFailpoint fault("stream.reader.connect", "error(2)");
  ASSERT_TRUE(fault.status().ok()) << fault.status();
  ExpectCompleteTransfer(options);
  EXPECT_EQ(fault.fires(), 2);
}

TEST_F(ChaosStreamTest, MidFrameDisconnectRecovers) {
  StreamTransferOptions options;
  options.sink.resilient = true;  // Retained log enables the §6 replay.
  options.sink.send_buffer_bytes = 256;  // Many data frames.
  options.reader.recovery_enabled = true;
  // The 4th data frame is cut in half and the socket dropped: the receiver
  // sees a mid-message disconnect, reports the failure, reconnects, and the
  // sink replays the retained log (the reader skips what it already got).
  ScopedFailpoint fault("stream.wire.send_data", "after(3):close(1)");
  ASSERT_TRUE(fault.status().ok()) << fault.status();
  ExpectCompleteTransfer(options);
  EXPECT_EQ(fault.fires(), 1);
}

TEST_F(ChaosStreamTest, SpillDiskErrorFallsBackToBackpressure) {
  StreamTransferOptions options;
  options.sink.spill_enabled = true;
  options.sink.send_buffer_bytes = 128;  // Tiny buffer: overflow is certain.
  // Slow the consumer so the producer actually overruns the send buffer.
  options.reader.consume_delay_micros_per_frame = 500;
  // Every spill attempt fails as if the scratch disk were gone; the queue
  // must degrade to blocking backpressure instead of failing the pipeline
  // or corrupting the spill file.
  ScopedFailpoint fault("stream.spill.write", "error");
  ASSERT_TRUE(fault.status().ok()) << fault.status();
  auto result =
      StreamingTransfer::Run(engine_.get(), "SELECT * FROM points", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dataset.TotalRows(), 1000u);
  EXPECT_GT(fault.hits(), 0);            // The spill path was exercised...
  EXPECT_EQ(result->spilled_frames, 0);  // ...but nothing reached disk.
}

TEST_F(ChaosStreamTest, SpillMetricsAccountForEveryFrame) {
  MetricsRegistry::Global().Reset();
  StreamTransferOptions options;
  options.sink.spill_enabled = true;
  options.sink.send_buffer_bytes = 128;  // Tiny buffer: overflow is certain.
  options.reader.consume_delay_micros_per_frame = 500;  // Slow consumer.
  auto result =
      StreamingTransfer::Run(engine_.get(), "SELECT * FROM points", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dataset.TotalRows(), 1000u);
  ASSERT_GT(result->spilled_frames, 0);

  // The observability layer must agree with the transfer's own accounting:
  // every spilled frame was counted, timed, and eventually drained, and the
  // depth gauge came back to zero (high-water mark shows the backlog).
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const int64_t spilled =
      metrics.GetCounter("stream.spill.spilled_frames")->value();
  EXPECT_EQ(spilled, result->spilled_frames);
  EXPECT_EQ(metrics.GetCounter("stream.spill.drained_frames")->value(),
            spilled);
  EXPECT_EQ(metrics.GetHistogram("stream.spill.write_micros")->count(),
            spilled);
  EXPECT_EQ(metrics.GetHistogram("stream.spill.read_micros")->count(),
            spilled);
  Gauge* depth = metrics.GetGauge("stream.spill.queue_depth_frames");
  EXPECT_EQ(depth->value(), 0);
  EXPECT_GT(depth->max_value(), 0);
  EXPECT_EQ(metrics.GetGauge("stream.spill.queue_depth_bytes")->value(), 0);
  EXPECT_GT(metrics.GetCounter("stream.spill.spilled_bytes")->value(), 0);

  // Wire traffic of the run is visible too.
  EXPECT_GT(metrics.GetCounter("stream.wire.frames_sent")->value(), 0);
  EXPECT_GT(metrics.GetCounter("stream.wire.bytes_received")->value(), 0);
  EXPECT_GT(metrics.GetHistogram("stream.wire.send_frame_micros")->count(), 0);
}

TEST_F(ChaosStreamTest, KilledReaderSplitIsReassigned) {
  MetricsRegistry::Global().Reset();
  StreamTransferOptions options;
  options.sink.resilient = true;
  options.sink.send_buffer_bytes = 256;  // Many frames per split.
  options.sink.heartbeat_ms = 20;
  options.reader.heartbeat_ms = 20;  // Enables split reassignment.
  options.reader.recovery_enabled = true;
  // One of the four readers dies outright after 100 delivered rows — no
  // local reconnect. Its released lease must hand the split to a
  // replacement reader, which resumes from the sink's replay window with
  // the partially-applied partition truncated back to the last ack.
  ScopedFailpoint fault("stream.reader.kill.split1", "after(99):error(1)");
  ASSERT_TRUE(fault.status().ok()) << fault.status();
  ExpectCompleteTransfer(options);
  EXPECT_EQ(fault.fires(), 1);
  MetricsRegistry& metrics = MetricsRegistry::Global();
  EXPECT_GE(metrics.Get("transfer.splits_reassigned"), 1);
  EXPECT_GE(metrics.Get("transfer.frames_replayed"), 1);
  EXPECT_EQ(CountSpillFiles(temp_->path()), 0);
}

TEST_F(ChaosStreamTest, DelayedHeartbeatReassignsTheSplit) {
  MetricsRegistry::Global().Reset();
  StreamTransferOptions options;
  options.sink.resilient = true;
  options.sink.send_buffer_bytes = 256;
  options.sink.heartbeat_ms = 10;
  options.reader.heartbeat_ms = 10;  // Lease TTL = 30 ms.
  options.reader.recovery_enabled = true;
  // Pace consumption (~20 ms per frame) so every split is still mid-stream
  // while the lease drama plays out.
  options.reader.consume_delay_micros_per_frame = 20000;
  // Split 2's reader freezes one lease renewal far past the TTL + grace.
  // The reaper marks it Suspect then Reassignable; when the late renewal
  // finally lands, the reader learns it was fenced, stops applying, and a
  // replacement finishes the split — exactly once.
  ScopedFailpoint fault("stream.reader.heartbeat.split2",
                        "after(2):delay(150,1)");
  ASSERT_TRUE(fault.status().ok()) << fault.status();
  ExpectCompleteTransfer(options);
  EXPECT_EQ(fault.fires(), 1);
  MetricsRegistry& metrics = MetricsRegistry::Global();
  EXPECT_GE(metrics.Get("transfer.heartbeat_missed"), 1);
  EXPECT_GE(metrics.Get("transfer.splits_reassigned"), 1);
}

TEST_F(ChaosStreamTest, ExhaustedReassignmentAbortsWithTypedStatus) {
  StreamTransferOptions options;
  options.sink.resilient = true;
  options.sink.spill_enabled = true;
  options.sink.send_buffer_bytes = 128;  // Dead reader ⇒ spill builds up.
  options.sink.reconnect_timeout_ms = 5000;
  options.sink.heartbeat_ms = 20;
  options.reader.heartbeat_ms = 20;
  options.reader.recovery_enabled = true;
  options.max_split_reassignments = 1;
  // Split 1's reader dies after 10 rows — and so does its replacement. The
  // second release exhausts the budget: the coordinator broadcasts an
  // abort, every participant unwinds promptly (no waiting out the full
  // reconnect window), the error is a typed Aborted, and no spill file
  // survives anywhere under the scratch tree.
  ScopedFailpoint fault("stream.reader.kill.split1", "after(9):error(2)");
  ASSERT_TRUE(fault.status().ok()) << fault.status();
  Stopwatch timer;
  auto result =
      StreamingTransfer::Run(engine_.get(), "SELECT * FROM points", options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsAborted()) << result.status();
  EXPECT_EQ(fault.fires(), 2);
  EXPECT_LT(timer.ElapsedMicros(), 4000 * 1000);  // Abort, not timeout.
  EXPECT_EQ(CountSpillFiles(temp_->path()), 0);
}

TEST_F(ChaosStreamTest, MuxConnKilledMidTransferRecoversRowMode) {
  ExpectMuxConnKillRecovery(/*columnar=*/0);
}

TEST_F(ChaosStreamTest, MuxConnKilledMidTransferRecoversColumnarMode) {
  ExpectMuxConnKillRecovery(/*columnar=*/1);
}

TEST_F(ChaosStreamTest, SlowConsumerDelayCompletes) {
  StreamTransferOptions options;
  options.sink.send_buffer_bytes = 256;
  // Stall the consumer on every 5th data frame. Backpressure slows the
  // sender but must never lose or reorder rows.
  ScopedFailpoint fault("stream.reader.frame", "every(5):delay(2)");
  ASSERT_TRUE(fault.status().ok()) << fault.status();
  ExpectCompleteTransfer(options);
  EXPECT_GT(fault.fires(), 0);
}

}  // namespace
}  // namespace sqlink
