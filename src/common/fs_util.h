#ifndef SQLINK_COMMON_FS_UTIL_H_
#define SQLINK_COMMON_FS_UTIL_H_

#include <string>

#include "common/result.h"
#include "common/status.h"

namespace sqlink {

/// Creates a fresh unique directory under the system temp dir with the given
/// prefix and returns its path.
Result<std::string> MakeTempDir(const std::string& prefix);

/// Recursively removes a directory tree; OK if it does not exist.
Status RemoveDirTree(const std::string& path);

/// Creates the directory and any missing parents.
Status EnsureDir(const std::string& path);

/// Writes the whole buffer to a file, replacing previous content.
Status WriteFileAtomic(const std::string& path, const std::string& content);

/// Reads the whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Scoped temp dir: created in the constructor, removed in the destructor.
/// Aborts on creation failure (test/bench convenience).
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& prefix = "sqlink");
  ~ScopedTempDir();

  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace sqlink

#endif  // SQLINK_COMMON_FS_UTIL_H_
