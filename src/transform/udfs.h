#ifndef SQLINK_TRANSFORM_UDFS_H_
#define SQLINK_TRANSFORM_UDFS_H_

#include <atomic>
#include <map>
#include <mutex>
#include <vector>

#include "sql/engine.h"
#include "sql/table_udf.h"
#include "transform/coding.h"

namespace sqlink {

/// Phase 1 of distributed recoding (§2.1): each SQL worker scans its
/// partition once and emits the *locally* distinct (colname, colval) pairs
/// of every requested categorical column — one scan for all columns, the
/// advantage the paper claims over one SQL DISTINCT query per column.
///
/// SQL: TABLE(recode_local_distinct((<query>), 'gender,abandoned'))
/// Output: (colname STRING, colval STRING). NULLs are skipped (the final
/// recoding join drops NULL categories regardless).
class RecodeLocalDistinctUdf final : public TableUdf {
 public:
  Result<SchemaPtr> Bind(const SchemaPtr& input_schema,
                         const std::vector<Value>& args) override;
  Status ProcessPartition(const TableUdfContext& context, RowIterator* input,
                          RowSink* output) override;

 private:
  std::vector<int> column_indices_;
  std::vector<std::string> column_names_;
};

/// Phase 2 tail of distributed recoding: assigns consecutive recode values
/// starting at 1 to the globally distinct (colname, colval) pairs. The
/// input must be gathered and sorted (the rewriter adds ORDER BY, whose
/// sort collects all rows on one worker) so codes are deterministic; a
/// scattered input is rejected.
///
/// SQL: TABLE(recode_assign((SELECT DISTINCT ... ORDER BY colname, colval)))
/// Output: (colname, colval, recodeval INT64).
class RecodeAssignUdf final : public TableUdf {
 public:
  Result<SchemaPtr> Bind(const SchemaPtr& input_schema,
                         const std::vector<Value>& args) override;
  Status ProcessPartition(const TableUdfContext& context, RowIterator* input,
                          RowSink* output) override;

 private:
  std::atomic<int> workers_with_data_{0};
};

/// Applies a coding scheme (§2.2) to already-recoded INT64 columns: each
/// worker scans its partition once, replacing every coded column with its
/// generated feature columns. One UDF class serves dummy, effect and
/// orthogonal coding.
///
/// SQL: TABLE(dummy_code((<query>), 'gender=F|M,abandoned:2'))
class CodeApplyUdf final : public TableUdf {
 public:
  explicit CodeApplyUdf(CodingScheme scheme) : scheme_(scheme) {}

  Result<SchemaPtr> Bind(const SchemaPtr& input_schema,
                         const std::vector<Value>& args) override;
  Status ProcessPartition(const TableUdfContext& context, RowIterator* input,
                          RowSink* output) override;

 private:
  struct BoundColumn {
    int input_index = -1;
    int cardinality = 0;
    std::vector<std::vector<double>> matrix;  // Level -> generated values.
  };

  /// Chunked vectorized path (SQLINK_COLUMNAR=on): stages input rows into a
  /// ColumnBatch and expands coded columns with ApplyCodingKernel.
  Status ProcessColumnar(RowIterator* input, RowSink* output) const;
  /// Row-at-a-time fallback (SQLINK_COLUMNAR=off).
  Status ProcessRows(RowIterator* input, RowSink* output) const;

  CodingScheme scheme_;
  SchemaPtr input_schema_;
  // Per input column: -1 = copy through, else index into coded_.
  std::vector<int> dispatch_;
  std::vector<BoundColumn> coded_;
};

/// Registers the In-SQL transformation UDFs on an engine:
/// recode_local_distinct, recode_assign, dummy_code, effect_code,
/// orthogonal_code. Idempotent.
Status RegisterTransformUdfs(SqlEngine* engine);

}  // namespace sqlink

#endif  // SQLINK_TRANSFORM_UDFS_H_
