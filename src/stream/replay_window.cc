#include "stream/replay_window.h"

#include "common/logging.h"
#include "common/metrics.h"
#include "common/status_macros.h"
#include "stream/wire.h"

namespace sqlink {

ReplayWindow::ReplayWindow(Options options)
    : options_(std::move(options)),
      spill_(options_.spill_path.empty() ? std::string()
                                         : options_.spill_path + ".spill") {
  SQLINK_CHECK(!options_.spill_enabled || !options_.spill_path.empty())
      << "replay window spill enabled without a spill path";
}

Status ReplayWindow::Append(uint64_t seq, uint64_t rows, std::string frame) {
  if (seq != last_seq_ + 1) {
    return Status::Internal("replay window appended out of order: seq " +
                            std::to_string(seq) + " after " +
                            std::to_string(last_seq_));
  }
  last_seq_ = seq;
  Entry entry;
  entry.seq = seq;
  entry.rows = rows;
  entry.bytes = frame.size();
  entry.frame = std::move(frame);
  memory_bytes_ += entry.bytes;
  entries_.push_back(std::move(entry));
  return EnforceBudget();
}

Status ReplayWindow::EnforceBudget() {
  if (!options_.spill_enabled) return Status::OK();
  for (Entry& entry : entries_) {
    if (memory_bytes_ <= options_.memory_capacity_bytes) break;
    if (!entry.in_memory) continue;
    ASSIGN_OR_RETURN(entry.spill_offset, spill_.Append(entry.frame));
    entry.in_memory = false;
    memory_bytes_ -= entry.bytes;
    entry.frame.clear();
    entry.frame.shrink_to_fit();
    ++spilled_frames_;
    MetricsRegistry::Global()
        .GetCounter("stream.replay_window.spilled_frames")
        ->Increment();
  }
  return Status::OK();
}

void ReplayWindow::Ack(uint64_t acked) {
  while (!entries_.empty() && entries_.front().seq <= acked) {
    Entry& front = entries_.front();
    acked_rows_ += front.rows;
    if (front.in_memory) {
      memory_bytes_ -= front.bytes;
      if (options_.buffer_pool != nullptr) {
        options_.buffer_pool->Release(std::move(front.frame));
      }
    }
    acked_seq_ = front.seq;
    entries_.pop_front();
  }
  if (acked > acked_seq_ && acked <= last_seq_) acked_seq_ = acked;
}

Status ReplayWindow::Replay(
    uint64_t from, const std::function<Status(uint64_t, uint64_t,
                                              const std::string&)>& fn) {
  for (const Entry& entry : entries_) {
    if (entry.seq <= from) continue;
    if (entry.in_memory) {
      RETURN_IF_ERROR(fn(entry.seq, entry.rows, entry.frame));
    } else {
      ASSIGN_OR_RETURN(std::string frame, spill_.ReadAt(entry.spill_offset));
      RETURN_IF_ERROR(fn(entry.seq, entry.rows, frame));
    }
  }
  return Status::OK();
}

Result<uint64_t> ReplayWindow::RowsThrough(uint64_t seq) const {
  if (seq < acked_seq_) {
    return Status::Internal("resume point " + std::to_string(seq) +
                            " precedes acked frame " +
                            std::to_string(acked_seq_));
  }
  uint64_t rows = acked_rows_;
  for (const Entry& entry : entries_) {
    if (entry.seq > seq) break;
    rows += entry.rows;
  }
  return rows;
}

}  // namespace sqlink
