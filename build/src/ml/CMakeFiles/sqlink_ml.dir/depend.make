# Empty dependencies file for sqlink_ml.
# This may be replaced when dependencies are built.
