#include "sql/catalog.h"

#include "common/string_util.h"

namespace sqlink {

Status Catalog::RegisterTable(TablePtr table) {
  const std::string key = ToLowerAscii(table->name());
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table exists: " + table->name());
  }
  tables_.emplace(key, std::move(table));
  return Status::OK();
}

void Catalog::PutTable(TablePtr table) {
  const std::string key = ToLowerAscii(table->name());
  std::lock_guard<std::mutex> lock(mu_);
  tables_[key] = std::move(table);
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(ToLowerAscii(name));
  if (it == tables_.end()) {
    return Status::NotFound("unknown table: " + name);
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(ToLowerAscii(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.erase(ToLowerAscii(name)) == 0) {
    return Status::NotFound("unknown table: " + name);
  }
  return Status::OK();
}

std::vector<std::string> Catalog::ListTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) {
    names.push_back(table->name());
  }
  return names;
}

}  // namespace sqlink
