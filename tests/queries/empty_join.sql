SELECT e.k, d.label FROM e0 e JOIN dims d ON e.k = d.k
