#include "dfs/dfs.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/fs_util.h"
#include "common/logging.h"
#include "common/status_macros.h"

namespace sqlink {

Dfs::Dfs(ClusterPtr cluster, DfsOptions options)
    : cluster_(std::move(cluster)), options_(options) {
  options_.replication =
      std::max(1, std::min(options_.replication, cluster_->num_nodes()));
  SQLINK_CHECK(options_.block_size > 0);
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    SQLINK_CHECK_OK(EnsureDir(cluster_->NodeLocalDir(i) + "/dfs"));
  }
}

std::string Dfs::BlockPath(int node, uint64_t block_id) const {
  return cluster_->NodeLocalDir(node) + "/dfs/blk_" + std::to_string(block_id);
}

Result<std::unique_ptr<DfsWriter>> Dfs::Create(const std::string& path,
                                               int preferred_node) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (files_.count(path) > 0) {
      return Status::AlreadyExists("dfs file exists: " + path);
    }
    // Reserve the name so two writers cannot race; the entry stays
    // non-finalized (invisible to readers) until Close().
    files_.emplace(path, FileMeta{});
  }
  return std::unique_ptr<DfsWriter>(new DfsWriter(this, path, preferred_node));
}

Result<std::unique_ptr<DfsReader>> Dfs::Open(const std::string& path,
                                             int reader_node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end() || !it->second.finalized) {
    return Status::NotFound("dfs file not found: " + path);
  }
  return std::unique_ptr<DfsReader>(
      new DfsReader(this, it->second.blocks, it->second.size, reader_node));
}

bool Dfs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  return it != files_.end() && it->second.finalized;
}

Result<uint64_t> Dfs::FileSize(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end() || !it->second.finalized) {
    return Status::NotFound("dfs file not found: " + path);
  }
  return it->second.size;
}

Result<std::vector<BlockLocation>> Dfs::GetBlockLocations(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end() || !it->second.finalized) {
    return Status::NotFound("dfs file not found: " + path);
  }
  std::vector<BlockLocation> locations;
  uint64_t offset = 0;
  for (const BlockMeta& block : it->second.blocks) {
    locations.push_back(BlockLocation{offset, block.length, block.nodes});
    offset += block.length;
  }
  return locations;
}

std::vector<std::string> Dfs::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> result;
  const std::string dir_prefix =
      prefix.empty() || prefix.back() == '/' ? prefix : prefix + "/";
  for (const auto& [path, meta] : files_) {
    if (!meta.finalized) continue;
    if (prefix.empty() || path == prefix ||
        path.compare(0, dir_prefix.size(), dir_prefix) == 0) {
      result.push_back(path);
    }
  }
  return result;
}

Status Dfs::Delete(const std::string& path) {
  FileMeta meta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) {
      return Status::NotFound("dfs file not found: " + path);
    }
    meta = it->second;
    files_.erase(it);
  }
  for (const BlockMeta& block : meta.blocks) {
    for (int node : block.nodes) {
      std::error_code ec;
      std::filesystem::remove(BlockPath(node, block.id), ec);
    }
  }
  return Status::OK();
}

Status Dfs::WriteString(const std::string& path, const std::string& content,
                        int preferred_node) {
  ASSIGN_OR_RETURN(std::unique_ptr<DfsWriter> writer,
                   Create(path, preferred_node));
  RETURN_IF_ERROR(writer->Append(content));
  return writer->Close();
}

Result<std::string> Dfs::ReadString(const std::string& path) const {
  ASSIGN_OR_RETURN(std::unique_ptr<DfsReader> reader, Open(path));
  return reader->ReadAll();
}

uint64_t Dfs::TotalBytesWritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

uint64_t Dfs::TotalBytesRead() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_read_;
}

// ---------------------------------------------------------------------------
// DfsWriter

DfsWriter::DfsWriter(Dfs* dfs, std::string path, int preferred_node)
    : dfs_(dfs), path_(std::move(path)), preferred_node_(preferred_node) {}

DfsWriter::~DfsWriter() {
  if (!closed_) {
    const Status status = Close();
    if (!status.ok()) {
      LOG_WARNING() << "DfsWriter close failed for " << path_ << ": "
                    << status;
    }
  }
}

Status DfsWriter::Append(std::string_view data) {
  if (closed_) return Status::FailedPrecondition("writer already closed");
  size_t consumed = 0;
  while (consumed < data.size()) {
    const uint64_t room = dfs_->options_.block_size - buffer_.size();
    const size_t take =
        static_cast<size_t>(std::min<uint64_t>(room, data.size() - consumed));
    buffer_.append(data.substr(consumed, take));
    consumed += take;
    if (buffer_.size() >= dfs_->options_.block_size) {
      RETURN_IF_ERROR(FlushBlock());
    }
  }
  return Status::OK();
}

Status DfsWriter::FlushBlock() {
  if (buffer_.empty()) return Status::OK();

  Dfs::BlockMeta block;
  block.length = buffer_.size();
  {
    std::lock_guard<std::mutex> lock(dfs_->mu_);
    block.id = dfs_->next_block_id_++;
    // First replica on the preferred (writing) node when given, remaining
    // replicas round-robin across the cluster — HDFS-style placement.
    int cursor = dfs_->next_replica_node_;
    const int num_nodes = dfs_->cluster_->num_nodes();
    if (preferred_node_ >= 0 && preferred_node_ < num_nodes) {
      block.nodes.push_back(preferred_node_);
    }
    while (static_cast<int>(block.nodes.size()) < dfs_->options_.replication) {
      const int candidate = cursor % num_nodes;
      cursor++;
      if (std::find(block.nodes.begin(), block.nodes.end(), candidate) ==
          block.nodes.end()) {
        block.nodes.push_back(candidate);
      }
    }
    dfs_->next_replica_node_ = cursor % num_nodes;
    dfs_->bytes_written_ += block.length * block.nodes.size();
  }

  for (int node : block.nodes) {
    const std::string block_path = dfs_->BlockPath(node, block.id);
    std::ofstream out(block_path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open block file " + block_path);
    out.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    if (!out) return Status::IoError("short write to " + block_path);
  }

  total_size_ += buffer_.size();
  blocks_.push_back(std::move(block));
  buffer_.clear();
  return Status::OK();
}

Status DfsWriter::Close() {
  if (closed_) return Status::OK();
  RETURN_IF_ERROR(FlushBlock());
  closed_ = true;
  std::lock_guard<std::mutex> lock(dfs_->mu_);
  auto it = dfs_->files_.find(path_);
  if (it == dfs_->files_.end()) {
    return Status::Internal("file entry vanished during write: " + path_);
  }
  it->second.blocks = std::move(blocks_);
  it->second.size = total_size_;
  it->second.finalized = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DfsReader

DfsReader::DfsReader(const Dfs* dfs, std::vector<Dfs::BlockMeta> blocks,
                     uint64_t file_size, int reader_node)
    : dfs_(dfs),
      blocks_(std::move(blocks)),
      file_size_(file_size),
      reader_node_(reader_node) {}

Status DfsReader::ReadAt(uint64_t offset, uint64_t length,
                         std::string* out) const {
  out->clear();
  if (offset >= file_size_) return Status::OK();
  length = std::min(length, file_size_ - offset);
  out->reserve(static_cast<size_t>(length));

  // Walk blocks covering [offset, offset + length).
  uint64_t block_start = 0;
  for (const Dfs::BlockMeta& block : blocks_) {
    const uint64_t block_end = block_start + block.length;
    if (block_end > offset && block_start < offset + length) {
      const uint64_t read_begin = std::max(offset, block_start) - block_start;
      const uint64_t read_end =
          std::min(offset + length, block_end) - block_start;
      // Prefer a replica on the reading node; on failure fall back to the
      // remaining replicas (HDFS-style datanode failover).
      std::vector<int> candidates;
      if (reader_node_ >= 0 &&
          std::find(block.nodes.begin(), block.nodes.end(), reader_node_) !=
              block.nodes.end()) {
        candidates.push_back(reader_node_);
      }
      for (int node : block.nodes) {
        if (std::find(candidates.begin(), candidates.end(), node) ==
            candidates.end()) {
          candidates.push_back(node);
        }
      }
      const size_t want = static_cast<size_t>(read_end - read_begin);
      std::string chunk(want, '\0');
      Status last_error =
          Status::IoError("block has no replicas: " + std::to_string(block.id));
      bool read_ok = false;
      for (int node : candidates) {
        const std::string block_path = dfs_->BlockPath(node, block.id);
        std::ifstream in(block_path, std::ios::binary);
        if (!in) {
          last_error = Status::IoError("cannot open block file " + block_path);
          continue;
        }
        in.seekg(static_cast<std::streamoff>(read_begin));
        in.read(chunk.data(), static_cast<std::streamsize>(want));
        if (in.gcount() != static_cast<std::streamsize>(want)) {
          last_error = Status::IoError("short read from " + block_path);
          continue;
        }
        read_ok = true;
        break;
      }
      if (!read_ok) return last_error;
      out->append(chunk);
    }
    block_start = block_end;
    if (block_start >= offset + length) break;
  }
  {
    std::lock_guard<std::mutex> lock(dfs_->mu_);
    dfs_->bytes_read_ += out->size();
  }
  return Status::OK();
}

Result<std::string> DfsReader::ReadAll() const {
  std::string content;
  RETURN_IF_ERROR(ReadAt(0, file_size_, &content));
  return content;
}

}  // namespace sqlink
