// Ablation A2: degree of ML-side parallelism k (m = n·k InputSplits, the
// paper's knob for the number of ML workers per SQL worker). More readers
// per sender increase receive parallelism until the single sender per SQL
// worker becomes the bottleneck.

#include "bench_util.h"
#include "common/stopwatch.h"
#include "stream/streaming_transfer.h"

using namespace sqlink;
using sqlink::bench::BenchEnv;

int main(int argc, char** argv) {
  const int64_t rows = sqlink::bench::RowsArg(argc, argv, 300000);
  auto env = BenchEnv::Make(rows);
  auto table = env->engine->MaterializeSql(
      "SELECT cartid, amount, nitems, year FROM carts", "stream_src");
  if (!table.ok()) return 1;

  std::printf("=== A2: splits per SQL worker (k in m = n*k) ===\n");
  std::printf("rows: %lld, n = %d SQL workers\n\n",
              static_cast<long long>((*table)->TotalRows()),
              env->engine->num_workers());
  std::printf("%6s %10s %12s %16s\n", "k", "m", "time(s)", "rows/split");

  for (int k : {1, 2, 4, 8}) {
    StreamTransferOptions options;
    options.splits_per_worker = k;
    Stopwatch watch;
    auto result = StreamingTransfer::Run(env->engine.get(),
                                         "SELECT * FROM stream_src", options);
    if (!result.ok()) {
      std::fprintf(stderr, "k=%d: %s\n", k,
                   result.status().ToString().c_str());
      return 1;
    }
    const double seconds = watch.ElapsedSeconds();
    std::printf("%6d %10d %12.3f %16.0f\n", k, result->stats.num_splits,
                seconds,
                static_cast<double>(result->dataset.TotalRows()) /
                    result->stats.num_splits);
  }
  return 0;
}
