#ifndef SQLINK_COMMON_METRICS_H_
#define SQLINK_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace sqlink {

/// Monotonic counter. Lock-free; pointer-stable once handed out by the
/// registry, so hot paths acquire the handle once and pay a single relaxed
/// atomic add per event instead of a map lookup under a global mutex.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Up/down gauge with a high-water mark (spill-queue depth, live channels).
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
    UpdateMax(value);
  }
  void Add(int64_t delta) {
    const int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    UpdateMax(now);
  }
  void Increment() { Add(1); }
  void Decrement() { Add(-1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max_value() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void UpdateMax(int64_t candidate) {
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Fixed-bucket latency histogram: power-of-two upper bounds 2^0..2^39 plus
/// an overflow bucket. Recording is one O(1) bucket pick (bit width) and a
/// handful of relaxed atomics; percentiles are estimated at snapshot time by
/// linear interpolation inside the owning bucket. Values are unit-agnostic
/// (the convention in this codebase is microseconds, suffix `_micros`).
class Histogram {
 public:
  static constexpr int kNumBounds = 40;             ///< 2^0 .. 2^39.
  static constexpr int kNumBuckets = kNumBounds + 1;  ///< + overflow.

  struct Snapshot {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;
    int64_t max = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::array<int64_t, kNumBuckets> buckets{};

    double Percentile(double quantile) const;
    double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count); }
  };

  void Record(int64_t value) {
    buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    UpdateExtremum(&min_, value, /*want_min=*/true);
    UpdateExtremum(&max_, value, /*want_min=*/false);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  Snapshot GetSnapshot() const;
  void Reset();

  /// Index of the bucket that holds `value`; bucket i (< kNumBounds) covers
  /// (2^{i-1}, 2^i], bucket 0 covers (-inf, 1].
  static int BucketIndex(int64_t value) {
    if (value <= 1) return 0;
    const int width = std::bit_width(static_cast<uint64_t>(value - 1));
    return width < kNumBounds ? width : kNumBounds;
  }

  /// Inclusive upper bound of bucket `index` (overflow: INT64_MAX).
  static int64_t BucketUpperBound(int index);

 private:
  static void UpdateExtremum(std::atomic<int64_t>* slot, int64_t candidate,
                             bool want_min) {
    int64_t seen = slot->load(std::memory_order_relaxed);
    while ((want_min ? candidate < seen : candidate > seen) &&
           !slot->compare_exchange_weak(seen, candidate,
                                        std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

/// Thread-safe named instrument registry. Subsystems record operational
/// facts (bytes streamed, rows spilled, queue depths, frame latencies) that
/// tests and benchmarks assert on or report.
///
/// Naming convention: `subsystem.noun.verb` or `subsystem.noun_unit`
/// (e.g. `stream.wire.frames_sent`, `stream.spill.write_micros`); see
/// DESIGN.md §7.
///
/// Hot paths should acquire a typed handle once (`GetCounter` etc. — the
/// returned pointer stays valid and keeps its identity for the registry's
/// lifetime, across Reset()) and then update it lock-free. The string-keyed
/// Add/Increment/Get API is a compatibility shim that pays one mutex-guarded
/// map lookup per call.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Typed handles; created on first use, pointer-stable afterwards.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // --- Legacy string API (thin shim over GetCounter) -----------------------
  void Add(const std::string& name, int64_t delta) {
    GetCounter(name)->Add(delta);
  }
  void Increment(const std::string& name) { Add(name, 1); }
  /// Current value of counter `name`; 0 when absent.
  int64_t Get(const std::string& name) const;

  /// Counter and gauge values by name (histograms are summarized only in
  /// ToJson()/ToText()).
  std::map<std::string, int64_t> Snapshot() const;

  /// Zeroes every instrument. Handles stay valid: Reset never deallocates.
  void Reset();

  /// Full dump — counters, gauges (value + high-water mark), and histogram
  /// snapshots with p50/p95/p99 — as a JSON object.
  std::string ToJson() const;

  /// Human-readable aligned text table of the same data.
  std::string ToText() const;

  /// Prometheus text exposition (version 0.0.4) of every instrument, for
  /// the ops server's /metrics route. Names are sanitized to the Prometheus
  /// charset and prefixed `sqlink_` (`sql.planner.qerror_x100` becomes
  /// `sqlink_sql_planner_qerror_x100`). Counters expose as `counter`,
  /// gauges as `gauge` plus a `_max` high-water gauge, histograms as
  /// `summary` (quantiles 0.5/0.95/0.99 with `_sum` and `_count`).
  std::string ToPrometheusText() const;

  /// Writes ToJson() to the path named by `SQLINK_METRICS_DUMP` (if set).
  /// Returns true when a dump was written.
  bool DumpIfConfigured() const;

  /// Writes ToJson() to `path`; false on I/O failure.
  bool WriteJson(const std::string& path) const;

  /// Process-wide registry shared by subsystems that have no natural owner.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sqlink

#endif  // SQLINK_COMMON_METRICS_H_
