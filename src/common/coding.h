#ifndef SQLINK_COMMON_CODING_H_
#define SQLINK_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/result.h"

namespace sqlink {

/// Little-endian fixed and varint encoders used by the streaming wire format
/// and the spill files. Append-style encoders write into a std::string;
/// decoders consume from a cursor over a string_view.

inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  std::memcpy(buf, &value, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  dst->append(buf, 8);
}

inline void PutDouble(std::string* dst, double value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  dst->append(buf, 8);
}

void PutVarint64(std::string* dst, uint64_t value);

/// ZigZag-encoded signed varint.
inline void PutVarint64Signed(std::string* dst, int64_t value) {
  const uint64_t zigzag =
      (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
  PutVarint64(dst, zigzag);
}

/// Length-prefixed string.
inline void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

/// In-place little-endian stores for callers encoding into a fixed stack
/// buffer (frame headers) instead of an append-style string.
inline void EncodeFixed32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, 4);
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, 8);
}

/// Sequential decoder over an encoded buffer. All getters return an error
/// status on truncated input rather than reading out of bounds.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Result<uint8_t> GetByte();
  Result<uint32_t> GetFixed32();
  Result<uint64_t> GetFixed64();
  Result<double> GetDouble();
  Result<uint64_t> GetVarint64();
  Result<int64_t> GetVarint64Signed();
  Result<std::string_view> GetLengthPrefixed();

  /// The next `n` raw bytes as a view into the underlying buffer (columnar
  /// value blobs); errors on truncated input.
  Result<std::string_view> GetRaw(size_t n) {
    if (remaining() < n) {
      return Status::DataLoss("truncated raw bytes");
    }
    const std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace sqlink

#endif  // SQLINK_COMMON_CODING_H_
