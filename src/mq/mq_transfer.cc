#include "mq/mq_transfer.h"

#include <atomic>
#include <thread>

#include "common/coding.h"
#include "common/failpoint.h"
#include "common/status_macros.h"
#include "common/trace.h"
#include "sql/table_udf.h"
#include "table/row_codec.h"

namespace sqlink {

namespace {

constexpr int kPollTimeoutMs = 100;
constexpr int kMaxIdlePolls = 600;  // 60 s of broker silence -> error.

/// Encodes a batch of rows as one broker message:
/// varint row count + concatenated encoded rows (same as a kData frame).
class MessageBatcher {
 public:
  void Add(const Row& row) {
    ++count_;
    RowCodec::Encode(row, &body_);
  }
  bool empty() const { return count_ == 0; }
  size_t bytes() const { return body_.size(); }
  std::string Flush() {
    std::string payload;
    PutVarint64(&payload, count_);
    payload += body_;
    count_ = 0;
    body_.clear();
    return payload;
  }

 private:
  uint64_t count_ = 0;
  std::string body_;
};

Result<std::vector<Row>> DecodeMessage(const std::string& payload) {
  Decoder decoder(payload);
  ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
  std::vector<Row> rows;
  rows.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(Row row, RowCodec::Decode(&decoder));
    rows.push_back(std::move(row));
  }
  return rows;
}

/// The publishing side: each SQL worker appends its partition's rows
/// round-robin to its k topic partitions, then seals them.
class MqSinkUdf final : public TableUdf {
 public:
  explicit MqSinkUdf(MessageBrokerPtr broker) : broker_(std::move(broker)) {}

  Result<SchemaPtr> Bind(const SchemaPtr& input_schema,
                         const std::vector<Value>& args) override {
    if (input_schema == nullptr) {
      return Status::InvalidArgument("mq_stream_sink needs an input relation");
    }
    if (args.empty() || !args[0].is_string()) {
      return Status::InvalidArgument(
          "mq_stream_sink(query, topic[, k, batch_bytes])");
    }
    topic_ = args[0].string_value();
    if (args.size() > 1) {
      if (!args[1].is_int64() || args[1].int64_value() <= 0) {
        return Status::InvalidArgument("k must be a positive integer");
      }
      k_ = static_cast<int>(args[1].int64_value());
    }
    if (args.size() > 2) {
      if (!args[2].is_int64() || args[2].int64_value() <= 0) {
        return Status::InvalidArgument("batch_bytes must be positive");
      }
      batch_bytes_ = static_cast<size_t>(args[2].int64_value());
    }
    return Schema::Make({{"worker", DataType::kInt64},
                         {"rows_published", DataType::kInt64},
                         {"messages_published", DataType::kInt64}});
  }

  Status ProcessPartition(const TableUdfContext& context, RowIterator* input,
                          RowSink* output) override {
    // First worker creates the topic (n·k partitions); others race benignly.
    MessageBroker::TopicConfig config;
    config.num_partitions = context.num_workers * k_;
    const Status created = broker_->CreateTopic(topic_, config);
    if (!created.ok() && !created.IsAlreadyExists()) return created;

    const int first_partition = context.worker_id * k_;
    TraceSpan span("mq.sink.partition");
    span.AddAttribute("worker", context.worker_id);
    std::vector<MessageBatcher> batchers(static_cast<size_t>(k_));
    int64_t rows = 0;
    int64_t messages = 0;
    auto flush = [&](int j) -> Status {
      std::string payload = batchers[static_cast<size_t>(j)].Flush();
      ++messages;
      return broker_->Produce(topic_, first_partition + j, std::move(payload))
          .status();
    };

    Row row;
    int next = 0;
    for (;;) {
      ASSIGN_OR_RETURN(bool has, input->Next(&row));
      if (!has) break;
      MessageBatcher& batch = batchers[static_cast<size_t>(next)];
      batch.Add(row);
      ++rows;
      if (batch.bytes() >= batch_bytes_) {
        RETURN_IF_ERROR(flush(next));
      }
      next = (next + 1) % k_;
    }
    for (int j = 0; j < k_; ++j) {
      if (!batchers[static_cast<size_t>(j)].empty()) {
        RETURN_IF_ERROR(flush(j));
      }
      RETURN_IF_ERROR(broker_->SealPartition(topic_, first_partition + j));
    }
    span.AddAttribute("rows_published", rows);
    span.AddAttribute("messages_published", messages);
    return output->Push(Row{Value::Int64(context.worker_id),
                            Value::Int64(rows), Value::Int64(messages)});
  }

 private:
  MessageBrokerPtr broker_;
  std::string topic_;
  int k_ = 1;
  size_t batch_bytes_ = 4096;
};

/// One broker partition as an InputSplit, located at its producer's node.
class MqSplit final : public ml::InputSplit {
 public:
  MqSplit(int partition, std::string location)
      : partition_(partition), location_(std::move(location)) {}
  int partition() const { return partition_; }
  std::vector<std::string> Locations() const override { return {location_}; }
  std::string DebugString() const override {
    return "mq partition " + std::to_string(partition_);
  }

 private:
  int partition_;
  std::string location_;
};

/// Consumes one partition from the committed offset; batch-granularity
/// commits give at-least-once delivery with a bounded recovery tail.
class MqRecordReader final : public ml::RecordReader {
 public:
  MqRecordReader(MessageBrokerPtr broker, std::string topic, int partition,
                 MqTransferOptions options,
                 std::shared_ptr<std::atomic<int64_t>> reread_counter)
      : broker_(std::move(broker)),
        topic_(std::move(topic)),
        partition_(partition),
        crash_failpoint_name_("mq.reader.crash.p" + std::to_string(partition)),
        options_(std::move(options)),
        reread_counter_(std::move(reread_counter)) {}

  Result<bool> Next(Row* out) override {
    for (;;) {
      if (pending_index_ < pending_.size()) {
        if (skip_ > 0) {
          --skip_;
          ++pending_index_;
          continue;
        }
        *out = std::move(pending_[pending_index_++]);
        ++delivered_since_commit_;
        MaybeInjectFailure();
        return true;
      }
      // Batch fully delivered: commit, then fetch the next one.
      if (offset_ > committed_offset_) {
        RETURN_IF_ERROR(broker_->CommitOffset(options_.consumer_group, topic_,
                                              partition_, offset_));
        committed_offset_ = offset_;
        delivered_since_commit_ = 0;
      }
      ASSIGN_OR_RETURN(
          MessageBroker::PollResult poll,
          broker_->Poll(topic_, partition_, offset_, /*max_messages=*/16,
                        kPollTimeoutMs));
      if (poll.messages.empty()) {
        if (poll.sealed) return false;
        if (++idle_polls_ > kMaxIdlePolls) {
          return Status::Unavailable("broker partition idle too long");
        }
        continue;
      }
      idle_polls_ = 0;
      pending_.clear();
      pending_index_ = 0;
      for (MessageBroker::Message& message : poll.messages) {
        if (message.offset < replay_high_water_) {
          reread_counter_->fetch_add(1);
        }
        ASSIGN_OR_RETURN(std::vector<Row> rows,
                         DecodeMessage(message.payload));
        for (Row& row : rows) pending_.push_back(std::move(row));
        offset_ = message.offset + 1;
      }
    }
  }

 private:
  /// Simulates a consumer crash when the per-partition failpoint
  /// ("mq.reader.crash.p<ID>", evaluated once per delivered row) fires:
  /// state resets to the last committed offset; already-delivered rows of
  /// the uncommitted tail are skipped on the replay so the dataset stays
  /// duplicate-free (the recovery tail is what gets re-read).
  void MaybeInjectFailure() {
    if (SQLINK_FAILPOINT(crash_failpoint_name_) == FailpointOutcome::kNone) {
      return;
    }
    replay_high_water_ = offset_;
    pending_.clear();
    pending_index_ = 0;
    skip_ = delivered_since_commit_;
    offset_ = committed_offset_;
  }

  MessageBrokerPtr broker_;
  std::string topic_;
  int partition_;
  const std::string crash_failpoint_name_;
  MqTransferOptions options_;
  std::shared_ptr<std::atomic<int64_t>> reread_counter_;

  std::vector<Row> pending_;
  size_t pending_index_ = 0;
  int64_t offset_ = 0;
  int64_t committed_offset_ = 0;
  uint64_t delivered_since_commit_ = 0;
  uint64_t skip_ = 0;
  int idle_polls_ = 0;
  int64_t replay_high_water_ = -1;
};

}  // namespace

Status RegisterMqSinkUdf(SqlEngine* engine, MessageBrokerPtr broker) {
  if (engine->table_udfs()->Contains("mq_stream_sink")) return Status::OK();
  return engine->table_udfs()->Register(
      "mq_stream_sink",
      [broker] { return std::make_shared<MqSinkUdf>(broker); });
}

MqInputFormat::MqInputFormat(MessageBrokerPtr broker, std::string topic,
                             SchemaPtr schema, MqTransferOptions options)
    : broker_(std::move(broker)),
      topic_(std::move(topic)),
      schema_(std::move(schema)),
      options_(std::move(options)),
      reread_counter_(std::make_shared<std::atomic<int64_t>>(0)) {}

Result<std::vector<ml::InputSplitPtr>> MqInputFormat::GetSplits(
    const ml::JobContext& context) {
  ASSIGN_OR_RETURN(int partitions, broker_->NumPartitions(topic_));
  std::vector<ml::InputSplitPtr> splits;
  for (int p = 0; p < partitions; ++p) {
    // Partition p was produced by SQL worker p / k, on node p / k.
    const int producer = p / std::max(1, options_.partitions_per_worker);
    std::string location =
        context.cluster != nullptr && producer < context.cluster->num_nodes()
            ? context.cluster->HostName(producer)
            : "node" + std::to_string(producer);
    splits.push_back(std::make_shared<MqSplit>(p, std::move(location)));
  }
  return splits;
}

Result<std::unique_ptr<ml::RecordReader>> MqInputFormat::CreateReader(
    const ml::JobContext& context, const ml::InputSplit& split,
    int worker_id) {
  (void)context;
  (void)worker_id;
  const auto* mq_split = dynamic_cast<const MqSplit*>(&split);
  if (mq_split == nullptr) {
    return Status::InvalidArgument("MqInputFormat needs an MqSplit");
  }
  return std::unique_ptr<ml::RecordReader>(
      new MqRecordReader(broker_, topic_, mq_split->partition(), options_,
                         reread_counter_));
}

int64_t MqInputFormat::messages_reread() const {
  return reread_counter_->load();
}

Result<MqTransferResult> MqTransfer::Run(SqlEngine* engine,
                                         MessageBrokerPtr broker,
                                         const std::string& query_sql,
                                         const MqTransferOptions& options) {
  RETURN_IF_ERROR(RegisterMqSinkUdf(engine, broker));

  // Root span of the broker-mediated transfer; ambient so the publishing
  // SQL workers and the consumer thread all land in one trace.
  TraceSpan transfer_span("mq.transfer");
  ScopedAmbientTrace ambient(transfer_span.context());

  static std::atomic<int> topic_counter{0};
  const std::string topic =
      "mqtransfer_" + std::to_string(topic_counter.fetch_add(1));
  MessageBroker::TopicConfig config;
  config.num_partitions =
      engine->num_workers() * std::max(1, options.partitions_per_worker);
  RETURN_IF_ERROR(broker->CreateTopic(topic, config));

  // The consumers need the row schema up front; plan the query for it.
  ASSIGN_OR_RETURN(PlanPtr plan, engine->Plan(query_sql));

  // Ingest concurrently with publication — the broker decouples the two.
  MqInputFormat format(broker, topic, plan->output_schema, options);
  Result<ml::IngestResult> ingest = Status::Internal("ingest never ran");
  std::thread consumer([&] {
    ml::JobContext context;
    context.cluster = engine->cluster();
    context.metrics = engine->metrics();
    ml::MlJobRunner runner(context);
    ingest = runner.Ingest(&format);
  });

  const std::string sink_sql =
      "SELECT * FROM TABLE(mq_stream_sink((" + query_sql + "), '" + topic +
      "', " + std::to_string(options.partitions_per_worker) + ", " +
      std::to_string(options.batch_bytes) + "))";
  auto summary = engine->ExecuteSql(sink_sql, "mq_summary");
  if (!summary.ok()) {
    // Seal everything so the consumers terminate, then surface the error.
    for (int p = 0; p < config.num_partitions; ++p) {
      (void)broker->SealPartition(topic, p);
    }
    consumer.join();
    return summary.status();
  }
  consumer.join();
  RETURN_IF_ERROR(ingest.status());

  MqTransferResult result;
  result.dataset = std::move(ingest->dataset);
  for (const Row& row : (*summary)->GatherRows()) {
    result.rows_published += row[1].int64_value();
    result.messages_published += row[2].int64_value();
  }
  result.messages_reread = format.messages_reread();
  return result;
}

}  // namespace sqlink
