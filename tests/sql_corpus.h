// Shared golden-query corpus for the SQL engine tests.
//
// The corpus lives in tests/queries/: one <name>.sql per query and a
// <name>.expected golden holding the canonical (sorted, pipe-joined)
// result. Both sql_engine_test.cc (goldens under the session's engine
// mode) and sql_differential_test.cc (row vs vectorized) load it through
// this header, so a query added to the directory is automatically held to
// byte-identical results across engines.
//
// Regenerate goldens with SQLINK_UPDATE_GOLDENS=1 (writes into the source
// tree; inspect the diff before committing).

#ifndef SQLINK_TESTS_SQL_CORPUS_H_
#define SQLINK_TESTS_SQL_CORPUS_H_

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fs_util.h"
#include "common/random.h"
#include "sql/engine.h"
#include "table/table.h"

#ifndef SQLINK_QUERY_DIR
#error "compile with -DSQLINK_QUERY_DIR=\"<path to tests/queries>\""
#endif

namespace sqlink {

struct CorpusQuery {
  std::string name;           ///< File stem, e.g. "join_basic".
  std::string sql;            ///< The query text.
  std::string expected_path;  ///< Sibling .expected golden file.
};

/// All corpus queries, sorted by name for stable test ordering.
inline std::vector<CorpusQuery> LoadQueryCorpus() {
  std::vector<CorpusQuery> corpus;
  const std::filesystem::path dir(SQLINK_QUERY_DIR);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".sql") continue;
    CorpusQuery query;
    query.name = entry.path().stem().string();
    auto text = ReadFileToString(entry.path().string());
    if (!text.ok()) continue;
    query.sql = *text;
    std::filesystem::path expected = entry.path();
    expected.replace_extension(".expected");
    query.expected_path = expected.string();
    corpus.push_back(std::move(query));
  }
  std::sort(corpus.begin(), corpus.end(),
            [](const CorpusQuery& a, const CorpusQuery& b) {
              return a.name < b.name;
            });
  return corpus;
}

/// One row rendered canonically: values pipe-joined, NULLs explicit.
inline std::string CanonicalRow(const Row& row) {
  std::string out;
  for (const Value& value : row) {
    out += value.is_null() ? "NULL" : value.ToString();
    out += "|";
  }
  return out;
}

/// A whole result rendered canonically: one line per row, sorted, so two
/// engines producing the same multiset render byte-identically.
inline std::string CanonicalResult(const std::vector<Row>& rows) {
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (const Row& row : rows) lines.push_back(CanonicalRow(row));
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

/// Registers the deterministic corpus tables on `engine`:
///  - events tables `e0`, `e1`, `e1023`, `e1024`, `e1025` (named by row
///    count, bracketing the executor's 1024-row batch size) with schema
///    (k INT, v DOUBLE, s STRING, flag BOOL) and ~12% NULLs per column;
///  - dimension table `dims` (k INT, label STRING) with NULL keys mixed in.
inline void RegisterCorpusTables(SqlEngine* engine) {
  const auto events_schema = Schema::Make({{"k", DataType::kInt64},
                                           {"v", DataType::kDouble},
                                           {"s", DataType::kString},
                                           {"flag", DataType::kBool}});
  static const char* const kStrings[] = {"alpha", "beta",  "gamma", "delta",
                                         "",      "pipe|", "x"};
  for (const size_t rows : {size_t{0}, size_t{1}, size_t{1023}, size_t{1024},
                            size_t{1025}}) {
    Random rng(42 + rows);
    auto table = engine->MakeTable("e" + std::to_string(rows), events_schema);
    for (size_t i = 0; i < rows; ++i) {
      Row row;
      row.push_back(rng.Bernoulli(0.12)
                        ? Value::Null()
                        : Value::Int64(rng.UniformInt(0, 31)));
      row.push_back(rng.Bernoulli(0.12)
                        ? Value::Null()
                        : Value::Double(rng.UniformInt(-500, 500) / 10.0));
      row.push_back(rng.Bernoulli(0.12)
                        ? Value::Null()
                        : Value::String(kStrings[rng.Uniform(7)]));
      row.push_back(rng.Bernoulli(0.12) ? Value::Null()
                                        : Value::Bool(rng.Bernoulli(0.5)));
      table->AppendRow(i % table->num_partitions(), std::move(row));
    }
    engine->catalog()->PutTable(table);
  }

  Random rng(7);
  const auto dims_schema =
      Schema::Make({{"k", DataType::kInt64}, {"label", DataType::kString}});
  auto dims = engine->MakeTable("dims", dims_schema);
  for (size_t i = 0; i < 40; ++i) {
    Row row;
    row.push_back(rng.Bernoulli(0.1)
                      ? Value::Null()
                      : Value::Int64(rng.UniformInt(0, 47)));
    row.push_back(rng.Bernoulli(0.1)
                      ? Value::Null()
                      : Value::String(kStrings[rng.Uniform(7)]));
    dims->AppendRow(i % dims->num_partitions(), std::move(row));
  }
  engine->catalog()->PutTable(dims);
}

}  // namespace sqlink

#endif  // SQLINK_TESTS_SQL_CORPUS_H_
