#include "net/conn_pool.h"

#include <thread>
#include <utility>

#include "common/metrics.h"
#include "common/runtime_flags.h"
#include "common/status_macros.h"

namespace sqlink {

namespace {

/// Fibonacci hash spreads consecutive split ids across the slots.
size_t AffinitySlot(uint64_t affinity, size_t slots) {
  return static_cast<size_t>((affinity * 0x9E3779B97F4A7C15ull) % slots);
}

Counter* DialCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("stream.reader.data_dials");
  return counter;
}

}  // namespace

// --- MuxConnPool ------------------------------------------------------------

MuxConnPool& MuxConnPool::Global() {
  static MuxConnPool* pool = new MuxConnPool();
  return *pool;
}

Result<FrameChannelPtr> MuxConnPool::OpenChannel(const std::string& host,
                                                 int port, uint64_t sink_key,
                                                 uint64_t affinity,
                                                 const HelloMessage& hello) {
  const std::string key = host + ":" + std::to_string(port);
  const size_t slots = static_cast<size_t>(MuxConnsPerPeer());
  const size_t slot = AffinitySlot(affinity, slots);

  OpenChannelMessage msg;
  msg.sink_key = sink_key;
  msg.window_bytes = static_cast<uint64_t>(MuxChannelWindowBytes());
  msg.hello = hello;

  // One retry with a fresh dial: the pooled connection may be stale (sink
  // restarted, chaos kill) and the failure only shows at first use.
  Status last = Status::NetworkError("mux dial failed");
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::shared_ptr<MuxConn> conn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      std::vector<std::shared_ptr<MuxConn>>& pool = peers_[key];
      if (pool.size() != slots) pool.resize(slots);
      conn = pool[slot];
      if (conn == nullptr || conn->dead()) {
        // Dial under the lock: concurrent openers of the same slot share
        // one dial instead of racing sockets into existence (loopback
        // connects are cheap).
        auto dialed = TcpConnect(host, port);
        if (!dialed.ok()) return dialed.status();
        DialCounter()->Increment();
        conn = MuxConn::Spawn(std::move(*dialed), /*on_open=*/nullptr);
        pool[slot] = conn;
      }
    }
    auto channel = conn->OpenChannel(msg);
    if (channel.ok()) return channel;
    last = channel.status();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = peers_.find(key);
    if (it != peers_.end() && slot < it->second.size() &&
        it->second[slot] == conn) {
      it->second[slot] = nullptr;
    }
  }
  return last;
}

void MuxConnPool::ResetForTest() {
  std::unordered_map<std::string, std::vector<std::shared_ptr<MuxConn>>>
      peers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    peers.swap(peers_);
  }
  for (auto& [key, pool] : peers) {
    for (auto& conn : pool) {
      if (conn != nullptr) {
        conn->Shutdown(Status::Cancelled("pool reset"));
      }
    }
  }
}

// --- MuxSinkServer ----------------------------------------------------------

MuxSinkServer& MuxSinkServer::Global() {
  static MuxSinkServer* server = new MuxSinkServer();
  return *server;
}

Result<int> MuxSinkServer::EnsureStarted() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_) {
    ASSIGN_OR_RETURN(listener_, TcpListener::Listen(0));
    port_ = listener_.port();
    started_ = true;
    std::thread([this] { AcceptLoop(); }).detach();
  }
  return port_;
}

uint64_t MuxSinkServer::Register(ChannelHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t key = next_key_++;
  handlers_[key] = std::move(handler);
  return key;
}

void MuxSinkServer::Unregister(uint64_t sink_key) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_.erase(sink_key);
}

void MuxSinkServer::AcceptLoop() {
  for (;;) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (accepted.status().IsCancelled()) return;
      continue;  // Transient accept error (or failpoint); keep serving.
    }
    auto conn = MuxConn::Spawn(
        std::move(*accepted),
        [this](FrameChannelPtr channel, const OpenChannelMessage& msg) {
          Dispatch(std::move(channel), msg);
        });
    std::lock_guard<std::mutex> lock(mu_);
    // Sweep dead connections so the roster tracks live sockets.
    for (size_t i = 0; i < conns_.size();) {
      if (conns_[i]->dead()) {
        conns_[i] = conns_.back();
        conns_.pop_back();
      } else {
        ++i;
      }
    }
    conns_.push_back(std::move(conn));
  }
}

void MuxSinkServer::Dispatch(FrameChannelPtr channel,
                             const OpenChannelMessage& msg) {
  ChannelHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handlers_.find(msg.sink_key);
    if (it != handlers_.end()) handler = it->second;
  }
  if (handler == nullptr) {
    // Retryable: the reader backs off and re-resolves the sink, which may
    // simply not have (re)registered its partition yet.
    channel->Shutdown(Status::Unavailable(
        "unknown sink key " + std::to_string(msg.sink_key)));
    return;
  }
  handler(std::move(channel), msg);
}

}  // namespace sqlink
