# Empty compiler generated dependencies file for sqlink_exttool.
# This may be replaced when dependencies are built.
