// Interactive SQL shell over the engine — handy for exploring the carts
// warehouse and trying the In-SQL transformation UDFs by hand.
//
//   ./sql_shell [num_carts]                       interactive local shell
//   ./sql_shell -e "SELECT ...;" [num_carts]      one-shot local statement
//   ./sql_shell --serve <port> [num_carts]        long-lived query server
//   ./sql_shell --connect host:port -e "SELECT ...;" [--tenant t]
//                                                 remote client (one query)
//
//   sqlink> SELECT gender, COUNT(*) FROM users GROUP BY gender;
//   sqlink> EXPLAIN SELECT U.age FROM carts C JOIN users U ON C.userid = U.userid;
//   sqlink> SELECT * FROM TABLE(recode_local_distinct((SELECT * FROM carts),
//           'abandoned')) LIMIT 5;
//   sqlink> \tables      \schema carts      \quit
//
// Server mode gates queries through the AdmissionController (see
// SQLINK_MAX_CONCURRENT_QUERIES, SQLINK_ADMISSION_MEM_BYTES,
// SQLINK_TENANT_QUOTA) and, with SQLINK_OPS_PORT set, reports admission
// saturation through /healthz (503 + JSON reason when the queue is full).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/ops_server.h"
#include "pipeline/datagen.h"
#include "serving/query_server.h"
#include "sql/engine.h"
#include "table/pretty_print.h"
#include "transform/udfs.h"

namespace {

using namespace sqlink;

void HandleCommand(SqlEngine* engine, const std::string& line) {
  if (line == "\\tables") {
    for (const std::string& name : engine->catalog()->ListTables()) {
      std::printf("  %s\n", name.c_str());
    }
    return;
  }
  if (StartsWith(line, "\\schema ")) {
    const std::string name(TrimWhitespace(line.substr(8)));
    auto table = engine->catalog()->GetTable(name);
    if (!table.ok()) {
      std::printf("%s\n", table.status().ToString().c_str());
      return;
    }
    std::printf("%s (%zu rows): %s\n", (*table)->name().c_str(),
                (*table)->TotalRows(), (*table)->schema()->ToString().c_str());
    return;
  }
  std::printf("unknown command: %s (try \\tables, \\schema <t>, \\quit)\n",
              line.c_str());
}

void RunStatement(SqlEngine* engine, const std::string& sql) {
  // EXPLAIN / EXPLAIN ANALYZE are first-class statements now; their result
  // is a one-column table of plan-text lines, printed raw.
  Stopwatch watch;
  auto result = engine->ExecuteSql(sql);
  if (!result.ok()) {
    std::printf("%s\n", result.status().ToString().c_str());
    return;
  }
  const SchemaPtr& schema = (*result)->schema();
  if (schema->num_fields() == 1 && schema->field(0).name == "plan") {
    for (size_t p = 0; p < (*result)->num_partitions(); ++p) {
      for (const Row& row : (*result)->partition(p)) {
        std::printf("%s\n", row[0].string_value().c_str());
      }
    }
    return;
  }
  std::printf("%s", PrettyPrintTable(**result).c_str());
  std::printf("%.3fs\n", watch.ElapsedSeconds());
}

std::string StripTrailingSemicolon(const std::string& sql) {
  std::string trimmed(TrimWhitespace(sql));
  if (!trimmed.empty() && trimmed.back() == ';') trimmed.pop_back();
  return trimmed;
}

/// Remote client: submit one query over the wire, print rows as TSV.
/// Typed rejections (kOverloaded) exit with code 2 so scripts can retry.
int RunClient(const std::string& endpoint, const std::string& sql,
              const std::string& tenant, int64_t deadline_ms) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect expects host:port, got %s\n",
                 endpoint.c_str());
    return 1;
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  auto client = QueryClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 1;
  }
  auto response =
      client->Execute(StripTrailingSemicolon(sql), tenant, deadline_ms);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return response.status().IsOverloaded() ? 2 : 1;
  }
  for (const Row& row : response->rows) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line.push_back('\t');
      line += row[i].ToString();
    }
    std::printf("%s\n", line.c_str());
  }
  std::fprintf(stderr, "%zu row(s) in %.3fs server-side\n",
               response->rows.size(), response->elapsed_micros / 1e6);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);

  int serve_port = -1;
  std::string connect_endpoint;
  std::string statement;
  std::string tenant;
  int64_t deadline_ms = 0;
  int64_t num_carts = 20000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--serve" && i + 1 < argc) {
      serve_port = std::atoi(argv[++i]);
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_endpoint = argv[++i];
    } else if (arg == "-e" && i + 1 < argc) {
      statement = argv[++i];
    } else if (arg == "--tenant" && i + 1 < argc) {
      tenant = argv[++i];
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      deadline_ms = std::atoll(argv[++i]);
    } else if (!arg.empty() && arg[0] != '-') {
      num_carts = std::atoll(arg.c_str());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }

  // Client mode needs no local engine at all.
  if (!connect_endpoint.empty()) {
    if (statement.empty()) {
      std::fprintf(stderr, "--connect requires -e \"<sql>\"\n");
      return 1;
    }
    return RunClient(connect_endpoint, statement, tenant, deadline_ms);
  }

  ScopedTempDir workspace("sql_shell");
  auto cluster = Cluster::Make(4, workspace.path());
  if (!cluster.ok()) return 1;
  SqlEnginePtr engine = SqlEngine::Make(*cluster);
  if (!RegisterTransformUdfs(engine.get()).ok()) return 1;

  CartsWorkloadOptions data;
  data.num_users = num_carts / 10;
  data.num_carts = num_carts;
  if (!GenerateCartsWorkload(engine.get(), data).ok()) return 1;

  // Server mode: admission-gated concurrent serving; /healthz flips to 503
  // when the admission queue saturates.
  std::unique_ptr<QueryServer> query_server;
  if (serve_port >= 0) {
    QueryServer::Options server_options;
    server_options.port = serve_port;
    server_options.admission = AdmissionOptions::FromEnv();
    auto started = QueryServer::Start(engine.get(), server_options);
    if (!started.ok()) {
      std::fprintf(stderr, "query server: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    query_server = std::move(*started);
  }

  // SQLINK_OPS_PORT=<port> exposes /metrics, /queries, /tracez while the
  // shell runs; in server mode /healthz reflects admission saturation.
  Result<std::unique_ptr<OpsServer>> ops = std::unique_ptr<OpsServer>();
  if (const char* env = std::getenv("SQLINK_OPS_PORT");
      env != nullptr && *env != '\0') {
    OpsServer::Options ops_options;
    ops_options.port = std::atoi(env);
    if (query_server != nullptr) {
      AdmissionController* admission = query_server->admission();
      ops_options.health_hook = [admission]() {
        OpsServer::Health health;
        if (admission->saturated()) {
          health.healthy = false;
          health.reason_json =
              "{\"reason\":\"admission queue saturated\",\"admission\":" +
              admission->StatsJson() + "}";
        }
        return health;
      };
    }
    ops = OpsServer::Start(ops_options);
  }
  if (!ops.ok()) {
    std::fprintf(stderr, "ops server: %s\n", ops.status().ToString().c_str());
    return 1;
  }
  if (*ops != nullptr) {
    std::printf("ops server on http://127.0.0.1:%d (/metrics /queries "
                "/tracez /healthz)\n",
                (*ops)->port());
  }

  if (query_server != nullptr) {
    // Machine-readable first (CI greps it), prose after.
    std::printf("SERVE_PORT=%d\n", query_server->port());
    std::printf("query server on 127.0.0.1:%d — tables: carts (%lld rows), "
                "users (%lld rows)\nmax_concurrent=%d queue_cap=%zu; EOF or "
                "\"quit\" stops the server.\n",
                query_server->port(),
                static_cast<long long>(data.num_carts),
                static_cast<long long>(data.num_users),
                query_server->admission()->options().max_concurrent,
                query_server->admission()->options().queue_capacity);
    std::fflush(stdout);
    std::string line;
    while (std::getline(std::cin, line)) {
      if (TrimWhitespace(line) == "quit") break;
    }
    query_server->Stop();
    return 0;
  }

  if (!statement.empty()) {
    RunStatement(engine.get(), StripTrailingSemicolon(statement));
    return 0;
  }

  std::printf("sqlink shell — tables: carts (%lld rows), users (%lld rows)\n"
              "End statements with ';'. \\tables lists tables, \\quit exits.\n",
              static_cast<long long>(data.num_carts),
              static_cast<long long>(data.num_users));

  std::string buffer;
  std::string line;
  std::printf("sqlink> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    const std::string trimmed(TrimWhitespace(line));
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '\\') {
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      HandleCommand(engine.get(), trimmed);
      std::printf("sqlink> ");
      std::fflush(stdout);
      continue;
    }
    buffer += line;
    buffer += " ";
    const std::string so_far(TrimWhitespace(buffer));
    if (!so_far.empty() && so_far.back() == ';') {
      RunStatement(engine.get(), so_far.substr(0, so_far.size() - 1));
      buffer.clear();
    }
    std::printf(buffer.empty() ? "sqlink> " : "   ...> ");
    std::fflush(stdout);
  }
  return 0;
}
