// Serving benchmark (ISSUE 8): throughput and tail latency of the
// admission-gated query server at 1/4/16/64 concurrent clients, all
// hammering one shared engine through the wire protocol (one query per
// connection, exactly what `sql_shell --connect` does).
//
// The interesting property is graceful concurrency: with admission control
// holding max_concurrent at the engine's parallelism, stacking more clients
// queues them fairly instead of thrashing the engine — aggregate goodput
// must hold (not collapse) as concurrency climbs past the admitted window.
//
// `bench_serving [rows]` prints the table; with SQLINK_BENCH_JSON set, one
// JSON line per concurrency level is emitted. `--smoke` shrinks the
// workload for CI; `--check` exits non-zero when goodput at 16 concurrent
// clients drops below 90% of the single-client baseline or any query fails.

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "serving/admission.h"
#include "serving/query_server.h"

using namespace sqlink;
using sqlink::bench::BenchEnv;

namespace {

struct LoadResult {
  double wall_s = 0;
  std::vector<double> latencies_ms;
  int failures = 0;

  double qps() const {
    return wall_s > 0 ? static_cast<double>(latencies_ms.size()) / wall_s : 0;
  }
  double Percentile(double p) const {
    if (latencies_ms.empty()) return 0;
    std::vector<double> sorted = latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    const size_t index = std::min(
        sorted.size() - 1,
        static_cast<size_t>(p * static_cast<double>(sorted.size())));
    return sorted[index];
  }
};

/// `concurrency` client threads drain a shared counter of `total_queries`
/// one-shot connections against the server.
LoadResult RunLoad(int port, int concurrency, int total_queries,
                   const std::string& sql) {
  LoadResult result;
  std::mutex mu;
  std::atomic<int> next{0};
  std::atomic<int> failures{0};
  Stopwatch wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&] {
      std::vector<double> local;
      while (next.fetch_add(1) < total_queries) {
        Stopwatch latency;
        auto client = QueryClient::Connect("127.0.0.1", port);
        if (!client.ok()) {
          ++failures;
          continue;
        }
        auto response = client->Execute(sql, /*tenant=*/"bench");
        if (!response.ok()) {
          ++failures;
          continue;
        }
        local.push_back(latency.ElapsedMicros() / 1000.0);
      }
      std::lock_guard<std::mutex> lock(mu);
      result.latencies_ms.insert(result.latencies_ms.end(), local.begin(),
                                 local.end());
    });
  }
  for (std::thread& client : clients) client.join();
  result.wall_s = wall.ElapsedSeconds();
  result.failures = failures.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  int64_t rows = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      rows = std::atoll(argv[i]);
    }
  }
  if (rows == 0) rows = smoke ? 20000 : 200000;

  auto env = BenchEnv::Make(rows);
  QueryServer::Options server_options;
  server_options.port = 0;
  server_options.admission.max_concurrent = 16;
  server_options.admission.queue_capacity = 128;
  server_options.admission.queue_timeout_ms = 120000;
  auto server = QueryServer::Start(env->engine.get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }
  const int port = (*server)->port();
  const std::string sql =
      "SELECT year, COUNT(*), SUM(amount) FROM carts GROUP BY year";
  const int total_queries = smoke ? 64 : 256;

  std::printf("=== serving: concurrent clients vs goodput ===\n");
  std::printf("rows: %lld, queries per level: %d, max_concurrent: %d\n\n",
              static_cast<long long>(rows), total_queries,
              server_options.admission.max_concurrent);
  std::printf("%12s %10s %10s %10s %10s %9s\n", "concurrency", "qps",
              "p50(ms)", "p99(ms)", "wall(s)", "failures");

  double qps_at_1 = 0;
  double qps_at_16 = 0;
  for (int concurrency : {1, 4, 16, 64}) {
    MetricsRegistry::Global().Reset();
    LoadResult load = RunLoad(port, concurrency, total_queries, sql);
    if (concurrency == 1) qps_at_1 = load.qps();
    if (concurrency == 16) qps_at_16 = load.qps();
    std::printf("%12d %10.1f %10.2f %10.2f %10.3f %9d\n", concurrency,
                load.qps(), load.Percentile(0.50), load.Percentile(0.99),
                load.wall_s, load.failures);
    sqlink::bench::BenchJsonLine("serving")
        .Param("rows", rows)
        .Param("concurrency", static_cast<int64_t>(concurrency))
        .Param("queries", static_cast<int64_t>(total_queries))
        .Param("qps", load.qps())
        .Param("p50_ms", load.Percentile(0.50))
        .Param("p99_ms", load.Percentile(0.99))
        .Param("failures", static_cast<int64_t>(load.failures))
        .Param("smoke", smoke)
        .Emit(load.wall_s * 1000.0);
    if (check && load.failures > 0) {
      std::fprintf(stderr, "--check: %d failed queries at concurrency %d\n",
                   load.failures, concurrency);
      return 1;
    }
  }
  (*server)->Stop();

  const double goodput_ratio = qps_at_1 > 0 ? qps_at_16 / qps_at_1 : 0;
  std::printf("\ngoodput at 16 vs 1: %.2fx\n", goodput_ratio);
  if (check && goodput_ratio < 0.9) {
    std::fprintf(stderr,
                 "--check: goodput at 16 concurrent is %.2fx of the "
                 "single-client baseline (< 0.90x)\n",
                 goodput_ratio);
    return 1;
  }
  return 0;
}
