#include "table/csv.h"

namespace sqlink {

namespace {

bool NeedsQuoting(std::string_view text, char delimiter) {
  for (char c : text) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

void CsvCodec::AppendField(std::string_view text, bool quote_empty,
                           std::string* out) const {
  if (text.empty()) {
    if (quote_empty) *out += "\"\"";
    return;
  }
  if (!NeedsQuoting(text, delimiter_)) {
    out->append(text);
    return;
  }
  out->push_back('"');
  for (char c : text) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

std::string CsvCodec::FormatRow(const Row& row) const {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(delimiter_);
    const Value& v = row[i];
    // Distinguish NULL (empty, unquoted) from empty string (quoted).
    const bool quote_empty = v.is_string();
    AppendField(v.ToString(), quote_empty && !v.is_null(), &out);
  }
  return out;
}

void CsvCodec::AppendRow(const Row& row, std::string* out) const {
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out->push_back(delimiter_);
    const Value& v = row[i];
    const bool quote_empty = v.is_string();
    AppendField(v.ToString(), quote_empty && !v.is_null(), out);
  }
  out->push_back('\n');
}

Result<Row> CsvCodec::ParseRow(std::string_view line,
                               const Schema& schema) const {
  Row row;
  row.reserve(static_cast<size_t>(schema.num_fields()));
  size_t pos = 0;
  int field_index = 0;
  const size_t n = line.size();
  while (field_index < schema.num_fields()) {
    std::string field;
    bool quoted = false;
    if (pos < n && line[pos] == '"') {
      quoted = true;
      ++pos;
      while (pos < n) {
        if (line[pos] == '"') {
          if (pos + 1 < n && line[pos + 1] == '"') {
            field.push_back('"');
            pos += 2;
          } else {
            ++pos;  // Closing quote.
            break;
          }
        } else {
          field.push_back(line[pos]);
          ++pos;
        }
      }
    } else {
      const size_t next = line.find(delimiter_, pos);
      const size_t end = (next == std::string_view::npos) ? n : next;
      field.assign(line.substr(pos, end - pos));
      pos = end;
    }
    // Consume the delimiter following this field, if any.
    bool had_delimiter = false;
    if (pos < n && line[pos] == delimiter_) {
      ++pos;
      had_delimiter = true;
    }

    const DataType type = schema.field(field_index).type;
    if (field.empty() && quoted && type == DataType::kString) {
      row.push_back(Value::String(""));
    } else {
      auto value = Value::Parse(field, type);
      if (!value.ok()) {
        return value.status().WithContext("field " +
                                          schema.field(field_index).name);
      }
      row.push_back(std::move(*value));
    }
    ++field_index;
    if (field_index < schema.num_fields() && !had_delimiter && pos >= n) {
      return Status::ParseError("too few fields in line: " +
                                std::string(line));
    }
  }
  if (pos < n) {
    return Status::ParseError("too many fields in line: " + std::string(line));
  }
  return row;
}

}  // namespace sqlink
