#ifndef SQLINK_COMMON_STRING_UTIL_H_
#define SQLINK_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace sqlink {

/// Splits on a single-character delimiter. Adjacent delimiters produce empty
/// fields; an empty input produces one empty field (CSV semantics).
std::vector<std::string> SplitString(std::string_view input, char delimiter);

/// Joins with a delimiter string.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delimiter);

/// Removes ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view input);

std::string ToLowerAscii(std::string_view input);
std::string ToUpperAscii(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Case-insensitive ASCII comparison (SQL keywords/identifiers).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Strict integer / double parsers: the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view text);
Result<double> ParseDouble(std::string_view text);

/// Integer environment knob: the variable's value when set and parseable,
/// `fallback` otherwise (used for SQLINK_HEARTBEAT_MS-style defaults).
int64_t EnvInt64(const char* name, int64_t fallback);

/// Human-readable byte count, e.g. "1.5 MiB".
std::string FormatBytes(uint64_t bytes);

/// Fixed-point seconds with 3 decimals, e.g. "12.345s".
std::string FormatSeconds(double seconds);

}  // namespace sqlink

#endif  // SQLINK_COMMON_STRING_UTIL_H_
