// Ablation A7 (§6): the price of fault tolerance in the streaming
// transfer. Three configurations:
//   pipelined           — default mode, no recovery possible;
//   resilient           — retained logs, failure-free run (the overhead);
//   resilient + failure — one ML worker drops its connection mid-stream
//                         and recovers by replaying from the retained log.

#include <optional>
#include <string>

#include "bench_util.h"
#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "stream/streaming_transfer.h"

using namespace sqlink;
using sqlink::bench::BenchEnv;

int main(int argc, char** argv) {
  const int64_t rows = sqlink::bench::RowsArg(argc, argv, 300000);
  auto env = BenchEnv::Make(rows);
  auto table = env->engine->MaterializeSql(
      "SELECT cartid, amount, nitems, year FROM carts", "stream_src");
  if (!table.ok()) return 1;
  const size_t expected = (*table)->TotalRows();

  std::printf("=== A7: fault tolerance of the streaming transfer ===\n");
  std::printf("rows: %zu\n\n", expected);
  std::printf("%-22s %12s %12s %12s\n", "mode", "time(s)", "rows", "ok");

  auto run = [&](const char* name, bool resilient, bool inject) -> bool {
    StreamTransferOptions options;
    options.sink.resilient = resilient;
    options.reader.recovery_enabled = resilient;
    std::optional<ScopedFailpoint> fault;
    if (inject) {
      fault.emplace("stream.reader.row.split1",
                    "after(" + std::to_string(expected / 16 - 1) +
                        "):error(1)");
    }
    Stopwatch watch;
    auto result = StreamingTransfer::Run(env->engine.get(),
                                         "SELECT * FROM stream_src", options);
    const double seconds = watch.ElapsedSeconds();
    const bool ok = result.ok() && result->dataset.TotalRows() == expected;
    std::printf("%-22s %12.3f %12zu %12s\n", name, seconds,
                result.ok() ? result->dataset.TotalRows() : 0,
                ok ? "yes" : "NO");
    return ok;
  };

  bool all_ok = true;
  all_ok &= run("pipelined", false, false);
  all_ok &= run("resilient", true, false);
  all_ok &= run("resilient+failure", true, true);
  std::printf("\nreconnects observed: %lld\n",
              static_cast<long long>(
                  env->engine->metrics()->Get("stream.reconnects")));
  return all_ok ? 0 : 2;
}
