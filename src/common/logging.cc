#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

namespace sqlink {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Serializes writes so concurrent workers do not interleave lines.
std::mutex& LogMutex() {
  static std::mutex* const mutex = new std::mutex();
  return *mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?????";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto usecs = std::chrono::duration_cast<std::chrono::microseconds>(
                         now.time_since_epoch())
                         .count() %
                     1000000;
  std::tm tm_buf;
  localtime_r(&secs, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);

  // Basename only: full paths add noise.
  const char* base = std::strrchr(file_, '/');
  base = (base != nullptr) ? base + 1 : file_;

  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "[%s.%06lld %s %s:%d] %s\n", ts,
                 static_cast<long long>(usecs), LevelName(level_), base, line_,
                 stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace sqlink
