
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/coding.cc" "src/transform/CMakeFiles/sqlink_transform.dir/coding.cc.o" "gcc" "src/transform/CMakeFiles/sqlink_transform.dir/coding.cc.o.d"
  "/root/repo/src/transform/recode_map.cc" "src/transform/CMakeFiles/sqlink_transform.dir/recode_map.cc.o" "gcc" "src/transform/CMakeFiles/sqlink_transform.dir/recode_map.cc.o.d"
  "/root/repo/src/transform/transformer.cc" "src/transform/CMakeFiles/sqlink_transform.dir/transformer.cc.o" "gcc" "src/transform/CMakeFiles/sqlink_transform.dir/transformer.cc.o.d"
  "/root/repo/src/transform/udfs.cc" "src/transform/CMakeFiles/sqlink_transform.dir/udfs.cc.o" "gcc" "src/transform/CMakeFiles/sqlink_transform.dir/udfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/sqlink_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/sqlink_table.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sqlink_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sqlink_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
