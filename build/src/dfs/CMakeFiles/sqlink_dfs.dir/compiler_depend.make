# Empty compiler generated dependencies file for sqlink_dfs.
# This may be replaced when dependencies are built.
