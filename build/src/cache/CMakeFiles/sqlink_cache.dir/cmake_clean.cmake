file(REMOVE_RECURSE
  "CMakeFiles/sqlink_cache.dir/transform_cache.cc.o"
  "CMakeFiles/sqlink_cache.dir/transform_cache.cc.o.d"
  "libsqlink_cache.a"
  "libsqlink_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlink_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
