// SQL-engine microbenchmarks: per-operator throughput of the substrate the
// In-SQL transformations run on (google-benchmark). The engine fixture is
// built once and shared across benchmarks.
//
// `bench_sql --smoke [rows] [--check]` instead runs the row-vs-vectorized
// engine comparison on a join+filter+DISTINCT query (the ISSUE 6 acceptance
// workload): both modes are timed best-of-three, one JSON line per mode is
// emitted via SQLINK_BENCH_JSON, and --check exits non-zero when the
// vectorized engine is not at least 2x faster than the row engine.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>

#include "bench_util.h"
#include "common/runtime_flags.h"
#include "common/stopwatch.h"
#include "sql/engine.h"
#include "sql/query_registry.h"

namespace sqlink {
namespace {

using sqlink::bench::BenchEnv;

BenchEnv* Env() {
  static BenchEnv* const env = [] {
    return BenchEnv::Make(100000).release();
  }();
  return env;
}

void RunQuery(benchmark::State& state, const std::string& sql) {
  BenchEnv* env = Env();
  int64_t rows = 0;
  for (auto _ : state) {
    auto result = env->engine->ExecuteSql(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    rows += static_cast<int64_t>((*result)->TotalRows());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(rows);
}

void BM_Scan(benchmark::State& state) {
  RunQuery(state, "SELECT * FROM carts");
}
BENCHMARK(BM_Scan)->Unit(benchmark::kMillisecond);

void BM_FilterProject(benchmark::State& state) {
  RunQuery(state,
           "SELECT cartid, amount * 1.07 FROM carts WHERE amount > 250");
}
BENCHMARK(BM_FilterProject)->Unit(benchmark::kMillisecond);

void BM_BroadcastJoin(benchmark::State& state) {
  RunQuery(state,
           "SELECT U.age, C.amount FROM carts C, users U "
           "WHERE C.userid = U.userid");
}
BENCHMARK(BM_BroadcastJoin)->Unit(benchmark::kMillisecond);

void BM_Distinct(benchmark::State& state) {
  RunQuery(state, "SELECT DISTINCT abandoned, year FROM carts");
}
BENCHMARK(BM_Distinct)->Unit(benchmark::kMillisecond);

void BM_GroupByAggregate(benchmark::State& state) {
  RunQuery(state,
           "SELECT year, COUNT(*), AVG(amount) FROM carts GROUP BY year");
}
BENCHMARK(BM_GroupByAggregate)->Unit(benchmark::kMillisecond);

void BM_OrderByLimit(benchmark::State& state) {
  RunQuery(state,
           "SELECT cartid, amount FROM carts ORDER BY amount DESC LIMIT 100");
}
BENCHMARK(BM_OrderByLimit)->Unit(benchmark::kMillisecond);

void BM_RecodeLocalDistinctUdf(benchmark::State& state) {
  // The §2.1 phase-1 UDF: one parallel scan for two categorical columns.
  RunQuery(state,
           "SELECT DISTINCT colname, colval FROM "
           "TABLE(recode_local_distinct((SELECT * FROM carts), "
           "'abandoned'))");
}
BENCHMARK(BM_RecodeLocalDistinctUdf)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Smoke mode.

constexpr char kSmokeQuery[] =
    "SELECT DISTINCT U.age, U.gender, C.year, C.abandoned "
    "FROM carts C JOIN users U ON C.userid = U.userid "
    "WHERE C.amount > 50 AND U.country = 'USA'";

/// Best-of-three wall milliseconds for the smoke query under the current
/// engine mode; also reports the result cardinality for cross-checking.
double TimeSmoke(SqlEngine* engine, size_t* result_rows) {
  double best_ms = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    auto result = engine->ExecuteSql(kSmokeQuery);
    const double ms = watch.ElapsedSeconds() * 1000.0;
    if (!result.ok()) {
      std::fprintf(stderr, "smoke query: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    *result_rows = (*result)->TotalRows();
    best_ms = std::min(best_ms, ms);
  }
  return best_ms;
}

int RunSmoke(int64_t num_carts, bool check) {
  auto env = BenchEnv::Make(num_carts);
  std::printf("=== SQL engine: row vs vectorized (join+filter+DISTINCT) ===\n");
  std::printf("rows: %lld\nquery: %s\n\n", static_cast<long long>(num_carts),
              kSmokeQuery);
  std::printf("%-12s %12s %10s\n", "mode", "wall(ms)", "result");

  // Per-operator stats tree (rows/batches/time/q-error per plan node) of
  // the mode's most recent run, as recorded by the tracked query path.
  auto last_stats_json = [] {
    auto finished = QueryRegistry::Global().Finished();
    if (finished.empty() || finished[0]->stats == nullptr) {
      return std::string("null");
    }
    std::string out;
    finished[0]->stats->AppendJson(&out);
    return out;
  };

  size_t row_rows = 0;
  size_t vec_rows = 0;
  SetVectorizedSqlEnabledForTest(0);
  const double row_ms = TimeSmoke(env->engine.get(), &row_rows);
  const std::string row_stats = last_stats_json();
  SetVectorizedSqlEnabledForTest(1);
  const double vec_ms = TimeSmoke(env->engine.get(), &vec_rows);
  const std::string vec_stats = last_stats_json();
  SetVectorizedSqlEnabledForTest(-1);

  std::printf("%-12s %12.3f %10zu\n", "row", row_ms, row_rows);
  std::printf("%-12s %12.3f %10zu\n", "vectorized", vec_ms, vec_rows);
  if (row_rows != vec_rows) {
    std::fprintf(stderr, "result mismatch: row %zu vs vectorized %zu rows\n",
                 row_rows, vec_rows);
    return 1;
  }
  const double speedup = row_ms / vec_ms;
  std::printf("\nvectorized speedup: %.2fx\n", speedup);

  sqlink::bench::BenchJsonLine("sql.vectorized_smoke")
      .Param("mode", "row")
      .Param("rows", num_carts)
      .Param("result_rows", static_cast<int64_t>(row_rows))
      .JsonParam("operator_stats", row_stats)
      .Emit(row_ms);
  sqlink::bench::BenchJsonLine("sql.vectorized_smoke")
      .Param("mode", "vectorized")
      .Param("rows", num_carts)
      .Param("result_rows", static_cast<int64_t>(vec_rows))
      .Param("speedup", speedup)
      .JsonParam("operator_stats", vec_stats)
      .Emit(vec_ms);

  if (check && speedup < 2.0) {
    std::fprintf(stderr, "--check: vectorized speedup %.2fx < 2.0x\n",
                 speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sqlink

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  int64_t num_carts = 300000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (argv[i][0] != '-') {
      num_carts = std::atoll(argv[i]);
    }
  }
  if (smoke) return sqlink::RunSmoke(num_carts, check);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
