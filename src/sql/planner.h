#ifndef SQLINK_SQL_PLANNER_H_
#define SQLINK_SQL_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/expr.h"
#include "sql/plan.h"
#include "sql/table_udf.h"

namespace sqlink {

/// Turns a parsed SELECT into an executable plan:
///  - FROM entries become Scan / TableUdf / subquery plans;
///  - single-relation WHERE conjuncts are pushed below joins;
///  - comma joins become left-deep hash joins keyed on the equality
///    conjuncts that connect the sides (broadcast when the build side is
///    estimated small, repartition otherwise);
///  - GROUP BY / aggregate select lists become a two-phase Aggregate;
///  - DISTINCT / ORDER BY / LIMIT become their operators.
class Planner {
 public:
  Planner(const Catalog* catalog, const ScalarFunctionRegistry* scalars,
          const TableUdfRegistry* table_udfs, int num_partitions,
          double broadcast_threshold_rows = 500000);

  Result<PlanPtr> PlanSelect(const SelectStmt& stmt);

 private:
  struct RelationPlan {
    PlanPtr plan;
    NameScope scope;  // Relations in flat-row column order.
  };

  Result<RelationPlan> PlanTableRef(const TableRef& ref);
  Result<RelationPlan> PlanFromWhere(const SelectStmt& stmt);

  /// Evaluates a constant scalar expression (UDF literal arguments).
  Result<Value> EvaluateConstant(const Expr& expr);

  const Catalog* catalog_;
  const ScalarFunctionRegistry* scalars_;
  const TableUdfRegistry* table_udfs_;
  int num_partitions_;
  double broadcast_threshold_rows_;
};

}  // namespace sqlink

#endif  // SQLINK_SQL_PLANNER_H_
