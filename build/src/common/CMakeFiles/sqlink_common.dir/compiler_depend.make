# Empty compiler generated dependencies file for sqlink_common.
# This may be replaced when dependencies are built.
