// §7 ingest study: HDFS ingest of the transformed data versus streamed
// ingest, swept over dataset sizes. The paper reports the DFS read of the
// 5.6 GB transformed dataset at ~46 s, which the streaming transfer
// removes from the critical path.
//
// Series printed: rows, transformed bytes, DFS ingest seconds (read into
// the in-memory dataset), streamed ingest seconds (sink+transfer measured
// from an already-materialized table so the SQL work is identical).

#include "bench_util.h"
#include "common/stopwatch.h"
#include "ml/text_input_format.h"
#include "pipeline/table_io.h"
#include "stream/streaming_transfer.h"

using namespace sqlink;
using sqlink::bench::BenchEnv;

int main(int argc, char** argv) {
  const int64_t max_rows = sqlink::bench::RowsArg(argc, argv, 400000);

  std::printf("=== ML ingest: DFS files vs parallel streaming ===\n\n");
  std::printf("%12s %14s %16s %18s\n", "rows", "bytes", "dfs_ingest(s)",
              "stream_ingest(s)");

  for (int64_t rows = max_rows / 8; rows <= max_rows; rows *= 2) {
    auto env = BenchEnv::Make(rows);
    QueryRewriter rewriter(env->engine, nullptr);
    auto rewrite = rewriter.RewriteWithCache(BenchEnv::PaperRequest());
    if (!rewrite.ok()) return 1;
    // Materialize once; both ingest paths then read identical data.
    auto transformed = env->engine->MaterializeSql(rewrite->transformed_sql,
                                                   "transformed_input");
    if (!transformed.ok()) return 1;
    auto bytes =
        WriteTableToDfs(env->dfs.get(), **transformed, "ingest_input");
    if (!bytes.ok()) return 1;

    // DFS ingest.
    Stopwatch dfs_watch;
    ml::TextFileInputFormat format(env->dfs, "ingest_input",
                                   (*transformed)->schema());
    ml::JobContext context;
    context.cluster = env->cluster;
    ml::MlJobRunner runner(context);
    auto ingest = runner.Ingest(&format);
    if (!ingest.ok()) return 1;
    const double dfs_seconds = dfs_watch.ElapsedSeconds();

    // Streamed ingest of the same table.
    Stopwatch stream_watch;
    auto streamed = StreamingTransfer::Run(
        env->engine.get(), "SELECT * FROM transformed_input");
    if (!streamed.ok()) return 1;
    const double stream_seconds = stream_watch.ElapsedSeconds();

    if (streamed->dataset.TotalRows() != ingest->dataset.TotalRows()) {
      std::fprintf(stderr, "row count mismatch\n");
      return 1;
    }
    std::printf("%12lld %14llu %16.3f %18.3f\n",
                static_cast<long long>((*transformed)->TotalRows()),
                static_cast<unsigned long long>(*bytes), dfs_seconds,
                stream_seconds);
  }
  return 0;
}
