#ifndef SQLINK_PIPELINE_TABLE_IO_H_
#define SQLINK_PIPELINE_TABLE_IO_H_

#include <string>

#include "common/result.h"
#include "dfs/dfs.h"
#include "table/table.h"

namespace sqlink {

/// Writes a partitioned table to DFS as CSV part files, one per partition,
/// each with its first replica on the partition's node (the way an MPP
/// engine exports query results to HDFS). Returns total bytes written
/// before replication.
Result<uint64_t> WriteTableToDfs(Dfs* dfs, const Table& table,
                                 const std::string& path_prefix);

/// Reads CSV part files under `path_prefix` back into a table partitioned
/// like the original export (tests and verification).
Result<TablePtr> ReadTableFromDfs(const Dfs& dfs, const std::string& name,
                                  SchemaPtr schema,
                                  const std::string& path_prefix);

}  // namespace sqlink

#endif  // SQLINK_PIPELINE_TABLE_IO_H_
