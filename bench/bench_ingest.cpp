// §7 ingest study: HDFS ingest of the transformed data versus streamed
// ingest, swept over dataset sizes. The paper reports the DFS read of the
// 5.6 GB transformed dataset at ~46 s, which the streaming transfer
// removes from the critical path.
//
// Series printed: rows, transformed bytes, DFS ingest seconds (read into
// the in-memory dataset), streamed ingest seconds (sink+transfer measured
// from an already-materialized table so the SQL work is identical).
//
// A second mode (--check, also run standalone) isolates the receive side of
// the transfer: the same frames decoded row-wise (RowCodec + boxed Values +
// Dataset::FromRows) versus columnar (kColData decode + ColumnBatch append +
// Dataset::FromColumns). With SQLINK_BENCH_JSON set it emits one JSON line
// per mode; --check exits non-zero when columnar fails to beat rows.

#include <cstring>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "ml/text_input_format.h"
#include "pipeline/table_io.h"
#include "stream/streaming_transfer.h"
#include "stream/wire.h"
#include "table/column_batch.h"
#include "table/row_codec.h"

using namespace sqlink;
using sqlink::bench::BenchEnv;

namespace {

constexpr int kPartitions = 4;
constexpr size_t kFrameRows = 4096;

/// Frame-decode → feature-matrix comparison over identical payload bytes.
int RunDecodeToDataset(int64_t num_rows, bool check) {
  auto schema = Schema::Make({{"label", DataType::kInt64},
                              {"f1", DataType::kDouble},
                              {"f2", DataType::kDouble},
                              {"f3", DataType::kDouble},
                              {"f4", DataType::kDouble},
                              {"f5", DataType::kDouble},
                              {"f6", DataType::kDouble}});
  Random rng(29);
  // Pre-encode both wire representations of the same rows, split into
  // kPartitions channels of kFrameRows-row frames — the shape the reader
  // sees off the socket. Decode + materialization is what's timed.
  std::vector<std::vector<std::string>> row_frames(kPartitions);
  std::vector<std::vector<std::string>> col_frames(kPartitions);
  for (int p = 0; p < kPartitions; ++p) {
    ColumnarChannelEncoder encoder(schema);
    const int64_t part_rows = num_rows / kPartitions;
    for (int64_t start = 0; start < part_rows;
         start += static_cast<int64_t>(kFrameRows)) {
      const size_t n = static_cast<size_t>(
          std::min<int64_t>(static_cast<int64_t>(kFrameRows),
                            part_rows - start));
      std::vector<Row> rows;
      rows.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        Row row;
        row.push_back(Value::Int64(rng.UniformInt(0, 1)));
        for (int f = 0; f < 6; ++f) {
          row.push_back(Value::Double(rng.NextDouble()));
        }
        rows.push_back(std::move(row));
      }
      row_frames[p].push_back(RowCodec::EncodeRows(rows));
      auto batch = ColumnBatch::FromRows(schema, rows);
      if (!batch.ok()) return 1;
      std::string payload;
      if (!encoder.EncodeBatch(*batch, &payload).ok()) return 1;
      col_frames[p].push_back(std::move(payload));
    }
  }

  // Row path: decode every frame into boxed Rows, then gather features.
  double row_ms = 1e18;
  size_t row_points = 0;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    ml::RowDataset dataset;
    dataset.schema = schema;
    dataset.partitions.resize(kPartitions);
    for (int p = 0; p < kPartitions; ++p) {
      for (const std::string& payload : row_frames[p]) {
        auto rows = RowCodec::DecodeRows(payload);
        if (!rows.ok()) return 1;
        auto& partition = dataset.partitions[static_cast<size_t>(p)];
        partition.reserve(partition.size() + rows->size());
        for (Row& row : *rows) partition.push_back(std::move(row));
      }
    }
    auto points = ml::Dataset::FromRowsAutoFeatures(dataset, "label");
    if (!points.ok()) return 1;
    row_points = points->TotalPoints();
    row_ms = std::min(row_ms, watch.ElapsedSeconds() * 1000.0);
  }

  // Columnar path: decode kColData payloads straight into ColumnBatches.
  double col_ms = 1e18;
  size_t col_points = 0;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    ml::ColumnDataset dataset;
    dataset.schema = schema;
    dataset.partitions.resize(kPartitions);
    for (int p = 0; p < kPartitions; ++p) {
      dataset.partitions[static_cast<size_t>(p)].Reset(schema);
      ColumnarChannelDecoder decoder;
      ColumnBatch scratch;
      for (const std::string& payload : col_frames[p]) {
        if (!decoder.DecodeBatch(payload, schema, &scratch).ok()) return 1;
        if (!dataset.partitions[static_cast<size_t>(p)]
                 .AppendBatch(scratch)
                 .ok()) {
          return 1;
        }
      }
    }
    auto points = ml::Dataset::FromColumnsAutoFeatures(dataset, "label");
    if (!points.ok()) return 1;
    col_points = points->TotalPoints();
    col_ms = std::min(col_ms, watch.ElapsedSeconds() * 1000.0);
  }
  if (row_points != col_points) {
    std::fprintf(stderr, "point count mismatch\n");
    return 1;
  }

  const auto total = static_cast<double>(row_points);
  const double row_rate = total / row_ms * 1000.0;
  const double col_rate = total / col_ms * 1000.0;
  const double speedup = row_ms / col_ms;
  std::printf("=== Frame decode -> feature matrix ===\n");
  std::printf("rows: %zu, partitions: %d, frame rows: %zu\n\n", row_points,
              kPartitions, kFrameRows);
  std::printf("%-10s %12s %16s\n", "mode", "wall(ms)", "rows/sec");
  std::printf("%-10s %12.3f %16.0f\n", "row", row_ms, row_rate);
  std::printf("%-10s %12.3f %16.0f\n", "columnar", col_ms, col_rate);
  std::printf("\ncolumnar speedup: %.2fx\n\n", speedup);

  sqlink::bench::BenchJsonLine("ingest.decode_to_dataset")
      .Param("mode", "row")
      .Param("rows", static_cast<int64_t>(row_points))
      .Param("rows_per_sec", row_rate)
      .Emit(row_ms);
  sqlink::bench::BenchJsonLine("ingest.decode_to_dataset")
      .Param("mode", "columnar")
      .Param("rows", static_cast<int64_t>(col_points))
      .Param("rows_per_sec", col_rate)
      .Param("speedup", speedup)
      .Emit(col_ms);

  if (check && speedup < 1.0) {
    std::fprintf(stderr, "CHECK FAILED: columnar slower than row path\n");
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  int64_t max_rows = 400000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      max_rows = std::atoll(argv[i]);
    }
  }
  const int decode_rc = RunDecodeToDataset(max_rows, check);
  if (decode_rc != 0 || check) return decode_rc;

  std::printf("=== ML ingest: DFS files vs parallel streaming ===\n\n");
  std::printf("%12s %14s %16s %18s\n", "rows", "bytes", "dfs_ingest(s)",
              "stream_ingest(s)");

  for (int64_t rows = max_rows / 8; rows <= max_rows; rows *= 2) {
    auto env = BenchEnv::Make(rows);
    QueryRewriter rewriter(env->engine, nullptr);
    auto rewrite = rewriter.RewriteWithCache(BenchEnv::PaperRequest());
    if (!rewrite.ok()) return 1;
    // Materialize once; both ingest paths then read identical data.
    auto transformed = env->engine->MaterializeSql(rewrite->transformed_sql,
                                                   "transformed_input");
    if (!transformed.ok()) return 1;
    auto bytes =
        WriteTableToDfs(env->dfs.get(), **transformed, "ingest_input");
    if (!bytes.ok()) return 1;

    // DFS ingest.
    Stopwatch dfs_watch;
    ml::TextFileInputFormat format(env->dfs, "ingest_input",
                                   (*transformed)->schema());
    ml::JobContext context;
    context.cluster = env->cluster;
    ml::MlJobRunner runner(context);
    auto ingest = runner.Ingest(&format);
    if (!ingest.ok()) return 1;
    const double dfs_seconds = dfs_watch.ElapsedSeconds();

    // Streamed ingest of the same table.
    Stopwatch stream_watch;
    auto streamed = StreamingTransfer::Run(
        env->engine.get(), "SELECT * FROM transformed_input");
    if (!streamed.ok()) return 1;
    const double stream_seconds = stream_watch.ElapsedSeconds();

    if (streamed->dataset.TotalRows() != ingest->dataset.TotalRows()) {
      std::fprintf(stderr, "row count mismatch\n");
      return 1;
    }
    std::printf("%12lld %14llu %16.3f %18.3f\n",
                static_cast<long long>((*transformed)->TotalRows()),
                static_cast<unsigned long long>(*bytes), dfs_seconds,
                stream_seconds);
  }
  return 0;
}
