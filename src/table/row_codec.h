#ifndef SQLINK_TABLE_ROW_CODEC_H_
#define SQLINK_TABLE_ROW_CODEC_H_

#include <string>
#include <string_view>

#include "common/coding.h"
#include "common/result.h"
#include "table/schema.h"
#include "table/value.h"

namespace sqlink {

/// Compact binary row encoding used by the streaming wire format and spill
/// files. Each value is a 1-byte tag (0 = NULL, otherwise DataType+1)
/// followed by the payload: bool as 1 byte, int64 as signed varint, double
/// as fixed 8 bytes, string length-prefixed.
class RowCodec {
 public:
  /// Appends one encoded row (field count + values) to the buffer.
  static void Encode(const Row& row, std::string* out);

  /// Decodes one row from the cursor.
  static Result<Row> Decode(Decoder* decoder);

  /// Convenience round-trip helpers for whole batches.
  static std::string EncodeRows(const std::vector<Row>& rows);
  static Result<std::vector<Row>> DecodeRows(std::string_view data);
};

}  // namespace sqlink

#endif  // SQLINK_TABLE_ROW_CODEC_H_
