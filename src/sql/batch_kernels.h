#ifndef SQLINK_SQL_BATCH_KERNELS_H_
#define SQLINK_SQL_BATCH_KERNELS_H_

#include <cstdint>
#include <vector>

#include "table/column_batch.h"

namespace sqlink {

/// Builds a selection vector from an evaluated predicate column: the indices
/// of rows whose value is boolean TRUE, in row order. SQL filter semantics —
/// NULL and FALSE drop the row; a non-bool predicate column selects nothing
/// (the row engine's IsTruthy treats non-bool values as false).
void FilterToSelection(const Column& pred, size_t num_rows,
                       std::vector<int32_t>* sel);

/// Hash of one batch row, equal for rows BatchRowsEqual deems equal even
/// across batches with different dictionaries (string values hash by
/// content, NULLs by a fixed constant, +/-0.0 alike). Internally consistent
/// only — not comparable with HashRowKey on boxed rows.
uint64_t BatchRowHash(const ColumnBatch& batch, size_t row);

/// Exact row equality across batches of the same schema: NULL == NULL, and
/// non-null values compare by typed payload (dictionary strings by content).
bool BatchRowsEqual(const ColumnBatch& a, size_t ra, const ColumnBatch& b,
                    size_t rb);

}  // namespace sqlink

#endif  // SQLINK_SQL_BATCH_KERNELS_H_
