#include "dfs/line_reader.h"

#include "common/failpoint.h"

namespace sqlink {

DfsLineReader::DfsLineReader(std::unique_ptr<DfsReader> reader, uint64_t start,
                             uint64_t end, size_t io_buffer_size)
    : reader_(std::move(reader)),
      end_(end),
      io_buffer_size_(io_buffer_size == 0 ? 1 : io_buffer_size),
      position_(start),
      consumed_(start),
      skip_first_(start > 0),
      buffer_file_offset_(start) {}

bool DfsLineReader::Refill() {
  if (!status_.ok()) return false;
  if (SQLINK_FAILPOINT("dfs.line_reader.read") != FailpointOutcome::kNone) {
    status_ = Status::IoError("failpoint: injected read error");
    return false;
  }
  buffer_file_offset_ = position_;
  const Status status = reader_->ReadAt(position_, io_buffer_size_, &buffer_);
  if (!status.ok()) {
    status_ = status;
    return false;
  }
  position_ += buffer_.size();
  buffer_pos_ = 0;
  return !buffer_.empty();
}

bool DfsLineReader::ReadLineRaw(std::string* line) {
  line->clear();
  for (;;) {
    if (buffer_pos_ >= buffer_.size()) {
      if (!Refill()) break;  // EOF or error.
    }
    const size_t nl = buffer_.find('\n', buffer_pos_);
    if (nl == std::string::npos) {
      line->append(buffer_, buffer_pos_, buffer_.size() - buffer_pos_);
      buffer_pos_ = buffer_.size();
    } else {
      line->append(buffer_, buffer_pos_, nl - buffer_pos_);
      buffer_pos_ = nl + 1;
      return true;
    }
  }
  // EOF: emit a final unterminated line if we accumulated anything.
  return status_.ok() && !line->empty();
}

bool DfsLineReader::Next(std::string* line) {
  if (done_ || !status_.ok()) return false;
  if (skip_first_) {
    // This split starts mid-file: the bytes up to the first newline belong
    // to the previous split's last line (Hadoop TextInputFormat semantics).
    skip_first_ = false;
    std::string discarded;
    if (!ReadLineRaw(&discarded)) {
      done_ = true;
      return false;
    }
  }
  const uint64_t line_start = buffer_file_offset_ + buffer_pos_;
  if (line_start > end_) {
    // The line starting past `end` belongs to the next split. A line
    // starting exactly at `end` is ours (the next split skips it).
    done_ = true;
    return false;
  }
  consumed_ = line_start;
  if (!ReadLineRaw(line)) {
    done_ = true;
    return false;
  }
  return true;
}

}  // namespace sqlink
