#ifndef SQLINK_ML_TEXT_INPUT_FORMAT_H_
#define SQLINK_ML_TEXT_INPUT_FORMAT_H_

#include <memory>
#include <string>
#include <vector>

#include "dfs/dfs.h"
#include "ml/input_format.h"
#include "table/csv.h"

namespace sqlink::ml {

/// A byte range of one DFS file, with the replica nodes of its first block
/// as locality hints — Hadoop FileSplit semantics.
class FileSplit final : public InputSplit {
 public:
  FileSplit(std::string path, uint64_t start, uint64_t end,
            std::vector<std::string> locations)
      : path_(std::move(path)),
        start_(start),
        end_(end),
        locations_(std::move(locations)) {}

  const std::string& path() const { return path_; }
  uint64_t start() const { return start_; }
  uint64_t end() const { return end_; }

  std::vector<std::string> Locations() const override { return locations_; }
  std::string DebugString() const override {
    return path_ + "[" + std::to_string(start_) + "," + std::to_string(end_) +
           ")";
  }

 private:
  std::string path_;
  uint64_t start_;
  uint64_t end_;
  std::vector<std::string> locations_;
};

/// Reads '\n'-delimited text rows from DFS files under a path prefix — the
/// baseline ingestion path ("input for ml" reading from HDFS in Figure 3).
/// Splits follow block boundaries so workers read mostly-local data; lines
/// straddling a boundary belong to the split that contains their first byte
/// (standard TextInputFormat semantics, implemented by DfsLineReader).
class TextFileInputFormat final : public InputFormat {
 public:
  /// `path` is a DFS file or directory prefix; `schema` types the columns.
  TextFileInputFormat(DfsPtr dfs, std::string path, SchemaPtr schema,
                      char delimiter = ',');

  Result<std::vector<InputSplitPtr>> GetSplits(
      const JobContext& context) override;

  Result<std::unique_ptr<RecordReader>> CreateReader(
      const JobContext& context, const InputSplit& split,
      int worker_id) override;

  SchemaPtr schema() const override { return schema_; }

 private:
  DfsPtr dfs_;
  std::string path_;
  SchemaPtr schema_;
  CsvCodec codec_;
};

}  // namespace sqlink::ml

#endif  // SQLINK_ML_TEXT_INPUT_FORMAT_H_
