# Empty compiler generated dependencies file for sqlink_transform.
# This may be replaced when dependencies are built.
