#ifndef SQLINK_STREAM_STREAMING_TRANSFER_H_
#define SQLINK_STREAM_STREAMING_TRANSFER_H_

#include <string>

#include "ml/job.h"
#include "sql/engine.h"
#include "stream/sql_stream_input_format.h"
#include "stream/stream_sink_udf.h"

namespace sqlink {

struct StreamTransferOptions {
  /// k in m = n·k — ML workers per SQL worker.
  int splits_per_worker = 1;
  StreamSinkOptions sink;
  StreamReaderOptions reader;
  /// §6: how many times one split may be handed to a replacement reader
  /// before the coordinator aborts the query.
  int max_split_reassignments = 3;
  /// Command string passed through the coordinator to the ML launcher (the
  /// paper's "command and arguments to invoke the desired ML algorithm").
  std::string command = "ingest";
  /// Serving-layer options threaded into the engine run: cooperative
  /// cancellation (a cancel also aborts the transfer's coordinator so
  /// readers and replay state unwind promptly), the per-query spill quota,
  /// and tenant attribution. See QueryOptions.
  QueryOptions query;
};

/// Outcome of one end-to-end streaming transfer.
struct StreamTransferResult {
  ml::RowDataset dataset;
  ml::IngestStats stats;
  int64_t rows_sent = 0;
  int64_t bytes_sent = 0;
  int64_t spilled_frames = 0;
};

/// Outcome of a columnar end-to-end transfer: partitions land as
/// ColumnBatches, ready for Dataset::FromColumns.
struct ColumnTransferResult {
  ml::ColumnDataset dataset;
  ml::IngestStats stats;
  int64_t rows_sent = 0;
  int64_t bytes_sent = 0;
  int64_t spilled_frames = 0;
};

/// Runs the complete §3 flow for one query: starts a coordinator, executes
/// the query wrapped in the sql_stream_sink UDF on the SQL engine, lets the
/// coordinator launch an ML ingestion job that reads through
/// SqlStreamInputFormat, and returns the in-memory dataset. The SQL scan,
/// transformation and ML ingest all overlap — the paper's fully pipelined
/// prep+trsfm+input configuration — and nothing touches the filesystem
/// (except spill under backpressure).
class StreamingTransfer {
 public:
  /// The rewritten SQL invoking the sink UDF (exposed for the rewriter).
  static std::string BuildSinkSql(const std::string& query_sql,
                                  const std::string& coordinator_host,
                                  int coordinator_port,
                                  const std::string& command,
                                  const StreamSinkOptions& sink);

  /// Executes `query_sql` on `engine` and streams its result into a
  /// RowDataset.
  static Result<StreamTransferResult> Run(SqlEngine* engine,
                                          const std::string& query_sql,
                                          const StreamTransferOptions& options = {});

  /// Same flow, but the ML job ingests columnar: with SQLINK_COLUMNAR on,
  /// decoded kColData frames append straight into per-partition
  /// ColumnBatches with no intermediate Row materialization.
  static Result<ColumnTransferResult> RunToColumns(
      SqlEngine* engine, const std::string& query_sql,
      const StreamTransferOptions& options = {});
};

}  // namespace sqlink

#endif  // SQLINK_STREAM_STREAMING_TRANSFER_H_
