file(REMOVE_RECURSE
  "CMakeFiles/bench_recode_strategies.dir/bench_recode_strategies.cpp.o"
  "CMakeFiles/bench_recode_strategies.dir/bench_recode_strategies.cpp.o.d"
  "bench_recode_strategies"
  "bench_recode_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recode_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
