#ifndef SQLINK_STREAM_STREAM_SINK_UDF_H_
#define SQLINK_STREAM_STREAM_SINK_UDF_H_

#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "sql/engine.h"
#include "sql/table_udf.h"

namespace sqlink {

/// Tuning knobs of the streaming transfer ("the sizes of the buffers are
/// controllable system parameters").
struct StreamSinkOptions {
  size_t send_buffer_bytes = 4096;  ///< Paper experiments use 4 KB.
  bool spill_enabled = true;        ///< Spill to local disk when a consumer lags.
  bool resilient = false;           ///< §6: serve reconnecting/replacement readers.
  /// How long a sender waits for an ML worker to (re)connect before giving
  /// up. Short values keep failure tests fast.
  int reconnect_timeout_ms = 30000;
  /// Sink lease renewal interval; <= 0 disables heartbeats — the
  /// coordinator then cannot detect a dead SQL worker.
  int heartbeat_ms = static_cast<int>(EnvInt64("SQLINK_HEARTBEAT_MS", 0));
  /// In-memory budget of each sender's replay window; unacked frames beyond
  /// it spill to disk.
  size_t replay_window_bytes = static_cast<size_t>(
      EnvInt64("SQLINK_REPLAY_WINDOW_BYTES", 1 << 20));

  /// Parses the optional trailing UDF arguments (buffer_bytes, spill 0/1,
  /// resilient 0/1, reconnect_timeout_ms, heartbeat_ms, replay_window_bytes).
  static Result<StreamSinkOptions> FromArgs(const std::vector<Value>& args,
                                            size_t first);
};

/// The parallel table UDF that exports a query's rows to the ML system
/// (§3): each SQL worker opens a data port, registers with the coordinator
/// (step 1), waits for its k ML workers to dial in (step 7), and streams
/// its partition round-robin across them through bounded send buffers with
/// optional disk spill (step 8). Emits one summary row per SQL worker.
///
/// SQL:
///   SELECT * FROM TABLE(sql_stream_sink((<query>),
///       '<coordinator_host>', <coordinator_port>, '<ml_command>'
///       [, <buffer_bytes>, <spill 0/1>, <resilient 0/1>,
///          <reconnect_timeout_ms>, <heartbeat_ms>, <replay_window_bytes>]))
///
/// Every data frame carries a per-channel sequence number and is retained
/// in a bounded replay window until the reader's cumulative ack releases it
/// (§6). In resilient mode a sender whose connection drops waits for a
/// reconnecting — or coordinator-appointed replacement — reader, answers
/// its HELLO with the resume point, and replays only the unacked suffix:
/// at-least-once delivery, exactly-once apply.
class SqlStreamSinkUdf final : public TableUdf {
 public:
  SqlStreamSinkUdf() = default;

  Result<SchemaPtr> Bind(const SchemaPtr& input_schema,
                         const std::vector<Value>& args) override;
  Status ProcessPartition(const TableUdfContext& context, RowIterator* input,
                          RowSink* output) override;
  /// Vectorized-engine entry: consumes ColumnBatches directly — in columnar
  /// wire mode rows are gathered column-wise into frame batches without
  /// ever being boxed. Row routing is identical to ProcessPartition.
  Status ProcessPartitionBatches(const TableUdfContext& context,
                                 BatchIterator* input,
                                 RowSink* output) override;

  /// Schema of the per-worker summary row.
  static SchemaPtr SummarySchema();

 private:
  /// Shared transfer body; exactly one of `rows`/`batches` is non-null.
  Status RunTransfer(const TableUdfContext& context, RowIterator* rows,
                     BatchIterator* batches, RowSink* output);

  std::string coordinator_host_;
  int coordinator_port_ = 0;
  std::string command_;
  StreamSinkOptions options_;
  SchemaPtr input_schema_;
};

/// Registers "sql_stream_sink" on the engine (idempotent).
Status RegisterStreamSinkUdf(SqlEngine* engine);

}  // namespace sqlink

#endif  // SQLINK_STREAM_STREAM_SINK_UDF_H_
