#include "stream/streaming_transfer.h"

#include <algorithm>
#include <future>

#include "common/status_macros.h"
#include "common/trace.h"
#include "stream/coordinator.h"
#include "stream/heartbeat.h"

namespace sqlink {

std::string StreamingTransfer::BuildSinkSql(const std::string& query_sql,
                                            const std::string& coordinator_host,
                                            int coordinator_port,
                                            const std::string& command,
                                            const StreamSinkOptions& sink) {
  return "SELECT * FROM TABLE(sql_stream_sink((" + query_sql + "), '" +
         coordinator_host + "', " + std::to_string(coordinator_port) + ", '" +
         command + "', " + std::to_string(sink.send_buffer_bytes) + ", " +
         (sink.spill_enabled ? "1" : "0") + ", " +
         (sink.resilient ? "1" : "0") + ", " +
         std::to_string(sink.reconnect_timeout_ms) + ", " +
         std::to_string(sink.heartbeat_ms) + ", " +
         std::to_string(sink.replay_window_bytes) + "))";
}

namespace {

/// The transfer flow is identical for row and columnar materialization;
/// only the ingest call and the result's dataset shape differ.
template <typename TransferResultT, typename IngestResultT, typename IngestFn>
Result<TransferResultT> RunTransfer(SqlEngine* engine,
                                    const std::string& query_sql,
                                    const StreamTransferOptions& options,
                                    IngestFn ingest) {
  RETURN_IF_ERROR(RegisterStreamSinkUdf(engine));

  // Root span of the whole transfer. Installing it as the ambient context
  // means every span created on a thread with no open span — SQL executor
  // workers running the sink UDF, the coordinator's ML-launcher thread, the
  // ML ingest workers — parents here, so the run yields ONE trace covering
  // registration → split fetch → socket transfer → spill → ML ingest.
  TraceSpan transfer_span("stream.transfer");
  ScopedAmbientTrace ambient(transfer_span.context());

  // The coordinator launches the ML ingestion when all SQL workers have
  // registered (paper step 2). The launcher runs on the coordinator's
  // launcher thread and fulfills the promise.
  std::promise<Result<IngestResultT>> ml_promise;
  std::future<Result<IngestResultT>> ml_future = ml_promise.get_future();

  StreamCoordinator::Options coordinator_options;
  coordinator_options.splits_per_worker = options.splits_per_worker;
  // Liveness tracking follows the heartbeat knob: the lease TTL is a fixed
  // multiple of the participants' renewal interval (see DESIGN.md §8).
  const int heartbeat_ms =
      std::max(options.sink.heartbeat_ms, options.reader.heartbeat_ms);
  coordinator_options.heartbeat_timeout_ms =
      heartbeat_ms > 0 ? heartbeat_ms * HeartbeatSender::kLeaseIntervals : 0;
  coordinator_options.max_split_reassignments = options.max_split_reassignments;
  int coordinator_port = 0;  // Set below; captured by reference is unsafe,
                             // so capture a pointer to a stable location.
  auto port_holder = std::make_shared<int>(0);
  coordinator_options.ml_launcher =
      [engine, port_holder, reader_options = options.reader, &ml_promise,
       ingest](const std::string& command,
               const std::vector<std::string>& args) {
        (void)command;
        (void)args;
        ml::JobContext context;
        context.cluster = engine->cluster();
        context.metrics = engine->metrics();
        SqlStreamInputFormat format("localhost", *port_holder, reader_options);
        ml::MlJobRunner runner(context);
        ml_promise.set_value(ingest(&runner, &format));
      };

  ASSIGN_OR_RETURN(std::unique_ptr<StreamCoordinator> coordinator,
                   StreamCoordinator::Start(std::move(coordinator_options)));
  *port_holder = coordinator->port();
  coordinator_port = coordinator->port();

  const std::string sink_sql = StreamingTransfer::BuildSinkSql(
      query_sql, coordinator->host(), coordinator_port, options.command,
      options.sink);

  // A cancellation must also abort THIS transfer's coordinator: the abort
  // broadcast drains readers and releases splits/replay state promptly,
  // while neighbor queries (each with their own coordinator) are untouched.
  int64_t cancel_id = 0;
  if (options.query.cancellation != nullptr) {
    StreamCoordinator* coordinator_raw = coordinator.get();
    cancel_id = options.query.cancellation->OnCancel([coordinator_raw] {
      coordinator_raw->Abort(Status::Cancelled("query cancelled"));
    });
  }
  auto sql_result = engine->ExecuteSql(sink_sql, "stream_summary",
                                       options.query);
  if (options.query.cancellation != nullptr) {
    options.query.cancellation->RemoveCallback(cancel_id);
  }

  Result<TransferResultT> outcome = [&]() -> Result<TransferResultT> {
    if (!sql_result.ok()) {
      // If the failure happened before every worker registered, the ML job
      // was never launched and the future will never be fulfilled.
      if (ml_future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        return sql_result.status();
      }
      (void)ml_future.get();
      return sql_result.status();
    }
    ASSIGN_OR_RETURN(IngestResultT ingested, ml_future.get());
    TransferResultT result;
    result.dataset = std::move(ingested.dataset);
    result.stats = ingested.stats;
    for (const Row& row : (*sql_result)->GatherRows()) {
      result.rows_sent += row[1].int64_value();
      result.bytes_sent += row[2].int64_value();
      result.spilled_frames += row[3].int64_value();
    }
    return result;
  }();

  coordinator->Stop();
  return outcome;
}

}  // namespace

Result<StreamTransferResult> StreamingTransfer::Run(
    SqlEngine* engine, const std::string& query_sql,
    const StreamTransferOptions& options) {
  return RunTransfer<StreamTransferResult, ml::IngestResult>(
      engine, query_sql, options,
      [](ml::MlJobRunner* runner, ml::InputFormat* format) {
        return runner->Ingest(format);
      });
}

Result<ColumnTransferResult> StreamingTransfer::RunToColumns(
    SqlEngine* engine, const std::string& query_sql,
    const StreamTransferOptions& options) {
  return RunTransfer<ColumnTransferResult, ml::ColumnIngestResult>(
      engine, query_sql, options,
      [](ml::MlJobRunner* runner, ml::InputFormat* format) {
        return runner->IngestColumns(format);
      });
}

}  // namespace sqlink
