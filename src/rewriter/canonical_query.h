#ifndef SQLINK_REWRITER_CANONICAL_QUERY_H_
#define SQLINK_REWRITER_CANONICAL_QUERY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/catalog.h"

namespace sqlink {

/// A data-prep SELECT normalized for cache matching (§5): table aliases are
/// replaced by table names in every column reference, stars are expanded
/// from the catalog, join conditions (column = column) are separated from
/// value predicates, and equality operands are ordered deterministically.
/// Only plain SELECT-project-join queries over base tables canonicalize;
/// anything else (aggregates, subqueries, table functions, DISTINCT) is
/// rejected — such queries simply do not participate in caching.
struct CanonicalQuery {
  /// Lower-cased base-table names, sorted.
  std::vector<std::string> tables;

  /// Canonical join conditions, sorted by rendering.
  std::vector<ExprPtr> join_conditions;

  /// Canonical non-join conjuncts, sorted by rendering.
  std::vector<ExprPtr> predicates;

  /// Projected columns in select order: output name (lower-cased) and the
  /// canonical column it came from.
  struct Projection {
    std::string output_name;
    std::string table;   // Lower-cased canonical qualifier.
    std::string column;  // Lower-cased source column name.

    std::string CanonicalRef() const { return table + "." + column; }
  };
  std::vector<Projection> projections;

  /// True if a join condition set matches (set equality by rendering).
  static bool SameJoins(const CanonicalQuery& a, const CanonicalQuery& b);
  static bool SameTables(const CanonicalQuery& a, const CanonicalQuery& b);

  /// Projection lookup by canonical column reference; nullptr if absent.
  const Projection* FindByCanonicalRef(const std::string& ref) const;
  /// Projection lookup by output name; nullptr if absent.
  const Projection* FindByOutputName(const std::string& name) const;
};

/// Canonicalizes `stmt`, resolving stars and unqualified columns against
/// the catalog's table schemas.
Result<CanonicalQuery> CanonicalizeQuery(const SelectStmt& stmt,
                                         const Catalog& catalog);

/// Renders an expression with alias qualifiers replaced by table names
/// (helper shared with the matcher); unqualified refs resolve via schemas.
Result<ExprPtr> CanonicalizeExpr(const ExprPtr& expr,
                                 const std::map<std::string, std::string>&
                                     alias_to_table,
                                 const Catalog& catalog);

}  // namespace sqlink

#endif  // SQLINK_REWRITER_CANONICAL_QUERY_H_
