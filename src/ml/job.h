#ifndef SQLINK_ML_JOB_H_
#define SQLINK_ML_JOB_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"
#include "ml/input_format.h"

namespace sqlink::ml {

/// Outcome of the parallel ingestion phase.
struct IngestStats {
  int num_splits = 0;
  size_t rows = 0;
  /// Splits whose worker landed on a node holding the data (locality hit).
  int local_splits = 0;
  /// Splits re-read by a replacement reader after their original died (§6).
  int recovered_splits = 0;
};

struct IngestResult {
  RowDataset dataset;
  IngestStats stats;
};

struct ColumnIngestResult {
  ColumnDataset dataset;
  IngestStats stats;
};

/// The ML job runtime: the Spark/Hadoop analogue that launches one worker
/// per InputSplit, places workers on the split's preferred node when
/// possible (best-effort locality, as the paper's coordinator arranges),
/// reads every record through the InputFormat, and materializes the
/// in-memory RowDataset that training algorithms consume.
class MlJobRunner {
 public:
  explicit MlJobRunner(JobContext context) : context_(std::move(context)) {}

  /// Runs the ingestion phase: GetSplits → parallel read → RowDataset.
  Result<IngestResult> Ingest(InputFormat* format);

  /// Columnar ingestion: the same split/recovery protocol, but each
  /// partition accumulates as a ColumnBatch — readers that support batch
  /// delivery (SupportsBatches) feed it whole frames with no per-row Value
  /// boxing; others fall back to row appends.
  Result<ColumnIngestResult> IngestColumns(InputFormat* format);

  const JobContext& context() const { return context_; }

 private:
  JobContext context_;
};

}  // namespace sqlink::ml

#endif  // SQLINK_ML_JOB_H_
