file(REMOVE_RECURSE
  "CMakeFiles/sqlink_table.dir/csv.cc.o"
  "CMakeFiles/sqlink_table.dir/csv.cc.o.d"
  "CMakeFiles/sqlink_table.dir/pretty_print.cc.o"
  "CMakeFiles/sqlink_table.dir/pretty_print.cc.o.d"
  "CMakeFiles/sqlink_table.dir/row_codec.cc.o"
  "CMakeFiles/sqlink_table.dir/row_codec.cc.o.d"
  "CMakeFiles/sqlink_table.dir/schema.cc.o"
  "CMakeFiles/sqlink_table.dir/schema.cc.o.d"
  "CMakeFiles/sqlink_table.dir/value.cc.o"
  "CMakeFiles/sqlink_table.dir/value.cc.o.d"
  "libsqlink_table.a"
  "libsqlink_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlink_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
