#include "transform/recode_map.h"

#include <algorithm>

#include "common/status_macros.h"
#include "common/string_util.h"

namespace sqlink {

SchemaPtr RecodeMap::TableSchema() {
  return Schema::Make({{"colname", DataType::kString},
                       {"colval", DataType::kString},
                       {"recodeval", DataType::kInt64}});
}

Result<RecodeMap> RecodeMap::FromTable(const Table& table) {
  if (table.schema()->num_fields() != 3) {
    return Status::InvalidArgument("recode map table needs 3 columns, got " +
                                   table.schema()->ToString());
  }
  RecodeMap map;
  for (size_t p = 0; p < table.num_partitions(); ++p) {
    for (const Row& row : table.partition(p)) {
      if (row[0].is_null() || row[1].is_null() || !row[2].is_int64()) {
        return Status::InvalidArgument("malformed recode map row");
      }
      RETURN_IF_ERROR(map.Add(row[0].string_value(), row[1].string_value(),
                              static_cast<int>(row[2].int64_value())));
    }
  }
  // Codes must be consecutive integers starting at 1 (SystemML-style
  // requirement the paper calls out).
  for (const auto& [column, values] : map.columns_) {
    std::vector<int> codes;
    codes.reserve(values.size());
    for (const auto& [value, code] : values) codes.push_back(code);
    std::sort(codes.begin(), codes.end());
    for (size_t i = 0; i < codes.size(); ++i) {
      if (codes[i] != static_cast<int>(i) + 1) {
        return Status::InvalidArgument(
            "recode codes for column '" + column +
            "' are not consecutive from 1");
      }
    }
  }
  return map;
}

TablePtr RecodeMap::ToTable(const std::string& name,
                            size_t num_partitions) const {
  auto table = std::make_shared<Table>(name, TableSchema(), num_partitions);
  for (const auto& [column, values] : columns_) {
    for (const auto& [value, code] : values) {
      table->AppendRow(0, Row{Value::String(column), Value::String(value),
                              Value::Int64(code)});
    }
  }
  return table;
}

Status RecodeMap::Add(const std::string& column, const std::string& value,
                      int code) {
  auto [it, inserted] = columns_[ToLowerAscii(column)].emplace(value, code);
  if (!inserted) {
    return Status::AlreadyExists("duplicate recode entry: " + column + "/" +
                                 value);
  }
  return Status::OK();
}

Result<int> RecodeMap::Code(const std::string& column,
                            const std::string& value) const {
  auto col = columns_.find(ToLowerAscii(column));
  if (col == columns_.end()) {
    return Status::NotFound("column not in recode map: " + column);
  }
  auto val = col->second.find(value);
  if (val == col->second.end()) {
    return Status::NotFound("value not in recode map: " + column + "/" +
                            value);
  }
  return val->second;
}

int RecodeMap::Cardinality(const std::string& column) const {
  auto col = columns_.find(ToLowerAscii(column));
  return col == columns_.end() ? 0 : static_cast<int>(col->second.size());
}

Result<std::vector<std::string>> RecodeMap::Labels(
    const std::string& column) const {
  auto col = columns_.find(ToLowerAscii(column));
  if (col == columns_.end()) {
    return Status::NotFound("column not in recode map: " + column);
  }
  std::vector<std::string> labels(col->second.size());
  for (const auto& [value, code] : col->second) {
    labels[static_cast<size_t>(code - 1)] = value;
  }
  return labels;
}

std::vector<std::string> RecodeMap::Columns() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& [column, values] : columns_) names.push_back(column);
  return names;
}

}  // namespace sqlink
