#ifndef SQLINK_TRANSFORM_RECODE_MAP_H_
#define SQLINK_TRANSFORM_RECODE_MAP_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/schema.h"
#include "table/table.h"

namespace sqlink {

/// The recode map of §2.1: per categorical column, the mapping from string
/// value to its consecutive integer code starting at 1 (e.g.
/// ("gender","F")→1, ("gender","M")→2). Stored in SQL as a three-column
/// table (colname, colval, recodeval) — the representation the final
/// recoding join consumes and the §5.2 cache stores. Column names are
/// canonicalized to lower case; values are case-sensitive.
class RecodeMap {
 public:
  RecodeMap() = default;

  /// Schema of the SQL representation.
  static SchemaPtr TableSchema();

  /// Parses the (colname, colval, recodeval) rows of a map table.
  /// Validates that each column's codes are consecutive integers from 1.
  static Result<RecodeMap> FromTable(const Table& table);

  /// Renders this map as a map table partitioned for `num_partitions`
  /// workers (all rows on partition 0 — maps are small and broadcast).
  TablePtr ToTable(const std::string& name, size_t num_partitions) const;

  /// Adds one mapping; fails on duplicates.
  Status Add(const std::string& column, const std::string& value, int code);

  /// The code for a value, or NotFound.
  Result<int> Code(const std::string& column, const std::string& value) const;

  bool HasColumn(const std::string& column) const {
    return columns_.count(column) > 0;
  }
  /// Distinct-value count of a column (0 when absent).
  int Cardinality(const std::string& column) const;

  /// Value labels of a column ordered by code (1..K).
  Result<std::vector<std::string>> Labels(const std::string& column) const;

  std::vector<std::string> Columns() const;

  bool operator==(const RecodeMap& other) const {
    return columns_ == other.columns_;
  }

 private:
  // column -> (value -> code).
  std::map<std::string, std::map<std::string, int>> columns_;
};

}  // namespace sqlink

#endif  // SQLINK_TRANSFORM_RECODE_MAP_H_
