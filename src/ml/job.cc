#include "ml/job.h"

#include "common/logging.h"
#include "common/retry_policy.h"
#include "common/status_macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace sqlink::ml {

namespace {

size_t PartitionRows(const std::vector<Row>& partition) {
  return partition.size();
}
size_t PartitionRows(const ColumnBatch& partition) {
  return partition.num_rows();
}

/// Resume-point reconciliation shared by both partition shapes: the
/// partition holds `have` rows, the reader negotiated `resume_rows`.
/// Returns an error when acknowledged rows never reached the buffer.
Status CheckResume(int index, size_t have, uint64_t resume_rows) {
  if (have >= resume_rows) return Status::OK();
  // Rows were acknowledged but never reached this buffer — replay cannot
  // reproduce them.
  return Status::DataLoss(
      "split " + std::to_string(index) + " resumes at row " +
      std::to_string(resume_rows) + " but only " + std::to_string(have) +
      " rows were applied");
}

/// Consumes one split into `partition`, truncating it first to the reader's
/// negotiated resume point (rows an earlier incarnation already applied and
/// the transport will not re-deliver).
Status ReadSplit(InputFormat* format, const JobContext& context,
                 const InputSplit& split, int index,
                 std::vector<Row>* partition) {
  ASSIGN_OR_RETURN(std::unique_ptr<RecordReader> reader,
                   format->CreateReader(context, split, index));
  RETURN_IF_ERROR(reader->Open());
  const uint64_t resume_rows = reader->resume_row_count();
  RETURN_IF_ERROR(CheckResume(index, partition->size(), resume_rows));
  if (partition->size() > resume_rows) {
    // The dead reader got further than its last ack; the suffix will be
    // replayed, so drop it to keep apply exactly-once.
    partition->resize(resume_rows);
  }
  Row row;
  for (;;) {
    ASSIGN_OR_RETURN(bool has, reader->Next(&row));
    if (!has) break;
    partition->push_back(std::move(row));
  }
  return Status::OK();
}

/// Columnar ReadSplit: whole decoded frames are appended when the reader
/// supports batch delivery; otherwise rows are appended one at a time into
/// the same typed vectors.
Status ReadSplitColumns(InputFormat* format, const JobContext& context,
                        const InputSplit& split, int index,
                        ColumnBatch* partition) {
  if (partition->schema() == nullptr) partition->Reset(format->schema());
  ASSIGN_OR_RETURN(std::unique_ptr<RecordReader> reader,
                   format->CreateReader(context, split, index));
  RETURN_IF_ERROR(reader->Open());
  const uint64_t resume_rows = reader->resume_row_count();
  RETURN_IF_ERROR(CheckResume(index, partition->num_rows(), resume_rows));
  partition->Truncate(resume_rows);
  if (reader->SupportsBatches()) {
    ColumnBatch batch;
    for (;;) {
      ASSIGN_OR_RETURN(bool has, reader->NextBatch(&batch));
      if (!has) break;
      RETURN_IF_ERROR(partition->AppendBatch(batch));
    }
  } else {
    Row row;
    for (;;) {
      ASSIGN_OR_RETURN(bool has, reader->Next(&row));
      if (!has) break;
      RETURN_IF_ERROR(partition->AppendRow(row));
    }
  }
  return Status::OK();
}

/// The ingest phase shared by both partition shapes: GetSplits → parallel
/// read → §6 reassignment → stats. `read_split` consumes one split into one
/// partition, honoring the reader's resume point.
template <typename Partition, typename ReadFn>
Result<IngestStats> RunIngestPhases(InputFormat* format,
                                    const JobContext& context,
                                    std::vector<Partition>* partitions,
                                    ReadFn read_split) {
  TraceSpan ingest_span("ml.ingest");
  const TraceContext ingest_ctx = ingest_span.context();
  ASSIGN_OR_RETURN(std::vector<InputSplitPtr> splits,
                   format->GetSplits(context));
  if (splits.empty()) {
    return Status::InvalidArgument("input format produced no splits");
  }
  const size_t m = splits.size();

  IngestStats stats;
  stats.num_splits = static_cast<int>(m);
  partitions->resize(m);

  // Worker i consumes split i. With a cluster, count how many workers run
  // local to their data (a worker's node is its split's first preferred
  // location when one exists — best-effort placement).
  if (context.cluster != nullptr) {
    for (const InputSplitPtr& split : splits) {
      for (const std::string& host : split->Locations()) {
        if (context.cluster->NodeFromHostName(host) >= 0) {
          ++stats.local_splits;
          break;
        }
      }
    }
  }

  Histogram* const split_micros =
      context.metrics != nullptr
          ? context.metrics->GetHistogram("ml.ingest.split_micros")
          : nullptr;
  std::vector<Status> statuses(m);
  ParallelFor(m, [&](size_t i) {
    // Pool threads have no open span; parent the per-split read ("one ML
    // iteration" of the ingest phase) to the ingest span explicitly. The
    // reader it wraps is destroyed before the span ends (LIFO nesting).
    TraceSpan split_span("ml.ingest.split", ingest_ctx);
    split_span.AddAttribute("split", static_cast<int64_t>(i));
    Stopwatch timer;
    statuses[i] = read_split(format, context, *splits[i], static_cast<int>(i),
                             &(*partitions)[i]);
    if (!statuses[i].ok()) split_span.SetError();
    split_span.AddAttribute(
        "rows", static_cast<int64_t>(PartitionRows((*partitions)[i])));
    if (split_micros != nullptr) split_micros->Record(timer.ElapsedMicros());
  });

  // --- §6 split reassignment: failed splits are re-pulled from their
  // producers' replay windows by replacement readers. Sequential, and only
  // after every original reader has unwound: a fenced ("zombie") reader must
  // have stopped touching its partition before a replacement resumes it. ---
  size_t failed = 0;
  for (const Status& status : statuses) {
    if (!status.ok()) ++failed;
  }
  if (failed > 0 && format->SupportsReassignment()) {
    RetryPolicy::Options poll_options;
    poll_options.initial_delay_ms = 5;
    poll_options.max_delay_ms = 100;
    poll_options.jitter = 0.0;
    poll_options.deadline_ms = static_cast<int>(EnvInt64(
        "SQLINK_RECOVERY_DEADLINE_MS", 30000));
    if (auto it = context.config.find("recovery_deadline_ms");
        it != context.config.end()) {
      if (Result<int64_t> ms = ParseInt64(it->second); ms.ok()) {
        poll_options.deadline_ms = static_cast<int>(*ms);
      }
    }
    RetryPolicy poll(poll_options);
    while (failed > 0) {
      Result<ReassignedSplit> acquired = format->AcquireReassigned();
      if (!acquired.ok()) return acquired.status();  // Typed abort.
      if (acquired->split == nullptr) {
        // Nothing reassignable yet — the coordinator may still be waiting
        // out a lease. Deadline-capped backoff, then give up loudly so
        // every participant stops waiting.
        if (!poll.Backoff()) {
          Status timeout = Status::Aborted(
              "split recovery timed out with " + std::to_string(failed) +
              " split(s) unrecovered");
          format->AbortTransfer(timeout);
          return timeout;
        }
        continue;
      }
      const auto idx = static_cast<size_t>(acquired->index);
      if (idx >= m) {
        return Status::Internal("reassigned split index out of range");
      }
      TraceSpan recover_span("recover_split", ingest_ctx);
      recover_span.AddAttribute("split", static_cast<int64_t>(idx));
      const bool was_failed = !statuses[idx].ok();
      statuses[idx] = read_split(format, context, *acquired->split,
                                 static_cast<int>(idx), &(*partitions)[idx]);
      if (statuses[idx].ok()) {
        if (was_failed) --failed;
        ++stats.recovered_splits;
        if (context.metrics != nullptr) {
          context.metrics->Increment("ml.ingest.recovered_splits");
        }
      } else {
        recover_span.SetError();
        if (!was_failed) ++failed;
        LOG_WARNING() << "reassigned split " << idx
                      << " failed again: " << statuses[idx];
      }
    }
  }
  for (const Status& status : statuses) {
    RETURN_IF_ERROR(status);
  }
  for (const Partition& partition : *partitions) {
    stats.rows += PartitionRows(partition);
  }
  if (context.metrics != nullptr) {
    context.metrics->Add("ml.ingest.rows", static_cast<int64_t>(stats.rows));
    context.metrics->Add("ml.ingest.splits",
                         static_cast<int64_t>(stats.num_splits));
    context.metrics->Add("ml.ingest.local_splits", stats.local_splits);
  }
  return stats;
}

}  // namespace

Result<IngestResult> MlJobRunner::Ingest(InputFormat* format) {
  IngestResult result;
  ASSIGN_OR_RETURN(result.stats,
                   RunIngestPhases(format, context_,
                                   &result.dataset.partitions, ReadSplit));
  result.dataset.schema = format->schema();
  return result;
}

Result<ColumnIngestResult> MlJobRunner::IngestColumns(InputFormat* format) {
  ColumnIngestResult result;
  ASSIGN_OR_RETURN(
      result.stats,
      RunIngestPhases(format, context_, &result.dataset.partitions,
                      ReadSplitColumns));
  result.dataset.schema = format->schema();
  return result;
}

}  // namespace sqlink::ml
