#include "common/runtime_flags.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace sqlink {

namespace {

/// -1 = no override (use the environment); 0/1 = forced by a test.
std::atomic<int> g_columnar_override{-1};
std::atomic<int> g_vectorized_sql_override{-1};

bool OnOffFromEnv(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return true;
  const std::string_view v(value);
  return !(v == "off" || v == "0" || v == "false" || v == "no");
}

bool ColumnarFromEnv() { return OnOffFromEnv("SQLINK_COLUMNAR"); }

}  // namespace

bool ColumnarEnabled() {
  const int forced = g_columnar_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_env = ColumnarFromEnv();
  return from_env;
}

void SetColumnarEnabledForTest(int enabled) {
  g_columnar_override.store(enabled < 0 ? -1 : (enabled != 0 ? 1 : 0),
                            std::memory_order_relaxed);
}

bool VectorizedSqlEnabled() {
  const int forced = g_vectorized_sql_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_env = OnOffFromEnv("SQLINK_VECTORIZED_SQL");
  return from_env;
}

void SetVectorizedSqlEnabledForTest(int enabled) {
  g_vectorized_sql_override.store(enabled < 0 ? -1 : (enabled != 0 ? 1 : 0),
                                  std::memory_order_relaxed);
}

}  // namespace sqlink
