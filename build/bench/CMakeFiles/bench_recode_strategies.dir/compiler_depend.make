# Empty compiler generated dependencies file for bench_recode_strategies.
# This may be replaced when dependencies are built.
