#include "common/status.h"

namespace sqlink {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kNetworkError:
      return "Network error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDataLoss:
      return "Data loss";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code()));
  result += ": ";
  result += message();
  return result;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace sqlink
