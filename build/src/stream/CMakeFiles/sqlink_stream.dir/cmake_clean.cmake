file(REMOVE_RECURSE
  "CMakeFiles/sqlink_stream.dir/coordinator.cc.o"
  "CMakeFiles/sqlink_stream.dir/coordinator.cc.o.d"
  "CMakeFiles/sqlink_stream.dir/socket.cc.o"
  "CMakeFiles/sqlink_stream.dir/socket.cc.o.d"
  "CMakeFiles/sqlink_stream.dir/spill_queue.cc.o"
  "CMakeFiles/sqlink_stream.dir/spill_queue.cc.o.d"
  "CMakeFiles/sqlink_stream.dir/sql_stream_input_format.cc.o"
  "CMakeFiles/sqlink_stream.dir/sql_stream_input_format.cc.o.d"
  "CMakeFiles/sqlink_stream.dir/stream_sink_udf.cc.o"
  "CMakeFiles/sqlink_stream.dir/stream_sink_udf.cc.o.d"
  "CMakeFiles/sqlink_stream.dir/streaming_transfer.cc.o"
  "CMakeFiles/sqlink_stream.dir/streaming_transfer.cc.o.d"
  "CMakeFiles/sqlink_stream.dir/wire.cc.o"
  "CMakeFiles/sqlink_stream.dir/wire.cc.o.d"
  "libsqlink_stream.a"
  "libsqlink_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlink_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
