#include "sql/query_registry.h"

#include <chrono>
#include <cstdio>

namespace sqlink {

namespace {

void AppendJsonEscaped(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

int64_t NowUnixMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Renders one record. Caller holds the registry mutex, so the completion
/// fields are stable; the transfer counters are atomics and may still move
/// for active queries (that is the point of a live endpoint).
void AppendRecordJson(const QueryRecord& record, std::string* out) {
  char buffer[32];
  *out += "{\"query_id\":" + std::to_string(record.query_id) + ",\"sql\":";
  AppendJsonEscaped(record.sql, out);
  *out += ",\"engine_mode\":\"" + record.engine_mode + "\"";
  if (!record.tenant.empty()) {
    *out += ",\"tenant\":";
    AppendJsonEscaped(record.tenant, out);
  }
  // Trace ids as strings: uint64 does not survive double-typed JSON readers.
  *out += ",\"trace_id\":\"" + std::to_string(record.trace_id) + "\"";
  *out += ",\"start_unix_ms\":" + std::to_string(record.start_unix_ms);
  *out += ",\"state\":\"";
  *out += !record.finished ? "running"
          : record.abandoned ? "abandoned"
          : record.ok ? "ok"
                      : "error";
  *out += "\"";
  if (record.finished) {
    *out +=
        ",\"duration_micros\":" + std::to_string(record.duration_micros);
    std::snprintf(buffer, sizeof(buffer), "%.2f", record.worst_qerror);
    *out += ",\"worst_qerror\":";
    *out += buffer;
    if (!record.ok) {
      *out += ",\"error\":";
      AppendJsonEscaped(record.error, out);
    }
  }
  const int64_t transfer_rows =
      record.transfer_rows.load(std::memory_order_relaxed);
  const int64_t transfer_bytes =
      record.transfer_bytes.load(std::memory_order_relaxed);
  if (transfer_rows > 0 || transfer_bytes > 0) {
    *out += ",\"transfer\":{\"rows\":" + std::to_string(transfer_rows) +
            ",\"bytes\":" + std::to_string(transfer_bytes) +
            ",\"spilled_frames\":" +
            std::to_string(record.transfer_spilled_frames.load(
                std::memory_order_relaxed)) +
            ",\"channels\":" +
            std::to_string(record.transfer_channels.load(
                std::memory_order_relaxed)) +
            "}";
  }
  if (record.stats != nullptr) {
    *out += ",\"operators\":";
    record.stats->AppendJson(out);
  }
  out->push_back('}');
}

}  // namespace

QueryRegistry& QueryRegistry::Global() {
  static QueryRegistry* const registry = new QueryRegistry();
  return *registry;
}

QueryRecordPtr QueryRegistry::Begin(std::string sql, std::string engine_mode,
                                    std::shared_ptr<QueryStats> stats,
                                    uint64_t trace_id, std::string tenant) {
  auto record = std::make_shared<QueryRecord>();
  record->sql = std::move(sql);
  record->engine_mode = std::move(engine_mode);
  record->stats = std::move(stats);
  record->trace_id = trace_id;
  record->tenant = std::move(tenant);
  record->start_unix_ms = NowUnixMillis();
  std::lock_guard<std::mutex> lock(mu_);
  record->query_id = next_id_++;
  active_.emplace(record->query_id, record);
  return record;
}

void QueryRegistry::Finish(const QueryRecordPtr& record, const Status& status,
                           int64_t duration_micros, double worst_qerror,
                           bool abandoned) {
  if (record == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (record->finished) return;  // First Finish wins; no duplicate ring entry.
  record->finished = true;
  record->abandoned = abandoned;
  record->ok = status.ok();
  if (!status.ok()) record->error = status.ToString();
  record->duration_micros = duration_micros;
  record->worst_qerror = worst_qerror;
  active_.erase(record->query_id);
  finished_.push_front(record);
  while (finished_.size() > finished_capacity_) finished_.pop_back();
}

QueryRecordPtr QueryRegistry::Find(uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(query_id);
  if (it != active_.end()) return it->second;
  for (const QueryRecordPtr& record : finished_) {
    if (record->query_id == query_id) return record;
  }
  return nullptr;
}

std::vector<QueryRecordPtr> QueryRegistry::Active() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryRecordPtr> out;
  out.reserve(active_.size());
  for (const auto& [id, record] : active_) out.push_back(record);
  return out;
}

std::vector<QueryRecordPtr> QueryRegistry::Finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {finished_.begin(), finished_.end()};
}

size_t QueryRegistry::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.size();
}

size_t QueryRegistry::finished_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_.size();
}

void QueryRegistry::set_finished_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  finished_capacity_ = capacity;
  while (finished_.size() > finished_capacity_) finished_.pop_back();
}

std::string QueryRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"active\":[";
  bool first = true;
  for (const auto& [id, record] : active_) {
    if (!first) out.push_back(',');
    first = false;
    AppendRecordJson(*record, &out);
  }
  out += "],\"finished\":[";
  first = true;
  for (const QueryRecordPtr& record : finished_) {
    if (!first) out.push_back(',');
    first = false;
    AppendRecordJson(*record, &out);
  }
  out += "]}";
  return out;
}

void QueryRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  active_.clear();
  finished_.clear();
}

TrackedQuery::~TrackedQuery() {
  if (registry_ != nullptr && record_ != nullptr) {
    // Abandoned mid-stream (iterator dropped, early return, disconnect):
    // finish the state transition so the record leaves the active set.
    registry_->Finish(record_,
                      Status::Cancelled("query abandoned mid-stream"),
                      /*duration_micros=*/0, /*worst_qerror=*/1.0,
                      /*abandoned=*/true);
  }
}

void TrackedQuery::Finish(const Status& status, int64_t duration_micros,
                          double worst_qerror) {
  if (registry_ != nullptr && record_ != nullptr) {
    registry_->Finish(record_, status, duration_micros, worst_qerror);
  }
}

}  // namespace sqlink
