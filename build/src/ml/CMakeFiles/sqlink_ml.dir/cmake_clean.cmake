file(REMOVE_RECURSE
  "CMakeFiles/sqlink_ml.dir/dataset.cc.o"
  "CMakeFiles/sqlink_ml.dir/dataset.cc.o.d"
  "CMakeFiles/sqlink_ml.dir/decision_tree.cc.o"
  "CMakeFiles/sqlink_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/sqlink_ml.dir/evaluation.cc.o"
  "CMakeFiles/sqlink_ml.dir/evaluation.cc.o.d"
  "CMakeFiles/sqlink_ml.dir/job.cc.o"
  "CMakeFiles/sqlink_ml.dir/job.cc.o.d"
  "CMakeFiles/sqlink_ml.dir/kmeans.cc.o"
  "CMakeFiles/sqlink_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/sqlink_ml.dir/model_io.cc.o"
  "CMakeFiles/sqlink_ml.dir/model_io.cc.o.d"
  "CMakeFiles/sqlink_ml.dir/naive_bayes.cc.o"
  "CMakeFiles/sqlink_ml.dir/naive_bayes.cc.o.d"
  "CMakeFiles/sqlink_ml.dir/scaler.cc.o"
  "CMakeFiles/sqlink_ml.dir/scaler.cc.o.d"
  "CMakeFiles/sqlink_ml.dir/sgd.cc.o"
  "CMakeFiles/sqlink_ml.dir/sgd.cc.o.d"
  "CMakeFiles/sqlink_ml.dir/text_input_format.cc.o"
  "CMakeFiles/sqlink_ml.dir/text_input_format.cc.o.d"
  "CMakeFiles/sqlink_ml.dir/validation.cc.o"
  "CMakeFiles/sqlink_ml.dir/validation.cc.o.d"
  "libsqlink_ml.a"
  "libsqlink_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlink_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
