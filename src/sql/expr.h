#ifndef SQLINK_SQL_EXPR_H_
#define SQLINK_SQL_EXPR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "table/column_batch.h"
#include "table/schema.h"
#include "table/value.h"

namespace sqlink {

/// Name-resolution scope: an ordered list of relations (qualifier + schema)
/// whose columns are concatenated into one flat input row, as seen by a
/// bound expression after joins.
class NameScope {
 public:
  void AddRelation(const std::string& qualifier, const SchemaPtr& schema);

  struct Resolution {
    int index = -1;  ///< Flat column index across all relations.
    DataType type = DataType::kString;
    std::string name;
  };

  /// Resolves `[qualifier.]column`. Errors on unknown or ambiguous names.
  Result<Resolution> Resolve(const std::string& qualifier,
                             const std::string& column) const;

  /// Which relation (index into AddRelation order) a flat column belongs to.
  int RelationOfColumn(int flat_index) const;

  int num_columns() const { return static_cast<int>(columns_.size()); }
  int num_relations() const { return static_cast<int>(relations_.size()); }
  const std::string& relation_qualifier(int i) const {
    return relations_[static_cast<size_t>(i)].qualifier;
  }
  const SchemaPtr& relation_schema(int i) const {
    return relations_[static_cast<size_t>(i)].schema;
  }

  /// The concatenated schema (unqualified column names; duplicates allowed).
  SchemaPtr FlatSchema() const;

 private:
  struct Relation {
    std::string qualifier;
    SchemaPtr schema;
  };
  struct ColumnEntry {
    int relation = 0;
    std::string name;
    DataType type = DataType::kString;
  };
  std::vector<Relation> relations_;
  std::vector<ColumnEntry> columns_;
};

/// A compiled scalar expression: evaluates against a flat input row with SQL
/// three-valued logic (comparisons involving NULL yield NULL; AND/OR follow
/// Kleene logic). Thread-compatible: Evaluate is const and safe to call from
/// multiple workers concurrently.
class BoundExpr {
 public:
  virtual ~BoundExpr() = default;
  virtual Result<Value> Evaluate(const Row& row) const = 0;

  /// Vectorized evaluation: computes this expression for every row of
  /// `batch`, filling `*out` (replaced) with batch.num_rows() values of
  /// output_type(). Must agree with Evaluate row for row, including which
  /// rows are NULL and which inputs raise errors; the differential harness
  /// (tests/sql_differential_test.cc) enforces this. The base implementation
  /// boxes each row and calls Evaluate — nodes with typed kernels override.
  /// Nodes whose row semantics short-circuit (AND/OR) fall back to the boxed
  /// loop when eager evaluation of a branch errors, so an error the row
  /// engine never reaches is not surfaced by the vectorized one.
  virtual Status EvaluateBatch(const ColumnBatch& batch, Column* out) const;

  DataType output_type() const { return output_type_; }

 protected:
  explicit BoundExpr(DataType output_type) : output_type_(output_type) {}

 private:
  DataType output_type_;
};

using BoundExprPtr = std::shared_ptr<const BoundExpr>;

/// A scalar function (builtin or user-defined) callable from SQL
/// expressions — the engine's scalar-UDF extension point.
struct ScalarFunction {
  std::string name;
  /// Derives the output type from argument types; rejects bad signatures.
  std::function<Result<DataType>(const std::vector<DataType>&)> derive_type;
  /// Must be thread-safe: evaluated concurrently by all SQL workers.
  std::function<Result<Value>(const std::vector<Value>&)> evaluate;
};

/// Registry of scalar functions, keyed case-insensitively.
class ScalarFunctionRegistry {
 public:
  /// A registry pre-populated with builtins: UPPER, LOWER, LENGTH, ABS,
  /// CONCAT, COALESCE, CAST_DOUBLE, CAST_INT64, CAST_STRING.
  static std::shared_ptr<ScalarFunctionRegistry> WithBuiltins();

  Status Register(ScalarFunction function);
  const ScalarFunction* Lookup(const std::string& name) const;

 private:
  std::map<std::string, ScalarFunction> functions_;  // Lower-case name key.
};

/// Compiles an AST expression against the scope. Aggregate function names
/// (COUNT/SUM/MIN/MAX/AVG) are rejected here — the planner handles them.
Result<BoundExprPtr> BindExpression(const Expr& expr, const NameScope& scope,
                                    const ScalarFunctionRegistry& registry);

/// A bound reference to a flat input column by position (planner-internal
/// projections that must not depend on name resolution).
BoundExprPtr MakeColumnReference(int index, DataType type);

/// True when `value` is boolean TRUE (filter semantics: NULL and FALSE drop
/// the row).
inline bool IsTruthy(const Value& value) {
  return value.is_bool() && value.bool_value();
}

/// Whether `name` is one of the aggregate functions the planner recognizes.
bool IsAggregateFunctionName(const std::string& name);

}  // namespace sqlink

#endif  // SQLINK_SQL_EXPR_H_
