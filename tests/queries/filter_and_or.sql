SELECT k, v FROM e1024 WHERE (k > 10 AND v < 5) OR (flag = FALSE AND NOT k = 7)
