#include "ml/job.h"

#include "common/logging.h"
#include "common/status_macros.h"
#include "common/thread_pool.h"

namespace sqlink::ml {

Result<IngestResult> MlJobRunner::Ingest(InputFormat* format) {
  ASSIGN_OR_RETURN(std::vector<InputSplitPtr> splits,
                   format->GetSplits(context_));
  if (splits.empty()) {
    return Status::InvalidArgument("input format produced no splits");
  }
  const size_t m = splits.size();

  IngestResult result;
  result.stats.num_splits = static_cast<int>(m);
  result.dataset.schema = format->schema();
  result.dataset.partitions.resize(m);

  // Worker i consumes split i. With a cluster, count how many workers run
  // local to their data (a worker's node is its split's first preferred
  // location when one exists — best-effort placement).
  if (context_.cluster != nullptr) {
    for (const InputSplitPtr& split : splits) {
      for (const std::string& host : split->Locations()) {
        if (context_.cluster->NodeFromHostName(host) >= 0) {
          ++result.stats.local_splits;
          break;
        }
      }
    }
  }

  std::vector<Status> statuses(m);
  ParallelFor(m, [&](size_t i) {
    auto run = [&]() -> Status {
      ASSIGN_OR_RETURN(
          std::unique_ptr<RecordReader> reader,
          format->CreateReader(context_, *splits[i], static_cast<int>(i)));
      Row row;
      for (;;) {
        ASSIGN_OR_RETURN(bool has, reader->Next(&row));
        if (!has) break;
        result.dataset.partitions[i].push_back(std::move(row));
      }
      return Status::OK();
    };
    statuses[i] = run();
  });
  for (const Status& status : statuses) {
    RETURN_IF_ERROR(status);
  }
  result.stats.rows = result.dataset.TotalRows();
  if (context_.metrics != nullptr) {
    context_.metrics->Add("ml.ingest.rows",
                          static_cast<int64_t>(result.stats.rows));
    context_.metrics->Add("ml.ingest.splits",
                          static_cast<int64_t>(result.stats.num_splits));
    context_.metrics->Add("ml.ingest.local_splits",
                          result.stats.local_splits);
  }
  return result;
}

}  // namespace sqlink::ml
