// Ablation A5 (§2.1 discussion): computing distinct values with one
// parallel table-UDF scan over *all* categorical columns, versus one SQL
// SELECT DISTINCT query per column ("each column that needs to be recoded
// would result in such an SQL query, and would require one pass of the
// data"). The UDF approach scans once regardless of column count.

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "transform/transformer.h"

using namespace sqlink;
using sqlink::bench::BenchEnv;

int main(int argc, char** argv) {
  const int64_t rows = sqlink::bench::RowsArg(argc, argv, 300000);
  auto env = BenchEnv::Make(rows);

  // A wide table with several categorical columns.
  auto wide = env->engine->MaterializeSql(
      "SELECT C.abandoned AS c1, U.gender AS c2, U.country AS c3, "
      "CAST_STRING(C.year) AS c4, CAST_STRING(C.nitems) AS c5, "
      "CAST_STRING(U.age) AS c6, C.amount "
      "FROM carts C, users U WHERE C.userid = U.userid",
      "wide");
  if (!wide.ok()) {
    std::fprintf(stderr, "%s\n", wide.status().ToString().c_str());
    return 1;
  }

  InSqlTransformer transformer(env->engine);
  std::printf("=== A5: recode-map strategies (one UDF scan vs per-column "
              "SQL) ===\n");
  std::printf("rows: %lld\n\n", static_cast<long long>((*wide)->TotalRows()));
  std::printf("%10s %18s %20s %10s\n", "columns", "udf_scan(s)",
              "per_column_sql(s)", "ratio");

  const std::vector<std::string> all = {"c1", "c2", "c3", "c4", "c5", "c6"};
  for (size_t count : {1u, 2u, 4u, 6u}) {
    std::vector<std::string> columns(all.begin(), all.begin() + count);

    Stopwatch udf_watch;
    auto udf_map = transformer.ComputeRecodeMap("SELECT * FROM wide", columns);
    if (!udf_map.ok()) {
      std::fprintf(stderr, "%s\n", udf_map.status().ToString().c_str());
      return 1;
    }
    const double udf_seconds = udf_watch.ElapsedSeconds();

    Stopwatch sql_watch;
    auto sql_map =
        transformer.ComputeRecodeMapPerColumnSql("SELECT * FROM wide", columns);
    if (!sql_map.ok()) return 1;
    const double sql_seconds = sql_watch.ElapsedSeconds();

    if (!(*udf_map == *sql_map)) {
      std::fprintf(stderr, "strategy results diverge!\n");
      return 1;
    }
    std::printf("%10zu %18.3f %20.3f %9.2fx\n", count, udf_seconds,
                sql_seconds, sql_seconds / udf_seconds);
  }
  return 0;
}
