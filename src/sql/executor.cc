#include "sql/executor.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/blocking_queue.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/runtime_flags.h"
#include "common/status_macros.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "sql/batch_kernels.h"
#include "sql/row_iterator.h"

namespace sqlink {

namespace {

/// Runs fn(worker) on `n` threads; returns the first error.
Status ParallelWorkers(int n, const std::function<Status(int)>& fn) {
  std::vector<Status> statuses(static_cast<size_t>(n));
  ParallelFor(static_cast<size_t>(n), [&](size_t worker) {
    statuses[worker] = fn(static_cast<int>(worker));
  });
  for (const Status& status : statuses) {
    RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

/// Lexicographic row ordering (NULL-first per Value::operator<).
struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      if (a[i] < b[i]) return true;
      if (b[i] < a[i]) return false;
    }
    return a.size() < b.size();
  }
};

bool RowKeyEquals(const Row& a, const std::vector<int>& a_keys, const Row& b,
                  const std::vector<int>& b_keys) {
  for (size_t i = 0; i < a_keys.size(); ++i) {
    if (a[static_cast<size_t>(a_keys[i])] !=
        b[static_cast<size_t>(b_keys[i])]) {
      return false;
    }
  }
  return true;
}

bool HasNullKey(const Row& row, const std::vector<int>& keys) {
  for (int k : keys) {
    if (row[static_cast<size_t>(k)].is_null()) return true;
  }
  return false;
}

/// Build-side hash table of an equi join. With no keys (cross join) every
/// row lands in one bucket.
class JoinHashTable {
 public:
  JoinHashTable(std::vector<Row> rows, std::vector<int> keys)
      : rows_(std::move(rows)), keys_(std::move(keys)) {
    buckets_.reserve(rows_.size());
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (HasNullKey(rows_[i], keys_)) continue;  // NULL keys never match.
      buckets_[HashRowKey(rows_[i], keys_)].push_back(i);
    }
  }

  /// Invokes fn(build_row) for every build row matching the probe key.
  template <typename Fn>
  void Probe(const Row& probe, const std::vector<int>& probe_keys,
             Fn&& fn) const {
    ProbeIndices(probe, probe_keys,
                 [this, &fn](size_t index) { fn(rows_[index]); });
  }

  /// Index-returning probe for the vectorized join, which gathers matched
  /// build rows out of a pre-built ColumnBatch instead of boxing them.
  template <typename Fn>
  void ProbeIndices(const Row& probe, const std::vector<int>& probe_keys,
                    Fn&& fn) const {
    if (HasNullKey(probe, probe_keys)) return;
    auto it = buckets_.find(HashRowKey(probe, probe_keys));
    if (it == buckets_.end()) return;
    for (size_t index : it->second) {
      if (RowKeyEquals(probe, probe_keys, rows_[index], keys_)) {
        fn(index);
      }
    }
  }

  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<Row> rows_;
  std::vector<int> keys_;
  std::unordered_map<size_t, std::vector<size_t>> buckets_;
};

class FilterIterator final : public RowIterator {
 public:
  FilterIterator(RowIteratorPtr child, BoundExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Result<bool> Next(Row* out) override {
    for (;;) {
      ASSIGN_OR_RETURN(bool has, child_->Next(out));
      if (!has) return false;
      ASSIGN_OR_RETURN(Value keep, predicate_->Evaluate(*out));
      if (IsTruthy(keep)) return true;
    }
  }

 private:
  RowIteratorPtr child_;
  BoundExprPtr predicate_;
};

class ProjectIterator final : public RowIterator {
 public:
  ProjectIterator(RowIteratorPtr child, const std::vector<BoundExprPtr>* exprs)
      : child_(std::move(child)), exprs_(exprs) {}

  Result<bool> Next(Row* out) override {
    Row input;
    ASSIGN_OR_RETURN(bool has, child_->Next(&input));
    if (!has) return false;
    out->clear();
    out->reserve(exprs_->size());
    for (const BoundExprPtr& expr : *exprs_) {
      ASSIGN_OR_RETURN(Value v, expr->Evaluate(input));
      out->push_back(std::move(v));
    }
    return true;
  }

 private:
  RowIteratorPtr child_;
  const std::vector<BoundExprPtr>* exprs_;
};

/// Probe-side pipelined hash join. Emits probe ++ build rows that satisfy
/// the optional residual predicate.
class HashJoinIterator final : public RowIterator {
 public:
  HashJoinIterator(RowIteratorPtr probe, std::shared_ptr<const JoinHashTable> table,
                   const std::vector<int>* probe_keys, BoundExprPtr residual)
      : probe_(std::move(probe)),
        table_(std::move(table)),
        probe_keys_(probe_keys),
        residual_(std::move(residual)) {}

  Result<bool> Next(Row* out) override {
    for (;;) {
      if (match_index_ < matches_.size()) {
        const Row* build_row = matches_[match_index_++];
        out->clear();
        out->reserve(probe_row_.size() + build_row->size());
        out->insert(out->end(), probe_row_.begin(), probe_row_.end());
        out->insert(out->end(), build_row->begin(), build_row->end());
        if (residual_ != nullptr) {
          ASSIGN_OR_RETURN(Value keep, residual_->Evaluate(*out));
          if (!IsTruthy(keep)) continue;
        }
        return true;
      }
      ASSIGN_OR_RETURN(bool has, probe_->Next(&probe_row_));
      if (!has) return false;
      matches_.clear();
      match_index_ = 0;
      table_->Probe(probe_row_, *probe_keys_,
                    [this](const Row& build_row) {
                      matches_.push_back(&build_row);
                    });
    }
  }

 private:
  RowIteratorPtr probe_;
  std::shared_ptr<const JoinHashTable> table_;
  const std::vector<int>* probe_keys_;
  BoundExprPtr residual_;
  Row probe_row_;
  std::vector<const Row*> matches_;
  size_t match_index_ = 0;
};

constexpr size_t kUdfQueueCapacity = 4096;

class RowQueueSink final : public RowSink {
 public:
  explicit RowQueueSink(BlockingQueue<Row>* queue) : queue_(queue) {}
  Status Push(Row row) override {
    if (!queue_->Push(std::move(row))) {
      return Status::Cancelled("downstream consumer closed");
    }
    return Status::OK();
  }

 private:
  BlockingQueue<Row>* queue_;
};

/// Pipelines a table UDF: a pump thread runs ProcessPartition() pushing into
/// a bounded queue that this iterator drains. Keeps UDFs with side effects
/// (the streaming-transfer sink) overlapped with upstream query execution.
class UdfPartitionIterator final : public RowIterator {
 public:
  UdfPartitionIterator(TableUdfPtr udf, TableUdfContext context,
                       RowIteratorPtr input)
      : udf_(std::move(udf)),
        context_(context),
        input_(std::move(input)),
        queue_(kUdfQueueCapacity) {
    pump_ = std::thread([this] {
      RowQueueSink sink(&queue_);
      const Status status =
          udf_->ProcessPartition(context_, input_.get(), &sink);
      {
        std::lock_guard<std::mutex> lock(mu_);
        // A cancelled push just means the consumer stopped early.
        if (!status.ok() && !status.IsCancelled()) pump_status_ = status;
      }
      queue_.Close();
    });
  }

  ~UdfPartitionIterator() override {
    queue_.Close();
    if (pump_.joinable()) pump_.join();
  }

  Result<bool> Next(Row* out) override {
    std::optional<Row> row = queue_.Pop();
    if (!row.has_value()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!pump_status_.ok()) return pump_status_;
      return false;
    }
    *out = std::move(*row);
    return true;
  }

 private:
  TableUdfPtr udf_;
  TableUdfContext context_;
  RowIteratorPtr input_;
  BlockingQueue<Row> queue_;
  std::thread pump_;
  std::mutex mu_;
  Status pump_status_;
};

class EmptyIterator final : public RowIterator {
 public:
  Result<bool> Next(Row*) override { return false; }
};

// ---------------------------------------------------------------------------
// Vectorized operators (BatchIterator pipelines over ColumnBatch)

/// Vectorized filter: evaluates the predicate column-at-a-time, compacts
/// surviving rows through a selection vector. Batches where every row
/// passes are moved through untouched.
class VectorizedFilterIterator final : public BatchIterator {
 public:
  VectorizedFilterIterator(BatchIteratorPtr child, BoundExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Result<bool> Next(ColumnBatch* out) override {
    for (;;) {
      ASSIGN_OR_RETURN(bool has, child_->Next(&input_));
      if (!has) return false;
      Column pred;
      RETURN_IF_ERROR(predicate_->EvaluateBatch(input_, &pred));
      sel_.clear();
      FilterToSelection(pred, input_.num_rows(), &sel_);
      if (sel_.empty()) continue;
      if (sel_.size() == input_.num_rows()) {
        *out = std::move(input_);
        return true;
      }
      out->Reset(input_.schema());
      RETURN_IF_ERROR(out->AppendGather(input_, sel_.data(), sel_.size()));
      return true;
    }
  }

 private:
  BatchIteratorPtr child_;
  BoundExprPtr predicate_;
  ColumnBatch input_;
  std::vector<int32_t> sel_;
};

/// Vectorized project: one EvaluateBatch per output column.
class VectorizedProjectIterator final : public BatchIterator {
 public:
  VectorizedProjectIterator(BatchIteratorPtr child,
                            const std::vector<BoundExprPtr>* exprs,
                            SchemaPtr output_schema)
      : child_(std::move(child)),
        exprs_(exprs),
        output_schema_(std::move(output_schema)) {}

  Result<bool> Next(ColumnBatch* out) override {
    ASSIGN_OR_RETURN(bool has, child_->Next(&input_));
    if (!has) return false;
    out->Reset(output_schema_);
    for (size_t i = 0; i < exprs_->size(); ++i) {
      Column col;
      RETURN_IF_ERROR((*exprs_)[i]->EvaluateBatch(input_, &col));
      out->column(i) = std::move(col);
    }
    out->SetRowCountForDecode(input_.num_rows());
    return true;
  }

 private:
  BatchIteratorPtr child_;
  const std::vector<BoundExprPtr>* exprs_;
  SchemaPtr output_schema_;
  ColumnBatch input_;
};

/// Vectorized probe side of the hash join: per probe row only the key
/// values are boxed; matched pairs are assembled by gathering probe columns
/// and build columns (from the Prepare-built build batch), and the residual
/// runs vectorized over the assembled batch.
class VectorizedHashJoinIterator final : public BatchIterator {
 public:
  VectorizedHashJoinIterator(BatchIteratorPtr probe,
                             std::shared_ptr<const JoinHashTable> table,
                             std::shared_ptr<const ColumnBatch> build_batch,
                             const std::vector<int>* probe_keys,
                             BoundExprPtr residual, SchemaPtr output_schema)
      : probe_(std::move(probe)),
        table_(std::move(table)),
        build_batch_(std::move(build_batch)),
        probe_keys_(probe_keys),
        residual_(std::move(residual)),
        output_schema_(std::move(output_schema)) {
    identity_keys_.resize(probe_keys_->size());
    for (size_t i = 0; i < identity_keys_.size(); ++i) {
      identity_keys_[i] = static_cast<int>(i);
    }
  }

  Result<bool> Next(ColumnBatch* out) override {
    for (;;) {
      ASSIGN_OR_RETURN(bool has, probe_->Next(&input_));
      if (!has) return false;
      const size_t n = input_.num_rows();
      probe_sel_.clear();
      build_sel_.clear();
      Row key;
      for (size_t r = 0; r < n; ++r) {
        key.clear();
        for (int k : *probe_keys_) {
          key.push_back(input_.ValueAt(r, static_cast<size_t>(k)));
        }
        table_->ProbeIndices(key, identity_keys_, [&](size_t build_index) {
          probe_sel_.push_back(static_cast<int32_t>(r));
          build_sel_.push_back(static_cast<int32_t>(build_index));
        });
      }
      if (probe_sel_.empty()) continue;
      joined_.Reset(output_schema_);
      const size_t probe_width = input_.num_columns();
      for (size_t c = 0; c < probe_width; ++c) {
        AppendColumnGather(&joined_.column(c), 0, input_.column(c),
                           probe_sel_.data(), probe_sel_.size());
      }
      for (size_t c = 0; c < build_batch_->num_columns(); ++c) {
        AppendColumnGather(&joined_.column(probe_width + c), 0,
                           build_batch_->column(c), build_sel_.data(),
                           build_sel_.size());
      }
      joined_.SetRowCountForDecode(probe_sel_.size());
      if (residual_ == nullptr) {
        *out = std::move(joined_);
        return true;
      }
      Column pred;
      RETURN_IF_ERROR(residual_->EvaluateBatch(joined_, &pred));
      sel_.clear();
      FilterToSelection(pred, joined_.num_rows(), &sel_);
      if (sel_.empty()) continue;
      if (sel_.size() == joined_.num_rows()) {
        *out = std::move(joined_);
        return true;
      }
      out->Reset(output_schema_);
      RETURN_IF_ERROR(out->AppendGather(joined_, sel_.data(), sel_.size()));
      return true;
    }
  }

 private:
  BatchIteratorPtr probe_;
  std::shared_ptr<const JoinHashTable> table_;
  std::shared_ptr<const ColumnBatch> build_batch_;
  const std::vector<int>* probe_keys_;
  std::vector<int> identity_keys_;
  BoundExprPtr residual_;
  SchemaPtr output_schema_;
  ColumnBatch input_;
  ColumnBatch joined_;
  std::vector<int32_t> probe_sel_;
  std::vector<int32_t> build_sel_;
  std::vector<int32_t> sel_;
};

/// Batch-mode UDF pump: the pump thread hands the UDF a columnar input via
/// ProcessPartitionBatches (batch-capable UDFs consume it directly; others
/// fall back to the row adapter inside the default implementation), and the
/// emitted rows are re-batched for the downstream vectorized pipeline.
class UdfBatchPartitionIterator final : public BatchIterator {
 public:
  UdfBatchPartitionIterator(TableUdfPtr udf, TableUdfContext context,
                            BatchIteratorPtr input, SchemaPtr output_schema)
      : udf_(std::move(udf)),
        context_(context),
        input_(std::move(input)),
        output_schema_(std::move(output_schema)),
        queue_(kUdfQueueCapacity) {
    pump_ = std::thread([this] {
      RowQueueSink sink(&queue_);
      const Status status =
          udf_->ProcessPartitionBatches(context_, input_.get(), &sink);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (!status.ok() && !status.IsCancelled()) pump_status_ = status;
      }
      queue_.Close();
    });
  }

  ~UdfBatchPartitionIterator() override {
    queue_.Close();
    if (pump_.joinable()) pump_.join();
  }

  Result<bool> Next(ColumnBatch* out) override {
    if (done_) return false;
    out->Reset(output_schema_);
    while (out->num_rows() < kSqlBatchRows) {
      std::optional<Row> row = queue_.Pop();
      if (!row.has_value()) {
        done_ = true;
        std::lock_guard<std::mutex> lock(mu_);
        RETURN_IF_ERROR(pump_status_);
        break;
      }
      RETURN_IF_ERROR(out->AppendRow(*row));
    }
    return out->num_rows() > 0;
  }

 private:
  TableUdfPtr udf_;
  TableUdfContext context_;
  BatchIteratorPtr input_;
  SchemaPtr output_schema_;
  BlockingQueue<Row> queue_;
  std::thread pump_;
  std::mutex mu_;
  Status pump_status_;
  bool done_ = false;
};

/// Hash-based duplicate elimination over batches: unique rows accumulate in
/// a ColumnBatch keyed by content hash, without boxing. Used by both phases
/// of the vectorized DISTINCT.
struct BatchDedup {
  explicit BatchDedup(SchemaPtr schema) : acc(std::move(schema)) {}

  ColumnBatch acc;                   ///< Unique rows seen so far.
  std::vector<uint64_t> row_hashes;  ///< Hash per acc row (shuffle split).
  std::unordered_map<uint64_t, std::vector<int32_t>> buckets;

  Status Insert(const ColumnBatch& src, size_t row) {
    const uint64_t h = BatchRowHash(src, row);
    std::vector<int32_t>& bucket = buckets[h];
    for (const int32_t idx : bucket) {
      if (BatchRowsEqual(acc, static_cast<size_t>(idx), src, row)) {
        return Status::OK();
      }
    }
    const int32_t index = static_cast<int32_t>(row);
    RETURN_IF_ERROR(acc.AppendGather(src, &index, 1));
    bucket.push_back(static_cast<int32_t>(acc.num_rows()) - 1);
    row_hashes.push_back(h);
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Per-operator stats wrappers (EXPLAIN ANALYZE / the /queries endpoint).
// Counts and time accumulate in locals and flush to the shared atomics once,
// in the destructor, so the row-at-a-time hot loop pays no atomics per row.

/// Crude in-memory size of `rows` rows of `schema` — the same fixed
/// per-value width the planner's cost model assumes, so estimate and actual
/// memory numbers are comparable.
int64_t ApproxRowsBytes(const SchemaPtr& schema, int64_t rows) {
  const int64_t width =
      schema == nullptr ? 1 : std::max(1, schema->num_fields());
  return rows * width * 16;
}

class StatsRowIterator final : public RowIterator {
 public:
  StatsRowIterator(RowIteratorPtr child, OperatorActuals* actuals)
      : child_(std::move(child)), actuals_(actuals) {}

  ~StatsRowIterator() override {
    actuals_->AddRows(rows_);
    actuals_->AddMicros(micros_);
    actuals_->AddInvocation();
  }

  Result<bool> Next(Row* out) override {
    Stopwatch watch;
    auto has = child_->Next(out);
    micros_ += watch.ElapsedMicros();
    if (has.ok() && *has) ++rows_;
    return has;
  }

 private:
  RowIteratorPtr child_;
  OperatorActuals* actuals_;
  int64_t rows_ = 0;
  int64_t micros_ = 0;
};

class StatsBatchIterator final : public BatchIterator {
 public:
  StatsBatchIterator(BatchIteratorPtr child, OperatorActuals* actuals)
      : child_(std::move(child)), actuals_(actuals) {}

  ~StatsBatchIterator() override {
    actuals_->AddRows(rows_);
    actuals_->AddBatches(batches_);
    actuals_->AddMicros(micros_);
    actuals_->AddInvocation();
  }

  Result<bool> Next(ColumnBatch* out) override {
    Stopwatch watch;
    auto has = child_->Next(out);
    micros_ += watch.ElapsedMicros();
    if (has.ok() && *has) {
      ++batches_;
      rows_ += static_cast<int64_t>(out->num_rows());
    }
    return has;
  }

 private:
  BatchIteratorPtr child_;
  OperatorActuals* actuals_;
  int64_t rows_ = 0;
  int64_t batches_ = 0;
  int64_t micros_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// PipelineState

struct Executor::PipelineState {
  struct JoinArtifact {
    bool broadcast = true;
    std::shared_ptr<const JoinHashTable> broadcast_table;
    // Repartition mode: per-worker probe slices and hash tables.
    std::vector<std::vector<Row>> probe_partitions;
    std::vector<std::shared_ptr<const JoinHashTable>> worker_tables;
    // Vectorized mode: the build rows as ColumnBatches, gathered from
    // during probe instead of boxing build rows per match.
    std::shared_ptr<const ColumnBatch> broadcast_batch;
    std::vector<std::shared_ptr<const ColumnBatch>> worker_batches;
  };

  // Keyed by plan node identity.
  std::unordered_map<const PlanNode*, JoinArtifact> joins;
  std::unordered_map<const PlanNode*, PartitionedRows> materialized;
  std::vector<TableUdfPtr> udfs_to_finish;
};

// ---------------------------------------------------------------------------
// Executor

Executor::Executor(int num_workers, ClusterPtr cluster,
                   MetricsRegistry* metrics)
    : Executor(num_workers, std::move(cluster), metrics,
               VectorizedSqlEnabled()) {}

Executor::Executor(int num_workers, ClusterPtr cluster,
                   MetricsRegistry* metrics, bool vectorized)
    : num_workers_(num_workers),
      cluster_(std::move(cluster)),
      metrics_(metrics != nullptr ? metrics : &MetricsRegistry::Global()),
      vectorized_(vectorized) {
  SQLINK_CHECK(num_workers_ > 0);
}

Result<PartitionedRows> Executor::Execute(const PlanPtr& plan) {
  // Blocking operators never flow through the pipeline stats wrappers, so
  // their actuals are recorded here, around the full (inclusive) execution.
  OperatorActuals* actuals = nullptr;
  switch (plan->kind) {
    case PlanKind::kDistinct:
    case PlanKind::kAggregate:
    case PlanKind::kSort:
    case PlanKind::kLimit:
      actuals = NodeActuals(plan);
      break;
    default:
      break;
  }
  if (actuals == nullptr) return ExecuteNode(plan);
  Stopwatch watch;
  Result<PartitionedRows> result = ExecuteNode(plan);
  actuals->AddMicros(watch.ElapsedMicros());
  actuals->AddInvocation();
  if (result.ok()) {
    const int64_t produced = static_cast<int64_t>(result->TotalRows());
    actuals->AddRows(produced);
    if (plan->kind == PlanKind::kDistinct) {
      // The dedup set peaks at exactly the unique-row count.
      actuals->AddBuildRows(produced);
      actuals->MaxPeakBytes(ApproxRowsBytes(plan->output_schema, produced));
    }
  }
  return result;
}

Result<PartitionedRows> Executor::ExecuteNode(const PlanPtr& plan) {
  // Blocking operators (join builds, DISTINCT, aggregation, sort, limit)
  // materialize whole inputs; refuse to start one for a cancelled query.
  RETURN_IF_ERROR(CheckCancelled());
  switch (plan->kind) {
    case PlanKind::kDistinct:
      return vectorized_ ? ExecuteDistinctVectorized(plan)
                         : ExecuteDistinct(plan);
    case PlanKind::kAggregate:
      return ExecuteAggregate(plan);
    case PlanKind::kSort:
      return ExecuteSort(plan);
    case PlanKind::kLimit:
      return ExecuteLimit(plan);
    default:
      return ExecutePipeline(plan);
  }
}

std::vector<std::vector<Row>> Executor::Repartition(
    std::vector<std::vector<Row>> input, const std::vector<int>& keys) {
  const size_t n = static_cast<size_t>(num_workers_);
  // Per input partition, bucket locally in parallel; then concatenate.
  std::vector<std::vector<std::vector<Row>>> local(input.size());
  ParallelFor(input.size(), [&](size_t p) {
    local[p].resize(n);
    for (Row& row : input[p]) {
      const size_t target =
          keys.empty() ? p % n : HashRowKey(row, keys) % n;
      local[p][target].push_back(std::move(row));
    }
    input[p].clear();
  });
  std::vector<std::vector<Row>> output(n);
  for (size_t target = 0; target < n; ++target) {
    size_t total = 0;
    for (size_t p = 0; p < local.size(); ++p) total += local[p][target].size();
    output[target].reserve(total);
    for (size_t p = 0; p < local.size(); ++p) {
      auto& bucket = local[p][target];
      std::move(bucket.begin(), bucket.end(),
                std::back_inserter(output[target]));
      bucket.clear();
    }
  }
  return output;
}

Status Executor::Prepare(const PlanPtr& plan, PipelineState* state) {
  switch (plan->kind) {
    case PlanKind::kScan:
    case PlanKind::kMaterialized:
      return Status::OK();
    case PlanKind::kFilter:
    case PlanKind::kProject:
      return Prepare(plan->children[0], state);
    case PlanKind::kTableUdf:
      state->udfs_to_finish.push_back(plan->udf);
      if (!plan->children.empty()) {
        return Prepare(plan->children[0], state);
      }
      return Status::OK();
    case PlanKind::kHashJoin: {
      // Sort-merge choice (cost-based, equi keys only): materialize the
      // merged result here so both engine modes pipeline over it.
      if (plan->join_algo == JoinAlgo::kSortMerge && !plan->left_keys.empty()) {
        Stopwatch merge_watch;
        ASSIGN_OR_RETURN(PartitionedRows rows, ExecuteMergeJoin(plan));
        if (OperatorActuals* actuals = NodeActuals(plan)) {
          actuals->AddMicros(merge_watch.ElapsedMicros());
          actuals->AddRows(static_cast<int64_t>(rows.TotalRows()));
          actuals->AddInvocation();
        }
        state->materialized.emplace(plan.get(), std::move(rows));
        return Status::OK();
      }
      PipelineState::JoinArtifact artifact;
      artifact.broadcast = plan->broadcast_build;
      const SchemaPtr& build_schema = plan->children[1]->output_schema;
      ASSIGN_OR_RETURN(PartitionedRows build, Execute(plan->children[1]));
      if (plan->broadcast_build) {
        artifact.broadcast_table = std::make_shared<const JoinHashTable>(
            build.Gather(), plan->right_keys);
        if (OperatorActuals* actuals = NodeActuals(plan)) {
          const int64_t build_rows =
              static_cast<int64_t>(artifact.broadcast_table->rows().size());
          actuals->AddBuildRows(build_rows);
          actuals->MaxPeakBytes(ApproxRowsBytes(build_schema, build_rows));
        }
        if (vectorized_) {
          ASSIGN_OR_RETURN(
              ColumnBatch batch,
              ColumnBatch::FromRows(build_schema,
                                    artifact.broadcast_table->rows()));
          artifact.broadcast_batch =
              std::make_shared<const ColumnBatch>(std::move(batch));
        }
        state->joins.emplace(plan.get(), std::move(artifact));
        return Prepare(plan->children[0], state);
      }
      // Repartition join: both sides materialize and shuffle by key hash.
      ASSIGN_OR_RETURN(PartitionedRows probe, Execute(plan->children[0]));
      artifact.probe_partitions =
          Repartition(std::move(probe.partitions), plan->left_keys);
      std::vector<std::vector<Row>> build_parts =
          Repartition(std::move(build.partitions), plan->right_keys);
      artifact.worker_tables.resize(static_cast<size_t>(num_workers_));
      artifact.worker_batches.resize(static_cast<size_t>(num_workers_));
      std::vector<Status> batch_status(static_cast<size_t>(num_workers_));
      ParallelFor(static_cast<size_t>(num_workers_), [&](size_t w) {
        artifact.worker_tables[w] = std::make_shared<const JoinHashTable>(
            std::move(build_parts[w]), plan->right_keys);
        if (vectorized_) {
          auto batch = ColumnBatch::FromRows(build_schema,
                                             artifact.worker_tables[w]->rows());
          if (!batch.ok()) {
            batch_status[w] = batch.status();
            return;
          }
          artifact.worker_batches[w] =
              std::make_shared<const ColumnBatch>(std::move(batch).value());
        }
      });
      for (const Status& s : batch_status) RETURN_IF_ERROR(s);
      if (OperatorActuals* actuals = NodeActuals(plan)) {
        int64_t build_rows = 0;
        for (const auto& table : artifact.worker_tables) {
          build_rows += static_cast<int64_t>(table->rows().size());
        }
        actuals->AddBuildRows(build_rows);
        actuals->MaxPeakBytes(ApproxRowsBytes(build_schema, build_rows));
      }
      state->joins.emplace(plan.get(), std::move(artifact));
      return Status::OK();
    }
    default: {
      // A blocking operator inside a pipeline: execute it fully and expose
      // its partitions as a pipeline source.
      ASSIGN_OR_RETURN(PartitionedRows rows, Execute(plan));
      state->materialized.emplace(plan.get(), std::move(rows));
      return Status::OK();
    }
  }
}

Result<RowIteratorPtr> Executor::BuildPipeline(const PlanPtr& plan, int worker,
                                               PipelineState* state) {
  ASSIGN_OR_RETURN(RowIteratorPtr it, BuildPipelineNode(plan, worker, state));
  OperatorActuals* actuals = NodeActuals(plan);
  // Materialized nodes recorded their actuals on the blocking Execute path;
  // wrapping the replay iterator would double-count them.
  if (actuals == nullptr || state->materialized.count(plan.get()) > 0) {
    return it;
  }
  return RowIteratorPtr(new StatsRowIterator(std::move(it), actuals));
}

Result<RowIteratorPtr> Executor::BuildPipelineNode(const PlanPtr& plan,
                                                   int worker,
                                                   PipelineState* state) {
  // A node pre-materialized by Prepare (blocking op inside the pipeline).
  auto materialized = state->materialized.find(plan.get());
  if (materialized != state->materialized.end()) {
    return RowIteratorPtr(
        new VectorIterator(&materialized->second.partitions[worker]));
  }
  switch (plan->kind) {
    case PlanKind::kScan:
    case PlanKind::kMaterialized: {
      if (static_cast<size_t>(worker) >= plan->table->num_partitions()) {
        return RowIteratorPtr(new EmptyIterator());
      }
      return RowIteratorPtr(new VectorIterator(
          &plan->table->partition(static_cast<size_t>(worker))));
    }
    case PlanKind::kFilter: {
      ASSIGN_OR_RETURN(RowIteratorPtr child,
                       BuildPipeline(plan->children[0], worker, state));
      return RowIteratorPtr(
          new FilterIterator(std::move(child), plan->predicate));
    }
    case PlanKind::kProject: {
      ASSIGN_OR_RETURN(RowIteratorPtr child,
                       BuildPipeline(plan->children[0], worker, state));
      return RowIteratorPtr(
          new ProjectIterator(std::move(child), &plan->projections));
    }
    case PlanKind::kHashJoin: {
      auto it = state->joins.find(plan.get());
      if (it == state->joins.end()) {
        return Status::Internal("join not prepared");
      }
      PipelineState::JoinArtifact& artifact = it->second;
      if (artifact.broadcast) {
        ASSIGN_OR_RETURN(RowIteratorPtr probe,
                         BuildPipeline(plan->children[0], worker, state));
        return RowIteratorPtr(
            new HashJoinIterator(std::move(probe), artifact.broadcast_table,
                                 &plan->left_keys, plan->residual));
      }
      RowIteratorPtr probe(new VectorIterator(
          &artifact.probe_partitions[static_cast<size_t>(worker)]));
      return RowIteratorPtr(new HashJoinIterator(
          std::move(probe), artifact.worker_tables[static_cast<size_t>(worker)],
          &plan->left_keys, plan->residual));
    }
    case PlanKind::kTableUdf: {
      RowIteratorPtr input;
      if (!plan->children.empty()) {
        ASSIGN_OR_RETURN(input,
                         BuildPipeline(plan->children[0], worker, state));
      }
      TableUdfContext context;
      context.worker_id = worker;
      context.num_workers = num_workers_;
      context.cluster = cluster_;
      context.metrics = metrics_;
      context.query_id = query_id_;
      context.cancellation = cancellation_;
      context.spill_budget = spill_budget_;
      return RowIteratorPtr(
          new UdfPartitionIterator(plan->udf, context, std::move(input)));
    }
    default:
      return Status::Internal("unexpected plan kind in pipeline: " +
                              plan->ToString());
  }
}

Result<BatchIteratorPtr> Executor::BuildBatchPipeline(const PlanPtr& plan,
                                                      int worker,
                                                      PipelineState* state) {
  ASSIGN_OR_RETURN(BatchIteratorPtr it,
                   BuildBatchPipelineNode(plan, worker, state));
  OperatorActuals* actuals = NodeActuals(plan);
  if (actuals == nullptr || state->materialized.count(plan.get()) > 0) {
    return it;
  }
  return BatchIteratorPtr(new StatsBatchIterator(std::move(it), actuals));
}

Result<BatchIteratorPtr> Executor::BuildBatchPipelineNode(
    const PlanPtr& plan, int worker, PipelineState* state) {
  auto materialized = state->materialized.find(plan.get());
  if (materialized != state->materialized.end()) {
    return BatchIteratorPtr(new RowVectorBatchIterator(
        &materialized->second.partitions[worker], plan->output_schema));
  }
  switch (plan->kind) {
    case PlanKind::kScan:
    case PlanKind::kMaterialized: {
      if (static_cast<size_t>(worker) >= plan->table->num_partitions()) {
        return BatchIteratorPtr(new EmptyBatchIterator());
      }
      return BatchIteratorPtr(new RowVectorBatchIterator(
          &plan->table->partition(static_cast<size_t>(worker)),
          plan->output_schema));
    }
    case PlanKind::kFilter: {
      ASSIGN_OR_RETURN(BatchIteratorPtr child,
                       BuildBatchPipeline(plan->children[0], worker, state));
      return BatchIteratorPtr(
          new VectorizedFilterIterator(std::move(child), plan->predicate));
    }
    case PlanKind::kProject: {
      ASSIGN_OR_RETURN(BatchIteratorPtr child,
                       BuildBatchPipeline(plan->children[0], worker, state));
      return BatchIteratorPtr(new VectorizedProjectIterator(
          std::move(child), &plan->projections, plan->output_schema));
    }
    case PlanKind::kHashJoin: {
      auto it = state->joins.find(plan.get());
      if (it == state->joins.end()) {
        return Status::Internal("join not prepared");
      }
      PipelineState::JoinArtifact& artifact = it->second;
      if (artifact.broadcast) {
        ASSIGN_OR_RETURN(BatchIteratorPtr probe,
                         BuildBatchPipeline(plan->children[0], worker, state));
        return BatchIteratorPtr(new VectorizedHashJoinIterator(
            std::move(probe), artifact.broadcast_table,
            artifact.broadcast_batch, &plan->left_keys, plan->residual,
            plan->output_schema));
      }
      BatchIteratorPtr probe(new RowVectorBatchIterator(
          &artifact.probe_partitions[static_cast<size_t>(worker)],
          plan->children[0]->output_schema));
      return BatchIteratorPtr(new VectorizedHashJoinIterator(
          std::move(probe),
          artifact.worker_tables[static_cast<size_t>(worker)],
          artifact.worker_batches[static_cast<size_t>(worker)],
          &plan->left_keys, plan->residual, plan->output_schema));
    }
    case PlanKind::kTableUdf: {
      BatchIteratorPtr input;
      if (!plan->children.empty()) {
        ASSIGN_OR_RETURN(input,
                         BuildBatchPipeline(plan->children[0], worker, state));
      }
      TableUdfContext context;
      context.worker_id = worker;
      context.num_workers = num_workers_;
      context.cluster = cluster_;
      context.metrics = metrics_;
      context.query_id = query_id_;
      context.cancellation = cancellation_;
      context.spill_budget = spill_budget_;
      return BatchIteratorPtr(new UdfBatchPartitionIterator(
          plan->udf, context, std::move(input), plan->output_schema));
    }
    default:
      return Status::Internal("unexpected plan kind in batch pipeline: " +
                              plan->ToString());
  }
}

Result<PartitionedRows> Executor::ExecutePipeline(const PlanPtr& plan) {
  TraceSpan span("sql.execute");
  span.AddAttribute("workers", num_workers_);
  Stopwatch timer;
  PipelineState state;
  Status prepare_status = Prepare(plan, &state);

  PartitionedRows output;
  output.schema = plan->output_schema;
  output.partitions.resize(static_cast<size_t>(num_workers_));

  Status run_status = prepare_status;
  if (run_status.ok() && vectorized_) {
    run_status = ParallelWorkers(num_workers_, [&](int worker) -> Status {
      ASSIGN_OR_RETURN(BatchIteratorPtr it,
                       BuildBatchPipeline(plan, worker, &state));
      std::vector<Row>& out = output.partitions[static_cast<size_t>(worker)];
      ColumnBatch batch;
      Row row;
      for (;;) {
        // `sql.exec.batch` paces the pipeline (delay actions) so tests can
        // hold a query in-flight deterministically; shares the cancellation
        // poll cadence.
        (void)SQLINK_FAILPOINT("sql.exec.batch");
        RETURN_IF_ERROR(CheckCancelled());
        ASSIGN_OR_RETURN(bool has, it->Next(&batch));
        if (!has) break;
        for (size_t r = 0; r < batch.num_rows(); ++r) {
          batch.EmitRow(r, &row);
          out.push_back(row);
        }
      }
      return Status::OK();
    });
  } else if (run_status.ok()) {
    run_status = ParallelWorkers(num_workers_, [&](int worker) -> Status {
      ASSIGN_OR_RETURN(RowIteratorPtr it, BuildPipeline(plan, worker, &state));
      std::vector<Row>& out = output.partitions[static_cast<size_t>(worker)];
      Row row;
      int64_t since_check = 0;
      for (;;) {
        if (++since_check >= 1024) {  // Row mode: poll every ~1k rows.
          since_check = 0;
          (void)SQLINK_FAILPOINT("sql.exec.batch");
          RETURN_IF_ERROR(CheckCancelled());
        }
        ASSIGN_OR_RETURN(bool has, it->Next(&row));
        if (!has) break;
        out.push_back(std::move(row));
      }
      return Status::OK();
    });
  }

  // UDF epilogue runs regardless of success so resources are released; its
  // error surfaces only when the run itself succeeded.
  for (const TableUdfPtr& udf : state.udfs_to_finish) {
    const Status finish_status = udf->Finish();
    if (run_status.ok() && !finish_status.ok()) run_status = finish_status;
  }
  int64_t rows_emitted = 0;
  for (const std::vector<Row>& partition : output.partitions) {
    rows_emitted += static_cast<int64_t>(partition.size());
  }
  span.AddAttribute("rows", rows_emitted);
  metrics_->GetHistogram("sql.executor.pipeline_micros")
      ->Record(timer.ElapsedMicros());
  if (!run_status.ok()) span.SetError();
  RETURN_IF_ERROR(run_status);
  metrics_->GetCounter("sql.executor.rows_emitted")->Add(rows_emitted);
  return output;
}

Result<PartitionedRows> Executor::ExecuteDistinct(const PlanPtr& plan) {
  ASSIGN_OR_RETURN(PartitionedRows input, Execute(plan->children[0]));

  // Local dedup, shuffle by whole-row hash, final dedup per partition.
  ParallelFor(input.partitions.size(), [&](size_t p) {
    std::map<Row, bool, RowLess> seen;
    for (Row& row : input.partitions[p]) {
      seen.emplace(std::move(row), true);
    }
    input.partitions[p].clear();
    for (auto& [row, unused] : seen) {
      input.partitions[p].push_back(row);
    }
  });

  std::vector<int> all_columns;
  for (int i = 0; i < plan->output_schema->num_fields(); ++i) {
    all_columns.push_back(i);
  }
  PartitionedRows output;
  output.schema = plan->output_schema;
  output.partitions = Repartition(std::move(input.partitions), all_columns);
  ParallelFor(output.partitions.size(), [&](size_t p) {
    std::map<Row, bool, RowLess> seen;
    for (Row& row : output.partitions[p]) {
      seen.emplace(std::move(row), true);
    }
    output.partitions[p].clear();
    for (auto& [row, unused] : seen) {
      output.partitions[p].push_back(row);
    }
  });
  return output;
}

Result<PartitionedRows> Executor::ExecuteDistinctVectorized(
    const PlanPtr& plan) {
  // Same two-phase shape as ExecuteDistinct, but the child runs as a batch
  // pipeline and dedup works on unboxed ColumnBatch rows: local dedup per
  // worker, shuffle unique rows by content hash, final dedup per target.
  const PlanPtr& child = plan->children[0];
  const size_t n = static_cast<size_t>(num_workers_);

  PipelineState state;
  Status run_status = Prepare(child, &state);

  // shards[worker][target]: locally-unique rows routed to `target`.
  std::vector<std::vector<ColumnBatch>> shards(n);
  if (run_status.ok()) {
    run_status = ParallelWorkers(num_workers_, [&](int worker) -> Status {
      ASSIGN_OR_RETURN(BatchIteratorPtr it,
                       BuildBatchPipeline(child, worker, &state));
      BatchDedup dedup(plan->output_schema);
      ColumnBatch batch;
      for (;;) {
        ASSIGN_OR_RETURN(bool has, it->Next(&batch));
        if (!has) break;
        for (size_t r = 0; r < batch.num_rows(); ++r) {
          RETURN_IF_ERROR(dedup.Insert(batch, r));
        }
      }
      // Split this worker's unique rows by hash into per-target gathers.
      std::vector<std::vector<int32_t>> routed(n);
      for (size_t r = 0; r < dedup.acc.num_rows(); ++r) {
        routed[dedup.row_hashes[r] % n].push_back(static_cast<int32_t>(r));
      }
      std::vector<ColumnBatch>& out = shards[static_cast<size_t>(worker)];
      for (size_t t = 0; t < n; ++t) {
        ColumnBatch shard(plan->output_schema);
        if (!routed[t].empty()) {
          RETURN_IF_ERROR(shard.AppendGather(dedup.acc, routed[t].data(),
                                             routed[t].size()));
        }
        out.push_back(std::move(shard));
      }
      return Status::OK();
    });
  }
  for (const TableUdfPtr& udf : state.udfs_to_finish) {
    const Status finish_status = udf->Finish();
    if (run_status.ok() && !finish_status.ok()) run_status = finish_status;
  }
  RETURN_IF_ERROR(run_status);

  PartitionedRows output;
  output.schema = plan->output_schema;
  output.partitions.resize(n);
  std::vector<Status> target_status(n);
  ParallelFor(n, [&](size_t t) {
    BatchDedup dedup(plan->output_schema);
    for (size_t w = 0; w < n; ++w) {
      const ColumnBatch& shard = shards[w][t];
      for (size_t r = 0; r < shard.num_rows(); ++r) {
        const Status s = dedup.Insert(shard, r);
        if (!s.ok()) {
          target_status[t] = s;
          return;
        }
      }
    }
    output.partitions[t].reserve(dedup.acc.num_rows());
    Row row;
    for (size_t r = 0; r < dedup.acc.num_rows(); ++r) {
      dedup.acc.EmitRow(r, &row);
      output.partitions[t].push_back(row);
    }
  });
  for (const Status& s : target_status) RETURN_IF_ERROR(s);
  return output;
}

namespace {

/// Lexicographic three-way compare of the key columns of two rows, using
/// Value's cross-numeric, NULL-first ordering.
int CompareKeys(const Row& a, const std::vector<int>& a_keys, const Row& b,
                const std::vector<int>& b_keys) {
  for (size_t i = 0; i < a_keys.size(); ++i) {
    const Value& av = a[static_cast<size_t>(a_keys[i])];
    const Value& bv = b[static_cast<size_t>(b_keys[i])];
    if (av < bv) return -1;
    if (bv < av) return 1;
  }
  return 0;
}

}  // namespace

Result<PartitionedRows> Executor::ExecuteMergeJoin(const PlanPtr& plan) {
  // Repartition both sides by key so equal keys land on the same worker,
  // sort each worker's slices, then merge equal-key runs. NULL keys never
  // match (dropped up front), and emitted pairs are guarded by the exact
  // RowKeyEquals check so ordering-equal but type-distinct numeric keys
  // (1 vs 1.0) behave exactly like the hash join.
  ASSIGN_OR_RETURN(PartitionedRows probe, Execute(plan->children[0]));
  ASSIGN_OR_RETURN(PartitionedRows build, Execute(plan->children[1]));
  std::vector<std::vector<Row>> probe_parts =
      Repartition(std::move(probe.partitions), plan->left_keys);
  std::vector<std::vector<Row>> build_parts =
      Repartition(std::move(build.partitions), plan->right_keys);

  PartitionedRows output;
  output.schema = plan->output_schema;
  output.partitions.resize(static_cast<size_t>(num_workers_));
  Status run_status = ParallelWorkers(num_workers_, [&](int w) -> Status {
    std::vector<Row>& left = probe_parts[static_cast<size_t>(w)];
    std::vector<Row>& right = build_parts[static_cast<size_t>(w)];
    auto drop_null_keys = [](std::vector<Row>* rows,
                             const std::vector<int>& keys) {
      rows->erase(std::remove_if(rows->begin(), rows->end(),
                                 [&](const Row& row) {
                                   return HasNullKey(row, keys);
                                 }),
                  rows->end());
    };
    drop_null_keys(&left, plan->left_keys);
    drop_null_keys(&right, plan->right_keys);
    std::sort(left.begin(), left.end(), [&](const Row& a, const Row& b) {
      return CompareKeys(a, plan->left_keys, b, plan->left_keys) < 0;
    });
    std::sort(right.begin(), right.end(), [&](const Row& a, const Row& b) {
      return CompareKeys(a, plan->right_keys, b, plan->right_keys) < 0;
    });

    std::vector<Row>& out = output.partitions[static_cast<size_t>(w)];
    size_t li = 0;
    size_t ri = 0;
    Row joined;
    while (li < left.size() && ri < right.size()) {
      const int cmp =
          CompareKeys(left[li], plan->left_keys, right[ri], plan->right_keys);
      if (cmp < 0) {
        ++li;
        continue;
      }
      if (cmp > 0) {
        ++ri;
        continue;
      }
      // Equal-key runs on both sides; emit the cross product of the runs.
      size_t lend = li + 1;
      while (lend < left.size() &&
             CompareKeys(left[lend], plan->left_keys, left[li],
                         plan->left_keys) == 0) {
        ++lend;
      }
      size_t rend = ri + 1;
      while (rend < right.size() &&
             CompareKeys(right[rend], plan->right_keys, right[ri],
                         plan->right_keys) == 0) {
        ++rend;
      }
      for (size_t l = li; l < lend; ++l) {
        for (size_t r = ri; r < rend; ++r) {
          // Ordering-equal is weaker than join equality: re-check exactly.
          if (!RowKeyEquals(left[l], plan->left_keys, right[r],
                            plan->right_keys)) {
            continue;
          }
          joined = left[l];
          joined.insert(joined.end(), right[r].begin(), right[r].end());
          if (plan->residual != nullptr) {
            ASSIGN_OR_RETURN(Value keep, plan->residual->Evaluate(joined));
            if (!IsTruthy(keep)) continue;
          }
          out.push_back(joined);
        }
      }
      li = lend;
      ri = rend;
    }
    return Status::OK();
  });
  RETURN_IF_ERROR(run_status);
  metrics_->GetCounter("sql.executor.merge_joins")->Add(1);
  return output;
}

namespace {

/// Partial aggregation state for one (group, aggregate) pair.
struct AggState {
  int64_t count = 0;
  int64_t int_sum = 0;
  double double_sum = 0;
  Value extreme;  // MIN/MAX running value.
};

Status UpdateState(const AggregateSpec& spec, const Row& input,
                   AggState* state) {
  if (spec.func == AggFunc::kCountStar) {
    ++state->count;
    return Status::OK();
  }
  ASSIGN_OR_RETURN(Value v, spec.argument->Evaluate(input));
  if (v.is_null()) return Status::OK();  // Aggregates skip NULLs.
  switch (spec.func) {
    case AggFunc::kCount:
      ++state->count;
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      ++state->count;
      if (spec.output_type == DataType::kInt64 && v.is_int64()) {
        state->int_sum += v.int64_value();
      } else {
        ASSIGN_OR_RETURN(double d, v.AsDouble());
        state->double_sum += d;
      }
      break;
    }
    case AggFunc::kMin:
      if (state->count == 0 || v < state->extreme) state->extreme = v;
      ++state->count;
      break;
    case AggFunc::kMax:
      if (state->count == 0 || state->extreme < v) state->extreme = v;
      ++state->count;
      break;
    case AggFunc::kCountStar:
      break;
  }
  return Status::OK();
}

void MergeState(const AggregateSpec& spec, const AggState& other,
                AggState* state) {
  switch (spec.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      state->count += other.count;
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      state->count += other.count;
      state->int_sum += other.int_sum;
      state->double_sum += other.double_sum;
      break;
    case AggFunc::kMin:
      if (other.count > 0 &&
          (state->count == 0 || other.extreme < state->extreme)) {
        state->extreme = other.extreme;
      }
      state->count += other.count;
      break;
    case AggFunc::kMax:
      if (other.count > 0 &&
          (state->count == 0 || state->extreme < other.extreme)) {
        state->extreme = other.extreme;
      }
      state->count += other.count;
      break;
  }
}

Value FinalizeState(const AggregateSpec& spec, const AggState& state) {
  switch (spec.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value::Int64(state.count);
    case AggFunc::kSum:
      if (state.count == 0) return Value::Null();
      return spec.output_type == DataType::kInt64
                 ? Value::Int64(state.int_sum)
                 : Value::Double(state.double_sum +
                                 static_cast<double>(state.int_sum));
    case AggFunc::kAvg:
      if (state.count == 0) return Value::Null();
      return Value::Double(
          (state.double_sum + static_cast<double>(state.int_sum)) /
          static_cast<double>(state.count));
    case AggFunc::kMin:
    case AggFunc::kMax:
      return state.count == 0 ? Value::Null() : state.extreme;
  }
  return Value::Null();
}

/// Partial-state row layout: group keys, then per aggregate
/// (count, int_sum, double_sum, extreme).
Row EncodePartial(const Row& key, const std::vector<AggState>& states) {
  Row row = key;
  for (const AggState& s : states) {
    row.push_back(Value::Int64(s.count));
    row.push_back(Value::Int64(s.int_sum));
    row.push_back(Value::Double(s.double_sum));
    row.push_back(s.extreme);
  }
  return row;
}

void DecodePartial(const Row& row, size_t num_keys, size_t num_aggs, Row* key,
                   std::vector<AggState>* states) {
  key->assign(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(num_keys));
  states->resize(num_aggs);
  size_t pos = num_keys;
  for (AggState& s : *states) {
    s.count = row[pos++].int64_value();
    s.int_sum = row[pos++].int64_value();
    s.double_sum = row[pos++].double_value();
    s.extreme = row[pos++];
  }
}

}  // namespace

Result<PartitionedRows> Executor::ExecuteAggregate(const PlanPtr& plan) {
  ASSIGN_OR_RETURN(PartitionedRows input, Execute(plan->children[0]));
  const size_t num_keys = plan->group_by.size();
  const size_t num_aggs = plan->aggregates.size();

  // Phase 1: per-worker partial aggregation.
  std::vector<std::vector<Row>> partials(input.partitions.size());
  Status status = ParallelWorkers(
      static_cast<int>(input.partitions.size()), [&](int p) -> Status {
        std::map<Row, std::vector<AggState>, RowLess> groups;
        for (const Row& row : input.partitions[static_cast<size_t>(p)]) {
          Row key;
          key.reserve(num_keys);
          for (const BoundExprPtr& expr : plan->group_by) {
            ASSIGN_OR_RETURN(Value v, expr->Evaluate(row));
            key.push_back(std::move(v));
          }
          auto [it, inserted] =
              groups.try_emplace(std::move(key), num_aggs);
          for (size_t a = 0; a < num_aggs; ++a) {
            RETURN_IF_ERROR(
                UpdateState(plan->aggregates[a], row, &it->second[a]));
          }
        }
        for (const auto& [key, states] : groups) {
          partials[static_cast<size_t>(p)].push_back(
              EncodePartial(key, states));
        }
        return Status::OK();
      });
  RETURN_IF_ERROR(status);

  // Phase 2: shuffle partials by group key and merge.
  std::vector<int> key_columns;
  for (size_t i = 0; i < num_keys; ++i) {
    key_columns.push_back(static_cast<int>(i));
  }
  std::vector<std::vector<Row>> shuffled;
  if (num_keys == 0) {
    // Global aggregate: merge everything on worker 0.
    shuffled.resize(static_cast<size_t>(num_workers_));
    for (auto& p : partials) {
      for (Row& row : p) shuffled[0].push_back(std::move(row));
    }
  } else {
    shuffled = Repartition(std::move(partials), key_columns);
  }

  PartitionedRows output;
  output.schema = plan->output_schema;
  output.partitions.resize(static_cast<size_t>(num_workers_));
  status = ParallelWorkers(num_workers_, [&](int w) -> Status {
    std::map<Row, std::vector<AggState>, RowLess> groups;
    Row key;
    std::vector<AggState> states;
    for (const Row& partial : shuffled[static_cast<size_t>(w)]) {
      DecodePartial(partial, num_keys, num_aggs, &key, &states);
      auto [it, inserted] = groups.try_emplace(key, num_aggs);
      for (size_t a = 0; a < num_aggs; ++a) {
        MergeState(plan->aggregates[a], states[a], &it->second[a]);
      }
    }
    // A global aggregate over zero rows still yields one output row.
    if (num_keys == 0 && groups.empty() && w == 0) {
      groups.try_emplace(Row{}, num_aggs);
    }
    for (const auto& [group_key, group_states] : groups) {
      Row out = group_key;
      for (size_t a = 0; a < num_aggs; ++a) {
        out.push_back(FinalizeState(plan->aggregates[a], group_states[a]));
      }
      output.partitions[static_cast<size_t>(w)].push_back(std::move(out));
    }
    return Status::OK();
  });
  RETURN_IF_ERROR(status);
  return output;
}

Result<PartitionedRows> Executor::ExecuteSort(const PlanPtr& plan) {
  ASSIGN_OR_RETURN(PartitionedRows input, Execute(plan->children[0]));
  std::vector<Row> all = input.Gather();
  std::stable_sort(all.begin(), all.end(), [&](const Row& a, const Row& b) {
    for (size_t i = 0; i < plan->sort_keys.size(); ++i) {
      const size_t k = static_cast<size_t>(plan->sort_keys[i]);
      const bool desc = plan->sort_descending[i];
      if (a[k] < b[k]) return !desc;
      if (b[k] < a[k]) return desc;
    }
    return false;
  });
  PartitionedRows output;
  output.schema = plan->output_schema;
  output.partitions.resize(static_cast<size_t>(num_workers_));
  output.partitions[0] = std::move(all);
  return output;
}

Result<PartitionedRows> Executor::ExecuteLimit(const PlanPtr& plan) {
  const PlanPtr& child = plan->children[0];
  PartitionedRows output;
  output.schema = plan->output_schema;
  output.partitions.resize(static_cast<size_t>(num_workers_));

  // Early termination: when the child is pipelinable, pull rows worker by
  // worker and stop as soon as the limit is met, instead of computing the
  // full child result.
  const bool pipelinable = child->kind == PlanKind::kScan ||
                           child->kind == PlanKind::kMaterialized ||
                           child->kind == PlanKind::kFilter ||
                           child->kind == PlanKind::kProject ||
                           child->kind == PlanKind::kHashJoin ||
                           child->kind == PlanKind::kTableUdf;
  if (pipelinable) {
    PipelineState state;
    RETURN_IF_ERROR(Prepare(child, &state));
    int64_t remaining = plan->limit;
    Status status;
    for (int worker = 0; worker < num_workers_ && remaining > 0 && status.ok();
         ++worker) {
      auto it = BuildPipeline(child, worker, &state);
      if (!it.ok()) {
        status = it.status();
        break;
      }
      Row row;
      while (remaining > 0) {
        auto has = (*it)->Next(&row);
        if (!has.ok()) {
          status = has.status();
          break;
        }
        if (!*has) break;
        output.partitions[0].push_back(std::move(row));
        --remaining;
      }
    }
    for (const TableUdfPtr& udf : state.udfs_to_finish) {
      // A UDF interrupted by the limit may report a cancelled epilogue;
      // that is expected, everything else surfaces.
      const Status finish_status = udf->Finish();
      if (status.ok() && !finish_status.ok() &&
          !finish_status.IsCancelled()) {
        status = finish_status;
      }
    }
    RETURN_IF_ERROR(status);
    return output;
  }

  ASSIGN_OR_RETURN(PartitionedRows input, Execute(child));
  int64_t remaining = plan->limit;
  for (auto& partition : input.partitions) {
    for (Row& row : partition) {
      if (remaining <= 0) break;
      output.partitions[0].push_back(std::move(row));
      --remaining;
    }
  }
  return output;
}

}  // namespace sqlink
