#ifndef SQLINK_MQ_BROKER_H_
#define SQLINK_MQ_BROKER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace sqlink {

/// A minimal Kafka-like message broker — the paper's §8 future work
/// ("investigate using a message passing system like Kafka to pass the
/// data between SQL and ML workers. Kafka would guarantee at least one
/// read, in case of failures. Kafka could also be the system to cache the
/// data when the ML workers are not fast enough to consume the data").
///
/// Topics are split into numbered partitions; each partition is an
/// append-only *retained* log of messages addressed by offset. Producers
/// append; consumers poll from any offset, so
///  - a slow consumer simply lags (the log buffers for it), and
///  - a crashed consumer resumes from its last committed offset instead of
///    forcing a full replay — at-least-once delivery.
///
/// The broker also stores committed offsets per (group, topic, partition),
/// like Kafka's __consumer_offsets.
class MessageBroker {
 public:
  struct TopicConfig {
    int num_partitions = 1;
    /// Retention cap per partition (messages); 0 = unlimited. When
    /// exceeded, the oldest messages are dropped and their offsets become
    /// unreadable (like Kafka retention).
    size_t retention_messages = 0;
  };

  struct Message {
    int64_t offset = 0;
    std::string payload;
  };

  MessageBroker() = default;
  ~MessageBroker();
  MessageBroker(const MessageBroker&) = delete;
  MessageBroker& operator=(const MessageBroker&) = delete;

  Status CreateTopic(const std::string& topic, TopicConfig config);
  bool HasTopic(const std::string& topic) const;
  Result<int> NumPartitions(const std::string& topic) const;

  /// Appends to a partition; returns the assigned offset.
  Result<int64_t> Produce(const std::string& topic, int partition,
                          std::string payload);

  /// Marks a partition complete: consumers see end-of-partition once they
  /// pass the last offset.
  Status SealPartition(const std::string& topic, int partition);

  /// Polls up to `max_messages` starting at `offset`. Blocks until data is
  /// available, the partition is sealed, or `timeout_ms` elapses (0 = no
  /// wait). An empty result with sealed=true means end of partition.
  struct PollResult {
    std::vector<Message> messages;
    bool sealed = false;
  };
  Result<PollResult> Poll(const std::string& topic, int partition,
                          int64_t offset, size_t max_messages,
                          int timeout_ms);

  /// First offset still retained (0 unless retention dropped messages).
  Result<int64_t> BeginOffset(const std::string& topic, int partition) const;
  /// One past the last appended offset.
  Result<int64_t> EndOffset(const std::string& topic, int partition) const;

  /// Consumer-group offset bookkeeping (at-least-once resume points).
  Status CommitOffset(const std::string& group, const std::string& topic,
                      int partition, int64_t offset);
  /// Committed offset, or 0 when the group never committed.
  Result<int64_t> CommittedOffset(const std::string& group,
                                  const std::string& topic,
                                  int partition) const;

  /// Total messages currently retained across all topics.
  size_t TotalRetainedMessages() const;

 private:
  struct Partition {
    std::vector<std::string> messages;  // messages[i] has offset base+i.
    int64_t base_offset = 0;            // Offset of messages.front().
    bool sealed = false;
  };
  struct Topic {
    TopicConfig config;
    std::vector<Partition> partitions;
  };

  Result<Partition*> FindPartition(const std::string& topic, int partition);
  Result<const Partition*> FindPartition(const std::string& topic,
                                         int partition) const;

  mutable std::mutex mu_;
  mutable std::condition_variable data_available_;
  std::map<std::string, Topic> topics_;
  std::map<std::string, int64_t> committed_;  // "group/topic/partition".
};

using MessageBrokerPtr = std::shared_ptr<MessageBroker>;

}  // namespace sqlink

#endif  // SQLINK_MQ_BROKER_H_
