#ifndef SQLINK_STREAM_SOCKET_H_
#define SQLINK_STREAM_SOCKET_H_

#include <memory>
#include <string>

#include "common/result.h"

namespace sqlink {

/// Thin RAII wrapper over a connected TCP socket with whole-buffer
/// send/receive. Move-only. All streaming-transfer traffic (coordinator
/// control plane and SQL→ML data plane) flows through these.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket();

  TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends the entire buffer (loops over partial writes).
  Status SendAll(std::string_view data);

  /// Receives exactly `n` bytes into `*out` (resized). A clean remote close
  /// before any byte yields kNetworkError with message "closed".
  Status RecvExactly(size_t n, std::string* out);

  void Close();

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to 127.0.0.1 (the simulated cluster runs on
/// loopback). Port 0 picks an ephemeral port.
class TcpListener {
 public:
  static Result<TcpListener> Listen(int port);

  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Blocks for the next connection. Returns kCancelled after Close().
  Result<TcpSocket> Accept();

  /// Unblocks pending Accepts.
  void Close();

  int port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Connects to host:port. Only loopback/hostname resolution via IPv4.
Result<TcpSocket> TcpConnect(const std::string& host, int port);

}  // namespace sqlink

#endif  // SQLINK_STREAM_SOCKET_H_
