# Empty compiler generated dependencies file for bench_parallelism_k.
# This may be replaced when dependencies are built.
