#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sqlink {

std::vector<std::string> SplitString(std::string_view input, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delimiter) {
      parts.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delimiter) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += delimiter;
    result += parts[i];
  }
  return result;
}

std::string_view TrimWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLowerAscii(std::string_view input) {
  std::string result(input);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string ToUpperAscii(std::string_view input) {
  std::string result(input);
  for (char& c : result) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<int64_t> ParseInt64(std::string_view text) {
  if (text.empty()) return Status::ParseError("empty integer literal");
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid integer literal: " + buf);
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view text) {
  if (text.empty()) return Status::ParseError("empty double literal");
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid double literal: " + buf);
  }
  return value;
}

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  Result<int64_t> parsed = ParseInt64(value);
  return parsed.ok() ? *parsed : fallback;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* const kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  return buf;
}

}  // namespace sqlink
