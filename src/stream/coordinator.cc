#include "stream/coordinator.h"

#include <chrono>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/status_macros.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace sqlink {

namespace {

const char* HandlerSpanName(FrameType type) {
  switch (type) {
    case FrameType::kRegisterSql:
      return "coordinator.register_sql";
    case FrameType::kGetSplits:
      return "coordinator.get_splits";
    case FrameType::kRegisterMl:
      return "coordinator.match";
    case FrameType::kReportFailure:
      return "coordinator.rematch";
    default:
      return "coordinator.unknown";
  }
}

}  // namespace

Result<std::unique_ptr<StreamCoordinator>> StreamCoordinator::Start(
    Options options) {
  auto coordinator =
      std::unique_ptr<StreamCoordinator>(new StreamCoordinator(options));
  ASSIGN_OR_RETURN(coordinator->listener_, TcpListener::Listen(options.port));
  coordinator->accept_thread_ =
      std::thread([c = coordinator.get()] { c->AcceptLoop(); });
  return coordinator;
}

std::string StreamCoordinator::Checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  PutVarint64Signed(&out, expected_sql_workers_);
  PutVarint64(&out, sql_workers_.size());
  for (const auto& [worker_id, registration] : sql_workers_) {
    PutLengthPrefixed(&out, registration.Encode());
  }
  out.push_back(splits_ready_ ? 1 : 0);
  if (splits_ready_) {
    PutLengthPrefixed(&out, splits_.Encode());
  }
  return out;
}

Result<std::unique_ptr<StreamCoordinator>> StreamCoordinator::Resume(
    Options options, std::string_view checkpoint) {
  auto coordinator =
      std::unique_ptr<StreamCoordinator>(new StreamCoordinator(options));
  {
    Decoder decoder(checkpoint);
    ASSIGN_OR_RETURN(int64_t expected, decoder.GetVarint64Signed());
    coordinator->expected_sql_workers_ = static_cast<int>(expected);
    ASSIGN_OR_RETURN(uint64_t workers, decoder.GetVarint64());
    for (uint64_t i = 0; i < workers; ++i) {
      ASSIGN_OR_RETURN(std::string_view encoded, decoder.GetLengthPrefixed());
      ASSIGN_OR_RETURN(RegisterSqlMessage registration,
                       RegisterSqlMessage::Decode(encoded));
      coordinator->sql_workers_[registration.worker_id] = registration;
    }
    ASSIGN_OR_RETURN(uint8_t ready, decoder.GetByte());
    if (ready != 0) {
      ASSIGN_OR_RETURN(std::string_view encoded, decoder.GetLengthPrefixed());
      ASSIGN_OR_RETURN(coordinator->splits_, SplitsMessage::Decode(encoded));
      coordinator->splits_ready_ = true;
    }
  }
  ASSIGN_OR_RETURN(coordinator->listener_, TcpListener::Listen(options.port));
  coordinator->accept_thread_ =
      std::thread([c = coordinator.get()] { c->AcceptLoop(); });
  return coordinator;
}

StreamCoordinator::~StreamCoordinator() { Stop(); }

void StreamCoordinator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    splits_ready_cv_.notify_all();
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    for (std::thread& handler : handlers_) {
      if (handler.joinable()) handler.join();
    }
    handlers_.clear();
  }
  if (launcher_thread_.joinable()) launcher_thread_.join();
}

int StreamCoordinator::registered_sql_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sql_workers_.size());
}

int StreamCoordinator::registered_ml_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return registered_ml_;
}

int StreamCoordinator::reported_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

void StreamCoordinator::AcceptLoop() {
  for (;;) {
    auto socket = listener_.Accept();
    if (!socket.ok()) return;  // Closed.
    std::lock_guard<std::mutex> lock(handlers_mu_);
    handlers_.emplace_back(
        [this, s = std::make_shared<TcpSocket>(std::move(*socket))]() mutable {
          HandleConnection(std::move(*s));
        });
  }
}

void StreamCoordinator::HandleConnection(TcpSocket socket) {
  auto frame = RecvFrame(&socket);
  if (!frame.ok()) return;
  // The handler span continues the trace carried in the frame header: its
  // parent is the remote caller's span, so one query's trace crosses the
  // control plane.
  TraceSpan span(HandlerSpanName(frame->type), frame->trace);
  Stopwatch timer;
  Status status;
  switch (frame->type) {
    case FrameType::kRegisterSql:
      status = HandleRegisterSql(&socket, *frame);
      MetricsRegistry::Global().Increment("coordinator.register_sql.count");
      break;
    case FrameType::kGetSplits:
      status = HandleGetSplits(&socket);
      MetricsRegistry::Global().Increment("coordinator.get_splits.count");
      break;
    case FrameType::kRegisterMl:
      status = HandleRegisterMl(&socket, *frame, /*is_failure=*/false);
      MetricsRegistry::Global().Increment("coordinator.match.count");
      break;
    case FrameType::kReportFailure:
      status = HandleRegisterMl(&socket, *frame, /*is_failure=*/true);
      MetricsRegistry::Global().Increment("coordinator.rematch.count");
      break;
    default:
      status = Status::InvalidArgument("unexpected control frame");
      break;
  }
  MetricsRegistry::Global()
      .GetHistogram("coordinator.handler_micros")
      ->Record(timer.ElapsedMicros());
  if (!status.ok()) {
    span.SetError();
    LOG_WARNING() << "coordinator handler: " << status;
    (void)SendFrame(&socket, FrameType::kError, status.ToString());
  }
}

Status StreamCoordinator::HandleRegisterSql(TcpSocket* socket,
                                            const Frame& frame) {
  if (SQLINK_FAILPOINT("coordinator.register_sql") != FailpointOutcome::kNone) {
    // Drop the registration on the floor: the worker sees a dead connection
    // and must retry. Re-registration is idempotent (map overwrite), so this
    // models a coordinator that crashed after reading the request.
    socket->Close();
    return Status::OK();
  }
  ASSIGN_OR_RETURN(RegisterSqlMessage msg,
                   RegisterSqlMessage::Decode(frame.payload));
  bool all_registered = false;
  std::string command;
  std::vector<std::string> args;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (expected_sql_workers_ == 0) {
      expected_sql_workers_ = msg.num_workers;
    } else if (expected_sql_workers_ != msg.num_workers) {
      return Status::InvalidArgument("inconsistent SQL worker count");
    }
    sql_workers_[msg.worker_id] = msg;
    if (static_cast<int>(sql_workers_.size()) == expected_sql_workers_ &&
        !splits_ready_) {
      // All registered (step 1 complete): build the split table — m = n·k
      // splits in n groups, each split located at its SQL worker's host —
      // and launch the ML job (step 2).
      const int k = std::max(1, options_.splits_per_worker);
      splits_.schema = msg.schema;
      int split_id = 0;
      for (const auto& [worker_id, worker] : sql_workers_) {
        for (int j = 0; j < k; ++j) {
          splits_.splits.push_back(StreamSplitInfo{
              split_id++, worker_id, worker.host, worker.port});
        }
      }
      splits_ready_ = true;
      command = msg.command;
      args = msg.args;
      all_registered = true;
      splits_ready_cv_.notify_all();
    }
  }
  if (all_registered && options_.ml_launcher) {
    launcher_thread_ = std::thread(
        [this, command, args] { options_.ml_launcher(command, args); });
  }
  // Ack carries k so the SQL worker knows how many ML connections to expect.
  std::string payload;
  PutVarint64(&payload,
              static_cast<uint64_t>(std::max(1, options_.splits_per_worker)));
  return SendFrame(socket, FrameType::kAck, payload);
}

Status StreamCoordinator::WaitForSplits() {
  static Histogram* const barrier_wait =
      MetricsRegistry::Global().GetHistogram("coordinator.barrier_wait_micros");
  Stopwatch timer;
  std::unique_lock<std::mutex> lock(mu_);
  const bool ready = splits_ready_cv_.wait_for(
      lock, std::chrono::milliseconds(options_.barrier_timeout_ms),
      [this] { return splits_ready_ || stopped_; });
  barrier_wait->Record(timer.ElapsedMicros());
  if (!ready) return Status::Unavailable("timed out waiting for SQL workers");
  if (!splits_ready_) return Status::Cancelled("coordinator stopped");
  return Status::OK();
}

Status StreamCoordinator::HandleGetSplits(TcpSocket* socket) {
  if (SQLINK_FAILPOINT("coordinator.get_splits") != FailpointOutcome::kNone) {
    socket->Close();
    return Status::OK();
  }
  RETURN_IF_ERROR(WaitForSplits());
  std::string payload;
  {
    std::lock_guard<std::mutex> lock(mu_);
    payload = splits_.Encode();
  }
  return SendFrame(socket, FrameType::kSplits, payload);
}

Status StreamCoordinator::HandleRegisterMl(TcpSocket* socket,
                                           const Frame& frame,
                                           bool is_failure) {
  if (SQLINK_FAILPOINT("coordinator.match") != FailpointOutcome::kNone) {
    socket->Close();
    return Status::OK();
  }
  ASSIGN_OR_RETURN(RegisterMlMessage msg,
                   RegisterMlMessage::Decode(frame.payload));
  RETURN_IF_ERROR(WaitForSplits());
  MatchMessage match;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (msg.split_id < 0 ||
        static_cast<size_t>(msg.split_id) >= splits_.splits.size()) {
      return Status::InvalidArgument("unknown split id " +
                                     std::to_string(msg.split_id));
    }
    const StreamSplitInfo& split =
        splits_.splits[static_cast<size_t>(msg.split_id)];
    match.host = split.host;
    match.port = split.port;
    if (is_failure) {
      ++failures_;
    } else {
      ++registered_ml_;
    }
  }
  // Step 5/6: hand the matched SQL endpoint back to the ML worker.
  return SendFrame(socket, FrameType::kMatch, match.Encode());
}

}  // namespace sqlink
