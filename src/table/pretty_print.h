#ifndef SQLINK_TABLE_PRETTY_PRINT_H_
#define SQLINK_TABLE_PRETTY_PRINT_H_

#include <string>

#include "table/table.h"

namespace sqlink {

struct PrettyPrintOptions {
  size_t max_rows = 20;        ///< Rows shown before truncation.
  size_t max_column_width = 32;
};

/// Renders a table as an aligned ASCII grid with a header, e.g.
///
///   +-----+--------+---------+
///   | age | gender | amount  |
///   +-----+--------+---------+
///   |  57 | F      |  153.99 |
///   ...
///   (3570 rows)
std::string PrettyPrintTable(const Table& table,
                             const PrettyPrintOptions& options = {});

}  // namespace sqlink

#endif  // SQLINK_TABLE_PRETTY_PRINT_H_
