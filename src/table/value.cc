#include "table/value.h"

#include <functional>

#include "common/logging.h"
#include "common/string_util.h"

namespace sqlink {

std::string_view DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

Result<DataType> DataTypeFromString(std::string_view name) {
  if (EqualsIgnoreCase(name, "BOOL") || EqualsIgnoreCase(name, "BOOLEAN")) {
    return DataType::kBool;
  }
  if (EqualsIgnoreCase(name, "INT64") || EqualsIgnoreCase(name, "INT") ||
      EqualsIgnoreCase(name, "BIGINT") || EqualsIgnoreCase(name, "INTEGER")) {
    return DataType::kInt64;
  }
  if (EqualsIgnoreCase(name, "DOUBLE") || EqualsIgnoreCase(name, "FLOAT") ||
      EqualsIgnoreCase(name, "REAL")) {
    return DataType::kDouble;
  }
  if (EqualsIgnoreCase(name, "STRING") || EqualsIgnoreCase(name, "VARCHAR") ||
      EqualsIgnoreCase(name, "TEXT")) {
    return DataType::kString;
  }
  return Status::ParseError("unknown type name: " + std::string(name));
}

DataType Value::type() const {
  switch (repr_.index()) {
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt64;
    case 3:
      return DataType::kDouble;
    case 4:
      return DataType::kString;
    default:
      LOG_FATAL() << "type() called on NULL value";
  }
  return DataType::kString;  // Unreachable.
}

Result<double> Value::AsDouble() const {
  if (is_double()) return double_value();
  if (is_int64()) return static_cast<double>(int64_value());
  if (is_bool()) return bool_value() ? 1.0 : 0.0;
  return Status::InvalidArgument("value is not numeric: " + ToString());
}

bool Value::operator<(const Value& other) const {
  // Numeric cross-type comparison: compare as doubles.
  const bool this_num = is_int64() || is_double();
  const bool other_num = other.is_int64() || other.is_double();
  if (this_num && other_num && repr_.index() != other.repr_.index()) {
    return *AsDouble() < *other.AsDouble();
  }
  return repr_ < other.repr_;
}

size_t Value::Hash() const {
  switch (repr_.index()) {
    case 0:
      return 0x9e3779b9;
    case 1:
      return std::hash<bool>()(bool_value());
    case 2:
      return std::hash<int64_t>()(int64_value());
    case 3:
      return std::hash<double>()(double_value());
    case 4:
      return std::hash<std::string>()(string_value());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (repr_.index()) {
    case 0:
      return "";
    case 1:
      return bool_value() ? "true" : "false";
    case 2:
      return std::to_string(int64_value());
    case 3: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", double_value());
      return buf;
    }
    case 4:
      return string_value();
  }
  return "";
}

Result<Value> Value::Parse(std::string_view text, DataType type) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case DataType::kBool: {
      if (EqualsIgnoreCase(text, "true") || text == "1") {
        return Value::Bool(true);
      }
      if (EqualsIgnoreCase(text, "false") || text == "0") {
        return Value::Bool(false);
      }
      return Status::ParseError("invalid bool literal: " + std::string(text));
    }
    case DataType::kInt64: {
      auto parsed = ParseInt64(text);
      if (!parsed.ok()) return parsed.status();
      return Value::Int64(*parsed);
    }
    case DataType::kDouble: {
      auto parsed = ParseDouble(text);
      if (!parsed.ok()) return parsed.status();
      return Value::Double(*parsed);
    }
    case DataType::kString:
      return Value::String(std::string(text));
  }
  return Status::Internal("unhandled data type");
}

size_t HashRowKey(const Row& row, const std::vector<int>& key_indices) {
  size_t hash = 14695981039346656037ULL;
  for (int index : key_indices) {
    hash ^= row[static_cast<size_t>(index)].Hash();
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace sqlink
