#include "transform/kernels.h"

#include <algorithm>
#include <chrono>

#include "common/metrics.h"

namespace sqlink {

namespace {

// Bounds-checked null test: direct Column construction (kernels, decoders)
// may leave null_words shorter than ceil(rows/64) when no nulls exist.
inline bool IsNullAt(const Column& col, size_t row) {
  const size_t word = row >> 6;
  return word < col.null_words.size() &&
         ((col.null_words[word] >> (row & 63)) & 1) != 0;
}

Histogram* RecodeLookupNs() {
  static Histogram* const hist =
      MetricsRegistry::Global().GetHistogram("transform.recode_lookup_ns");
  return hist;
}

}  // namespace

Status RecodeColumnKernel(const Column& input, size_t num_rows,
                          std::string_view column_name,
                          const RecodeMap::ColumnDict& dict, Column* out) {
  if (input.type != DataType::kString) {
    return Status::InvalidArgument("recode kernel input must be STRING");
  }
  const auto start = std::chrono::steady_clock::now();

  // Translate once per distinct value, not once per row.
  std::vector<int> remap(static_cast<size_t>(input.dict.size()));
  for (int32_t id = 0; id < input.dict.size(); ++id) {
    remap[static_cast<size_t>(id)] = dict.Lookup(input.dict[id]);
  }

  out->type = DataType::kInt64;
  out->null_words = input.null_words;
  out->bools.clear();
  out->doubles.clear();
  out->codes.clear();
  out->dict.Clear();
  out->ints.resize(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    if (IsNullAt(input, r)) {
      out->ints[r] = 0;
      continue;
    }
    const int code = remap[static_cast<size_t>(input.codes[r])];
    if (code == 0) {
      return Status::NotFound(
          "value not in recode map: " + std::string(column_name) + "/" +
          std::string(input.dict[input.codes[r]]));
    }
    out->ints[r] = code;
  }

  if (num_rows > 0) {
    const int64_t total_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    RecodeLookupNs()->Record(total_ns / static_cast<int64_t>(num_rows));
  }
  return Status::OK();
}

Status ApplyCodingKernel(const Column& input, size_t num_rows, int cardinality,
                         const std::vector<std::vector<double>>& matrix,
                         DataType generated_type, std::vector<Column>* out) {
  if (input.type != DataType::kInt64) {
    return Status::InvalidArgument("coding kernel input must be INT64");
  }
  // Validate every level up front so the per-column loops below are pure
  // gathers.
  for (size_t r = 0; r < num_rows; ++r) {
    if (IsNullAt(input, r)) {
      return Status::InvalidArgument("coded column has non-integer value");
    }
    const int64_t level = input.ints[r];
    if (level < 1 || level > cardinality) {
      return Status::OutOfRange("recoded value " + std::to_string(level) +
                                " outside [1, " + std::to_string(cardinality) +
                                "]");
    }
  }

  const size_t width = matrix.empty() ? 0 : matrix[0].size();
  out->clear();
  out->resize(width);
  const size_t null_word_count = (num_rows + 63) / 64;
  for (size_t j = 0; j < width; ++j) {
    Column& col = (*out)[j];
    col.type = generated_type;
    col.null_words.assign(null_word_count, 0);
    if (generated_type == DataType::kDouble) {
      col.doubles.resize(num_rows);
      for (size_t r = 0; r < num_rows; ++r) {
        col.doubles[r] = matrix[static_cast<size_t>(input.ints[r] - 1)][j];
      }
    } else {
      col.ints.resize(num_rows);
      for (size_t r = 0; r < num_rows; ++r) {
        col.ints[r] = static_cast<int64_t>(
            matrix[static_cast<size_t>(input.ints[r] - 1)][j]);
      }
    }
  }
  return Status::OK();
}

}  // namespace sqlink
