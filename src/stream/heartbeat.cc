#include "stream/heartbeat.h"

#include <chrono>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/runtime_flags.h"
#include "common/status_macros.h"

namespace sqlink {

namespace {

Gauge* HeartbeatConnsGauge() {
  static Gauge* const gauge =
      MetricsRegistry::Global().GetGauge("stream.heartbeat.conns");
  return gauge;
}

}  // namespace

HeartbeatBus::Conn::Conn(std::string host, int port)
    : host_(std::move(host)), port_(port) {
  HeartbeatConnsGauge()->Increment();
}

HeartbeatBus::Conn::~Conn() {
  HeartbeatConnsGauge()->Decrement();
  std::lock_guard<std::mutex> lock(mu_);
  socket_.Close();
}

Result<Frame> HeartbeatBus::Conn::Exchange(const HeartbeatMessage& beat) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!socket_.valid()) {
    ASSIGN_OR_RETURN(socket_, TcpConnect(host_, port_));
  }
  const Status sent =
      SendFrame(&socket_, FrameType::kHeartbeat, beat.Encode());
  if (!sent.ok()) {
    socket_.Close();
    return sent;
  }
  auto reply = RecvFrame(&socket_);
  if (!reply.ok()) socket_.Close();
  return reply;
}

void HeartbeatBus::Conn::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  socket_.Close();
}

HeartbeatBus& HeartbeatBus::Global() {
  static HeartbeatBus* const bus = new HeartbeatBus();
  return *bus;
}

std::shared_ptr<HeartbeatBus::Conn> HeartbeatBus::Acquire(
    const std::string& host, int port) {
  const std::string key = host + ":" + std::to_string(port);
  std::lock_guard<std::mutex> lock(mu_);
  if (auto existing = conns_[key].lock()) return existing;
  auto conn = std::make_shared<Conn>(host, port);
  conns_[key] = conn;
  return conn;
}

HeartbeatSender::HeartbeatSender(Options options)
    : options_(std::move(options)) {}

HeartbeatSender::~HeartbeatSender() { Stop(HeartbeatMessage::kAlive); }

void HeartbeatSender::Start() {
  if (!enabled() || thread_.joinable()) return;
  if (MuxEnabled()) {
    // Share one control connection with every other lease aimed at this
    // coordinator instead of holding a socket per lease.
    bus_ = HeartbeatBus::Global().Acquire(options_.coordinator_host,
                                          options_.coordinator_port);
  }
  thread_ = std::thread([this] { Loop(); });
}

Status HeartbeatSender::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

void HeartbeatSender::MarkRevoked(Status status) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (revoked_.load(std::memory_order_relaxed)) return;
    status_ = std::move(status);
  }
  revoked_.store(true, std::memory_order_release);
  if (options_.on_revoked) options_.on_revoked();
}

Status HeartbeatSender::BeatOnce(uint8_t bye) {
  HeartbeatMessage beat;
  beat.role = options_.role;
  beat.id = options_.id;
  beat.epoch = options_.epoch;
  beat.applied_seq = applied_seq_.load(std::memory_order_relaxed);
  beat.bye = bye;
  Frame reply;
  if (bus_ != nullptr) {
    ASSIGN_OR_RETURN(reply, bus_->Exchange(beat));
  } else {
    if (!control_.valid()) {
      ASSIGN_OR_RETURN(
          control_,
          TcpConnect(options_.coordinator_host, options_.coordinator_port));
    }
    Status sent = SendFrame(&control_, FrameType::kHeartbeat, beat.Encode());
    if (!sent.ok()) {
      control_.Close();
      return sent;
    }
    auto received = RecvFrame(&control_);
    if (!received.ok()) {
      control_.Close();
      return received.status();
    }
    reply = std::move(*received);
  }
  if (reply.type == FrameType::kError) {
    // Fenced or aborted: a typed, permanent loss — not a transport blip.
    MarkRevoked(DecodeStatusPayload(reply.payload));
    return Status::OK();
  }
  if (reply.type != FrameType::kAck) {
    if (bus_ != nullptr) {
      bus_->Invalidate();
    } else {
      control_.Close();
    }
    return Status::NetworkError("unexpected heartbeat reply");
  }
  return Status::OK();
}

void HeartbeatSender::Loop() {
  using Clock = std::chrono::steady_clock;
  const auto interval = std::chrono::milliseconds(options_.interval_ms);
  const auto ttl = interval * kLeaseIntervals;
  Clock::time_point last_ok = Clock::now();
  // The first beat goes out immediately: it is what creates the lease on
  // the coordinator, so liveness tracking starts with the attempt.
  for (;;) {
    if (revoked()) return;
    if (!options_.failpoint_name.empty()) {
      // Delay specs stall the beat right here, simulating a participant
      // that froze long enough for its lease to lapse.
      (void)SQLINK_FAILPOINT(options_.failpoint_name);
    }
    const Status status = BeatOnce(HeartbeatMessage::kAlive);
    if (revoked()) return;
    const Clock::time_point now = Clock::now();
    if (status.ok()) {
      last_ok = now;
    } else if (now - last_ok > ttl) {
      // Self-fence: the coordinator has not confirmed this lease within the
      // TTL, so it may already have handed the split to a replacement. Stop
      // before the replacement starts applying rows.
      MarkRevoked(Status::Unavailable(
          "lease expired: no coordinator ack within " +
          std::to_string(ttl.count()) + "ms (" + status.message() + ")"));
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, interval, [this] { return stop_; });
    if (stop_) return;
  }
}

void HeartbeatSender::Stop(uint8_t bye) {
  if (!enabled()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  if (bye != HeartbeatMessage::kAlive && !revoked()) {
    // Best-effort farewell so the coordinator acts now, not at TTL expiry.
    const Status status = BeatOnce(bye);
    if (!status.ok()) {
      LOG_WARNING() << "heartbeat bye failed (lease will expire): " << status;
    }
  }
  control_.Close();
  bus_.reset();  // Last lease on the peer drops the shared connection.
}

}  // namespace sqlink
