#ifndef SQLINK_CLUSTER_CLUSTER_H_
#define SQLINK_CLUSTER_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace sqlink {

/// A simulated cluster: N nodes, each with its own local working directory
/// (for DFS block replicas and streaming spill files) and a logical host
/// name used for locality matching. SQL workers, ML workers and DFS
/// datanodes are all placed on these nodes.
///
/// In the paper's testbed one server runs the head services and four host
/// the HDFS DataNodes, Big SQL workers and Spark workers; here the same
/// layout is simulated with threads pinned to node ids.
class Cluster {
 public:
  /// Creates a cluster of `num_nodes` nodes rooted at `root_dir`
  /// (node-local dirs are created eagerly).
  static Result<std::shared_ptr<Cluster>> Make(int num_nodes,
                                               const std::string& root_dir);

  int num_nodes() const { return num_nodes_; }

  /// Logical host name for locality matching, e.g. "node3".
  std::string HostName(int node) const {
    return "node" + std::to_string(node);
  }

  /// Resolves a host name back to a node id, or -1.
  int NodeFromHostName(const std::string& host) const;

  /// Node-local scratch directory (exists).
  const std::string& NodeLocalDir(int node) const {
    return node_dirs_[static_cast<size_t>(node)];
  }

  const std::string& root_dir() const { return root_dir_; }

 private:
  Cluster(int num_nodes, std::string root_dir,
          std::vector<std::string> node_dirs)
      : num_nodes_(num_nodes),
        root_dir_(std::move(root_dir)),
        node_dirs_(std::move(node_dirs)) {}

  int num_nodes_;
  std::string root_dir_;
  std::vector<std::string> node_dirs_;
};

using ClusterPtr = std::shared_ptr<Cluster>;

}  // namespace sqlink

#endif  // SQLINK_CLUSTER_CLUSTER_H_
