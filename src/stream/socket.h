#ifndef SQLINK_STREAM_SOCKET_H_
#define SQLINK_STREAM_SOCKET_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/result.h"

struct iovec;  // <sys/uio.h>; kept out of this header.

namespace sqlink {

/// Thin RAII wrapper over a connected TCP socket with whole-buffer
/// send/receive. Move-only. All streaming-transfer traffic (coordinator
/// control plane and SQL→ML data plane) flows through these.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket();

  TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends the entire buffer (loops over partial writes and EINTR; SIGPIPE
  /// is suppressed so a dead peer surfaces as a Status, not a signal).
  Status SendAll(std::string_view data);

  /// Scatter-gather send of two buffers back-to-back (frame header +
  /// payload) via sendmsg, avoiding the concatenation copy. Same partial
  /// write/EINTR/failpoint semantics as SendAll.
  Status SendAllV(std::string_view a, std::string_view b);

  /// General scatter-gather send of `count` buffers via sendmsg. The mux
  /// write coalescer batches frames from many channels into one call.
  /// `iov` is consumed (entries are advanced over partial writes).
  Status SendAllIov(::iovec* iov, size_t count);

  /// Receives exactly `n` bytes into `*out` (resized). A clean remote close
  /// before any byte yields kNetworkError with message "closed".
  Status RecvExactly(size_t n, std::string* out);

  /// Non-blocking receive of up to `max` bytes appended to `*out`. Returns
  /// the byte count: 0 when nothing is pending. A clean remote close sets
  /// `*eof` (when provided) and returns 0 so the caller can finish parsing
  /// bytes it already buffered; without `eof` — and for resets always — it
  /// yields kNetworkError. Used by senders draining acks between frames.
  Result<size_t> TryRecv(size_t max, std::string* out, bool* eof = nullptr);

  /// Half-closes both directions, unblocking a peer thread stuck in
  /// RecvExactly on this socket without racing its reads (the fd stays
  /// valid until Close).
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to 127.0.0.1 (the simulated cluster runs on
/// loopback). Port 0 picks an ephemeral port.
class TcpListener {
 public:
  static Result<TcpListener> Listen(int port);

  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Blocks for the next connection. Returns kCancelled after Close().
  Result<TcpSocket> Accept();

  /// Unblocks pending Accepts. Safe to call from another thread while an
  /// Accept is blocked (the usual shutdown pattern) — the fd slot is
  /// atomic, and the blocked accept(2) wakes with an error it maps to
  /// kCancelled.
  void Close();

  int port() const { return port_; }
  bool valid() const { return fd_.load(std::memory_order_acquire) >= 0; }

 private:
  std::atomic<int> fd_{-1};
  int port_ = 0;
};

/// Connects to host:port. Only loopback/hostname resolution via IPv4.
Result<TcpSocket> TcpConnect(const std::string& host, int port);

}  // namespace sqlink

#endif  // SQLINK_STREAM_SOCKET_H_
