#ifndef SQLINK_STREAM_WIRE_H_
#define SQLINK_STREAM_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "common/trace.h"
#include "stream/socket.h"
#include "table/schema.h"

namespace sqlink {

/// Frame types of the streaming-transfer protocol. Control frames run
/// between participants and the coordinator; data frames flow on the
/// SQL-worker → ML-worker sockets.
enum class FrameType : uint8_t {
  // Data plane.
  kSchema = 1,  ///< First frame on a data socket: the row schema.
  kData = 2,    ///< A batch of encoded rows.
  kEnd = 3,     ///< Sender finished; payload = total row count (varint).
  kError = 4,   ///< Sender failed; payload = message.
  kHello = 5,   ///< Receiver's opening frame: split id + restart flag.

  // Control plane (coordinator).
  kRegisterSql = 10,
  kGetSplits = 11,
  kSplits = 12,
  kRegisterMl = 13,
  kMatch = 14,
  kReportFailure = 15,
  kAck = 16,
  kShutdown = 17,
};

struct Frame {
  FrameType type = FrameType::kAck;
  std::string payload;
  /// Trace context propagated in the frame header (invalid when the sender
  /// was not tracing). Receivers parent their handler spans here so one
  /// query's trace crosses the wire.
  TraceContext trace;
};

/// Wire format: fixed32 payload length, one type byte, fixed64 trace id,
/// fixed64 span id, payload bytes. The trace fields are zero when tracing is
/// off; SendFrame stamps the calling thread's current span automatically.
Status SendFrame(TcpSocket* socket, FrameType type, std::string_view payload);
/// As above with an explicit trace context (senders relaying a span owned by
/// another thread).
Status SendFrame(TcpSocket* socket, FrameType type, std::string_view payload,
                 const TraceContext& trace);
Result<Frame> RecvFrame(TcpSocket* socket);

/// Size in bytes of the fixed frame header.
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 8 + 8;

/// Schema serialization for the kSchema frame and control messages.
void EncodeSchema(const Schema& schema, std::string* out);
Result<SchemaPtr> DecodeSchema(Decoder* decoder);

// --- Control-plane messages -------------------------------------------------

/// SQL worker registration (paper step 1): identity, the worker's data
/// endpoint, the ML command to launch, and the schema of the streamed rows.
struct RegisterSqlMessage {
  int worker_id = 0;
  int num_workers = 0;
  std::string host;
  int port = 0;
  std::string command;
  std::vector<std::string> args;
  SchemaPtr schema;

  std::string Encode() const;
  static Result<RegisterSqlMessage> Decode(std::string_view payload);
};

/// One InputSplit descriptor handed to the ML job (paper step 3).
struct StreamSplitInfo {
  int split_id = 0;
  int sql_worker = 0;
  std::string host;  ///< SQL worker's host — the split's locality hint.
  int port = 0;
};

/// Response to kGetSplits.
struct SplitsMessage {
  SchemaPtr schema;
  std::vector<StreamSplitInfo> splits;

  std::string Encode() const;
  static Result<SplitsMessage> Decode(std::string_view payload);
};

/// ML worker registration (step 4) and failure reports (§6); the kMatch
/// response carries the SQL endpoint to dial (steps 5-6).
struct RegisterMlMessage {
  int split_id = 0;

  std::string Encode() const;
  static Result<RegisterMlMessage> Decode(std::string_view payload);
};

struct MatchMessage {
  std::string host;
  int port = 0;

  std::string Encode() const;
  static Result<MatchMessage> Decode(std::string_view payload);
};

/// Data-plane opening frame from the ML worker.
struct HelloMessage {
  int split_id = 0;
  bool restart = false;  ///< §6 recovery: replay from the retained log.

  std::string Encode() const;
  static Result<HelloMessage> Decode(std::string_view payload);
};

}  // namespace sqlink

#endif  // SQLINK_STREAM_WIRE_H_
