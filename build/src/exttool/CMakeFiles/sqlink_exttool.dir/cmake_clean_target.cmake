file(REMOVE_RECURSE
  "libsqlink_exttool.a"
)
