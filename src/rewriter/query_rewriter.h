#ifndef SQLINK_REWRITER_QUERY_REWRITER_H_
#define SQLINK_REWRITER_QUERY_REWRITER_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>

#include "cache/transform_cache.h"
#include "common/result.h"
#include "sql/engine.h"
#include "transform/recode_map.h"
#include "transform/transformer.h"

namespace sqlink {

/// The query rewriter of §4: takes the user's data-prep SQL plus the
/// requested transformations, and produces the extended query that performs
/// them with the In-SQL UDFs — computing the recode map when needed, or
/// reusing cached artifacts per §5:
///
///  - a cached *fully transformed* result is reused when the new query has
///    the same FROM/joins/predicates, projects a subset of the cached
///    projection, and adds only conjunctive predicates on projected fields
///    (§5.1); the rewrite then runs against the materialized table, with
///    categorical literals translated through the recode map (e.g.
///    gender = 'F' becomes the dummy column gender_F = 1);
///  - a cached *recode map* is reused when the joins match, every cached
///    predicate has a same-or-logically-stronger counterpart, and the
///    recoded columns are a subset of the cached ones (§5.2), skipping the
///    first of the two recoding passes.
class QueryRewriter {
 public:
  /// `cache` may be null (no caching; every request recomputes).
  QueryRewriter(SqlEnginePtr engine, TransformCache* cache);

  enum class Source { kComputed, kRecodeMapCache, kFullResultCache };

  struct Rewrite {
    /// SQL producing the transformed rows (runs on the engine).
    std::string transformed_sql;
    RecodeMap recode_map;
    Source source = Source::kComputed;
    /// Catalog name of the recode-map table backing transformed_sql
    /// (empty for full-cache rewrites).
    std::string map_table;
  };

  /// The full §4+§5 flow: consult the cache, compute the recode map if
  /// needed (caching it), and emit the transformed query.
  Result<Rewrite> RewriteWithCache(const TransformRequest& request);

  /// §4 only: composes the transformed SQL from an existing map. The map
  /// table must already be registered in the catalog.
  Result<std::string> BuildTransformedSql(const TransformRequest& request,
                                          const RecodeMap& map,
                                          const std::string& map_table) const;

  /// Registers a fully transformed materialized result for later §5.1
  /// reuse. `result_table` must be registered in the engine catalog.
  Status CacheFullResult(const TransformRequest& request,
                         const RecodeMap& map,
                         const std::string& result_table);

  /// §5.1 matcher (exposed for tests): the rewritten SQL over the cached
  /// table, or nullopt when the entry does not subsume the request.
  Result<std::optional<std::string>> TryFullCacheRewrite(
      const TransformRequest& request, const SelectStmt& stmt,
      const TransformCacheEntry& entry) const;

  /// §5.2 matcher (exposed for tests): the reusable map keyed by the new
  /// request's column names, or nullopt.
  Result<std::optional<RecodeMap>> TryRecodeMapReuse(
      const TransformRequest& request, const SelectStmt& stmt,
      const TransformCacheEntry& entry) const;

  TransformCache* cache() { return cache_; }

 private:
  /// Fresh catalog name for a recode-map table.
  std::string NextMapTableName();

  SqlEnginePtr engine_;
  TransformCache* cache_;
  InSqlTransformer transformer_;
  std::atomic<int> map_counter_{0};
};

}  // namespace sqlink

#endif  // SQLINK_REWRITER_QUERY_REWRITER_H_
