// Quickstart: the smallest end-to-end use of the library.
//
// Builds a 4-node simulated cluster, loads the paper's carts/users example
// data, runs the Section 1 data-preparation query with In-SQL recoding +
// dummy coding, streams the transformed rows straight into the ML runtime
// (no filesystem hop), and trains SVMWithSGD on the result.
//
//   ./quickstart [num_carts]

#include <cstdio>
#include <cstdlib>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/logging.h"
#include "ml/classifiers.h"
#include "ml/evaluation.h"
#include "ml/scaler.h"
#include "pipeline/analytics_pipeline.h"
#include "pipeline/datagen.h"

namespace {

int RunQuickstart(int64_t num_carts) {
  using namespace sqlink;

  // 1. A simulated 4-worker cluster with a shared DFS, an MPP SQL engine
  //    and the integration pipeline on top.
  ScopedTempDir workspace("quickstart");
  auto cluster = Cluster::Make(4, workspace.path());
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 1;
  }
  SqlEnginePtr engine = SqlEngine::Make(*cluster);
  auto dfs = std::make_shared<Dfs>(*cluster, DfsOptions{});
  AnalyticsPipeline pipeline(engine, dfs);

  // 2. Synthetic warehouse tables: carts ⋈ users, the paper's scenario.
  CartsWorkloadOptions data;
  data.num_users = num_carts / 10;
  data.num_carts = num_carts;
  if (auto generated = GenerateCartsWorkload(engine.get(), data);
      !generated.ok()) {
    std::fprintf(stderr, "datagen: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %lld carts, %lld users\n",
              static_cast<long long>(data.num_carts),
              static_cast<long long>(data.num_users));

  // 3. Data preparation: SQL + recoding of categorical variables + dummy
  //    coding, all inside the SQL engine (the paper's In-SQL approach).
  TransformRequest request;
  request.prep_sql = CartsPrepQuery();
  request.recode_columns = {"gender", "abandoned"};
  request.codings["gender"] = CodingScheme::kDummy;

  PipelineOptions options;
  options.approach = ConnectApproach::kInSqlStream;  // Fully pipelined.
  auto prepared = pipeline.Prepare(request, options);
  if (!prepared.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("transformed %zu rows in %.3fs (schema: %s)\n",
              prepared->dataset.TotalRows(),
              prepared->timings.total_seconds,
              prepared->dataset.schema->ToString().c_str());

  // 4. Train SVMWithSGD on the streamed-in dataset.
  auto dataset = AnalyticsPipeline::ToDataset(*prepared, "abandoned");
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto scaler = ml::StandardScaler::Fit(*dataset);
  if (!scaler.ok()) return 1;
  scaler->Transform(&*dataset);

  ml::SgdOptions sgd;
  sgd.iterations = 100;
  auto trained = ml::SvmWithSgd::Train(*dataset, sgd);
  if (!trained.ok()) {
    std::fprintf(stderr, "train: %s\n", trained.status().ToString().c_str());
    return 1;
  }
  const double accuracy =
      ml::Accuracy(*dataset, [&](const ml::DenseVector& x) {
        return trained->model.PredictClass(x);
      });
  std::printf("SVM trained: %d iterations, final loss %.4f, accuracy %.3f\n",
              sgd.iterations, trained->loss_history.back(), accuracy);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  sqlink::SetLogLevel(sqlink::LogLevel::kWarning);
  const int64_t num_carts = argc > 1 ? std::atoll(argv[1]) : 20000;
  return RunQuickstart(num_carts);
}
