#include "stream/coordinator.h"

#include <algorithm>
#include <chrono>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/status_macros.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "stream/heartbeat.h"

namespace sqlink {

namespace {

const char* HandlerSpanName(FrameType type) {
  switch (type) {
    case FrameType::kRegisterSql:
      return "coordinator.register_sql";
    case FrameType::kGetSplits:
      return "coordinator.get_splits";
    case FrameType::kRegisterMl:
      return "coordinator.match";
    case FrameType::kReportFailure:
      return "coordinator.rematch";
    case FrameType::kHeartbeat:
      return "coordinator.heartbeat";
    case FrameType::kAcquireSplit:
      return "coordinator.acquire_split";
    case FrameType::kCompleteSplit:
      return "coordinator.complete_split";
    case FrameType::kSplitStatus:
      return "coordinator.split_status";
    case FrameType::kAbortQuery:
      return "coordinator.abort_query";
    default:
      return "coordinator.unknown";
  }
}

const char* SplitStateName(SplitState state) {
  switch (state) {
    case SplitState::kUnassigned:
      return "unassigned";
    case SplitState::kAssigned:
      return "assigned";
    case SplitState::kSuspect:
      return "suspect";
    case SplitState::kReassignable:
      return "reassignable";
    case SplitState::kCompleted:
      return "completed";
  }
  return "?";
}

}  // namespace

Result<std::unique_ptr<StreamCoordinator>> StreamCoordinator::Start(
    Options options) {
  auto coordinator =
      std::unique_ptr<StreamCoordinator>(new StreamCoordinator(options));
  ASSIGN_OR_RETURN(coordinator->listener_, TcpListener::Listen(options.port));
  coordinator->accept_thread_ =
      std::thread([c = coordinator.get()] { c->AcceptLoop(); });
  if (options.heartbeat_timeout_ms > 0) {
    coordinator->reaper_thread_ =
        std::thread([c = coordinator.get()] { c->ReaperLoop(); });
  }
  return coordinator;
}

std::string StreamCoordinator::Checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  PutVarint64Signed(&out, expected_sql_workers_);
  PutVarint64(&out, sql_workers_.size());
  for (const auto& [worker_id, registration] : sql_workers_) {
    PutLengthPrefixed(&out, registration.Encode());
  }
  out.push_back(splits_ready_ ? 1 : 0);
  if (splits_ready_) {
    PutLengthPrefixed(&out, splits_.Encode());
  }
  return out;
}

Result<std::unique_ptr<StreamCoordinator>> StreamCoordinator::Resume(
    Options options, std::string_view checkpoint) {
  auto coordinator =
      std::unique_ptr<StreamCoordinator>(new StreamCoordinator(options));
  {
    Decoder decoder(checkpoint);
    ASSIGN_OR_RETURN(int64_t expected, decoder.GetVarint64Signed());
    coordinator->expected_sql_workers_ = static_cast<int>(expected);
    ASSIGN_OR_RETURN(uint64_t workers, decoder.GetVarint64());
    for (uint64_t i = 0; i < workers; ++i) {
      ASSIGN_OR_RETURN(std::string_view encoded, decoder.GetLengthPrefixed());
      ASSIGN_OR_RETURN(RegisterSqlMessage registration,
                       RegisterSqlMessage::Decode(encoded));
      coordinator->sql_workers_[registration.worker_id] = registration;
    }
    ASSIGN_OR_RETURN(uint8_t ready, decoder.GetByte());
    if (ready != 0) {
      ASSIGN_OR_RETURN(std::string_view encoded, decoder.GetLengthPrefixed());
      ASSIGN_OR_RETURN(coordinator->splits_, SplitsMessage::Decode(encoded));
      coordinator->splits_ready_ = true;
      coordinator->split_runtime_.resize(coordinator->splits_.splits.size());
      for (size_t i = 0; i < coordinator->splits_.splits.size(); ++i) {
        coordinator->split_runtime_[i].epoch =
            coordinator->splits_.splits[i].epoch;
      }
    }
  }
  ASSIGN_OR_RETURN(coordinator->listener_, TcpListener::Listen(options.port));
  coordinator->accept_thread_ =
      std::thread([c = coordinator.get()] { c->AcceptLoop(); });
  if (options.heartbeat_timeout_ms > 0) {
    coordinator->reaper_thread_ =
        std::thread([c = coordinator.get()] { c->ReaperLoop(); });
  }
  return coordinator;
}

StreamCoordinator::~StreamCoordinator() { Stop(); }

void StreamCoordinator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    splits_ready_cv_.notify_all();
    reaper_cv_.notify_all();
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (reaper_thread_.joinable()) reaper_thread_.join();
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    // Persistent heartbeat connections keep handlers parked in RecvFrame;
    // shutting the sockets down unblocks them so the joins below finish.
    for (const std::weak_ptr<TcpSocket>& weak : handler_sockets_) {
      if (auto socket = weak.lock()) socket->ShutdownBoth();
    }
  }
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    for (std::thread& handler : handlers_) {
      if (handler.joinable()) handler.join();
    }
    handlers_.clear();
    handler_sockets_.clear();
  }
  if (launcher_thread_.joinable()) launcher_thread_.join();
}

void StreamCoordinator::Abort(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  AbortLocked(std::move(status));
}

void StreamCoordinator::AbortLocked(Status status) {
  if (aborted_) return;
  aborted_ = true;
  abort_status_ = status.ok() ? Status::Aborted("query aborted") : status;
  LOG_ERROR() << "coordinator aborting query: " << abort_status_;
  MetricsRegistry::Global().Increment("coordinator.aborts");
  // Wake barrier waiters so GetSplits/matchmaking surface the abort instead
  // of timing out.
  splits_ready_cv_.notify_all();
}

int StreamCoordinator::registered_sql_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sql_workers_.size());
}

int StreamCoordinator::registered_ml_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return registered_ml_;
}

int StreamCoordinator::reported_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

int StreamCoordinator::splits_reassigned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return splits_reassigned_;
}

bool StreamCoordinator::aborted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return aborted_;
}

void StreamCoordinator::AcceptLoop() {
  for (;;) {
    auto socket = listener_.Accept();
    if (!socket.ok()) return;  // Closed.
    std::lock_guard<std::mutex> lock(handlers_mu_);
    auto shared = std::make_shared<TcpSocket>(std::move(*socket));
    handler_sockets_.push_back(shared);
    handlers_.emplace_back(
        [this, s = std::move(shared)] { HandleConnection(s.get()); });
  }
}

void StreamCoordinator::HandleConnection(TcpSocket* socket) {
  // A connection carries a sequence of control frames: one-shot clients
  // (registration, split fetch, matchmaking) send a single frame and close;
  // heartbeat senders keep theirs open for the whole transfer.
  //
  // The gauge counts connections that carried at least one heartbeat: with
  // the shared heartbeat bus it stays at one per peer process no matter how
  // many leases beat over it.
  Gauge* const heartbeat_conns =
      MetricsRegistry::Global().GetGauge("coordinator.heartbeat_conns");
  bool counted_heartbeat_conn = false;
  for (;;) {
    auto frame = RecvFrame(socket);
    if (!frame.ok()) {
      if (counted_heartbeat_conn) heartbeat_conns->Decrement();
      return;  // Peer closed (or Stop shut us down).
    }
    // The handler span continues the trace carried in the frame header: its
    // parent is the remote caller's span, so one query's trace crosses the
    // control plane.
    TraceSpan span(HandlerSpanName(frame->type), frame->trace);
    Stopwatch timer;
    Status status;
    switch (frame->type) {
      case FrameType::kRegisterSql:
        status = HandleRegisterSql(socket, *frame);
        MetricsRegistry::Global().Increment("coordinator.register_sql.count");
        break;
      case FrameType::kGetSplits:
        status = HandleGetSplits(socket);
        MetricsRegistry::Global().Increment("coordinator.get_splits.count");
        break;
      case FrameType::kRegisterMl:
        status = HandleRegisterMl(socket, *frame, /*is_failure=*/false);
        MetricsRegistry::Global().Increment("coordinator.match.count");
        break;
      case FrameType::kReportFailure:
        status = HandleRegisterMl(socket, *frame, /*is_failure=*/true);
        MetricsRegistry::Global().Increment("coordinator.rematch.count");
        break;
      case FrameType::kHeartbeat:
        status = HandleHeartbeat(socket, *frame);
        if (!counted_heartbeat_conn) {
          counted_heartbeat_conn = true;
          heartbeat_conns->Increment();
        }
        break;
      case FrameType::kAcquireSplit:
        status = HandleAcquireSplit(socket, *frame);
        break;
      case FrameType::kCompleteSplit:
        status = HandleCompleteSplit(socket, *frame);
        break;
      case FrameType::kSplitStatus:
        status = HandleSplitStatus(socket, *frame);
        break;
      case FrameType::kAbortQuery:
        status = HandleAbortQuery(socket, *frame);
        break;
      default:
        status = Status::InvalidArgument("unexpected control frame");
        break;
    }
    MetricsRegistry::Global()
        .GetHistogram("coordinator.handler_micros")
        ->Record(timer.ElapsedMicros());
    if (!status.ok()) {
      span.SetError();
      LOG_WARNING() << "coordinator handler: " << status;
      (void)SendFrame(socket, FrameType::kError, EncodeStatus(status));
    }
  }
}

void StreamCoordinator::ReaperLoop() {
  const auto ttl = std::chrono::milliseconds(options_.heartbeat_timeout_ms);
  const auto grace = ttl / 2;
  const auto tick =
      std::max(ttl / 4, std::chrono::milliseconds::zero()) +
      std::chrono::milliseconds(1);
  Counter* const missed =
      MetricsRegistry::Global().GetCounter("transfer.heartbeat_missed");
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopped_) {
    reaper_cv_.wait_for(lock, tick, [this] { return stopped_; });
    if (stopped_) return;
    const auto now = std::chrono::steady_clock::now();
    // Reader leases drive the split state machine.
    for (size_t i = 0; i < split_runtime_.size(); ++i) {
      SplitRuntime& rt = split_runtime_[i];
      if (!rt.leased || now <= rt.deadline) continue;
      if (rt.state == SplitState::kAssigned) {
        rt.state = SplitState::kSuspect;
        rt.deadline = now + grace;
        missed->Increment();
        LOG_WARNING() << "split " << i << " reader missed its heartbeat "
                      << "deadline; suspect (epoch " << rt.epoch << ")";
      } else if (rt.state == SplitState::kSuspect) {
        ReleaseSplitLocked(i, "heartbeat timeout");
      }
    }
    // A sink holds the only copy of its partition's stream — losing one is
    // unrecoverable, so the query aborts.
    for (auto it = sink_leases_.begin(); it != sink_leases_.end();) {
      SinkLease& lease = it->second;
      if (now <= lease.deadline) {
        ++it;
        continue;
      }
      if (!lease.suspect) {
        lease.suspect = true;
        lease.deadline = now + grace;
        missed->Increment();
        LOG_WARNING() << "sql worker " << it->first
                      << " missed its heartbeat deadline; suspect";
        ++it;
        continue;
      }
      AbortLocked(Status::Aborted("sql worker " + std::to_string(it->first) +
                                  " lost (heartbeat timeout)"));
      it = sink_leases_.erase(it);
    }
  }
}

void StreamCoordinator::ReleaseSplitLocked(size_t i, const std::string& reason) {
  SplitRuntime& rt = split_runtime_[i];
  rt.leased = false;
  ++rt.epoch;  // Fence the previous owner immediately.
  ++rt.reassignments;
  if (rt.reassignments > options_.max_split_reassignments) {
    AbortLocked(Status::Aborted(
        "split " + std::to_string(i) + " exhausted its reassignment budget (" +
        std::to_string(options_.max_split_reassignments) + "): " + reason));
    return;
  }
  rt.state = SplitState::kReassignable;
  LOG_WARNING() << "split " << i << " released (" << reason
                << "); reassignable at epoch " << rt.epoch << " (budget "
                << rt.reassignments << "/"
                << options_.max_split_reassignments << ")";
}

Status StreamCoordinator::HandleRegisterSql(TcpSocket* socket,
                                            const Frame& frame) {
  if (SQLINK_FAILPOINT("coordinator.register_sql") != FailpointOutcome::kNone) {
    // Drop the registration on the floor: the worker sees a dead connection
    // and must retry. Re-registration is idempotent (map overwrite), so this
    // models a coordinator that crashed after reading the request.
    socket->Close();
    return Status::OK();
  }
  ASSIGN_OR_RETURN(RegisterSqlMessage msg,
                   RegisterSqlMessage::Decode(frame.payload));
  bool all_registered = false;
  std::string command;
  std::vector<std::string> args;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (expected_sql_workers_ == 0) {
      expected_sql_workers_ = msg.num_workers;
    } else if (expected_sql_workers_ != msg.num_workers) {
      return Status::InvalidArgument("inconsistent SQL worker count");
    }
    sql_workers_[msg.worker_id] = msg;
    if (splits_ready_) {
      // Re-registration after the split table was built: a restarted worker
      // comes back on a fresh endpoint and mux routing key, and re-matches
      // (kReportFailure) must hand readers the current ones.
      for (StreamSplitInfo& split : splits_.splits) {
        if (split.sql_worker == msg.worker_id) {
          split.host = msg.host;
          split.port = msg.port;
          split.sink_key = msg.sink_key;
        }
      }
    }
    if (static_cast<int>(sql_workers_.size()) == expected_sql_workers_ &&
        !splits_ready_) {
      // All registered (step 1 complete): build the split table — m = n·k
      // splits in n groups, each split located at its SQL worker's host —
      // and launch the ML job (step 2).
      const int k = std::max(1, options_.splits_per_worker);
      splits_.schema = msg.schema;
      int split_id = 0;
      for (const auto& [worker_id, worker] : sql_workers_) {
        for (int j = 0; j < k; ++j) {
          splits_.splits.push_back(StreamSplitInfo{
              split_id++, worker_id, worker.host, worker.port, /*epoch=*/1,
              worker.sink_key});
        }
      }
      split_runtime_.assign(splits_.splits.size(), SplitRuntime{});
      splits_ready_ = true;
      command = msg.command;
      args = msg.args;
      all_registered = true;
      splits_ready_cv_.notify_all();
    }
  }
  if (all_registered && options_.ml_launcher) {
    launcher_thread_ = std::thread(
        [this, command, args] { options_.ml_launcher(command, args); });
  }
  // Ack carries k so the SQL worker knows how many ML connections to expect.
  std::string payload;
  PutVarint64(&payload,
              static_cast<uint64_t>(std::max(1, options_.splits_per_worker)));
  return SendFrame(socket, FrameType::kAck, payload);
}

Status StreamCoordinator::WaitForSplits() {
  static Histogram* const barrier_wait =
      MetricsRegistry::Global().GetHistogram("coordinator.barrier_wait_micros");
  Stopwatch timer;
  std::unique_lock<std::mutex> lock(mu_);
  const bool ready = splits_ready_cv_.wait_for(
      lock, std::chrono::milliseconds(options_.barrier_timeout_ms),
      [this] { return splits_ready_ || stopped_ || aborted_; });
  barrier_wait->Record(timer.ElapsedMicros());
  if (aborted_) return abort_status_;
  if (!ready) return Status::Unavailable("timed out waiting for SQL workers");
  if (!splits_ready_) return Status::Cancelled("coordinator stopped");
  return Status::OK();
}

Status StreamCoordinator::HandleGetSplits(TcpSocket* socket) {
  if (SQLINK_FAILPOINT("coordinator.get_splits") != FailpointOutcome::kNone) {
    socket->Close();
    return Status::OK();
  }
  RETURN_IF_ERROR(WaitForSplits());
  std::string payload;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (aborted_) return abort_status_;
    payload = splits_.Encode();
  }
  return SendFrame(socket, FrameType::kSplits, payload);
}

Status StreamCoordinator::HandleRegisterMl(TcpSocket* socket,
                                           const Frame& frame,
                                           bool is_failure) {
  if (SQLINK_FAILPOINT("coordinator.match") != FailpointOutcome::kNone) {
    socket->Close();
    return Status::OK();
  }
  ASSIGN_OR_RETURN(RegisterMlMessage msg,
                   RegisterMlMessage::Decode(frame.payload));
  RETURN_IF_ERROR(WaitForSplits());
  MatchMessage match;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (aborted_) return abort_status_;
    if (msg.split_id < 0 ||
        static_cast<size_t>(msg.split_id) >= splits_.splits.size()) {
      return Status::InvalidArgument("unknown split id " +
                                     std::to_string(msg.split_id));
    }
    const StreamSplitInfo& split =
        splits_.splits[static_cast<size_t>(msg.split_id)];
    match.host = split.host;
    match.port = split.port;
    match.sink_key = split.sink_key;
    if (is_failure) {
      ++failures_;
    } else {
      ++registered_ml_;
    }
  }
  // Step 5/6: hand the matched SQL endpoint back to the ML worker.
  return SendFrame(socket, FrameType::kMatch, match.Encode());
}

Status StreamCoordinator::HandleHeartbeat(TcpSocket* socket,
                                          const Frame& frame) {
  ASSIGN_OR_RETURN(HeartbeatMessage msg,
                   HeartbeatMessage::Decode(frame.payload));
  const auto ttl = std::chrono::milliseconds(
      options_.heartbeat_timeout_ms > 0 ? options_.heartbeat_timeout_ms
                                        : 3000);
  std::lock_guard<std::mutex> lock(mu_);
  if (aborted_) return abort_status_;
  const auto now = std::chrono::steady_clock::now();
  if (msg.role == HeartbeatMessage::kSink) {
    if (msg.bye != HeartbeatMessage::kAlive) {
      sink_leases_.erase(msg.id);
    } else {
      sink_leases_[msg.id] = SinkLease{now + ttl, /*suspect=*/false};
    }
    return SendFrame(socket, FrameType::kAck, "");
  }
  // Reader lease for one split.
  if (!splits_ready_ || msg.id < 0 ||
      static_cast<size_t>(msg.id) >= split_runtime_.size()) {
    return Status::InvalidArgument("heartbeat for unknown split " +
                                   std::to_string(msg.id));
  }
  SplitRuntime& rt = split_runtime_[static_cast<size_t>(msg.id)];
  if (rt.state == SplitState::kCompleted) {
    return SendFrame(socket, FrameType::kAck, "");
  }
  if (msg.epoch < rt.epoch) {
    // A fenced ("zombie") owner: its lease lapsed and the split moved on.
    return Status::Cancelled("lease revoked: split " + std::to_string(msg.id) +
                             " now at epoch " + std::to_string(rt.epoch) +
                             " (" + SplitStateName(rt.state) + ")");
  }
  if (msg.bye == HeartbeatMessage::kFailed) {
    ReleaseSplitLocked(static_cast<size_t>(msg.id), "reader reported failure");
    if (aborted_) return abort_status_;
    return SendFrame(socket, FrameType::kAck, "");
  }
  if (msg.bye == HeartbeatMessage::kCompleted) {
    rt.leased = false;  // kCompleteSplit marks the state; just drop the lease.
    return SendFrame(socket, FrameType::kAck, "");
  }
  rt.state = SplitState::kAssigned;  // Also recovers a kSuspect lease.
  rt.leased = true;
  rt.deadline = now + ttl;
  rt.applied_seq = msg.applied_seq;
  return SendFrame(socket, FrameType::kAck, "");
}

Status StreamCoordinator::HandleAcquireSplit(TcpSocket* socket,
                                             const Frame& frame) {
  RETURN_IF_ERROR(WaitForSplits());
  SplitGrantMessage grant;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (aborted_) return abort_status_;
    for (size_t i = 0; i < split_runtime_.size(); ++i) {
      SplitRuntime& rt = split_runtime_[i];
      if (rt.state != SplitState::kReassignable) continue;
      // Hand the split to the caller with a generous first deadline: the
      // replacement still has to dial the SQL worker before its first beat.
      rt.state = SplitState::kAssigned;
      rt.leased = true;
      rt.deadline = std::chrono::steady_clock::now() +
                    2 * std::chrono::milliseconds(
                            options_.heartbeat_timeout_ms > 0
                                ? options_.heartbeat_timeout_ms
                                : 3000);
      ++splits_reassigned_;
      grant.granted = true;
      grant.split = splits_.splits[i];
      grant.split.epoch = rt.epoch;
      TraceSpan span("recover_split", frame.trace);
      span.AddAttribute("split", static_cast<int64_t>(i));
      span.AddAttribute("epoch", rt.epoch);
      MetricsRegistry::Global()
          .GetCounter("transfer.splits_reassigned")
          ->Increment();
      LOG_INFO() << "split " << i << " reassigned at epoch " << rt.epoch;
      break;
    }
  }
  return SendFrame(socket, FrameType::kSplitGrant, grant.Encode());
}

Status StreamCoordinator::HandleCompleteSplit(TcpSocket* socket,
                                              const Frame& frame) {
  ASSIGN_OR_RETURN(CompleteSplitMessage msg,
                   CompleteSplitMessage::Decode(frame.payload));
  std::lock_guard<std::mutex> lock(mu_);
  if (!splits_ready_ || msg.split_id < 0 ||
      static_cast<size_t>(msg.split_id) >= split_runtime_.size()) {
    return Status::InvalidArgument("completion for unknown split " +
                                   std::to_string(msg.split_id));
  }
  SplitRuntime& rt = split_runtime_[static_cast<size_t>(msg.split_id)];
  if (msg.epoch < rt.epoch && rt.state != SplitState::kCompleted) {
    // A fenced owner finished the whole stream before noticing revocation.
    // Its rows were all applied (recovery is sequential: no replacement ran
    // concurrently), so the completion is accepted — rejecting it would
    // strand a Reassignable split whose producer has already torn down.
    LOG_WARNING() << "accepting completion of split " << msg.split_id
                  << " from fenced epoch " << msg.epoch << " (current "
                  << rt.epoch << ")";
  }
  rt.state = SplitState::kCompleted;
  rt.leased = false;
  rt.applied_seq = std::max(rt.applied_seq, msg.rows);
  return SendFrame(socket, FrameType::kAck, "");
}

Status StreamCoordinator::HandleSplitStatus(TcpSocket* socket,
                                            const Frame& frame) {
  Decoder decoder(frame.payload);
  ASSIGN_OR_RETURN(uint64_t split_id, decoder.GetVarint64());
  bool completed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    completed = splits_ready_ && split_id < split_runtime_.size() &&
                split_runtime_[static_cast<size_t>(split_id)].state ==
                    SplitState::kCompleted;
  }
  std::string payload;
  PutVarint64(&payload, completed ? 1 : 0);
  return SendFrame(socket, FrameType::kAck, payload);
}

Status StreamCoordinator::HandleAbortQuery(TcpSocket* socket,
                                           const Frame& frame) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    AbortLocked(DecodeStatusPayload(frame.payload));
  }
  return SendFrame(socket, FrameType::kAck, "");
}

}  // namespace sqlink
