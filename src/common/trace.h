#ifndef SQLINK_COMMON_TRACE_H_
#define SQLINK_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sqlink {

/// Identity of one span inside one trace. A zero trace id means "no trace"
/// (tracing disabled, or the trace was not sampled); spans parented to an
/// invalid context start a fresh trace.
///
/// The context travels across the wire protocol in every frame header
/// (16 bytes: fixed64 trace id + fixed64 span id), so one query's trace
/// follows SQL worker → coordinator → SQLStreamInputFormat → ML worker.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// One finished span as recorded by the tracer.
struct SpanRecord {
  std::string name;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  ///< 0 for a root span.
  int64_t start_micros = 0;     ///< Steady-clock micros since process start.
  int64_t duration_micros = 0;
  bool error = false;
  /// Small integer attributes (split id, rows, bytes, ...).
  std::vector<std::pair<std::string, int64_t>> attributes;
};

/// Span-based tracer with explicit parent/child span ids and a per-thread
/// current-span context. Off by default: an unstarted span costs one relaxed
/// atomic load. Enable programmatically (tests) or via the environment:
///
///   SQLINK_TRACE=json:<path>   enable + write retained spans to <path> as a
///                              JSON array, rewritten periodically and at
///                              process exit (long-running processes get
///                              fresh data, not just an exit dump)
///   SQLINK_TRACE=on            enable, in-memory only (Snapshot/ToJson)
///   SQLINK_TRACE_SAMPLE=<p>    sample only fraction p of new traces
///                              (decided once per trace at its root span)
///   SQLINK_TRACE_RING=<n>      retain only the most recent n spans
///                              (default 8192; bounds memory forever)
///   SQLINK_TRACE_FLUSH_SPANS=<n>  rewrite the json: sink every n recorded
///                              spans (default 512)
///   SQLINK_TRACE_FLUSH_MS=<ms> also rewrite when the last flush is older
///                              than ms at the next recorded span
///                              (default 2000)
class Tracer {
 public:
  /// The process tracer; first use parses the environment knobs.
  static Tracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Root-sampling probability in [0,1]; applied when a root span starts a
  /// new trace. Unsampled traces produce invalid contexts and record nothing.
  void set_sample_probability(double probability);
  double sample_probability() const;

  /// The calling thread's current span context (invalid when no span is
  /// open on this thread).
  static TraceContext CurrentContext();

  /// Process-wide fallback parent: when a thread has no current span, new
  /// spans parent here instead of starting fresh traces. Lets one logical
  /// operation (e.g. a streaming transfer) own every span its worker
  /// threads create. Returns the previous ambient context.
  TraceContext SetAmbientContext(TraceContext context);
  TraceContext ambient_context() const;

  void Record(SpanRecord record);

  std::vector<SpanRecord> Snapshot() const;
  /// The most recently recorded `n` spans, newest first (/tracez).
  std::vector<SpanRecord> Recent(size_t n) const;
  size_t span_count() const;
  void Reset();

  /// Retention bound for finished spans; older spans fall off the ring.
  void set_ring_capacity(size_t capacity);
  size_t ring_capacity() const;

  /// Points the json: sink at `path` and enables tracing (tests; the
  /// environment knob does the same at startup). Empty path disables the
  /// sink. Thresholds <= 0 keep their current values.
  void ConfigureSink(const std::string& path, int64_t flush_spans = 0,
                     int64_t flush_ms = 0);

  /// All finished spans as a JSON array (one object per span).
  std::string ToJson() const;
  /// Writes ToJson() to `path`; false on I/O failure.
  bool WriteJson(const std::string& path) const;
  /// Writes to the SQLINK_TRACE=json:<path> sink, if one was configured.
  bool FlushToConfiguredSink() const;

  /// Fresh nonzero ids.
  uint64_t NextTraceId();
  uint64_t NextSpanId();
  /// Rolls the per-trace sampling die.
  bool SampleNewTrace();

  /// Steady-clock micros since process start (span timestamps).
  static int64_t NowMicros();

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  double sample_probability_ = 1.0;
  uint64_t sample_rng_state_;
  TraceContext ambient_;
  std::deque<SpanRecord> spans_;  ///< Ring: newest at the back.
  size_t ring_capacity_ = 8192;
  std::string sink_path_;  ///< From SQLINK_TRACE=json:<path>; may be empty.
  int64_t flush_span_threshold_ = 512;
  int64_t flush_interval_micros_ = 2000 * 1000;
  int64_t recorded_since_flush_ = 0;
  int64_t last_flush_micros_ = 0;
};

/// RAII span. On construction picks its parent — explicit remote context if
/// given, else the thread's current span, else the ambient context, else it
/// roots a new (possibly unsampled) trace — and becomes the thread's current
/// span. On destruction (or End()) it restores the previous current span and
/// records itself. All of this is skipped when the tracer is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name);
  /// Continues a trace received from elsewhere (another thread or the wire).
  TraceSpan(std::string name, const TraceContext& parent);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { End(); }

  /// This span's context — what call sites put on the wire.
  const TraceContext& context() const { return context_; }
  bool recording() const { return recording_; }

  void AddAttribute(std::string key, int64_t value);
  void SetError();

  /// Finishes early (idempotent).
  void End();

 private:
  void Start(std::string name, const TraceContext* explicit_parent);

  TraceContext context_;
  TraceContext previous_current_;
  SpanRecord record_;
  bool recording_ = false;
  bool pushed_ = false;  ///< This span installed itself as thread-current.
  bool ended_ = false;
};

/// RAII ambient-context installer: every span started on a thread with no
/// open span parents to `context` until this object is destroyed.
class ScopedAmbientTrace {
 public:
  explicit ScopedAmbientTrace(const TraceContext& context)
      : previous_(Tracer::Global().SetAmbientContext(context)) {}
  ~ScopedAmbientTrace() { Tracer::Global().SetAmbientContext(previous_); }

  ScopedAmbientTrace(const ScopedAmbientTrace&) = delete;
  ScopedAmbientTrace& operator=(const ScopedAmbientTrace&) = delete;

 private:
  TraceContext previous_;
};

}  // namespace sqlink

#endif  // SQLINK_COMMON_TRACE_H_

