#include "sql/table_udf.h"

#include <mutex>

#include "common/string_util.h"

namespace sqlink {

Status TableUdf::ProcessPartitionBatches(const TableUdfContext& context,
                                         BatchIterator* input,
                                         RowSink* output) {
  if (input == nullptr) {
    return ProcessPartition(context, nullptr, output);
  }
  BatchToRowIterator rows(input);
  return ProcessPartition(context, &rows, output);
}

Status TableUdfRegistry::Register(const std::string& name,
                                  TableUdfFactory factory) {
  const std::string key = ToLowerAscii(name);
  std::lock_guard<std::mutex> lock(mu_);
  if (factories_.count(key) > 0) {
    return Status::AlreadyExists("table UDF exists: " + name);
  }
  factories_.emplace(key, std::move(factory));
  return Status::OK();
}

Result<TableUdfPtr> TableUdfRegistry::Create(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = factories_.find(ToLowerAscii(name));
  if (it == factories_.end()) {
    return Status::NotFound("unknown table UDF: " + name);
  }
  return it->second();
}

bool TableUdfRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(ToLowerAscii(name)) > 0;
}

}  // namespace sqlink
