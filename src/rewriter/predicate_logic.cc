#include "rewriter/predicate_logic.h"

#include "common/string_util.h"

namespace sqlink {

namespace {

std::string FlipOp(const std::string& op) {
  if (op == "<") return ">";
  if (op == "<=") return ">=";
  if (op == ">") return "<";
  if (op == ">=") return "<=";
  return op;  // = and <> are symmetric.
}

/// Total-order comparison consistent with the expression evaluator.
int CompareValues(const Value& a, const Value& b) {
  if (a == b) return 0;
  // Cross-type numeric ordering is handled by Value::operator<.
  return a < b ? -1 : 1;
}

bool ComparableLiterals(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return false;
  const bool a_num = a.is_int64() || a.is_double();
  const bool b_num = b.is_int64() || b.is_double();
  if (a_num && b_num) return true;
  return a.type() == b.type();
}

}  // namespace

std::string ColumnConstraint::ColumnKey() const {
  return ToLowerAscii(qualifier) + "." + ToLowerAscii(column);
}

std::optional<ColumnConstraint> ExtractConstraint(const Expr& expr) {
  if (expr.kind != ExprKind::kComparison) return std::nullopt;
  const Expr& lhs = *expr.children[0];
  const Expr& rhs = *expr.children[1];
  ColumnConstraint constraint;
  if (lhs.kind == ExprKind::kColumnRef && rhs.kind == ExprKind::kLiteral) {
    constraint.qualifier = lhs.qualifier;
    constraint.column = lhs.column;
    constraint.op = expr.op;
    constraint.literal = rhs.literal;
  } else if (rhs.kind == ExprKind::kColumnRef &&
             lhs.kind == ExprKind::kLiteral) {
    constraint.qualifier = rhs.qualifier;
    constraint.column = rhs.column;
    constraint.op = FlipOp(expr.op);
    constraint.literal = lhs.literal;
  } else {
    return std::nullopt;
  }
  if (constraint.literal.is_null()) return std::nullopt;
  return constraint;
}

bool ConstraintImplies(const ColumnConstraint& stronger,
                       const ColumnConstraint& weaker) {
  if (stronger.ColumnKey() != weaker.ColumnKey()) return false;
  if (!ComparableLiterals(stronger.literal, weaker.literal)) return false;
  const int cmp = CompareValues(stronger.literal, weaker.literal);
  const std::string& s = stronger.op;
  const std::string& w = weaker.op;

  if (s == "=") {
    // x = c implies (c op2 c2).
    if (w == "=") return cmp == 0;
    if (w == "<>") return cmp != 0;
    if (w == "<") return cmp < 0;
    if (w == "<=") return cmp <= 0;
    if (w == ">") return cmp > 0;
    if (w == ">=") return cmp >= 0;
    return false;
  }
  if (s == "<") {
    // x < c.
    if (w == "<") return cmp <= 0;   // c <= c2.
    if (w == "<=") return cmp <= 0;
    if (w == "<>") return cmp <= 0;  // All x < c differ from c2 when c2 >= c.
    return false;
  }
  if (s == "<=") {
    if (w == "<") return cmp < 0;
    if (w == "<=") return cmp <= 0;
    if (w == "<>") return cmp < 0;
    return false;
  }
  if (s == ">") {
    if (w == ">") return cmp >= 0;
    if (w == ">=") return cmp >= 0;
    if (w == "<>") return cmp >= 0;
    return false;
  }
  if (s == ">=") {
    if (w == ">") return cmp > 0;
    if (w == ">=") return cmp >= 0;
    if (w == "<>") return cmp > 0;
    return false;
  }
  if (s == "<>") {
    return w == "<>" && cmp == 0;
  }
  return false;
}

bool ConjunctImplies(const Expr& stronger, const Expr& weaker) {
  if (ExprEquals(stronger, weaker)) return true;
  const auto s = ExtractConstraint(stronger);
  const auto w = ExtractConstraint(weaker);
  if (!s.has_value() || !w.has_value()) return false;
  return ConstraintImplies(*s, *w);
}

}  // namespace sqlink
