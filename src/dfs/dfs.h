#ifndef SQLINK_DFS_DFS_H_
#define SQLINK_DFS_DFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/result.h"
#include "common/status.h"

namespace sqlink {

/// Options for the distributed filesystem simulation.
struct DfsOptions {
  /// Maximum bytes per block; a file is split into fixed-size blocks like
  /// HDFS. Small default keeps multi-block code paths exercised in tests.
  uint64_t block_size = 8 * 1024 * 1024;
  /// Number of replicas per block (paper testbed: 3). Clamped to the number
  /// of nodes.
  int replication = 3;
};

/// Location metadata for one block of a file.
struct BlockLocation {
  uint64_t offset = 0;  ///< Byte offset of this block within the file.
  uint64_t length = 0;  ///< Block payload size in bytes.
  std::vector<int> nodes;  ///< Nodes holding a replica.
};

class DfsWriter;
class DfsReader;

/// A shared block-based filesystem simulating HDFS over node-local
/// directories: a NameNode (this object's metadata map, mutex-protected) plus
/// per-node block files. Every replica write is a real disk write, so the
/// cost structure of materialize-to-HDFS-and-read-back — the thing the
/// paper's streaming transfer avoids — is reproduced.
class Dfs {
 public:
  Dfs(ClusterPtr cluster, DfsOptions options);

  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;

  /// Creates a new file and returns a writer. `preferred_node` places the
  /// first replica (HDFS writes the first replica on the writing node);
  /// pass -1 for no preference. Fails if the path exists.
  Result<std::unique_ptr<DfsWriter>> Create(const std::string& path,
                                            int preferred_node = -1);

  /// Opens a file for sequential reads. `reader_node` selects replicas for
  /// locality accounting; pass -1 for no preference.
  Result<std::unique_ptr<DfsReader>> Open(const std::string& path,
                                          int reader_node = -1) const;

  bool Exists(const std::string& path) const;
  Result<uint64_t> FileSize(const std::string& path) const;
  Result<std::vector<BlockLocation>> GetBlockLocations(
      const std::string& path) const;

  /// Paths under the directory prefix (a path "dir/a" is under "dir").
  std::vector<std::string> List(const std::string& prefix) const;

  Status Delete(const std::string& path);

  /// Convenience helpers for small files.
  Status WriteString(const std::string& path, const std::string& content,
                     int preferred_node = -1);
  Result<std::string> ReadString(const std::string& path) const;

  /// Total bytes written to disk including replication (for benchmarks).
  uint64_t TotalBytesWritten() const;
  uint64_t TotalBytesRead() const;

  const DfsOptions& options() const { return options_; }
  const ClusterPtr& cluster() const { return cluster_; }

 private:
  friend class DfsWriter;
  friend class DfsReader;

  struct BlockMeta {
    uint64_t id = 0;
    uint64_t length = 0;
    std::vector<int> nodes;
  };
  struct FileMeta {
    std::vector<BlockMeta> blocks;
    uint64_t size = 0;
    bool finalized = false;
  };

  std::string BlockPath(int node, uint64_t block_id) const;

  ClusterPtr cluster_;
  DfsOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, FileMeta> files_;
  uint64_t next_block_id_ = 0;
  int next_replica_node_ = 0;  // Round-robin placement cursor.
  mutable uint64_t bytes_written_ = 0;
  mutable uint64_t bytes_read_ = 0;
};

/// Sequential writer for a new DFS file. Buffered; cuts a block whenever the
/// buffer reaches the block size. Close() finalizes the file in the
/// NameNode; a file never becomes visible to readers without Close().
class DfsWriter {
 public:
  ~DfsWriter();

  DfsWriter(const DfsWriter&) = delete;
  DfsWriter& operator=(const DfsWriter&) = delete;

  Status Append(std::string_view data);
  Status Close();

  uint64_t bytes_written() const { return total_size_; }

 private:
  friend class Dfs;
  DfsWriter(Dfs* dfs, std::string path, int preferred_node);

  Status FlushBlock();

  Dfs* dfs_;
  std::string path_;
  int preferred_node_;
  std::string buffer_;
  std::vector<Dfs::BlockMeta> blocks_;
  uint64_t total_size_ = 0;
  bool closed_ = false;
};

/// Sequential reader over a DFS file. Supports positioned reads used by the
/// InputFormat line reader.
class DfsReader {
 public:
  /// Reads up to `length` bytes at `offset` into `out` (resized to the bytes
  /// actually read; empty at EOF).
  Status ReadAt(uint64_t offset, uint64_t length, std::string* out) const;

  /// Reads the whole file.
  Result<std::string> ReadAll() const;

  uint64_t file_size() const { return file_size_; }

 private:
  friend class Dfs;
  DfsReader(const Dfs* dfs, std::vector<Dfs::BlockMeta> blocks,
            uint64_t file_size, int reader_node);

  const Dfs* dfs_;
  std::vector<Dfs::BlockMeta> blocks_;
  uint64_t file_size_;
  int reader_node_;
};

using DfsPtr = std::shared_ptr<Dfs>;

}  // namespace sqlink

#endif  // SQLINK_DFS_DFS_H_
