// Tests for the typed metrics instruments (counters, gauges, histograms)
// and the registry: bucket/percentile math, concurrency, handle pointer
// stability across Reset, the legacy string shim, and the JSON/text dumps
// (including failpoint hit/fire counters flowing into the dump).

#include "common/metrics.h"

#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"

namespace sqlink {
namespace {

// --- Histogram buckets ------------------------------------------------------

TEST(HistogramTest, BucketIndexPowerOfTwoBounds) {
  // Bucket 0 covers (-inf, 1]; bucket i covers (2^{i-1}, 2^i].
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 0);
  EXPECT_EQ(Histogram::BucketIndex(2), 1);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 2);
  EXPECT_EQ(Histogram::BucketIndex(5), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 3);
  EXPECT_EQ(Histogram::BucketIndex(9), 4);
  EXPECT_EQ(Histogram::BucketIndex(1024), 10);
  EXPECT_EQ(Histogram::BucketIndex(1025), 11);
  // Everything past 2^39 lands in the overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(int64_t{1} << 39), 39);
  EXPECT_EQ(Histogram::BucketIndex((int64_t{1} << 39) + 1),
            Histogram::kNumBounds);
  EXPECT_EQ(Histogram::BucketIndex(INT64_MAX), Histogram::kNumBounds);
}

TEST(HistogramTest, BucketUpperBoundMatchesIndex) {
  for (int64_t v : {int64_t{1}, int64_t{2}, int64_t{3}, int64_t{100},
                    int64_t{4096}, int64_t{1} << 30}) {
    const int index = Histogram::BucketIndex(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(index)) << v;
    if (index > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(index - 1)) << v;
    }
  }
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBounds), INT64_MAX);
}

TEST(HistogramTest, SnapshotCountSumMinMax) {
  Histogram h;
  for (int64_t v : {5, 10, 20, 40, 80}) h.Record(v);
  const Histogram::Snapshot snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 5);
  EXPECT_EQ(snap.sum, 155);
  EXPECT_EQ(snap.min, 5);
  EXPECT_EQ(snap.max, 80);
  EXPECT_DOUBLE_EQ(snap.Mean(), 31.0);
}

TEST(HistogramTest, PercentilesOfUniformRange) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  const Histogram::Snapshot snap = h.GetSnapshot();
  // The percentile is interpolated inside its power-of-two bucket, so it is
  // accurate to within that bucket's bounds.
  EXPECT_GE(snap.p50, 256.0);
  EXPECT_LE(snap.p50, 512.0);
  EXPECT_GE(snap.p95, 512.0);
  EXPECT_LE(snap.p95, 1000.0);
  EXPECT_GE(snap.p99, snap.p95);
  EXPECT_LE(snap.p99, 1000.0);  // Clamped to the observed max.
  EXPECT_LE(snap.p50, snap.p95);
}

TEST(HistogramTest, PercentileOfConstantSeriesIsExact) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(7);
  const Histogram::Snapshot snap = h.GetSnapshot();
  // min == max == 7 clamps every interpolated percentile to exactly 7.
  EXPECT_DOUBLE_EQ(snap.p50, 7.0);
  EXPECT_DOUBLE_EQ(snap.p95, 7.0);
  EXPECT_DOUBLE_EQ(snap.p99, 7.0);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  const Histogram::Snapshot snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_DOUBLE_EQ(snap.p50, 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, ConcurrentRecordsLoseNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(t * 100 + i % 100 + 1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  const Histogram::Snapshot snap = h.GetSnapshot();
  int64_t bucket_total = 0;
  for (int64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

// --- Gauge ------------------------------------------------------------------

TEST(GaugeTest, TracksValueAndHighWaterMark) {
  Gauge g;
  g.Add(5);
  g.Add(3);
  g.Add(-6);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 8);
  g.Set(1);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.max_value(), 8);  // Max survives Set to a lower value.
}

TEST(GaugeTest, ConcurrentUpDownNetsToZero) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) {
        g.Increment();
        g.Decrement();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(g.value(), 0);
  EXPECT_GE(g.max_value(), 1);
  EXPECT_LE(g.max_value(), kThreads);
}

// --- Registry ---------------------------------------------------------------

TEST(MetricsRegistryTest, HandlesArePointerStableAcrossReset) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("stable.counter");
  Gauge* gauge = registry.GetGauge("stable.gauge");
  Histogram* histogram = registry.GetHistogram("stable.histogram");
  counter->Add(10);
  gauge->Set(4);
  histogram->Record(100);

  registry.Reset();

  // Same objects, zeroed values — hot-path handles acquired before a Reset
  // keep working after it.
  EXPECT_EQ(registry.GetCounter("stable.counter"), counter);
  EXPECT_EQ(registry.GetGauge("stable.gauge"), gauge);
  EXPECT_EQ(registry.GetHistogram("stable.histogram"), histogram);
  EXPECT_EQ(counter->value(), 0);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(gauge->max_value(), 0);
  EXPECT_EQ(histogram->count(), 0);
  counter->Increment();
  EXPECT_EQ(registry.Get("stable.counter"), 1);
}

TEST(MetricsRegistryTest, SameNameSameHandle) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("x"), registry.GetCounter("x"));
  EXPECT_NE(registry.GetCounter("x"), registry.GetCounter("y"));
  // The three namespaces are independent: a counter "x" and a gauge "x"
  // coexist.
  EXPECT_NE(static_cast<void*>(registry.GetCounter("x")),
            static_cast<void*>(registry.GetGauge("x")));
}

TEST(MetricsRegistryTest, LegacyStringShim) {
  MetricsRegistry registry;
  registry.Increment("legacy.a");
  registry.Add("legacy.b", 41);
  registry.Add("legacy.b", 1);
  EXPECT_EQ(registry.Get("legacy.a"), 1);
  EXPECT_EQ(registry.Get("legacy.b"), 42);
  EXPECT_EQ(registry.Get("legacy.absent"), 0);
  const auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.at("legacy.a"), 1);
  EXPECT_EQ(snapshot.at("legacy.b"), 42);
}

TEST(MetricsRegistryTest, SnapshotIncludesGauges) {
  MetricsRegistry registry;
  registry.GetGauge("depth")->Set(3);
  registry.GetCounter("events")->Add(2);
  const auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.at("depth"), 3);
  EXPECT_EQ(snapshot.at("events"), 2);
}

TEST(MetricsRegistryTest, ToJsonContainsAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.GetCounter("stream.wire.frames_sent")->Add(7);
  registry.GetGauge("stream.spill.queue_depth_frames")->Set(2);
  registry.GetHistogram("stream.wire.send_frame_micros")->Record(150);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"stream.wire.frames_sent\":7"), std::string::npos)
      << json;
  EXPECT_NE(json.find("stream.spill.queue_depth_frames"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
}

TEST(MetricsRegistryTest, ToTextMentionsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("a.counter")->Add(1);
  registry.GetGauge("a.gauge")->Set(5);
  registry.GetHistogram("a.histogram")->Record(9);
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("a.counter"), std::string::npos) << text;
  EXPECT_NE(text.find("a.gauge"), std::string::npos) << text;
  EXPECT_NE(text.find("a.histogram"), std::string::npos) << text;
}

TEST(MetricsRegistryTest, WriteJsonRoundTripsToDisk) {
  MetricsRegistry registry;
  registry.GetCounter("written.counter")->Add(3);
  const std::string path = ::testing::TempDir() + "/metrics_dump.json";
  ASSERT_TRUE(registry.WriteJson(path));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  char buffer[4096] = {};
  const size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, file);
  std::fclose(file);
  std::remove(path.c_str());
  const std::string contents(buffer, n);
  EXPECT_NE(contents.find("\"written.counter\":3"), std::string::npos)
      << contents;
}

// Satellite: failpoint evaluations flow into the global registry, so the
// injected-fault activity of a chaos run shows up in the same JSON dump as
// every other metric.
TEST(MetricsRegistryTest, FailpointCountersAppearInGlobalJsonDump) {
  ScopedFailpoint failpoint("metrics.test.point", "error(1)");
  ASSERT_TRUE(failpoint.status().ok());
  EXPECT_EQ(SQLINK_FAILPOINT("metrics.test.point"), FailpointOutcome::kError);
  EXPECT_EQ(SQLINK_FAILPOINT("metrics.test.point"), FailpointOutcome::kNone);

  EXPECT_GE(MetricsRegistry::Global().Get("failpoint.metrics.test.point.hits"),
            2);
  EXPECT_GE(
      MetricsRegistry::Global().Get("failpoint.metrics.test.point.fired"), 1);
  const std::string json = MetricsRegistry::Global().ToJson();
  EXPECT_NE(json.find("failpoint.metrics.test.point.hits"), std::string::npos);
  EXPECT_NE(json.find("failpoint.metrics.test.point.fired"),
            std::string::npos);
}

}  // namespace
}  // namespace sqlink
