#ifndef SQLINK_OBS_OPS_SERVER_H_
#define SQLINK_OBS_OPS_SERVER_H_

#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/result.h"
#include "stream/socket.h"

namespace sqlink {

/// Minimal embedded HTTP/1.1 ops endpoint — live observability for a
/// running engine process, curl-able while queries and streaming transfers
/// are in flight. Routes:
///
///   /metrics   process metrics, Prometheus text exposition
///   /queries   active + recently finished queries with per-operator stats
///              trees and trace ids (JSON, from the QueryRegistry)
///   /tracez    the most recent sampled trace spans, grouped by trace id
///              (JSON; requires SQLINK_TRACE to be enabled)
///   /healthz   "ok" (200) — or, when a health hook reports unhealthy,
///              503 with a JSON reason (e.g. admission queue saturated)
///
/// One accept thread serves requests sequentially (ops traffic is tiny);
/// every response closes the connection. Bound to 127.0.0.1 like all other
/// sockets in the simulated cluster. Enable via SQLINK_OPS_PORT=<port>
/// (0 = ephemeral) or programmatically with Start().
class OpsServer {
 public:
  /// Health verdict from a HealthHook: healthy == true serves the plain
  /// 200 "ok" body; otherwise /healthz returns 503 with `reason_json`.
  struct Health {
    bool healthy = true;
    std::string reason_json;  ///< JSON body for the 503 response.
  };
  using HealthHook = std::function<Health()>;

  struct Options {
    int port = 0;              ///< 0 picks an ephemeral port.
    size_t tracez_spans = 256; ///< Most recent spans served by /tracez.
    /// Optional liveness probe consulted by /healthz (e.g. the query
    /// server's admission saturation signal). Null = always healthy. Called
    /// from the serving thread; must be thread-safe and non-blocking.
    HealthHook health_hook;
  };

  /// Binds and starts the serving thread.
  static Result<std::unique_ptr<OpsServer>> Start(const Options& options);

  /// Starts from SQLINK_OPS_PORT. Returns null (not an error) when the
  /// variable is unset or empty; an error only when it is set but the
  /// server cannot start.
  static Result<std::unique_ptr<OpsServer>> StartFromEnv();

  ~OpsServer();
  OpsServer(const OpsServer&) = delete;
  OpsServer& operator=(const OpsServer&) = delete;

  /// Stops accepting and joins the serving thread (idempotent).
  void Stop();

  /// The bound port (the actual one when Options::port was 0).
  int port() const { return listener_.port(); }

 private:
  explicit OpsServer(Options options) : options_(options) {}

  void Serve();
  void HandleConnection(TcpSocket socket);

  Options options_;
  TcpListener listener_;
  std::thread thread_;
  bool stopped_ = false;
};

}  // namespace sqlink

#endif  // SQLINK_OBS_OPS_SERVER_H_
