file(REMOVE_RECURSE
  "CMakeFiles/bench_sql.dir/bench_sql.cpp.o"
  "CMakeFiles/bench_sql.dir/bench_sql.cpp.o.d"
  "bench_sql"
  "bench_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
