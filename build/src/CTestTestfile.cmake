# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("cluster")
subdirs("table")
subdirs("dfs")
subdirs("sql")
subdirs("ml")
subdirs("transform")
subdirs("stream")
subdirs("mq")
subdirs("rewriter")
subdirs("cache")
subdirs("exttool")
subdirs("pipeline")
