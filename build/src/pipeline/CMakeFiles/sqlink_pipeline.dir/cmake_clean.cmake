file(REMOVE_RECURSE
  "CMakeFiles/sqlink_pipeline.dir/analytics_pipeline.cc.o"
  "CMakeFiles/sqlink_pipeline.dir/analytics_pipeline.cc.o.d"
  "CMakeFiles/sqlink_pipeline.dir/datagen.cc.o"
  "CMakeFiles/sqlink_pipeline.dir/datagen.cc.o.d"
  "CMakeFiles/sqlink_pipeline.dir/table_io.cc.o"
  "CMakeFiles/sqlink_pipeline.dir/table_io.cc.o.d"
  "libsqlink_pipeline.a"
  "libsqlink_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlink_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
