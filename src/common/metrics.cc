#include "common/metrics.h"

namespace sqlink {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

}  // namespace sqlink
