#ifndef SQLINK_MQ_MQ_TRANSFER_H_
#define SQLINK_MQ_MQ_TRANSFER_H_

#include <memory>
#include <string>

#include "ml/input_format.h"
#include "ml/job.h"
#include "mq/broker.h"
#include "sql/engine.h"

namespace sqlink {

/// Broker-mediated SQL→ML transfer — the paper's §8 alternative to direct
/// sockets. Each SQL worker publishes its rows (batched into frames) to k
/// topic partitions; ML workers consume partitions at their own pace and
/// resume from committed offsets after a failure, so recovery re-reads
/// only the uncommitted tail instead of replaying the whole stream (the
/// "at least one read" guarantee), and a slow consumer simply lags against
/// the broker's retained log.
/// Fault injection lives in the failpoint registry (common/failpoint.h):
/// arm "mq.reader.crash.p<ID>" to make partition ID's consumer "crash"
/// after a delivered row and resume from its last committed offset, or
/// "mq.broker.produce" / "mq.broker.poll" for broker-side faults.
struct MqTransferOptions {
  int partitions_per_worker = 1;  ///< k; topic has n·k partitions.
  size_t batch_bytes = 4096;      ///< Frame batching, as the socket path.
  std::string consumer_group = "ml-ingest";
};

struct MqTransferResult {
  ml::RowDataset dataset;
  int64_t rows_published = 0;
  int64_t messages_published = 0;
  /// Messages re-read after the injected failure (recovery tail; compare
  /// with the direct transfer's full replay).
  int64_t messages_reread = 0;
};

/// Registers the "mq_stream_sink" table UDF bound to `broker` on the
/// engine. SQL: TABLE(mq_stream_sink((<query>), '<topic>', <k>, <batch>)).
/// Idempotent per engine/broker pair (re-registration with a different
/// broker fails).
Status RegisterMqSinkUdf(SqlEngine* engine, MessageBrokerPtr broker);

/// An ml::InputFormat over a broker topic: one split per partition, each
/// located at the producing SQL worker's host.
class MqInputFormat final : public ml::InputFormat {
 public:
  MqInputFormat(MessageBrokerPtr broker, std::string topic, SchemaPtr schema,
                MqTransferOptions options);

  Result<std::vector<ml::InputSplitPtr>> GetSplits(
      const ml::JobContext& context) override;
  Result<std::unique_ptr<ml::RecordReader>> CreateReader(
      const ml::JobContext& context, const ml::InputSplit& split,
      int worker_id) override;
  SchemaPtr schema() const override { return schema_; }

  int64_t messages_reread() const;

 private:
  MessageBrokerPtr broker_;
  std::string topic_;
  SchemaPtr schema_;
  MqTransferOptions options_;
  std::shared_ptr<std::atomic<int64_t>> reread_counter_;
};

/// Runs the whole broker-mediated pipeline for one query: creates the
/// topic, executes the query with the mq sink UDF (publishing), and
/// concurrently ingests the topic into a RowDataset.
class MqTransfer {
 public:
  static Result<MqTransferResult> Run(SqlEngine* engine,
                                      MessageBrokerPtr broker,
                                      const std::string& query_sql,
                                      const MqTransferOptions& options = {});
};

}  // namespace sqlink

#endif  // SQLINK_MQ_MQ_TRANSFER_H_
