#ifndef SQLINK_STREAM_REPLAY_WINDOW_H_
#define SQLINK_STREAM_REPLAY_WINDOW_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/result.h"
#include "stream/spill_queue.h"

namespace sqlink {

class FrameBufferPool;

/// The sink side of at-least-once delivery (§6): every sent data frame is
/// retained, keyed by its per-channel sequence number, until the reader's
/// cumulative ack releases it. A reconnecting or replacement reader resumes
/// from any sequence at or above the last ack; duplicates on the reader side
/// are dropped by sequence number, so delivery is at-least-once but apply is
/// exactly-once.
///
/// The in-memory footprint is bounded by `memory_capacity_bytes`
/// (SQLINK_REPLAY_WINDOW_BYTES): when unacked frames exceed the budget the
/// oldest ones overflow to a node-local SpillFile — the same spill
/// machinery the send queue uses — and are read back only on replay. With
/// spill disabled the window grows unbounded (retention can't be dropped
/// without losing the recovery guarantee).
///
/// Not thread-safe: a window belongs to exactly one sender thread, which
/// appends, acks, and replays in its own loop.
class ReplayWindow {
 public:
  struct Options {
    size_t memory_capacity_bytes = 1 << 20;
    bool spill_enabled = true;
    std::string spill_path;  ///< Required when spill_enabled.
    /// When set, acked frame buffers are returned here instead of freed, so
    /// the sender's next Acquire reuses them.
    FrameBufferPool* buffer_pool = nullptr;
  };

  explicit ReplayWindow(Options options);

  ReplayWindow(const ReplayWindow&) = delete;
  ReplayWindow& operator=(const ReplayWindow&) = delete;

  /// Retains frame `seq` (must be last_seq()+1; sequences start at 1)
  /// holding `rows` rows.
  Status Append(uint64_t seq, uint64_t rows, std::string frame);

  /// Cumulative ack: releases every frame with sequence <= `acked`.
  void Ack(uint64_t acked);

  /// Replays the retained frames with sequence > `from`, oldest first.
  Status Replay(uint64_t from,
                const std::function<Status(uint64_t seq, uint64_t rows,
                                           const std::string& frame)>& fn);

  /// Rows contained in frames [1, seq]; `seq` must be between acked_seq()
  /// and last_seq() — the truncation point a resuming reader's runner needs.
  Result<uint64_t> RowsThrough(uint64_t seq) const;

  uint64_t acked_seq() const { return acked_seq_; }
  uint64_t last_seq() const { return last_seq_; }
  /// Bytes of retained frames currently held in memory.
  size_t memory_bytes() const { return memory_bytes_; }
  int64_t spilled_frames() const { return spilled_frames_; }

 private:
  struct Entry {
    uint64_t seq = 0;
    uint64_t rows = 0;
    size_t bytes = 0;
    bool in_memory = true;
    uint64_t spill_offset = 0;  ///< Valid when !in_memory.
    std::string frame;          ///< Empty when spilled.
  };

  /// Moves the oldest in-memory entries to disk until within budget.
  Status EnforceBudget();

  Options options_;
  SpillFile spill_;
  std::deque<Entry> entries_;   ///< Unacked frames, ascending seq.
  uint64_t acked_seq_ = 0;      ///< All frames <= this were applied.
  uint64_t last_seq_ = 0;
  uint64_t acked_rows_ = 0;     ///< Rows in frames [1, acked_seq_].
  size_t memory_bytes_ = 0;
  int64_t spilled_frames_ = 0;
};

}  // namespace sqlink

#endif  // SQLINK_STREAM_REPLAY_WINDOW_H_
