#ifndef SQLINK_ML_NAIVE_BAYES_H_
#define SQLINK_ML_NAIVE_BAYES_H_

#include <map>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "ml/dataset.h"

namespace sqlink::ml {

/// Gaussian naive Bayes over dense numeric features. Training is
/// distributed: each worker computes per-class count/sum/sum-of-squares for
/// its partition; the driver merges and derives per-class means/variances.
class NaiveBayesModel {
 public:
  /// Log-posterior-proportional score for each trained class.
  std::map<double, double> Scores(const DenseVector& features) const;

  /// Most probable class label.
  double Predict(const DenseVector& features) const;

  const std::vector<double>& class_labels() const { return labels_; }

  /// Binary (de)serialization for model persistence.
  void Encode(std::string* out) const;
  static Result<NaiveBayesModel> Decode(Decoder* decoder);

 private:
  friend class NaiveBayes;
  std::vector<double> labels_;
  std::vector<double> log_priors_;
  std::vector<DenseVector> means_;      // Per class.
  std::vector<DenseVector> variances_;  // Per class, floored for stability.
};

class NaiveBayes {
 public:
  static Result<NaiveBayesModel> Train(const Dataset& data);
};

}  // namespace sqlink::ml

#endif  // SQLINK_ML_NAIVE_BAYES_H_
