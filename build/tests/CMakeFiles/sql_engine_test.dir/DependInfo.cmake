
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sql_engine_test.cc" "tests/CMakeFiles/sql_engine_test.dir/sql_engine_test.cc.o" "gcc" "tests/CMakeFiles/sql_engine_test.dir/sql_engine_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/sqlink_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/sqlink_table.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sqlink_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sqlink_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
