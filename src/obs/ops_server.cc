#include "obs/ops_server.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/status_macros.h"
#include "common/trace.h"
#include "sql/query_registry.h"

namespace sqlink {

namespace {

constexpr size_t kMaxRequestBytes = 8192;

void AppendJsonString(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendSpanJson(const SpanRecord& span, std::string* out) {
  out->append("{\"name\":");
  AppendJsonString(span.name, out);
  // Ids as strings: uint64 does not survive a double-typed JSON reader.
  out->append(",\"span_id\":\"" + std::to_string(span.span_id) +
              "\",\"parent_span_id\":\"" + std::to_string(span.parent_span_id) +
              "\",\"start_micros\":" + std::to_string(span.start_micros) +
              ",\"duration_micros\":" + std::to_string(span.duration_micros) +
              ",\"error\":" + (span.error ? "true" : "false"));
  if (!span.attributes.empty()) {
    out->append(",\"attributes\":{");
    bool first = true;
    for (const auto& [key, value] : span.attributes) {
      if (!first) out->push_back(',');
      first = false;
      AppendJsonString(key, out);
      out->push_back(':');
      out->append(std::to_string(value));
    }
    out->push_back('}');
  }
  out->push_back('}');
}

/// The most recent spans grouped by trace, most recent trace first:
/// {"traces":[{"trace_id":"...","spans":[...]}]}.
std::string TracezJson(size_t max_spans) {
  const std::vector<SpanRecord> recent = Tracer::Global().Recent(max_spans);
  std::vector<uint64_t> order;        // Trace ids, most recent first.
  std::map<uint64_t, std::vector<const SpanRecord*>> by_trace;
  for (const SpanRecord& span : recent) {
    auto [it, inserted] = by_trace.try_emplace(span.trace_id);
    if (inserted) order.push_back(span.trace_id);
    it->second.push_back(&span);
  }
  std::string out = "{\"traces\":[";
  bool first_trace = true;
  for (uint64_t trace_id : order) {
    if (!first_trace) out.push_back(',');
    first_trace = false;
    out += "{\"trace_id\":\"" + std::to_string(trace_id) + "\",\"spans\":[";
    bool first_span = true;
    for (const SpanRecord* span : by_trace[trace_id]) {
      if (!first_span) out.push_back(',');
      first_span = false;
      AppendSpanJson(*span, &out);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

Status SendResponse(TcpSocket* socket, const std::string& status_line,
                    const std::string& content_type, const std::string& body) {
  std::string head = "HTTP/1.1 " + status_line +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  return socket->SendAllV(head, body);
}

/// Reads until the end of the request head ("\r\n\r\n") and returns the
/// request target path (query strings stripped). GET requests carry no
/// body, so nothing else is consumed.
Result<std::string> ReadRequestPath(TcpSocket* socket) {
  std::string request;
  std::string byte;
  while (request.size() < kMaxRequestBytes) {
    RETURN_IF_ERROR(socket->RecvExactly(1, &byte));
    request += byte;
    if (request.size() >= 4 &&
        request.compare(request.size() - 4, 4, "\r\n\r\n") == 0) {
      break;
    }
  }
  // "GET /path HTTP/1.1\r\n..."
  const size_t first_space = request.find(' ');
  if (first_space == std::string::npos) {
    return Status::InvalidArgument("malformed http request line");
  }
  const size_t second_space = request.find(' ', first_space + 1);
  if (second_space == std::string::npos) {
    return Status::InvalidArgument("malformed http request line");
  }
  std::string path =
      request.substr(first_space + 1, second_space - first_space - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  return path;
}

}  // namespace

Result<std::unique_ptr<OpsServer>> OpsServer::Start(const Options& options) {
  std::unique_ptr<OpsServer> server(new OpsServer(options));
  ASSIGN_OR_RETURN(server->listener_, TcpListener::Listen(options.port));
  server->thread_ = std::thread([raw = server.get()] { raw->Serve(); });
  LOG_INFO() << "ops server listening on 127.0.0.1:"
             << server->listener_.port();
  return server;
}

Result<std::unique_ptr<OpsServer>> OpsServer::StartFromEnv() {
  const char* env = std::getenv("SQLINK_OPS_PORT");
  if (env == nullptr || *env == '\0') return std::unique_ptr<OpsServer>();
  Options options;
  options.port = std::atoi(env);
  return Start(options);
}

OpsServer::~OpsServer() { Stop(); }

void OpsServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  listener_.Close();
  if (thread_.joinable()) thread_.join();
}

void OpsServer::Serve() {
  for (;;) {
    Result<TcpSocket> socket = listener_.Accept();
    if (!socket.ok()) return;  // kCancelled after Close().
    HandleConnection(std::move(socket).value());
  }
}

void OpsServer::HandleConnection(TcpSocket socket) {
  Result<std::string> path = ReadRequestPath(&socket);
  if (!path.ok()) return;  // Peer vanished or sent garbage; drop it.

  Status sent;
  if (*path == "/metrics") {
    sent = SendResponse(&socket, "200 OK", "text/plain; version=0.0.4",
                        MetricsRegistry::Global().ToPrometheusText());
  } else if (*path == "/queries") {
    sent = SendResponse(&socket, "200 OK", "application/json",
                        QueryRegistry::Global().ToJson());
  } else if (*path == "/tracez") {
    sent = SendResponse(&socket, "200 OK", "application/json",
                        TracezJson(options_.tracez_spans));
  } else if (*path == "/healthz") {
    Health health;
    if (options_.health_hook) health = options_.health_hook();
    if (health.healthy) {
      sent = SendResponse(&socket, "200 OK", "text/plain", "ok\n");
    } else {
      sent = SendResponse(&socket, "503 Service Unavailable",
                          "application/json", health.reason_json + "\n");
    }
  } else {
    sent = SendResponse(&socket, "404 Not Found", "text/plain",
                        "unknown route; try /metrics /queries /tracez\n");
  }
  if (!sent.ok()) {
    LOG_DEBUG() << "ops response send failed: " << sent;
  }
}

}  // namespace sqlink
