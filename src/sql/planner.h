#ifndef SQLINK_SQL_PLANNER_H_
#define SQLINK_SQL_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/expr.h"
#include "sql/plan.h"
#include "sql/table_udf.h"

namespace sqlink {

/// Physical join choice override (tests, benchmarks, tuning). kAuto lets
/// the cost model decide: hash unless the build side's estimated bytes
/// exceed the hash-build memory budget, sort-merge then.
enum class JoinStrategy : int { kAuto, kHash, kSortMerge };

/// Cost-model knobs for the planner.
struct PlannerOptions {
  /// Build sides estimated at or below this many rows are broadcast to
  /// every worker; larger ones use a repartition (shuffle) join.
  double broadcast_threshold_rows = 500000;
  /// Equi joins whose build side is estimated to exceed this many bytes
  /// in a hash table use sort-merge instead (bounded memory, more CPU).
  double hash_build_budget_bytes = 256.0 * 1024 * 1024;
  JoinStrategy join_strategy = JoinStrategy::kAuto;
};

/// Turns a parsed SELECT into an executable plan:
///  - FROM entries become Scan / TableUdf / subquery plans;
///  - single-relation WHERE conjuncts are pushed below joins;
///  - comma joins become left-deep equi joins keyed on the equality
///    conjuncts that connect the sides, costed with catalog statistics
///    (NDV, null fractions, row bytes): broadcast vs repartition by build
///    cardinality, hash vs sort-merge by build memory;
///  - GROUP BY / aggregate select lists become a two-phase Aggregate;
///  - DISTINCT / ORDER BY / LIMIT become their operators.
class Planner {
 public:
  Planner(const Catalog* catalog, const ScalarFunctionRegistry* scalars,
          const TableUdfRegistry* table_udfs, int num_partitions,
          double broadcast_threshold_rows = 500000);
  Planner(const Catalog* catalog, const ScalarFunctionRegistry* scalars,
          const TableUdfRegistry* table_udfs, int num_partitions,
          const PlannerOptions& options);

  Result<PlanPtr> PlanSelect(const SelectStmt& stmt);

 private:
  struct RelationPlan {
    PlanPtr plan;
    NameScope scope;  // Relations in flat-row column order.
    /// Per-column stats aligned with the flat schema; empty when the
    /// source has no catalog stats (UDF outputs, subqueries).
    std::vector<ColumnStats> column_stats;
  };

  Result<RelationPlan> PlanTableRef(const TableRef& ref);
  Result<RelationPlan> PlanFromWhere(const SelectStmt& stmt);

  /// Estimated fraction of rows a WHERE conjunct keeps, from column stats:
  /// `=` against a literal keeps 1/NDV, IS [NOT] NULL keeps the null
  /// fraction, ranges keep 1/3, AND multiplies, OR adds minus the overlap.
  double EstimateSelectivity(const Expr& expr, const NameScope& scope,
                             const std::vector<ColumnStats>& stats) const;

  /// Evaluates a constant scalar expression (UDF literal arguments).
  Result<Value> EvaluateConstant(const Expr& expr);

  const Catalog* catalog_;
  const ScalarFunctionRegistry* scalars_;
  const TableUdfRegistry* table_udfs_;
  int num_partitions_;
  PlannerOptions options_;
};

}  // namespace sqlink

#endif  // SQLINK_SQL_PLANNER_H_
