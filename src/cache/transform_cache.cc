#include "cache/transform_cache.h"

#include "common/string_util.h"

namespace sqlink {

bool TransformRequest::WantsRecode(const std::string& column) const {
  for (const std::string& name : recode_columns) {
    if (EqualsIgnoreCase(name, column)) return true;
  }
  return false;
}

const CodingScheme* TransformRequest::CodingFor(
    const std::string& column) const {
  for (const auto& [name, scheme] : codings) {
    if (EqualsIgnoreCase(name, column)) return &scheme;
  }
  return nullptr;
}

Status TransformCache::PutFullResult(TransformRequest request,
                                     std::shared_ptr<SelectStmt> prep_stmt,
                                     RecodeMap recode_map,
                                     std::string result_table,
                                     SchemaPtr result_schema) {
  if (result_table.empty() || result_schema == nullptr) {
    return Status::InvalidArgument("full result entry needs a table");
  }
  auto entry = std::make_shared<TransformCacheEntry>();
  entry->request = std::move(request);
  entry->prep_stmt = std::move(prep_stmt);
  entry->recode_map = std::move(recode_map);
  entry->result_table = std::move(result_table);
  entry->result_schema = std::move(result_schema);
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Status TransformCache::PutRecodeMap(TransformRequest request,
                                    std::shared_ptr<SelectStmt> prep_stmt,
                                    RecodeMap recode_map) {
  auto entry = std::make_shared<TransformCacheEntry>();
  entry->request = std::move(request);
  entry->prep_stmt = std::move(prep_stmt);
  entry->recode_map = std::move(recode_map);
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  return Status::OK();
}

std::vector<std::shared_ptr<const TransformCacheEntry>>
TransformCache::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

void TransformCache::RecordHit(bool full_result) {
  std::lock_guard<std::mutex> lock(mu_);
  if (full_result) {
    ++full_hits_;
  } else {
    ++map_hits_;
  }
}

void TransformCache::RecordMiss() {
  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
}

int64_t TransformCache::full_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return full_hits_;
}

int64_t TransformCache::map_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_hits_;
}

int64_t TransformCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void TransformCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  full_hits_ = map_hits_ = misses_ = 0;
}

size_t TransformCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace sqlink
