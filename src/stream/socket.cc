#include "stream/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <csignal>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace sqlink {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// A peer that died mid-transfer shows up as ECONNRESET (or EPIPE when
/// MSG_NOSIGNAL suppressed the signal). Name the condition so recovery code
/// can match on "connection reset" instead of a raw strerror string.
Status PeerError(const char* what) {
  if (errno == ECONNRESET || errno == EPIPE) {
    return Status::NetworkError(std::string(what) +
                                ": connection reset by peer");
  }
  return Status::NetworkError(ErrnoMessage(what));
}

/// MSG_NOSIGNAL covers send(); ignore SIGPIPE process-wide as well so a
/// write on a reset connection via any other path can never kill the
/// process. Installed once, on first socket use.
void IgnoreSigpipeOnce() {
  static const bool installed = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)installed;
}

}  // namespace

TcpSocket::~TcpSocket() { Close(); }

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status TcpSocket::SendAll(std::string_view data) {
  if (!valid()) return Status::NetworkError("send on closed socket");
  switch (SQLINK_FAILPOINT("stream.socket.send")) {
    case FailpointOutcome::kNone:
      break;
    case FailpointOutcome::kError:
      return Status::NetworkError("failpoint: injected send error");
    case FailpointOutcome::kClose:
      Close();
      return Status::NetworkError("failpoint: send socket closed");
  }
  IgnoreSigpipeOnce();
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return PeerError("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TcpSocket::SendAllV(std::string_view a, std::string_view b) {
  if (!valid()) return Status::NetworkError("send on closed socket");
  switch (SQLINK_FAILPOINT("stream.socket.send")) {
    case FailpointOutcome::kNone:
      break;
    case FailpointOutcome::kError:
      return Status::NetworkError("failpoint: injected send error");
    case FailpointOutcome::kClose:
      Close();
      return Status::NetworkError("failpoint: send socket closed");
  }
  IgnoreSigpipeOnce();
  iovec iov[2];
  iov[0].iov_base = const_cast<char*>(a.data());
  iov[0].iov_len = a.size();
  iov[1].iov_base = const_cast<char*>(b.data());
  iov[1].iov_len = b.size();
  size_t first = 0;
  while (first < 2) {
    if (iov[first].iov_len == 0) {
      ++first;
      continue;
    }
    msghdr msg{};
    msg.msg_iov = &iov[first];
    msg.msg_iovlen = 2 - first;
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return PeerError("send");
    }
    size_t advanced = static_cast<size_t>(n);
    while (first < 2 && advanced >= iov[first].iov_len) {
      advanced -= iov[first].iov_len;
      iov[first].iov_len = 0;
      ++first;
    }
    if (first < 2 && advanced > 0) {
      iov[first].iov_base = static_cast<char*>(iov[first].iov_base) + advanced;
      iov[first].iov_len -= advanced;
    }
  }
  return Status::OK();
}

Status TcpSocket::SendAllIov(::iovec* iov, size_t count) {
  if (!valid()) return Status::NetworkError("send on closed socket");
  switch (SQLINK_FAILPOINT("stream.socket.send")) {
    case FailpointOutcome::kNone:
      break;
    case FailpointOutcome::kError:
      return Status::NetworkError("failpoint: injected send error");
    case FailpointOutcome::kClose:
      Close();
      return Status::NetworkError("failpoint: send socket closed");
  }
  IgnoreSigpipeOnce();
  // Linux caps one sendmsg at IOV_MAX (1024) entries; a coalescer batch of
  // hundreds of tiny frames still fits in one call.
  constexpr size_t kMaxPerCall = 1024;
  size_t first = 0;
  while (first < count) {
    if (iov[first].iov_len == 0) {
      ++first;
      continue;
    }
    msghdr msg{};
    msg.msg_iov = &iov[first];
    msg.msg_iovlen = std::min(count - first, kMaxPerCall);
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return PeerError("send");
    }
    size_t advanced = static_cast<size_t>(n);
    while (first < count && advanced >= iov[first].iov_len) {
      advanced -= iov[first].iov_len;
      iov[first].iov_len = 0;
      ++first;
    }
    if (first < count && advanced > 0) {
      iov[first].iov_base = static_cast<char*>(iov[first].iov_base) + advanced;
      iov[first].iov_len -= advanced;
    }
  }
  return Status::OK();
}

Status TcpSocket::RecvExactly(size_t n, std::string* out) {
  if (!valid()) return Status::NetworkError("recv on closed socket");
  switch (SQLINK_FAILPOINT("stream.socket.recv")) {
    case FailpointOutcome::kNone:
      break;
    case FailpointOutcome::kError:
      return Status::NetworkError("failpoint: injected recv error");
    case FailpointOutcome::kClose:
      Close();
      return Status::NetworkError("failpoint: recv socket closed");
  }
  out->resize(n);
  size_t received = 0;
  while (received < n) {
    const ssize_t got = ::recv(fd_, out->data() + received, n - received, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return PeerError("recv");
    }
    if (got == 0) {
      return Status::NetworkError(received == 0 ? "closed"
                                                : "closed mid-message");
    }
    received += static_cast<size_t>(got);
  }
  return Status::OK();
}

Result<size_t> TcpSocket::TryRecv(size_t max, std::string* out, bool* eof) {
  if (!valid()) return Status::NetworkError("recv on closed socket");
  const size_t base = out->size();
  out->resize(base + max);
  for (;;) {
    const ssize_t got = ::recv(fd_, out->data() + base, max, MSG_DONTWAIT);
    if (got < 0) {
      if (errno == EINTR) continue;
      out->resize(base);
      if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
      return PeerError("recv");
    }
    if (got == 0) {
      out->resize(base);
      if (eof != nullptr) {
        *eof = true;
        return size_t{0};
      }
      return Status::NetworkError("closed");
    }
    out->resize(base + static_cast<size_t>(got));
    return static_cast<size_t>(got);
  }
}

void TcpSocket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() { Close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_acq_rel)),
      port_(other.port_) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_acq_rel),
              std::memory_order_release);
    port_ = other.port_;
  }
  return *this;
}

Result<TcpListener> TcpListener::Listen(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::NetworkError(ErrnoMessage("socket"));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::NetworkError(ErrnoMessage("bind"));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::NetworkError(ErrnoMessage("listen"));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Status::NetworkError(ErrnoMessage("getsockname"));
  }
  TcpListener listener;
  listener.fd_.store(fd, std::memory_order_release);
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<TcpSocket> TcpListener::Accept() {
  // One load per call: a concurrent Close() swaps the slot to -1 and closes
  // the fd, waking this accept with EBADF/EINVAL below.
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return Status::Cancelled("listener closed");
  if (SQLINK_FAILPOINT("stream.socket.accept") != FailpointOutcome::kNone) {
    return Status::NetworkError("failpoint: injected accept error");
  }
  for (;;) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) {
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpSocket(client);
    }
    if (errno == EINTR) continue;
    if (errno == EBADF || errno == EINVAL) {
      return Status::Cancelled("listener closed");
    }
    return Status::NetworkError(ErrnoMessage("accept"));
  }
}

void TcpListener::Close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() unblocks threads stuck in accept().
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Result<TcpSocket> TcpConnect(const std::string& host, int port) {
  if (SQLINK_FAILPOINT("stream.socket.connect") != FailpointOutcome::kNone) {
    return Status::NetworkError("failpoint: injected connect error (" + host +
                                ":" + std::to_string(port) + ")");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::NetworkError(ErrnoMessage("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  // The simulated cluster's node names all resolve to loopback.
  if (host.empty() || host == "localhost" || host.rfind("node", 0) == 0) {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot resolve host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = ErrnoMessage("connect");
    ::close(fd);
    return Status::NetworkError(message + " (" + host + ":" +
                                std::to_string(port) + ")");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpSocket(fd);
}

}  // namespace sqlink
