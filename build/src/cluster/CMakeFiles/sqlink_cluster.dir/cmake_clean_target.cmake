file(REMOVE_RECURSE
  "libsqlink_cluster.a"
)
