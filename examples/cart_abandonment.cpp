// Cart abandonment, end to end — the paper's motivating scenario in full.
//
// A data analyst at an online retailer wants a classifier for shopping-cart
// abandonment in the USA. The example walks through all three ways of
// connecting the SQL warehouse to the ML system (Figure 3's naive / insql /
// insql+stream), shows their stage timings side by side, and then compares
// several classifiers (SVM, logistic regression, naive Bayes, decision
// tree) on the prepared data — the §5.1 model-comparison workload.
//
//   ./cart_abandonment [num_carts]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/logging.h"
#include "ml/classifiers.h"
#include "ml/decision_tree.h"
#include "ml/evaluation.h"
#include "ml/model_io.h"
#include "ml/naive_bayes.h"
#include "ml/scaler.h"
#include "pipeline/analytics_pipeline.h"
#include "pipeline/datagen.h"

namespace {

using namespace sqlink;

void PrintTimings(const char* name, const PipelineResult& result) {
  const StageTimings& t = result.timings;
  std::printf("%-14s prep=%.3fs trsfm=%.3fs prep+trsfm=%.3fs input=%.3fs "
              "total=%.3fs  (DFS traffic: %lld bytes)\n",
              name, t.prep_seconds, t.transform_seconds,
              t.prep_transform_seconds, t.ml_input_seconds, t.total_seconds,
              static_cast<long long>(result.dfs_bytes_written));
}

int Run(int64_t num_carts) {
  ScopedTempDir workspace("cart_abandonment");
  auto cluster = Cluster::Make(4, workspace.path());
  if (!cluster.ok()) return 1;
  SqlEnginePtr engine = SqlEngine::Make(*cluster);
  auto dfs = std::make_shared<Dfs>(*cluster, DfsOptions{});
  AnalyticsPipeline pipeline(engine, dfs);

  CartsWorkloadOptions data;
  data.num_users = num_carts / 10;
  data.num_carts = num_carts;
  if (!GenerateCartsWorkload(engine.get(), data).ok()) return 1;

  // The analyst's data preparation (paper Section 1): join carts with
  // users, keep USA customers, extract age/gender/amount features plus the
  // abandonment label; recode categoricals and dummy-code gender.
  TransformRequest request;
  request.prep_sql = CartsPrepQuery();
  request.recode_columns = {"gender", "abandoned"};
  request.codings["gender"] = CodingScheme::kDummy;

  std::printf("== connecting SQL to ML: three approaches ==\n");
  PipelineResult prepared;
  for (ConnectApproach approach :
       {ConnectApproach::kNaive, ConnectApproach::kInSql,
        ConnectApproach::kInSqlStream}) {
    PipelineOptions options;
    options.approach = approach;
    options.use_cache = false;
    auto result = pipeline.Prepare(request, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   std::string(ConnectApproachToString(approach)).c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    PrintTimings(std::string(ConnectApproachToString(approach)).c_str(),
                 *result);
    if (approach == ConnectApproach::kInSqlStream) {
      prepared = std::move(*result);
    }
  }

  // Model comparison on the prepared data (the §5.1 motivating case —
  // "run a number of classification algorithms ... to compare quality").
  auto dataset = AnalyticsPipeline::ToDataset(prepared, "abandoned");
  if (!dataset.ok()) return 1;
  auto scaler = ml::StandardScaler::Fit(*dataset);
  if (!scaler.ok()) return 1;
  scaler->Transform(&*dataset);

  std::printf("\n== classifier comparison on %zu examples ==\n",
              dataset->TotalPoints());
  ml::SgdOptions sgd;
  sgd.iterations = 100;

  if (auto svm = ml::SvmWithSgd::Train(*dataset, sgd); svm.ok()) {
    std::printf("  %-20s accuracy %.3f\n", "SVM (SGD)",
                ml::Accuracy(*dataset, [&](const ml::DenseVector& x) {
                  return svm->model.PredictClass(x);
                }));
  }
  if (auto lr = ml::LogisticRegressionWithSgd::Train(*dataset, sgd); lr.ok()) {
    std::printf("  %-20s accuracy %.3f\n", "logistic regression",
                ml::Accuracy(*dataset, [&](const ml::DenseVector& x) {
                  return lr->model.PredictClass(x);
                }));
  }
  if (auto nb = ml::NaiveBayes::Train(*dataset); nb.ok()) {
    std::printf("  %-20s accuracy %.3f\n", "naive Bayes",
                ml::Accuracy(*dataset, [&](const ml::DenseVector& x) {
                  return nb->Predict(x);
                }));
  }
  if (auto tree = ml::DecisionTree::Train(*dataset); tree.ok()) {
    std::printf("  %-20s accuracy %.3f (depth %d, %zu nodes)\n",
                "decision tree",
                ml::Accuracy(*dataset, [&](const ml::DenseVector& x) {
                  return tree->Predict(x);
                }),
                tree->depth(), tree->num_nodes());

    // Persist the tree and the scaler, reload, and score a fresh cart —
    // the deployment side of the pipeline.
    const std::string model_path = workspace.path() + "/abandonment.model";
    const std::string scaler_path = workspace.path() + "/scaler.model";
    if (ml::SaveDecisionTreeModel(*tree, model_path).ok() &&
        ml::SaveStandardScaler(*scaler, scaler_path).ok()) {
      auto loaded_tree = ml::LoadDecisionTreeModel(model_path);
      auto loaded_scaler = ml::LoadStandardScaler(scaler_path);
      if (loaded_tree.ok() && loaded_scaler.ok()) {
        // age 30, gender F (1,0 dummy), amount $420.
        const ml::DenseVector cart = loaded_scaler->Apply({30, 1, 0, 420});
        std::printf("\nreloaded model scores a $420 cart by a 30yo woman: "
                    "%s\n",
                    loaded_tree->Predict(cart) > 0.5 ? "likely abandoned"
                                                     : "likely completed");
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  sqlink::SetLogLevel(sqlink::LogLevel::kWarning);
  const int64_t num_carts = argc > 1 ? std::atoll(argv[1]) : 50000;
  return Run(num_carts);
}
