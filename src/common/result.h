#ifndef SQLINK_COMMON_RESULT_H_
#define SQLINK_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace sqlink {

/// Holds either a value of type T or a non-OK Status. This is the return
/// type of every fallible operation that produces a value. Accessing the
/// value of an errored Result aborts the process (callers must check ok(),
/// or use the ASSIGN_OR_RETURN macro).
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` and `return status;` both work.
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : repr_(std::in_place_index<0>, std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : repr_(std::in_place_index<1>, std::move(status)) {
    if (std::get<1>(repr_).ok()) {
      // A Result constructed from a Status must carry an error.
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return repr_.index() == 0; }

  /// The status: OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<1>(repr_);
  }

  const T& value() const& {
    if (!ok()) std::abort();
    return std::get<0>(repr_);
  }
  T& value() & {
    if (!ok()) std::abort();
    return std::get<0>(repr_);
  }
  T&& value() && {
    if (!ok()) std::abort();
    return std::get<0>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Moves the value out; the Result is left holding a moved-from value.
  T MoveValue() { return std::get<0>(std::move(repr_)); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace sqlink

#endif  // SQLINK_COMMON_RESULT_H_
