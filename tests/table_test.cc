#include <gtest/gtest.h>

#include "table/csv.h"
#include "table/pretty_print.h"
#include "table/record_batch.h"
#include "table/row_codec.h"
#include "table/schema.h"
#include "table/table.h"
#include "table/value.h"

namespace sqlink {
namespace {

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "");
  EXPECT_EQ(v, Value::Null());
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value::Int64(7).int64_value(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int64(7).type(), DataType::kInt64);
}

TEST(ValueTest, AsDoubleWidens) {
  EXPECT_DOUBLE_EQ(*Value::Int64(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(*Value::Double(3.5).AsDouble(), 3.5);
  EXPECT_TRUE(Value::String("x").AsDouble().status().IsInvalidArgument());
}

TEST(ValueTest, OrderingNullFirst) {
  EXPECT_TRUE(Value::Null() < Value::Int64(0));
  EXPECT_TRUE(Value::Int64(1) < Value::Int64(2));
  EXPECT_TRUE(Value::String("a") < Value::String("b"));
  // Cross-numeric comparison is numeric.
  EXPECT_TRUE(Value::Int64(1) < Value::Double(1.5));
  EXPECT_TRUE(Value::Double(0.5) < Value::Int64(1));
}

TEST(ValueTest, ParseByType) {
  EXPECT_EQ(*Value::Parse("42", DataType::kInt64), Value::Int64(42));
  EXPECT_EQ(*Value::Parse("2.5", DataType::kDouble), Value::Double(2.5));
  EXPECT_EQ(*Value::Parse("hi", DataType::kString), Value::String("hi"));
  EXPECT_EQ(*Value::Parse("true", DataType::kBool), Value::Bool(true));
  EXPECT_EQ(*Value::Parse("", DataType::kInt64), Value::Null());
  EXPECT_TRUE(Value::Parse("xyz", DataType::kInt64).status().IsParseError());
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_EQ(Value::Int64(5).Hash(), Value::Int64(5).Hash());
}

TEST(DataTypeTest, NamesRoundTrip) {
  for (DataType t : {DataType::kBool, DataType::kInt64, DataType::kDouble,
                     DataType::kString}) {
    auto parsed = DataTypeFromString(DataTypeToString(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_EQ(*DataTypeFromString("varchar"), DataType::kString);
  EXPECT_EQ(*DataTypeFromString("bigint"), DataType::kInt64);
  EXPECT_TRUE(DataTypeFromString("blob").status().IsParseError());
}

TEST(SchemaTest, LookupCaseInsensitive) {
  Schema schema({{"age", DataType::kInt64}, {"Gender", DataType::kString}});
  EXPECT_EQ(schema.FieldIndex("AGE"), 0);
  EXPECT_EQ(schema.FieldIndex("gender"), 1);
  EXPECT_EQ(schema.FieldIndex("height"), -1);
  EXPECT_TRUE(schema.RequireField("height").status().IsNotFound());
  EXPECT_EQ(*schema.RequireField("gender"), 1);
}

TEST(SchemaTest, ToStringRendersTypes) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kDouble}});
  EXPECT_EQ(schema.ToString(), "a:INT64, b:DOUBLE");
}

TEST(TableTest, PartitionedAppendAndGather) {
  auto schema = Schema::Make({{"x", DataType::kInt64}});
  Table table("t", schema, 4);
  for (int i = 0; i < 10; ++i) {
    table.AppendRow(static_cast<size_t>(i % 4), Row{Value::Int64(i)});
  }
  EXPECT_EQ(table.TotalRows(), 10u);
  EXPECT_EQ(table.partition(0).size(), 3u);
  EXPECT_EQ(table.GatherRows().size(), 10u);
}

TEST(CsvTest, SimpleRoundTrip) {
  CsvCodec codec;
  Schema schema({{"age", DataType::kInt64},
                 {"gender", DataType::kString},
                 {"amount", DataType::kDouble}});
  Row row{Value::Int64(57), Value::String("F"), Value::Double(123.75)};
  const std::string line = codec.FormatRow(row);
  auto parsed = codec.ParseRow(line, schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, row);
}

TEST(CsvTest, QuotingDelimiterAndQuotes) {
  CsvCodec codec;
  Schema schema({{"s", DataType::kString}});
  for (const std::string s :
       {"a,b", "say \"hi\"", "line1\nline2", "trailing,", ",,"}) {
    Row row{Value::String(s)};
    auto parsed = codec.ParseRow(codec.FormatRow(row), schema);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, row) << "for string: " << s;
  }
}

TEST(CsvTest, NullVsEmptyString) {
  CsvCodec codec;
  Schema schema({{"a", DataType::kString}, {"b", DataType::kString}});
  Row row{Value::Null(), Value::String("")};
  const std::string line = codec.FormatRow(row);
  EXPECT_EQ(line, ",\"\"");
  auto parsed = codec.ParseRow(line, schema);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE((*parsed)[0].is_null());
  EXPECT_EQ((*parsed)[1], Value::String(""));
}

TEST(CsvTest, FieldCountMismatchErrors) {
  CsvCodec codec;
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  EXPECT_TRUE(codec.ParseRow("1", schema).status().IsParseError());
  EXPECT_TRUE(codec.ParseRow("1,2,3", schema).status().IsParseError());
}

TEST(CsvTest, TypeErrorsSurfaceFieldName) {
  CsvCodec codec;
  Schema schema({{"age", DataType::kInt64}});
  auto status = codec.ParseRow("abc", schema).status();
  EXPECT_TRUE(status.IsParseError());
  EXPECT_NE(status.message().find("age"), std::string::npos);
}

TEST(CsvTest, AppendRowMatchesFormatRow) {
  CsvCodec codec;
  Row row{Value::Int64(1), Value::String("x,y")};
  std::string buf;
  codec.AppendRow(row, &buf);
  EXPECT_EQ(buf, codec.FormatRow(row) + "\n");
}

TEST(RowCodecTest, AllTypesRoundTrip) {
  std::vector<Row> rows;
  rows.push_back(Row{Value::Null(), Value::Bool(true), Value::Int64(-42),
                     Value::Double(3.25), Value::String("hello")});
  rows.push_back(Row{});
  rows.push_back(Row{Value::String(std::string(10000, 'z'))});
  const std::string encoded = RowCodec::EncodeRows(rows);
  auto decoded = RowCodec::DecodeRows(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, rows);
}

TEST(RowCodecTest, TruncationDetected) {
  std::vector<Row> rows{Row{Value::String("abcdefgh")}};
  const std::string encoded = RowCodec::EncodeRows(rows);
  auto decoded = RowCodec::DecodeRows(encoded.substr(0, encoded.size() - 3));
  EXPECT_TRUE(decoded.status().IsDataLoss());
}

TEST(RowCodecTest, HashRowKeySelectsColumns) {
  Row a{Value::Int64(1), Value::String("x"), Value::Int64(2)};
  Row b{Value::Int64(9), Value::String("x"), Value::Int64(2)};
  const std::vector<int> keys{1, 2};
  EXPECT_EQ(HashRowKey(a, keys), HashRowKey(b, keys));
}

TEST(PrettyPrintTest, AlignedGridWithTruncation) {
  auto schema = Schema::Make({{"id", DataType::kInt64},
                              {"name", DataType::kString},
                              {"amount", DataType::kDouble}});
  Table table("t", schema, 2);
  table.AppendRow(0, Row{Value::Int64(1), Value::String("alice"),
                         Value::Double(10.5)});
  table.AppendRow(1, Row{Value::Int64(22), Value::Null(), Value::Double(3.0)});
  const std::string out = PrettyPrintTable(table);
  EXPECT_NE(out.find("| id | name  | amount |"), std::string::npos) << out;
  EXPECT_NE(out.find("alice"), std::string::npos);
  EXPECT_NE(out.find("NULL"), std::string::npos);
  EXPECT_NE(out.find("(2 rows)"), std::string::npos);
}

TEST(PrettyPrintTest, RowLimitNoted) {
  auto schema = Schema::Make({{"x", DataType::kInt64}});
  Table table("t", schema, 1);
  for (int i = 0; i < 50; ++i) table.AppendRow(0, Row{Value::Int64(i)});
  PrettyPrintOptions options;
  options.max_rows = 5;
  const std::string out = PrettyPrintTable(table, options);
  EXPECT_NE(out.find("(50 rows, showing first 5)"), std::string::npos) << out;
}

TEST(PrettyPrintTest, LongStringsTruncated) {
  auto schema = Schema::Make({{"s", DataType::kString}});
  Table table("t", schema, 1);
  table.AppendRow(0, Row{Value::String(std::string(100, 'z'))});
  PrettyPrintOptions options;
  options.max_column_width = 10;
  const std::string out = PrettyPrintTable(table, options);
  EXPECT_NE(out.find("zzzzzzz..."), std::string::npos) << out;
}

TEST(RecordBatchTest, AppendAndRead) {
  auto schema = Schema::Make({{"x", DataType::kInt64}});
  RecordBatch batch(schema, {});
  batch.Append(Row{Value::Int64(1)});
  batch.Append(Row{Value::Int64(2)});
  EXPECT_EQ(batch.num_rows(), 2u);
  EXPECT_EQ(batch.rows()[1][0], Value::Int64(2));
}

}  // namespace
}  // namespace sqlink
