#include "common/runtime_flags.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace sqlink {

namespace {

/// -1 = no override (use the environment); 0/1 = forced by a test.
std::atomic<int> g_columnar_override{-1};
std::atomic<int> g_vectorized_sql_override{-1};

bool OnOffFromEnv(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return true;
  const std::string_view v(value);
  return !(v == "off" || v == "0" || v == "false" || v == "no");
}

bool ColumnarFromEnv() { return OnOffFromEnv("SQLINK_COLUMNAR"); }

}  // namespace

bool ColumnarEnabled() {
  const int forced = g_columnar_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_env = ColumnarFromEnv();
  return from_env;
}

void SetColumnarEnabledForTest(int enabled) {
  g_columnar_override.store(enabled < 0 ? -1 : (enabled != 0 ? 1 : 0),
                            std::memory_order_relaxed);
}

bool VectorizedSqlEnabled() {
  const int forced = g_vectorized_sql_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_env = OnOffFromEnv("SQLINK_VECTORIZED_SQL");
  return from_env;
}

void SetVectorizedSqlEnabledForTest(int enabled) {
  g_vectorized_sql_override.store(enabled < 0 ? -1 : (enabled != 0 ? 1 : 0),
                                  std::memory_order_relaxed);
}

namespace {

std::atomic<int> g_mux_override{-1};
std::atomic<int> g_mux_conns_override{0};
std::atomic<int64_t> g_mux_window_override{0};

int64_t Int64FromEnv(const char* name, int64_t fallback, int64_t min_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || parsed < min_value) return fallback;
  return static_cast<int64_t>(parsed);
}

}  // namespace

bool MuxEnabled() {
  const int forced = g_mux_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_env = OnOffFromEnv("SQLINK_MUX");
  return from_env;
}

void SetMuxEnabledForTest(int enabled) {
  g_mux_override.store(enabled < 0 ? -1 : (enabled != 0 ? 1 : 0),
                       std::memory_order_relaxed);
}

int MuxConnsPerPeer() {
  const int forced = g_mux_conns_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  static const int from_env = static_cast<int>(
      Int64FromEnv("SQLINK_MUX_CONNS_PER_PEER", /*fallback=*/4,
                   /*min_value=*/1));
  return from_env;
}

void SetMuxConnsPerPeerForTest(int conns) {
  g_mux_conns_override.store(conns, std::memory_order_relaxed);
}

int64_t MuxChannelWindowBytes() {
  const int64_t forced = g_mux_window_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  static const int64_t from_env =
      Int64FromEnv("SQLINK_MUX_CHANNEL_WINDOW_BYTES",
                   /*fallback=*/int64_t{4} << 20, /*min_value=*/1);
  return from_env;
}

void SetMuxChannelWindowBytesForTest(int64_t bytes) {
  g_mux_window_override.store(bytes, std::memory_order_relaxed);
}

}  // namespace sqlink
