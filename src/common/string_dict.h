#ifndef SQLINK_COMMON_STRING_DICT_H_
#define SQLINK_COMMON_STRING_DICT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sqlink {

/// Append-only string dictionary with contiguous storage: every distinct
/// string gets a dense id in insertion order, the bytes live back-to-back in
/// one heap buffer, and lookups go through an open-addressing index — one
/// hash, a short linear probe, no per-entry allocation and no tree walk.
///
/// This is the building block for the columnar hot path: recode maps index
/// their labels with it (O(1) value→code), the distinct-value scan of the
/// two-phase recode build deduplicates with it, and the wire encoder uses it
/// as the per-channel dictionary for string columns.
///
/// Not thread-safe; callers own synchronization (one dictionary per thread
/// or an external mutex).
class StringDict {
 public:
  StringDict() = default;

  /// Id of `value`, inserting it with the next dense id when absent.
  int32_t GetOrAdd(std::string_view value);

  /// Id of `value`, or -1 when absent. Never allocates.
  int32_t Find(std::string_view value) const;

  /// The string with dense id `id` (0 <= id < size()).
  std::string_view operator[](int32_t id) const {
    const auto i = static_cast<size_t>(id);
    return std::string_view(heap_).substr(offsets_[i],
                                          offsets_[i + 1] - offsets_[i]);
  }

  int32_t size() const {
    return offsets_.empty() ? 0 : static_cast<int32_t>(offsets_.size()) - 1;
  }
  bool empty() const { return offsets_.size() <= 1; }

  /// Bytes of string content held (capacity planning / metrics).
  size_t heap_bytes() const { return heap_.size(); }

  /// Drops all entries but keeps allocated capacity for reuse.
  void Clear();

 private:
  static uint64_t Hash(std::string_view value);
  void Rehash(size_t new_slot_count);

  /// Entry byte ranges: entry i spans heap_[offsets_[i], offsets_[i+1]).
  /// One trailing sentinel offset, so size() == offsets_.size() - 1; an
  /// empty dictionary has offsets_ == {} until first use.
  std::string heap_;
  std::vector<uint32_t> offsets_;
  /// Open-addressing slots holding entry ids (-1 = empty), linear probing,
  /// power-of-two sized.
  std::vector<int32_t> slots_;
  size_t mask_ = 0;
};

}  // namespace sqlink

#endif  // SQLINK_COMMON_STRING_DICT_H_
