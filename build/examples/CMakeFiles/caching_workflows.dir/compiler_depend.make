# Empty compiler generated dependencies file for caching_workflows.
# This may be replaced when dependencies are built.
