file(REMOVE_RECURSE
  "CMakeFiles/caching_workflows.dir/caching_workflows.cpp.o"
  "CMakeFiles/caching_workflows.dir/caching_workflows.cpp.o.d"
  "caching_workflows"
  "caching_workflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caching_workflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
