#ifndef SQLINK_TABLE_COLUMN_BATCH_H_
#define SQLINK_TABLE_COLUMN_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/string_dict.h"
#include "table/record_batch.h"
#include "table/schema.h"
#include "table/value.h"

namespace sqlink {

/// One column of a ColumnBatch: a typed contiguous vector plus a null
/// bitmap. Exactly one of the value vectors is populated, chosen by `type`;
/// string columns are dictionary-encoded (codes index `dict`). Null rows
/// carry a zero placeholder in the value vector so positions stay aligned.
struct Column {
  DataType type = DataType::kString;
  /// Bit r set => row r is NULL. Sized ceil(rows/64) words; bits past the
  /// batch's row count are kept zero.
  std::vector<uint64_t> null_words;
  std::vector<uint8_t> bools;    ///< kBool: 0/1 per row.
  std::vector<int64_t> ints;     ///< kInt64.
  std::vector<double> doubles;   ///< kDouble.
  std::vector<int32_t> codes;    ///< kString: dictionary id per row.
  StringDict dict;               ///< kString: distinct values of this column.

  bool IsNull(size_t row) const {
    return (null_words[row >> 6] >> (row & 63)) & 1;
  }
  void AppendNullBit(size_t row, bool is_null) {
    const size_t word = row >> 6;
    if (word >= null_words.size()) null_words.resize(word + 1, 0);
    if (is_null) null_words[word] |= uint64_t{1} << (row & 63);
  }
  bool has_nulls() const {
    for (const uint64_t w : null_words) {
      if (w != 0) return true;
    }
    return false;
  }
};

/// The value at `row` of a free-standing column, boxed. Row must be in
/// range; NULL rows box as Value::Null().
Value ColumnValueAt(const Column& col, size_t row);

/// Appends one boxed value at position `row` (the column's current row
/// count) with the same coercion rules as ColumnBatch::AppendRow: int64
/// widens into a double column, NULL is accepted anywhere, anything else
/// must match the column type. `column_name` only flavors error messages.
Status AppendColumnValue(Column* col, size_t row, const Value& v,
                         const std::string& column_name);

/// Gather-appends `n` rows of `src` (selected by `rows`) onto `dst`, which
/// already holds `dst_rows` rows of the same type. String codes are carried
/// over wholesale when `dst` is empty and remapped through a translate
/// table otherwise.
void AppendColumnGather(Column* dst, size_t dst_rows, const Column& src,
                        const int32_t* rows, size_t n);

/// Columnar counterpart of RecordBatch: typed per-column vectors instead of
/// boxed Value rows. This is the unit the vectorized transform kernels, the
/// columnar wire encoding, and the columnar ML ingest operate on; converters
/// to/from RecordBatch bridge the row-oriented engine surfaces.
class ColumnBatch {
 public:
  ColumnBatch() = default;
  explicit ColumnBatch(SchemaPtr schema) { Reset(std::move(schema)); }

  /// Re-initializes to an empty batch of `schema`, keeping allocations of
  /// matching columns where possible.
  void Reset(SchemaPtr schema);

  const SchemaPtr& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  bool empty() const { return num_rows_ == 0; }
  Column& column(size_t i) { return columns_[i]; }
  const Column& column(size_t i) const { return columns_[i]; }

  void Reserve(size_t rows);

  /// Appends one row. Value types must match the schema (int64 widens into
  /// a double column); NULL is accepted anywhere.
  Status AppendRow(const Row& row);

  /// Appends every row of `other` (same schema), remapping string codes
  /// into this batch's dictionaries.
  Status AppendBatch(const ColumnBatch& other);

  /// Gather-appends the `n` rows of `src` selected by `rows` (src indices,
  /// duplicates and arbitrary order allowed). Column types must match;
  /// string codes remap as in AppendBatch. The workhorse of the vectorized
  /// filter and join operators and of the sink's round-robin split.
  Status AppendGather(const ColumnBatch& src, const int32_t* rows, size_t n);

  /// Drops rows past `rows` (resume truncation). Dictionaries may retain
  /// entries only the dropped rows referenced; that is harmless.
  void Truncate(size_t rows);

  /// Drops all rows and dictionary entries, keeping schema and capacity.
  void Clear();

  /// Sets the row count directly after filling column vectors in place (wire
  /// decoding); the caller guarantees every column holds `rows` values.
  void SetRowCountForDecode(size_t rows) { num_rows_ = rows; }

  /// The value at (row, col), boxed.
  Value ValueAt(size_t row, size_t col) const;

  /// Materializes row `row` into `*out` (cleared first).
  void EmitRow(size_t row, Row* out) const;

  /// Rows [begin, num_rows()) as a new batch (same schema; dictionaries
  /// copied). `begin` past the end yields an empty batch.
  ColumnBatch Slice(size_t begin) const;

  /// Rough in-memory footprint of the value buffers — the batcher's flush
  /// threshold proxy.
  size_t ByteSize() const;

  static Result<ColumnBatch> FromRows(SchemaPtr schema,
                                      const std::vector<Row>& rows);
  std::vector<Row> ToRows() const;

  /// RecordBatch interop: FromRecordBatch errors on a schema-less batch or
  /// on rows whose value types contradict the schema.
  static Result<ColumnBatch> FromRecordBatch(const RecordBatch& batch);
  RecordBatch ToRecordBatch() const;

 private:
  SchemaPtr schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace sqlink

#endif  // SQLINK_TABLE_COLUMN_BATCH_H_
