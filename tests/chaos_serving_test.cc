// Chaos suite for the serving layer (ctest -L chaos): eight concurrent
// streaming pipelines pushed through the AdmissionController while faults
// land on two of them — one pipeline loses a reader outright
// (stream.reader.kill.split<N>, recovered via §6 split reassignment) and
// one is cancelled mid-flight through the serving.cancel_query failpoint.
// The neighbors must be completely undisturbed: every non-cancelled
// pipeline delivers all 1000 rows exactly once, the cancelled pipeline
// unwinds its splits, replay windows, and spill state, the admission pool
// drains back to zero, and no .spill file survives anywhere.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/fs_util.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "serving/admission.h"
#include "sql/engine.h"
#include "stream/streaming_transfer.h"

namespace sqlink {
namespace {

/// Number of .spill files anywhere under `root` — a finished or aborted
/// transfer must leave zero behind.
int CountSpillFiles(const std::string& root) {
  int count = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && entry.path().extension() == ".spill") {
      ++count;
    }
  }
  return count;
}

class ChaosServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("chaos_serving_test");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    engine_ = SqlEngine::Make(*cluster);

    auto schema = Schema::Make({{"id", DataType::kInt64},
                                {"feature", DataType::kDouble}});
    auto table = engine_->MakeTable("points", schema);
    for (int64_t i = 0; i < 1000; ++i) {
      table->AppendRow(static_cast<size_t>(i) % 4,
                       Row{Value::Int64(i), Value::Double(i * 0.25)});
    }
    ASSERT_TRUE(engine_->catalog()->RegisterTable(table).ok());
  }

  std::unique_ptr<ScopedTempDir> temp_;
  SqlEnginePtr engine_;
};

TEST_F(ChaosServingTest, ConcurrentPipelinesSurviveReaderKillAndCancel) {
  MetricsRegistry::Global().Reset();
  constexpr int kPipelines = 8;

  AdmissionOptions admission;
  admission.max_concurrent = 4;  // Half the demand queues; fairness engages.
  admission.memory_budget_bytes = 256LL << 20;
  admission.per_query_mem_bytes = 32LL << 20;
  admission.queue_capacity = kPipelines;
  admission.queue_timeout_ms = 120000;  // Generous: rejection is not the test.
  admission.tenant_weights = {{"alice", 3.0}, {"bob", 1.0}};
  AdmissionController controller(admission);

  // Exactly one split-1 reader — of whichever pipeline reaches the 50th
  // frame first — dies mid-stream; §6 reassignment must finish its split.
  ScopedFailpoint kill("stream.reader.kill.split1", "after(49):error(1)");
  ASSERT_TRUE(kill.status().ok()) << kill.status();
  // The serving cancel signal, polled by a watcher exactly like the query
  // server's: when it fires, pipeline 7 is cancelled mid-flight.
  ScopedFailpoint cancel_fp("serving.cancel_query", "after(9):error(1)");
  ASSERT_TRUE(cancel_fp.status().ok()) << cancel_fp.status();

  Cancellation cancel_last;
  std::atomic<bool> watchers_done{false};
  std::thread watcher([&] {
    while (!watchers_done.load(std::memory_order_acquire)) {
      if (SQLINK_FAILPOINT("serving.cancel_query") !=
          FailpointOutcome::kNone) {
        cancel_last.Cancel(
            Status::Cancelled("failpoint: injected query cancellation"));
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<Status> statuses(kPipelines, Status::OK());
  std::vector<std::set<int64_t>> ids(kPipelines);
  std::vector<std::thread> pipelines;
  for (int p = 0; p < kPipelines; ++p) {
    pipelines.emplace_back([&, p] {
      const std::string tenant = p % 2 == 0 ? "alice" : "bob";
      auto ticket = controller.Admit(tenant);
      if (!ticket.ok()) {
        statuses[static_cast<size_t>(p)] = ticket.status();
        return;
      }
      StreamTransferOptions options;
      options.sink.resilient = true;
      options.sink.spill_enabled = true;
      options.sink.send_buffer_bytes = 256;
      // Generous lease (TTL = heartbeat * kLeaseIntervals): 8 pipelines'
      // heartbeat threads share the machine — and under TSan everything is
      // several times slower — so a tight lease reaps healthy workers.
      // Liveness detection of the killed reader is not what's under test.
      options.sink.heartbeat_ms = 500;
      options.reader.heartbeat_ms = 500;
      options.reader.recovery_enabled = true;
      options.query.tenant = tenant;
      options.query.spill_budget = (*ticket)->spill_budget();
      if (p == kPipelines - 1) {
        // The victim: paced so the injected cancel lands mid-flight.
        options.query.cancellation = &cancel_last;
        options.reader.consume_delay_micros_per_frame = 2000;
      }
      auto result = StreamingTransfer::Run(engine_.get(),
                                           "SELECT * FROM points", options);
      if (!result.ok()) {
        statuses[static_cast<size_t>(p)] = result.status();
        return;
      }
      for (const auto& partition : result->dataset.partitions) {
        for (const Row& row : partition) {
          ids[static_cast<size_t>(p)].insert(row[0].int64_value());
        }
      }
    });
  }
  for (std::thread& pipeline : pipelines) pipeline.join();
  watchers_done.store(true, std::memory_order_release);
  watcher.join();

  // The cancelled pipeline failed with the injected cancellation (possibly
  // surfaced through a downstream abort) — never silently succeeded.
  EXPECT_FALSE(statuses[kPipelines - 1].ok());
  EXPECT_EQ(cancel_fp.fires(), 1);
  EXPECT_EQ(kill.fires(), 1);

  // Every other pipeline — including the one whose reader was killed and
  // recovered — delivered all 1000 rows exactly once.
  int completed = 0;
  for (int p = 0; p < kPipelines - 1; ++p) {
    EXPECT_TRUE(statuses[static_cast<size_t>(p)].ok())
        << "pipeline " << p << ": " << statuses[static_cast<size_t>(p)];
    if (!statuses[static_cast<size_t>(p)].ok()) continue;
    EXPECT_EQ(ids[static_cast<size_t>(p)].size(), 1000u)
        << "pipeline " << p << " lost or duplicated rows";
    ++completed;
  }
  EXPECT_GE(completed, 6);

  // Cancelled/killed queries freed everything: no leaked admission slots,
  // no orphaned spill files anywhere in the scratch tree.
  EXPECT_EQ(controller.active(), 0);
  EXPECT_EQ(controller.queued(), 0u);
  EXPECT_EQ(CountSpillFiles(temp_->path()), 0);
}

TEST_F(ChaosServingTest, AdmissionDelayFailpointSlowsButAdmits) {
  AdmissionOptions admission;
  admission.max_concurrent = 2;
  admission.memory_budget_bytes = 0;
  AdmissionController controller(admission);
  ScopedFailpoint delay("admission.delay", "delay(30,1)");
  ASSERT_TRUE(delay.status().ok()) << delay.status();
  Stopwatch timer;
  auto ticket = controller.Admit("a");
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  EXPECT_GE(timer.ElapsedMicros(), 30 * 1000);
  EXPECT_EQ(delay.fires(), 1);
}

}  // namespace
}  // namespace sqlink
