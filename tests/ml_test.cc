#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/random.h"
#include "ml/classifiers.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/evaluation.h"
#include "ml/job.h"
#include "ml/kmeans.h"
#include "ml/model_io.h"
#include "ml/naive_bayes.h"
#include "ml/scaler.h"
#include "ml/validation.h"
#include "ml/text_input_format.h"
#include "table/csv.h"

namespace sqlink::ml {
namespace {

TEST(VectorOpsTest, Basics) {
  DenseVector a{1, 2, 3};
  DenseVector b{4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32);
  Axpy(2.0, a, &b);
  EXPECT_EQ(b, (DenseVector{6, 9, 12}));
  Scale(0.5, &b);
  EXPECT_EQ(b, (DenseVector{3, 4.5, 6}));
  EXPECT_DOUBLE_EQ(SquaredNorm(a), 14);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, DenseVector{1, 2, 4}), 1);
}

/// Builds a linearly separable two-class dataset split across partitions:
/// class 1 centered at (+2,+2), class 0 at (-2,-2).
Dataset MakeSeparableDataset(size_t points_per_class, size_t partitions,
                             uint64_t seed = 7) {
  Random rng(seed);
  std::vector<std::vector<LabeledPoint>> parts(partitions);
  for (size_t i = 0; i < points_per_class * 2; ++i) {
    const double label = (i % 2 == 0) ? 1.0 : 0.0;
    const double cx = label > 0.5 ? 2.0 : -2.0;
    LabeledPoint p;
    p.label = label;
    p.features = {cx + rng.NextGaussian() * 0.5, cx + rng.NextGaussian() * 0.5};
    parts[i % partitions].push_back(std::move(p));
  }
  return Dataset(std::move(parts), 2);
}

TEST(SvmTest, LearnsSeparableData) {
  Dataset data = MakeSeparableDataset(200, 4);
  SgdOptions options;
  options.iterations = 100;
  options.step_size = 1.0;
  auto result = SvmWithSgd::Train(data, options);
  ASSERT_TRUE(result.ok()) << result.status();
  const double accuracy = Accuracy(data, [&](const DenseVector& x) {
    return result->model.PredictClass(x);
  });
  EXPECT_GT(accuracy, 0.97);
  // Loss decreases overall.
  ASSERT_GE(result->loss_history.size(), 2u);
  EXPECT_LT(result->loss_history.back(), result->loss_history.front());
}

TEST(SvmTest, DeterministicForSeed) {
  Dataset data = MakeSeparableDataset(50, 4);
  SgdOptions options;
  options.iterations = 20;
  options.mini_batch_fraction = 0.5;
  auto a = SvmWithSgd::Train(data, options);
  auto b = SvmWithSgd::Train(data, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->model.weights, b->model.weights);
  EXPECT_EQ(a->model.intercept, b->model.intercept);
}

TEST(SvmTest, PartitionCountDoesNotChangeFullBatchResult) {
  // Full-batch gradients are a sum: the partitioning must not matter.
  Dataset one = MakeSeparableDataset(64, 1);
  // Re-partition the same points into 4 slices.
  auto all = one.Gather();
  std::vector<std::vector<LabeledPoint>> parts(4);
  for (size_t i = 0; i < all.size(); ++i) parts[i % 4].push_back(all[i]);
  Dataset four(std::move(parts), 2);

  SgdOptions options;
  options.iterations = 10;
  auto r1 = SvmWithSgd::Train(one, options);
  auto r4 = SvmWithSgd::Train(four, options);
  ASSERT_TRUE(r1.ok() && r4.ok());
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(r1->model.weights[i], r4->model.weights[i], 1e-9);
  }
}

TEST(SvmTest, MiniBatchStillLearns) {
  Dataset data = MakeSeparableDataset(300, 4);
  SgdOptions options;
  options.iterations = 150;
  options.mini_batch_fraction = 0.2;  // The MLlib miniBatchFraction knob.
  auto result = SvmWithSgd::Train(data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(Accuracy(data,
                     [&](const DenseVector& x) {
                       return result->model.PredictClass(x);
                     }),
            0.95);
}

TEST(SvmTest, RegularizationShrinksWeights) {
  Dataset data = MakeSeparableDataset(200, 4);
  SgdOptions weak;
  weak.iterations = 80;
  weak.reg_param = 0.001;
  SgdOptions strong = weak;
  strong.reg_param = 1.0;
  auto small_reg = SvmWithSgd::Train(data, weak);
  auto large_reg = SvmWithSgd::Train(data, strong);
  ASSERT_TRUE(small_reg.ok() && large_reg.ok());
  EXPECT_LT(SquaredNorm(large_reg->model.weights),
            SquaredNorm(small_reg->model.weights));
}

TEST(SvmTest, EmptyDatasetRejected) {
  Dataset empty;
  EXPECT_TRUE(SvmWithSgd::Train(empty).status().IsInvalidArgument());
}

TEST(LogisticRegressionTest, LearnsSeparableData) {
  Dataset data = MakeSeparableDataset(200, 4);
  SgdOptions options;
  options.iterations = 100;
  auto result = LogisticRegressionWithSgd::Train(data, options);
  ASSERT_TRUE(result.ok());
  const double accuracy = Accuracy(data, [&](const DenseVector& x) {
    return result->model.PredictClass(x);
  });
  EXPECT_GT(accuracy, 0.97);
}

TEST(LinearRegressionTest, RecoversLine) {
  // y = 3x + 1 with small noise.
  Random rng(3);
  std::vector<std::vector<LabeledPoint>> parts(4);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.NextDouble() * 2 - 1;
    LabeledPoint p;
    p.label = 3 * x + 1 + rng.NextGaussian() * 0.01;
    p.features = {x};
    parts[static_cast<size_t>(i) % 4].push_back(std::move(p));
  }
  Dataset data(std::move(parts), 1);
  SgdOptions options;
  options.iterations = 300;
  options.step_size = 0.5;
  options.reg_param = 0.0;
  auto result = LinearRegressionWithSgd::Train(data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->model.weights[0], 3.0, 0.2);
  EXPECT_NEAR(result->model.intercept, 1.0, 0.2);
}

TEST(NaiveBayesTest, LearnsSeparableData) {
  Dataset data = MakeSeparableDataset(200, 4);
  auto model = NaiveBayes::Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->class_labels().size(), 2u);
  const double accuracy = Accuracy(
      data, [&](const DenseVector& x) { return model->Predict(x); });
  EXPECT_GT(accuracy, 0.97);
}

TEST(NaiveBayesTest, PartitioningInvariant) {
  Dataset one = MakeSeparableDataset(64, 1);
  auto all = one.Gather();
  std::vector<std::vector<LabeledPoint>> parts(5);
  for (size_t i = 0; i < all.size(); ++i) parts[i % 5].push_back(all[i]);
  Dataset five(std::move(parts), 2);
  auto m1 = NaiveBayes::Train(one);
  auto m5 = NaiveBayes::Train(five);
  ASSERT_TRUE(m1.ok() && m5.ok());
  Random rng(11);
  for (int i = 0; i < 50; ++i) {
    DenseVector x{rng.NextGaussian() * 3, rng.NextGaussian() * 3};
    EXPECT_EQ(m1->Predict(x), m5->Predict(x));
  }
}

TEST(DecisionTreeTest, LearnsIntervalBand) {
  // label = 1 iff x in [0.3, 0.7]: not linearly separable, but a depth-2
  // tree with two threshold splits captures it exactly.
  Random rng(5);
  std::vector<std::vector<LabeledPoint>> parts(4);
  for (int i = 0; i < 600; ++i) {
    const double x = rng.NextDouble();
    LabeledPoint p;
    p.label = (x >= 0.3 && x <= 0.7) ? 1.0 : 0.0;
    p.features = {x, rng.NextGaussian()};  // Second feature is noise.
    parts[static_cast<size_t>(i) % 4].push_back(std::move(p));
  }
  Dataset data(std::move(parts), 2);
  auto model = DecisionTree::Train(data);
  ASSERT_TRUE(model.ok());
  const double accuracy = Accuracy(
      data, [&](const DenseVector& x) { return model->Predict(x); });
  EXPECT_GT(accuracy, 0.95);
  EXPECT_GE(model->depth(), 2);
  // The noise feature must not be the root split.
  EXPECT_EQ(model->root()->feature, 0);
}

TEST(DecisionTreeTest, PureNodeStopsEarly) {
  std::vector<std::vector<LabeledPoint>> parts(1);
  for (int i = 0; i < 50; ++i) {
    parts[0].push_back(LabeledPoint{1.0, {static_cast<double>(i)}});
  }
  Dataset data(std::move(parts), 1);
  auto model = DecisionTree::Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_nodes(), 1u);
  EXPECT_EQ(model->Predict({42.0}), 1.0);
}

TEST(KMeansTest, FindsTwoClusters) {
  Dataset data = MakeSeparableDataset(150, 4);
  KMeansOptions options;
  options.k = 2;
  auto model = KMeans::Train(data, options);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model->centers.size(), 2u);
  // Centers near (+2,+2) and (-2,-2) in some order.
  const bool first_positive = model->centers[0][0] > 0;
  const DenseVector& pos = model->centers[first_positive ? 0 : 1];
  const DenseVector& neg = model->centers[first_positive ? 1 : 0];
  EXPECT_NEAR(pos[0], 2.0, 0.3);
  EXPECT_NEAR(neg[0], -2.0, 0.3);
  EXPECT_LT(model->Predict({2.0, 2.0}) , 2);
  EXPECT_NE(model->Predict({2.0, 2.0}), model->Predict({-2.0, -2.0}));
}

TEST(KMeansTest, InvalidKRejected) {
  Dataset data = MakeSeparableDataset(5, 1);
  KMeansOptions options;
  options.k = 1000;
  EXPECT_TRUE(KMeans::Train(data, options).status().IsInvalidArgument());
}

TEST(DatasetTest, FromRowsMapsColumns) {
  RowDataset rows;
  rows.schema = Schema::Make({{"age", DataType::kInt64},
                              {"gender", DataType::kInt64},
                              {"amount", DataType::kDouble},
                              {"abandoned", DataType::kInt64}});
  rows.partitions.resize(2);
  rows.partitions[0].push_back(Row{Value::Int64(57), Value::Int64(1),
                                   Value::Double(153.99), Value::Int64(1)});
  rows.partitions[1].push_back(Row{Value::Int64(40), Value::Int64(2),
                                   Value::Double(99.5), Value::Int64(0)});
  auto data = Dataset::FromRows(rows, "abandoned", {"age", "gender", "amount"});
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->dimension(), 3u);
  EXPECT_EQ(data->TotalPoints(), 2u);
  const auto all = data->Gather();
  EXPECT_DOUBLE_EQ(all[0].label, 1.0);
  EXPECT_EQ(all[0].features, (DenseVector{57, 1, 153.99}));
}

TEST(DatasetTest, CategoricalFeatureRejected) {
  RowDataset rows;
  rows.schema = Schema::Make(
      {{"gender", DataType::kString}, {"y", DataType::kInt64}});
  rows.partitions.resize(1);
  auto status = Dataset::FromRows(rows, "y", {"gender"}).status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("recode"), std::string::npos);
}

TEST(DatasetTest, AutoFeaturesExcludeLabel) {
  RowDataset rows;
  rows.schema = Schema::Make({{"a", DataType::kInt64},
                              {"label", DataType::kInt64},
                              {"b", DataType::kDouble}});
  rows.partitions.resize(1);
  rows.partitions[0].push_back(
      Row{Value::Int64(1), Value::Int64(0), Value::Double(2.0)});
  auto data = Dataset::FromRowsAutoFeatures(rows, "label");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->dimension(), 2u);
  EXPECT_EQ(data->Gather()[0].features, (DenseVector{1.0, 2.0}));
}

TEST(ScalerTest, StandardizesToZeroMeanUnitVariance) {
  Random rng(13);
  std::vector<std::vector<LabeledPoint>> parts(3);
  for (int i = 0; i < 600; ++i) {
    LabeledPoint p;
    p.label = 0;
    p.features = {rng.NextGaussian() * 50 + 200, rng.NextDouble() * 4 - 2,
                  7.0 /* constant */};
    parts[static_cast<size_t>(i) % 3].push_back(std::move(p));
  }
  Dataset data(std::move(parts), 3);
  auto scaler = StandardScaler::Fit(data);
  ASSERT_TRUE(scaler.ok());
  EXPECT_NEAR(scaler->means()[0], 200, 10);
  EXPECT_NEAR(scaler->stddevs()[0], 50, 5);
  EXPECT_DOUBLE_EQ(scaler->stddevs()[2], 0.0);
  scaler->Transform(&data);
  double sum = 0;
  double sq = 0;
  for (const auto& partition : data.partitions()) {
    for (const LabeledPoint& point : partition) {
      sum += point.features[0];
      sq += point.features[0] * point.features[0];
      EXPECT_DOUBLE_EQ(point.features[2], 0.0);  // Constant feature zeroed.
    }
  }
  EXPECT_NEAR(sum / 600, 0.0, 1e-9);
  EXPECT_NEAR(sq / 600, 1.0, 1e-9);
  // Apply() matches Transform() semantics.
  EXPECT_DOUBLE_EQ(scaler->Apply({200, 0, 7})[0],
                   (200 - scaler->means()[0]) / scaler->stddevs()[0]);
}

TEST(ScalerTest, EmptyDatasetRejected) {
  Dataset empty;
  EXPECT_TRUE(StandardScaler::Fit(empty).status().IsInvalidArgument());
}

TEST(ValidationTest, TrainTestSplitPartitionsAndFractions) {
  Dataset data = MakeSeparableDataset(500, 4);
  auto split = TrainTestSplit(data, 0.25, 7);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.num_partitions(), 4u);
  EXPECT_EQ(split->train.TotalPoints() + split->test.TotalPoints(), 1000u);
  const double fraction =
      static_cast<double>(split->test.TotalPoints()) / 1000.0;
  EXPECT_NEAR(fraction, 0.25, 0.06);
  // Deterministic per seed.
  auto again = TrainTestSplit(data, 0.25, 7);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(split->test.TotalPoints(), again->test.TotalPoints());
  EXPECT_TRUE(TrainTestSplit(data, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(TrainTestSplit(data, 1.0).status().IsInvalidArgument());
}

TEST(ValidationTest, AucPerfectRandomAndInverted) {
  Dataset data = MakeSeparableDataset(200, 2);
  // Perfect scorer: the first feature separates the classes.
  const double perfect =
      AreaUnderRoc(data, [](const DenseVector& x) { return x[0]; });
  EXPECT_GT(perfect, 0.99);
  // Inverted scorer.
  const double inverted =
      AreaUnderRoc(data, [](const DenseVector& x) { return -x[0]; });
  EXPECT_LT(inverted, 0.01);
  EXPECT_NEAR(perfect + inverted, 1.0, 1e-9);
  // Constant scorer: all ties -> 0.5 exactly (midranks).
  EXPECT_DOUBLE_EQ(
      AreaUnderRoc(data, [](const DenseVector&) { return 1.0; }), 0.5);
}

TEST(ValidationTest, AucDegenerateClasses) {
  std::vector<std::vector<LabeledPoint>> parts(1);
  parts[0].push_back(LabeledPoint{1.0, {3.0}});
  parts[0].push_back(LabeledPoint{1.0, {1.0}});
  Dataset data(std::move(parts), 1);
  EXPECT_DOUBLE_EQ(
      AreaUnderRoc(data, [](const DenseVector& x) { return x[0]; }), 0.5);
}

TEST(ValidationTest, HeldOutEvaluationEndToEnd) {
  Dataset data = MakeSeparableDataset(400, 4);
  auto split = TrainTestSplit(data, 0.3, 5);
  ASSERT_TRUE(split.ok());
  SgdOptions options;
  options.iterations = 60;
  auto model = SvmWithSgd::Train(split->train, options);
  ASSERT_TRUE(model.ok());
  const double test_accuracy =
      Accuracy(split->test, [&](const DenseVector& x) {
        return model->model.PredictClass(x);
      });
  EXPECT_GT(test_accuracy, 0.95);
  const double auc = AreaUnderRoc(split->test, [&](const DenseVector& x) {
    return model->model.Margin(x);
  });
  EXPECT_GT(auc, 0.98);
}

class ModelIoTest : public ::testing::Test {
 protected:
  ScopedTempDir temp_{"model_io"};
  std::string Path(const char* name) { return temp_.path() + "/" + name; }
};

TEST_F(ModelIoTest, LinearModelRoundTrip) {
  LinearModel model;
  model.weights = {1.5, -2.25, 0.0};
  model.intercept = 0.75;
  ASSERT_TRUE(SaveLinearModel(model, Path("svm.model")).ok());
  auto loaded = LoadLinearModel(Path("svm.model"));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->weights, model.weights);
  EXPECT_DOUBLE_EQ(loaded->intercept, model.intercept);
}

TEST_F(ModelIoTest, TrainedModelsPredictIdenticallyAfterReload) {
  Dataset data = MakeSeparableDataset(100, 2);
  Random rng(3);
  std::vector<DenseVector> probes;
  for (int i = 0; i < 30; ++i) {
    probes.push_back({rng.NextGaussian() * 3, rng.NextGaussian() * 3});
  }

  auto nb = NaiveBayes::Train(data);
  ASSERT_TRUE(nb.ok());
  ASSERT_TRUE(SaveNaiveBayesModel(*nb, Path("nb.model")).ok());
  auto nb2 = LoadNaiveBayesModel(Path("nb.model"));
  ASSERT_TRUE(nb2.ok()) << nb2.status();

  auto tree = DecisionTree::Train(data);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(SaveDecisionTreeModel(*tree, Path("tree.model")).ok());
  auto tree2 = LoadDecisionTreeModel(Path("tree.model"));
  ASSERT_TRUE(tree2.ok()) << tree2.status();
  EXPECT_EQ(tree2->num_nodes(), tree->num_nodes());

  KMeansOptions kopts;
  kopts.k = 2;
  auto kmeans = KMeans::Train(data, kopts);
  ASSERT_TRUE(kmeans.ok());
  ASSERT_TRUE(SaveKMeansModel(*kmeans, Path("kmeans.model")).ok());
  auto kmeans2 = LoadKMeansModel(Path("kmeans.model"));
  ASSERT_TRUE(kmeans2.ok());

  auto scaler = StandardScaler::Fit(data);
  ASSERT_TRUE(scaler.ok());
  ASSERT_TRUE(SaveStandardScaler(*scaler, Path("scaler.model")).ok());
  auto scaler2 = LoadStandardScaler(Path("scaler.model"));
  ASSERT_TRUE(scaler2.ok());

  for (const DenseVector& x : probes) {
    EXPECT_EQ(nb->Predict(x), nb2->Predict(x));
    EXPECT_EQ(tree->Predict(x), tree2->Predict(x));
    EXPECT_EQ(kmeans->Predict(x), kmeans2->Predict(x));
    EXPECT_EQ(scaler->Apply(x), scaler2->Apply(x));
  }
}

TEST_F(ModelIoTest, TypeMismatchAndCorruptionRejected) {
  LinearModel model;
  model.weights = {1.0};
  ASSERT_TRUE(SaveLinearModel(model, Path("m")).ok());
  EXPECT_TRUE(LoadNaiveBayesModel(Path("m")).status().IsInvalidArgument());
  ASSERT_TRUE(WriteFileAtomic(Path("junk"), "not a model").ok());
  EXPECT_TRUE(LoadLinearModel(Path("junk")).status().IsDataLoss());
  EXPECT_TRUE(LoadLinearModel(Path("missing")).status().IsIoError());
  // Truncated payload.
  auto content = ReadFileToString(Path("m"));
  ASSERT_TRUE(content.ok());
  ASSERT_TRUE(
      WriteFileAtomic(Path("trunc"), content->substr(0, content->size() - 4))
          .ok());
  EXPECT_FALSE(LoadLinearModel(Path("trunc")).ok());
}

// --- Ingestion through the InputFormat contract ---

class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("ml_test");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    cluster_ = *cluster;
    DfsOptions options;
    options.block_size = 256;  // Several blocks -> several splits.
    dfs_ = std::make_shared<Dfs>(cluster_, options);
    schema_ = Schema::Make({{"x", DataType::kInt64},
                            {"y", DataType::kDouble},
                            {"label", DataType::kInt64}});
  }

  void WriteTrainingFile(const std::string& path, int rows) {
    CsvCodec codec;
    std::string content;
    for (int i = 0; i < rows; ++i) {
      codec.AppendRow(Row{Value::Int64(i), Value::Double(i * 0.5),
                          Value::Int64(i % 2)},
                      &content);
    }
    ASSERT_TRUE(dfs_->WriteString(path, content).ok());
  }

  std::unique_ptr<ScopedTempDir> temp_;
  ClusterPtr cluster_;
  DfsPtr dfs_;
  SchemaPtr schema_;
};

TEST_F(IngestTest, ReadsEveryRowExactlyOnce) {
  WriteTrainingFile("train/part-0", 100);
  WriteTrainingFile("train/part-1", 57);
  TextFileInputFormat format(dfs_, "train", schema_);
  JobContext context;
  context.cluster = cluster_;
  MlJobRunner runner(context);
  auto result = runner.Ingest(&format);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dataset.TotalRows(), 157u);
  EXPECT_GT(result->stats.num_splits, 1);
  // Every x value seen exactly once per file.
  std::map<int64_t, int> seen;
  for (const auto& partition : result->dataset.partitions) {
    for (const Row& row : partition) {
      seen[row[0].int64_value()]++;
    }
  }
  EXPECT_EQ(seen[5], 2);   // In both files.
  EXPECT_EQ(seen[99], 1);  // Only in the 100-row file.
}

TEST_F(IngestTest, SplitsCarryLocations) {
  WriteTrainingFile("single", 50);
  TextFileInputFormat format(dfs_, "single", schema_);
  JobContext context;
  context.cluster = cluster_;
  auto splits = format.GetSplits(context);
  ASSERT_TRUE(splits.ok());
  for (const auto& split : *splits) {
    EXPECT_FALSE(split->Locations().empty());
  }
  MlJobRunner runner(context);
  auto result = runner.Ingest(&format);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.local_splits, result->stats.num_splits);
}

TEST_F(IngestTest, MissingInputErrors) {
  TextFileInputFormat format(dfs_, "nope", schema_);
  JobContext context;
  context.cluster = cluster_;
  MlJobRunner runner(context);
  EXPECT_TRUE(runner.Ingest(&format).status().IsNotFound());
}

TEST_F(IngestTest, EndToEndTrainFromDfs) {
  // Linearly separable data written to DFS, ingested via InputFormat,
  // converted to a Dataset and fit with SVM — the naive pipeline's ML leg.
  CsvCodec codec;
  Random rng(17);
  std::string content;
  for (int i = 0; i < 200; ++i) {
    const int label = i % 2;
    const double center = label == 1 ? 2.0 : -2.0;
    codec.AppendRow(Row{Value::Int64(i),
                        Value::Double(center + rng.NextGaussian() * 0.3),
                        Value::Int64(label)},
                    &content);
  }
  ASSERT_TRUE(dfs_->WriteString("sep", content).ok());
  TextFileInputFormat format(dfs_, "sep", schema_);
  JobContext context;
  context.cluster = cluster_;
  MlJobRunner runner(context);
  auto ingest = runner.Ingest(&format);
  ASSERT_TRUE(ingest.ok());
  auto data = Dataset::FromRows(ingest->dataset, "label", {"y"});
  ASSERT_TRUE(data.ok());
  SgdOptions options;
  options.iterations = 50;
  auto trained = SvmWithSgd::Train(*data, options);
  ASSERT_TRUE(trained.ok());
  EXPECT_GT(Accuracy(*data,
                     [&](const DenseVector& x) {
                       return trained->model.PredictClass(x);
                     }),
            0.95);
}

}  // namespace
}  // namespace sqlink::ml
