#ifndef SQLINK_COMMON_FAILPOINT_H_
#define SQLINK_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/random.h"
#include "common/result.h"

namespace sqlink {

/// What an armed failpoint tells its call site to do. Delay actions sleep
/// inside Evaluate() and report kNone, so call sites only ever branch on
/// error-shaped outcomes.
enum class FailpointOutcome {
  kNone,   ///< Not armed, or the trigger did not fire: proceed normally.
  kError,  ///< Fail the operation with an injected error.
  kClose,  ///< Drop the underlying connection/resource, then fail.
};

/// Parsed form of one failpoint configuration. The text grammar (used by the
/// FAILPOINTS env var and by tests) is
///
///   spec     := modifier* action
///   modifier := ( "after(N)" | "every(N)" | "prob(P[,SEED])" ) ":"
///   action   := "off" | "error" [ "(MAX)" ] | "close" [ "(MAX)" ]
///             | "delay(MS[,MAX])"
///
/// e.g. "error(1)" (one-shot error), "after(49):error(1)" (error once, on
/// the 50th hit), "every(3):close" (close every third hit), or
/// "prob(0.2,7):delay(5)" (5 ms delay on ~20% of hits, seeded RNG).
struct FailpointSpec {
  enum class Action { kOff, kError, kClose, kDelay };

  Action action = Action::kOff;
  int delay_ms = 0;          ///< kDelay only.
  int64_t max_fires = -1;    ///< Firing budget; -1 = unlimited.
  int64_t skip_hits = 0;     ///< Ignore the first N evaluations ("after(N)").
  int64_t every_nth = 1;     ///< Fire on every Nth eligible hit.
  double probability = 1.0;  ///< Fire chance per eligible hit.
  uint64_t seed = 0;         ///< Seeds the per-failpoint RNG ("prob(P,SEED)").
};

/// Process-wide registry of named failpoints — the single place all fault
/// injection in the codebase goes through (LevelDB/RocksDB-style failpoint
/// discipline). Call sites evaluate a point via SQLINK_FAILPOINT("name");
/// tests and the FAILPOINTS env var arm points by name. An unarmed registry
/// costs one relaxed atomic load per evaluation.
///
/// Determinism: each armed point draws from its own seeded RNG in hit order,
/// so for a fixed seed the schedule of firings (by hit index) is
/// reproducible regardless of wall-clock timing.
///
/// Every evaluation and firing of an armed point is exported through
/// MetricsRegistry::Global() as "failpoint.<name>.hits" / ".fired".
class FailpointRegistry {
 public:
  /// The process registry; on first use it applies the FAILPOINTS env var
  /// ("name=spec,name=spec"), logging and skipping malformed entries.
  static FailpointRegistry& Global();

  /// True when any failpoint is armed. Inline fast path for the macro.
  static bool AnyActive() {
    return active_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Arms `name` with a parsed spec (Action::kOff disarms).
  Status Configure(const std::string& name, const FailpointSpec& spec);

  /// Arms `name` from spec text, e.g. "after(9):error(1)".
  Status Configure(const std::string& name, const std::string& spec);

  /// Applies a full "name=spec,name=spec" configuration string.
  Status ConfigureFromString(const std::string& config);

  /// Parses one spec (see FailpointSpec for the grammar).
  static Result<FailpointSpec> ParseSpec(const std::string& text);

  void Clear(const std::string& name);
  void ClearAll();

  /// Evaluations of `name` since it was (re)configured.
  int64_t Hits(const std::string& name) const;
  /// Times `name` actually fired since it was (re)configured.
  int64_t Fires(const std::string& name) const;

  /// Evaluates `name`: counts the hit, applies the trigger (skip/every/
  /// probability/budget), executes delay actions in place, and returns what
  /// the call site should do. Thread-safe.
  FailpointOutcome Evaluate(std::string_view name);

 private:
  struct Entry {
    FailpointSpec spec;
    Random rng{0};
    int64_t hits = 0;
    int64_t fires = 0;
  };

  FailpointRegistry();

  static std::atomic<int64_t> active_count_;

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Evaluates the failpoint `name` (string or string_view expression). The
/// name expression is not evaluated unless some failpoint is armed, so hot
/// paths may build dynamic names (e.g. per split id) without cost in
/// production. Compiling with -DSQLINK_DISABLE_FAILPOINTS removes even the
/// atomic load.
#ifndef SQLINK_DISABLE_FAILPOINTS
#define SQLINK_FAILPOINT(name)                                \
  (::sqlink::FailpointRegistry::AnyActive()                   \
       ? ::sqlink::FailpointRegistry::Global().Evaluate(name) \
       : ::sqlink::FailpointOutcome::kNone)
#else
#define SQLINK_FAILPOINT(name) (::sqlink::FailpointOutcome::kNone)
#endif

/// RAII arming for tests: configures on construction, clears on destruction.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, const std::string& spec)
      : name_(std::move(name)),
        status_(FailpointRegistry::Global().Configure(name_, spec)) {}
  ~ScopedFailpoint() { FailpointRegistry::Global().Clear(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  const std::string& name() const { return name_; }
  const Status& status() const { return status_; }
  int64_t hits() const { return FailpointRegistry::Global().Hits(name_); }
  int64_t fires() const { return FailpointRegistry::Global().Fires(name_); }

 private:
  std::string name_;
  Status status_;
};

}  // namespace sqlink

#endif  // SQLINK_COMMON_FAILPOINT_H_
