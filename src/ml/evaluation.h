#ifndef SQLINK_ML_EVALUATION_H_
#define SQLINK_ML_EVALUATION_H_

#include <functional>

#include "ml/dataset.h"

namespace sqlink::ml {

/// Fraction of points whose predicted class equals the label. `predict`
/// receives the feature vector and returns 0/1.
double Accuracy(const Dataset& data,
                const std::function<double(const DenseVector&)>& predict);

/// Mean squared error for a regression predictor.
double MeanSquaredError(
    const Dataset& data,
    const std::function<double(const DenseVector&)>& predict);

}  // namespace sqlink::ml

#endif  // SQLINK_ML_EVALUATION_H_
