#ifndef SQLINK_BENCH_BENCH_UTIL_H_
#define SQLINK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "dfs/dfs.h"
#include "pipeline/analytics_pipeline.h"
#include "pipeline/datagen.h"
#include "sql/engine.h"

namespace sqlink::bench {

/// Shared fixture for the figure/ablation benchmarks: a 4-node simulated
/// cluster (matching the paper's 4 worker servers), a DFS, the SQL engine
/// and the carts/users workload.
struct BenchEnv {
  std::unique_ptr<ScopedTempDir> workspace;
  ClusterPtr cluster;
  SqlEnginePtr engine;
  DfsPtr dfs;
  std::unique_ptr<AnalyticsPipeline> pipeline;

  static std::unique_ptr<BenchEnv> Make(int64_t num_carts,
                                        int num_nodes = 4) {
    SetLogLevel(LogLevel::kError);
    auto env = std::make_unique<BenchEnv>();
    env->workspace = std::make_unique<ScopedTempDir>("sqlink_bench");
    auto cluster = Cluster::Make(num_nodes, env->workspace->path());
    if (!cluster.ok()) {
      std::fprintf(stderr, "cluster: %s\n",
                   cluster.status().ToString().c_str());
      std::exit(1);
    }
    env->cluster = *cluster;
    env->engine = SqlEngine::Make(env->cluster);
    env->dfs = std::make_shared<Dfs>(env->cluster, DfsOptions{});
    env->pipeline = std::make_unique<AnalyticsPipeline>(env->engine, env->dfs);

    CartsWorkloadOptions data;
    data.num_carts = num_carts;
    data.num_users = std::max<int64_t>(10, num_carts / 100);
    auto generated = GenerateCartsWorkload(env->engine.get(), data);
    if (!generated.ok()) {
      std::fprintf(stderr, "datagen: %s\n",
                   generated.status().ToString().c_str());
      std::exit(1);
    }
    return env;
  }

  /// The paper's transformation request over that workload.
  static TransformRequest PaperRequest() {
    TransformRequest request;
    request.prep_sql = CartsPrepQuery();
    request.recode_columns = {"gender", "abandoned"};
    request.codings["gender"] = CodingScheme::kDummy;
    return request;
  }
};

/// Row-count CLI argument with a default.
inline int64_t RowsArg(int argc, char** argv, int64_t default_rows) {
  return argc > 1 ? std::atoll(argv[1]) : default_rows;
}

/// Machine-readable benchmark output: one JSON line per measured run with
/// the benchmark name, its parameters, wall time, and a full snapshot of
/// the global metrics registry (counters, gauges, histogram percentiles).
///
/// Controlled by SQLINK_BENCH_JSON: unset → disabled; "-" → stdout;
/// anything else → append to that path. The human-readable table output of
/// each binary is unaffected, so sweeps stay greppable *and* plottable.
class BenchJsonLine {
 public:
  explicit BenchJsonLine(std::string name) : name_(std::move(name)) {}

  BenchJsonLine& Param(const std::string& key, int64_t value) {
    params_.emplace_back(key, std::to_string(value));
    return *this;
  }
  BenchJsonLine& Param(const std::string& key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.3f", value);
    params_.emplace_back(key, buffer);
    return *this;
  }
  BenchJsonLine& Param(const std::string& key, const std::string& value) {
    params_.emplace_back(key, "\"" + Escape(value) + "\"");
    return *this;
  }
  // Without this, a string literal would bind to the bool overload.
  BenchJsonLine& Param(const std::string& key, const char* value) {
    return Param(key, std::string(value));
  }
  BenchJsonLine& Param(const std::string& key, bool value) {
    params_.emplace_back(key, value ? "true" : "false");
    return *this;
  }
  /// Embeds pre-rendered JSON verbatim (e.g. a query's per-operator stats
  /// tree from QueryStats::AppendJson). The caller vouches for validity.
  BenchJsonLine& JsonParam(const std::string& key, std::string raw_json) {
    params_.emplace_back(key, std::move(raw_json));
    return *this;
  }

  /// Writes the line (no-op when SQLINK_BENCH_JSON is unset). Call once per
  /// measured configuration, after the run, so the metrics snapshot reflects
  /// that run (pair with MetricsRegistry::Global().Reset() between runs for
  /// per-run deltas).
  void Emit(double wall_ms) const {
    const char* dest = std::getenv("SQLINK_BENCH_JSON");
    if (dest == nullptr || *dest == '\0') return;
    std::string line = "{\"bench\":\"" + Escape(name_) + "\",\"params\":{";
    for (size_t i = 0; i < params_.size(); ++i) {
      if (i > 0) line += ',';
      line += "\"" + Escape(params_[i].first) + "\":" + params_[i].second;
    }
    char wall[64];
    std::snprintf(wall, sizeof(wall), "%.3f", wall_ms);
    line += "},\"wall_ms\":";
    line += wall;
    line += ",\"metrics\":" + MetricsRegistry::Global().ToJson() + "}\n";
    if (std::string(dest) == "-") {
      std::fputs(line.c_str(), stdout);
      std::fflush(stdout);
      return;
    }
    std::ofstream out(dest, std::ios::app);
    if (out) out << line;
  }

 private:
  static std::string Escape(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> params_;
};

}  // namespace sqlink::bench

#endif  // SQLINK_BENCH_BENCH_UTIL_H_
