#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/thread_pool.h"

namespace sqlink::ml {

namespace {

double Gini(size_t positives, size_t total) {
  if (total == 0) return 0;
  const double p = static_cast<double>(positives) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

struct SplitCandidate {
  int feature = -1;
  double threshold = 0;
  double gain = 0;
};

/// Finds the best threshold split for one feature over the node's points.
SplitCandidate BestSplitForFeature(
    const std::vector<const LabeledPoint*>& points, int feature,
    size_t total_positives, int max_bins) {
  SplitCandidate best;
  best.feature = feature;
  const size_t n = points.size();

  // Sort point indices by this feature's value.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return points[a]->features[static_cast<size_t>(feature)] <
           points[b]->features[static_cast<size_t>(feature)];
  });

  const double parent_impurity = Gini(total_positives, n);
  const size_t stride = std::max<size_t>(1, n / static_cast<size_t>(max_bins));

  size_t left_count = 0;
  size_t left_positives = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    const LabeledPoint* point = points[order[i]];
    ++left_count;
    if (point->label > 0.5) ++left_positives;
    // Only evaluate at bin edges, and never between equal feature values.
    if (i % stride != stride - 1) continue;
    const double here = point->features[static_cast<size_t>(feature)];
    const double next =
        points[order[i + 1]]->features[static_cast<size_t>(feature)];
    if (here == next) continue;

    const size_t right_count = n - left_count;
    const size_t right_positives = total_positives - left_positives;
    const double weighted =
        (static_cast<double>(left_count) * Gini(left_positives, left_count) +
         static_cast<double>(right_count) *
             Gini(right_positives, right_count)) /
        static_cast<double>(n);
    const double gain = parent_impurity - weighted;
    if (gain > best.gain) {
      best.gain = gain;
      best.threshold = (here + next) / 2.0;
    }
  }
  return best;
}

}  // namespace

double DecisionTreeModel::Predict(const DenseVector& features) const {
  const Node* node = root_.get();
  while (node != nullptr && !node->is_leaf) {
    node = (features[static_cast<size_t>(node->feature)] <= node->threshold)
               ? node->left.get()
               : node->right.get();
  }
  return node == nullptr ? 0 : node->prediction;
}

int DecisionTreeModel::depth() const {
  struct Walker {
    static int Depth(const Node* node) {
      if (node == nullptr || node->is_leaf) return 0;
      return 1 + std::max(Depth(node->left.get()), Depth(node->right.get()));
    }
  };
  return Walker::Depth(root_.get());
}

size_t DecisionTreeModel::num_nodes() const {
  struct Walker {
    static size_t Count(const Node* node) {
      if (node == nullptr) return 0;
      return 1 + Count(node->left.get()) + Count(node->right.get());
    }
  };
  return Walker::Count(root_.get());
}

namespace {

std::unique_ptr<DecisionTreeModel::Node> BuildNode(
    std::vector<const LabeledPoint*> points, int depth, size_t dimension,
    const DecisionTreeOptions& options) {
  auto node = std::make_unique<DecisionTreeModel::Node>();
  size_t positives = 0;
  for (const LabeledPoint* p : points) {
    if (p->label > 0.5) ++positives;
  }
  node->prediction = positives * 2 >= points.size() ? 1.0 : 0.0;

  const bool pure = positives == 0 || positives == points.size();
  if (pure || depth >= options.max_depth ||
      points.size() < options.min_node_size) {
    return node;
  }

  // Split search parallelizes across features — the distributed dimension
  // of tree building (per-feature statistics, as in MLlib's tree trainer).
  std::vector<SplitCandidate> candidates(dimension);
  ParallelFor(dimension, [&](size_t f) {
    candidates[f] = BestSplitForFeature(points, static_cast<int>(f),
                                        positives, options.max_bins);
  });
  SplitCandidate best;
  for (const SplitCandidate& c : candidates) {
    if (c.gain > best.gain) best = c;
  }
  if (best.feature < 0 || best.gain < options.min_gain) return node;

  std::vector<const LabeledPoint*> left;
  std::vector<const LabeledPoint*> right;
  for (const LabeledPoint* p : points) {
    if (p->features[static_cast<size_t>(best.feature)] <= best.threshold) {
      left.push_back(p);
    } else {
      right.push_back(p);
    }
  }
  if (left.empty() || right.empty()) return node;

  node->is_leaf = false;
  node->feature = best.feature;
  node->threshold = best.threshold;
  points.clear();
  points.shrink_to_fit();
  node->left = BuildNode(std::move(left), depth + 1, dimension, options);
  node->right = BuildNode(std::move(right), depth + 1, dimension, options);
  return node;
}

}  // namespace

namespace {

void EncodeNode(const DecisionTreeModel::Node* node, std::string* out) {
  out->push_back(node->is_leaf ? 1 : 0);
  if (node->is_leaf) {
    PutDouble(out, node->prediction);
    return;
  }
  PutVarint64Signed(out, node->feature);
  PutDouble(out, node->threshold);
  EncodeNode(node->left.get(), out);
  EncodeNode(node->right.get(), out);
}

Result<std::unique_ptr<DecisionTreeModel::Node>> DecodeNode(Decoder* decoder,
                                                            int depth) {
  if (depth > 64) return Status::DataLoss("decision tree too deep");
  auto leaf_flag = decoder->GetByte();
  if (!leaf_flag.ok()) return leaf_flag.status();
  auto node = std::make_unique<DecisionTreeModel::Node>();
  if (*leaf_flag != 0) {
    auto prediction = decoder->GetDouble();
    if (!prediction.ok()) return prediction.status();
    node->prediction = *prediction;
    return node;
  }
  node->is_leaf = false;
  auto feature = decoder->GetVarint64Signed();
  if (!feature.ok()) return feature.status();
  node->feature = static_cast<int>(*feature);
  auto threshold = decoder->GetDouble();
  if (!threshold.ok()) return threshold.status();
  node->threshold = *threshold;
  auto left = DecodeNode(decoder, depth + 1);
  if (!left.ok()) return left.status();
  node->left = std::move(*left);
  auto right = DecodeNode(decoder, depth + 1);
  if (!right.ok()) return right.status();
  node->right = std::move(*right);
  return node;
}

}  // namespace

void DecisionTreeModel::Encode(std::string* out) const {
  EncodeNode(root_.get(), out);
}

Result<DecisionTreeModel> DecisionTreeModel::Decode(Decoder* decoder) {
  auto root = DecodeNode(decoder, 0);
  if (!root.ok()) return root.status();
  DecisionTreeModel model;
  model.root_ = std::move(*root);
  return model;
}

Result<DecisionTreeModel> DecisionTree::Train(
    const Dataset& data, const DecisionTreeOptions& options) {
  if (data.TotalPoints() == 0) {
    return Status::InvalidArgument("cannot train on an empty dataset");
  }
  std::vector<const LabeledPoint*> points;
  points.reserve(data.TotalPoints());
  for (const auto& partition : data.partitions()) {
    for (const LabeledPoint& point : partition) {
      points.push_back(&point);
    }
  }
  DecisionTreeModel model;
  model.root_ =
      BuildNode(std::move(points), 0, data.dimension(), options);
  return model;
}

}  // namespace sqlink::ml
