#ifndef SQLINK_STREAM_WIRE_H_
#define SQLINK_STREAM_WIRE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "common/string_dict.h"
#include "common/trace.h"
#include "stream/socket.h"
#include "table/column_batch.h"
#include "table/schema.h"

namespace sqlink {

/// Frame types of the streaming-transfer protocol. Control frames run
/// between participants and the coordinator; data frames flow on the
/// SQL-worker → ML-worker sockets.
enum class FrameType : uint8_t {
  // Data plane.
  kSchema = 1,  ///< First frame on a data socket: the row schema.
  kData = 2,    ///< A batch of encoded rows.
  kEnd = 3,     ///< Sender finished; payload = total row count (varint).
  kError = 4,   ///< Sender failed; payload = message.
  kHello = 5,   ///< Receiver's opening frame: split id + restart flag.

  // Control plane (coordinator).
  kRegisterSql = 10,
  kGetSplits = 11,
  kSplits = 12,
  kRegisterMl = 13,
  kMatch = 14,
  kReportFailure = 15,
  kAck = 16,
  kShutdown = 17,

  // Recovery plane (liveness + at-least-once replay).
  kHeartbeat = 18,      ///< Lease renewal from a sink or reader.
  kAcquireSplit = 19,   ///< Runner asks for a Reassignable split.
  kSplitGrant = 20,     ///< Reply: a reassigned split (or none pending).
  kCompleteSplit = 21,  ///< Reader confirms a split fully applied.
  kDataAck = 22,        ///< Cumulative ack: header seq = last applied frame.
  kResume = 23,         ///< Sink → reader: replay start point after HELLO.
  kAbortQuery = 24,     ///< Broadcast abort; payload = encoded Status.

  // Columnar data plane (SQLINK_COLUMNAR=on). kColData replaces kData with
  // column-contiguous buffers + per-channel dictionary deltas; kDictPage
  // re-seeds the channel dictionaries after (re)connect so replayed deltas
  // tile onto a consistent base.
  kColData = 25,   ///< Columnar batch; leading varint is the row count.
  kDictPage = 26,  ///< Per-channel string-dictionary snapshot.

  // Serving plane (src/serving): client ↔ query server. One query per
  // connection; an overloaded server answers kSubmitQuery with kError
  // carrying a typed kOverloaded status.
  kSubmitQuery = 27,  ///< Client → server; payload = SubmitQueryMessage.
  kQueryResult = 28,  ///< Server → client; payload = schema + rows.
  kCancelQuery = 29,  ///< Client → server: cancel the in-flight query.

  // Mux plane (SQLINK_MUX=on, src/net): many logical transfer channels share
  // one sink→reader socket. On a mux socket these are the ONLY frame types;
  // data-plane frames (kResume/kSchema/kDictPage/kData/kColData/kEnd/kError/
  // kDataAck/kAck) travel wrapped inside kChannelData with a one-byte inner
  // type prefix, so the per-channel seq/ack + dictionary machinery is
  // untouched by multiplexing.
  kOpenChannel = 30,    ///< Reader → sink: payload = OpenChannelMessage.
  kChannelData = 31,    ///< Wrapped inner frame; payload = [inner type][...].
  kCloseChannel = 32,   ///< Either side: channel torn down (socket stays up).
  kChannelWindow = 33,  ///< Credit grant; payload = varint byte count.

  // Completion plane: out-of-band final-ack recovery. A reader's final ack
  // can die with a shared connection after the whole stream was applied;
  // the reader then reports completion to the coordinator and never
  // reconnects, so the sink asks the coordinator instead of waiting out a
  // reconnect that will never come.
  kSplitStatus = 34,  ///< Sink → coordinator: varint split id. Reply kAck,
                      ///< payload = varint(1) completed / varint(0) not.
};

struct Frame {
  FrameType type = FrameType::kAck;
  std::string payload;
  /// Per-channel monotonic sequence number (kData/kEnd frames and kDataAck
  /// cumulative acks); zero on frames that don't take part in replay.
  uint64_t seq = 0;
  /// Logical mux channel id; zero on un-multiplexed sockets and on
  /// connection-scoped frames (kOpenChannel replies ride channel 0 too).
  uint32_t channel = 0;
  /// Trace context propagated in the frame header (invalid when the sender
  /// was not tracing). Receivers parent their handler spans here so one
  /// query's trace crosses the wire.
  TraceContext trace;
};

/// Wire format: fixed32 payload length, one type byte, fixed64 trace id,
/// fixed64 span id, fixed64 sequence number, fixed32 channel id, payload
/// bytes. The trace fields are zero when tracing is off; SendFrame stamps
/// the calling thread's current span automatically and sends channel 0.
Status SendFrame(TcpSocket* socket, FrameType type, std::string_view payload);
/// As above with an explicit trace context (senders relaying a span owned by
/// another thread).
Status SendFrame(TcpSocket* socket, FrameType type, std::string_view payload,
                 const TraceContext& trace);
/// As above with an explicit sequence number (data frames and acks).
Status SendFrame(TcpSocket* socket, FrameType type, std::string_view payload,
                 uint64_t seq);
Result<Frame> RecvFrame(TcpSocket* socket);

/// Allocation-free variant for receive loops: decodes the header into
/// `*scratch` (reused across calls) and the payload into `frame->payload`
/// (whose capacity is likewise reused). `frame` keeps its buffers on error.
Status RecvFrameInto(TcpSocket* socket, Frame* frame, std::string* scratch);

/// Size in bytes of the fixed frame header
/// (len + type + trace_id + span_id + seq + channel).
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 8 + 8 + 8 + 4;

/// Writes the fixed frame header into `out` (at least kFrameHeaderBytes).
/// Shared by SendFrame and the mux write coalescer, which builds headers
/// for many channels before one writev.
void EncodeFrameHeader(char* out, FrameType type, uint32_t payload_len,
                       uint64_t seq, uint32_t channel,
                       const TraceContext& trace);

/// Extracts one complete frame from the front of `*buffer` (bytes gathered
/// out-of-band, e.g. with TcpSocket::TryRecv). Returns true and erases the
/// consumed prefix when a full frame was buffered; false when more bytes are
/// needed. Used by data senders draining cumulative acks between frames
/// without blocking the send path.
Result<bool> ExtractFrame(std::string* buffer, Frame* frame);

/// Cursor variant: parses one frame starting at `*cursor` within `buffer`
/// and advances the cursor past it, without erasing the consumed prefix —
/// callers drain every buffered frame, then compact once. The payload is
/// assigned into `frame->payload` reusing its capacity.
Result<bool> ExtractFrame(std::string_view buffer, size_t* cursor,
                          Frame* frame);

/// Bounded pool of reusable frame/payload buffers. Steady-state senders
/// acquire, fill, hand the bytes to the socket and the replay window, and
/// release — after warm-up no send allocates. Buffers above a capacity cap
/// are dropped on release instead of pinning memory. Thread-safe.
/// Counters: stream.wire.frames_pooled (acquire served from the pool),
/// stream.wire.pool_miss (acquire had to allocate fresh).
class FrameBufferPool {
 public:
  /// An empty string with whatever capacity a released buffer carried.
  std::string Acquire();
  void Release(std::string buffer);

  /// Process-wide pool shared by all channels.
  static FrameBufferPool* Global();

 private:
  static constexpr size_t kMaxPooled = 64;
  static constexpr size_t kMaxBufferCapacity = 4 << 20;

  std::mutex mu_;
  std::vector<std::string> buffers_;
};

// --- Columnar frame encoding (kColData / kDictPage) -------------------------
//
// kColData payload: varint row count, then per column in schema order:
//   has_nulls byte; when set, ceil(rows/8) LSB-first packed null bits;
//   kBool   -> rows raw 0/1 bytes
//   kInt64  -> rows x 8 raw little-endian bytes (straight memcpy)
//   kDouble -> rows x 8 raw little-endian bytes
//   kString -> varint first_new_id, varint new_count, the new dictionary
//              entries length-prefixed (a delta against the channel
//              dictionary), then rows x 4 raw int32 codes. Null rows carry
//              code 0; the decoder consults the bitmap first.
//
// kDictPage payload: per STRING column in schema order, varint entry count
// followed by the length-prefixed entries — a full snapshot of the channel
// dictionaries, sent once after kSchema on every (re)connect. Replayed
// kColData deltas then tile onto the snapshot: the decoder appends only
// entries past its current size, so overlap is idempotent.

/// Per-channel encoder state: the string dictionaries shared by every frame
/// on one sink→reader connection. Thread-safe (the producer encodes batches
/// while the sender thread snapshots dictionaries on reconnect).
class ColumnarChannelEncoder {
 public:
  explicit ColumnarChannelEncoder(SchemaPtr schema);

  /// Appends `batch` (matching the channel schema) to `*payload` (cleared
  /// first), registering new dictionary entries as deltas.
  Status EncodeBatch(const ColumnBatch& batch, std::string* payload);

  /// Full dictionary snapshot for a kDictPage frame.
  std::string SnapshotDicts() const;

 private:
  SchemaPtr schema_;
  mutable std::mutex mu_;
  std::vector<StringDict> dicts_;  ///< Per column; empty for non-STRING.
};

/// Per-channel decoder state: accumulates dictionary entries from snapshots
/// and deltas. Single-reader; not thread-safe.
class ColumnarChannelDecoder {
 public:
  /// Applies a kDictPage snapshot (append-only past current entries).
  Status ApplySnapshot(std::string_view payload, const SchemaPtr& schema);

  /// Decodes a kColData payload into `*out` (reset to `schema`).
  Status DecodeBatch(std::string_view payload, const SchemaPtr& schema,
                     ColumnBatch* out);

 private:
  std::vector<StringDict> dicts_;
};

/// Typed-Status payload for kError / kAbortQuery frames: the code survives
/// the wire, so "aborted" stays IsAborted() on the far side instead of
/// collapsing into a string.
std::string EncodeStatus(const Status& status);
/// Decodes an EncodeStatus payload; free-text payloads (legacy senders,
/// foreign peers) degrade to kNetworkError with the text as message.
Status DecodeStatusPayload(std::string_view payload);

/// Schema serialization for the kSchema frame and control messages.
void EncodeSchema(const Schema& schema, std::string* out);
Result<SchemaPtr> DecodeSchema(Decoder* decoder);

// --- Control-plane messages -------------------------------------------------

/// SQL worker registration (paper step 1): identity, the worker's data
/// endpoint, the ML command to launch, and the schema of the streamed rows.
struct RegisterSqlMessage {
  int worker_id = 0;
  int num_workers = 0;
  std::string host;
  int port = 0;
  std::string command;
  std::vector<std::string> args;
  SchemaPtr schema;
  /// Mux mode: routing key of this partition's inbox on the process-wide
  /// MuxSinkServer (host/port then name the shared listener). Zero = legacy
  /// direct dial, one ephemeral listener per transfer.
  uint64_t sink_key = 0;

  std::string Encode() const;
  static Result<RegisterSqlMessage> Decode(std::string_view payload);
};

/// One InputSplit descriptor handed to the ML job (paper step 3).
struct StreamSplitInfo {
  int split_id = 0;
  int sql_worker = 0;
  std::string host;  ///< SQL worker's host — the split's locality hint.
  int port = 0;
  /// Lease epoch the consumer must present in heartbeats. Bumped by the
  /// coordinator on every reassignment so a revoked ("zombie") reader is
  /// fenced off by its stale epoch.
  int64_t epoch = 1;
  /// Sink routing key for mux channels (see RegisterSqlMessage::sink_key);
  /// zero = dial the sink directly and speak the one-socket protocol.
  uint64_t sink_key = 0;
};

/// Response to kGetSplits.
struct SplitsMessage {
  SchemaPtr schema;
  std::vector<StreamSplitInfo> splits;

  std::string Encode() const;
  static Result<SplitsMessage> Decode(std::string_view payload);
};

/// ML worker registration (step 4) and failure reports (§6); the kMatch
/// response carries the SQL endpoint to dial (steps 5-6).
struct RegisterMlMessage {
  int split_id = 0;

  std::string Encode() const;
  static Result<RegisterMlMessage> Decode(std::string_view payload);
};

struct MatchMessage {
  std::string host;
  int port = 0;
  /// Mux routing key of the matched sink partition's worker (see
  /// RegisterSqlMessage::sink_key); a restarted worker re-registers under a
  /// fresh key, so re-matches must carry the current one. Zero = legacy.
  uint64_t sink_key = 0;

  std::string Encode() const;
  static Result<MatchMessage> Decode(std::string_view payload);
};

/// Data-plane opening frame from the ML worker.
struct HelloMessage {
  int split_id = 0;
  bool restart = false;  ///< §6 recovery: replay from the retained log.
  /// Highest frame sequence number this reader already applied; the sink
  /// replays everything after it. -1 = "resume from your last cumulative
  /// ack" — sent by fresh and replacement readers, which own no local
  /// progress and inherit whatever the sink knows was applied.
  int64_t resume_seq = -1;

  std::string Encode() const;
  static Result<HelloMessage> Decode(std::string_view payload);
};

/// Reader → sink kOpenChannel payload: routes the new logical channel to a
/// sink partition registered on the shared MuxSinkServer listener and opens
/// the stream with the embedded HELLO. `window_bytes` is the initial credit
/// the reader grants the sink's data frames (kChannelWindow replenishes it).
struct OpenChannelMessage {
  uint64_t sink_key = 0;
  uint64_t window_bytes = 0;
  HelloMessage hello;

  std::string Encode() const;
  static Result<OpenChannelMessage> Decode(std::string_view payload);
};

/// Lease renewal sent on a participant's control connection every
/// heartbeat interval. `id` is the split id for readers and the SQL worker
/// id for sinks.
struct HeartbeatMessage {
  enum Role : uint8_t { kSink = 0, kReader = 1 };
  enum Bye : uint8_t { kAlive = 0, kCompleted = 1, kFailed = 2 };

  uint8_t role = kSink;
  int id = 0;
  int64_t epoch = 1;        ///< Reader lease epoch (fencing).
  uint64_t applied_seq = 0; ///< Reader progress (observability).
  uint8_t bye = kAlive;     ///< Final beat: drop (kCompleted) or release
                            ///< for reassignment (kFailed).

  std::string Encode() const;
  static Result<HeartbeatMessage> Decode(std::string_view payload);
};

/// Sink → reader reply to HELLO: where the stream resumes. The reader's
/// runner truncates its partition buffer to `resume_rows` before applying
/// replayed frames, so at-least-once delivery stays exactly-once apply.
struct ResumeMessage {
  uint64_t resume_seq = 0;   ///< Replay starts after this frame.
  uint64_t resume_rows = 0;  ///< Rows contained in frames 1..resume_seq.

  std::string Encode() const;
  static Result<ResumeMessage> Decode(std::string_view payload);
};

/// Reply to kAcquireSplit: a Reassignable split handed to a surviving
/// reader, or "none pending right now".
struct SplitGrantMessage {
  bool granted = false;
  StreamSplitInfo split;  ///< Valid when granted; split.epoch is the fenced
                          ///< lease epoch the replacement must heartbeat.

  std::string Encode() const;
  static Result<SplitGrantMessage> Decode(std::string_view payload);
};

/// Reader → coordinator: the split's stream was fully applied.
struct CompleteSplitMessage {
  int split_id = 0;
  int64_t epoch = 1;
  uint64_t rows = 0;

  std::string Encode() const;
  static Result<CompleteSplitMessage> Decode(std::string_view payload);
};

}  // namespace sqlink

#endif  // SQLINK_STREAM_WIRE_H_
