// Property-based and parameterized sweeps: randomized round-trips,
// numerical gradient checks, implication soundness against brute force,
// and differential testing of the SQL engine against a nested-loop
// reference evaluator.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/random.h"
#include "common/retry_policy.h"
#include "common/runtime_flags.h"
#include "ml/sgd.h"
#include "rewriter/predicate_logic.h"
#include "sql/batch_kernels.h"
#include "sql/engine.h"
#include "sql/parser.h"
#include "stream/replay_window.h"
#include "stream/spill_queue.h"
#include "table/csv.h"
#include "table/row_codec.h"
#include "transform/coding.h"

namespace sqlink {
namespace {

// ---------------------------------------------------------------------------
// Random value/row generators.

std::string RandomNastyString(Random* rng) {
  static const char* const kAlphabet = "ab,\"\n'\\|x ";
  std::string out;
  const size_t length = rng->Uniform(12);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[rng->Uniform(10)]);
  }
  return out;
}

Value RandomValue(Random* rng, DataType type, bool allow_null = true) {
  if (allow_null && rng->Bernoulli(0.1)) return Value::Null();
  switch (type) {
    case DataType::kBool:
      return Value::Bool(rng->Bernoulli(0.5));
    case DataType::kInt64:
      return Value::Int64(rng->UniformInt(-1000, 1000));
    case DataType::kDouble:
      return Value::Double(rng->NextGaussian() * 100);
    case DataType::kString:
      return Value::String(RandomNastyString(rng));
  }
  return Value::Null();
}

SchemaPtr RandomSchema(Random* rng) {
  const int fields = static_cast<int>(rng->UniformInt(1, 6));
  std::vector<Field> out;
  for (int i = 0; i < fields; ++i) {
    const DataType type = static_cast<DataType>(rng->UniformInt(0, 3));
    out.push_back(Field{"c" + std::to_string(i), type});
  }
  return Schema::Make(std::move(out));
}

Row RandomRow(Random* rng, const Schema& schema) {
  Row row;
  for (const Field& field : schema.fields()) {
    row.push_back(RandomValue(rng, field.type));
  }
  return row;
}

// ---------------------------------------------------------------------------
// CSV and binary codec round trips over adversarial random rows.

class CodecRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecRoundTripTest, CsvRoundTripsRandomRows) {
  Random rng(GetParam());
  CsvCodec codec;
  for (int trial = 0; trial < 50; ++trial) {
    SchemaPtr schema = RandomSchema(&rng);
    const Row row = RandomRow(&rng, *schema);
    auto parsed = codec.ParseRow(codec.FormatRow(row), *schema);
    ASSERT_TRUE(parsed.ok())
        << parsed.status() << " for line: " << codec.FormatRow(row);
    // Doubles survive exactly: ToString uses %.17g.
    EXPECT_EQ(*parsed, row);
  }
}

TEST_P(CodecRoundTripTest, RowCodecRoundTripsRandomRows) {
  Random rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    SchemaPtr schema = RandomSchema(&rng);
    std::vector<Row> rows;
    for (int i = 0; i < 20; ++i) rows.push_back(RandomRow(&rng, *schema));
    auto decoded = RowCodec::DecodeRows(RowCodec::EncodeRows(rows));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(*decoded, rows);
  }
}

TEST_P(CodecRoundTripTest, RowCodecRejectsEveryTruncation) {
  Random rng(GetParam() * 101 + 13);
  SchemaPtr schema = RandomSchema(&rng);
  std::vector<Row> rows{RandomRow(&rng, *schema), RandomRow(&rng, *schema)};
  const std::string encoded = RowCodec::EncodeRows(rows);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    auto decoded = RowCodec::DecodeRows(encoded.substr(0, cut));
    // Either an error, or a prefix decode must not fabricate data beyond
    // what was encoded (row-count prefix makes short reads errors).
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 42, 1234));

// ---------------------------------------------------------------------------
// Coding matrices across cardinalities.

class CodingMatrixPropertyTest
    : public ::testing::TestWithParam<std::tuple<CodingScheme, int>> {};

TEST_P(CodingMatrixPropertyTest, SchemeInvariantsHold) {
  const auto [scheme, k] = GetParam();
  auto matrix = CodingMatrix(scheme, k);
  ASSERT_TRUE(matrix.ok());
  const int cols = CodingOutputColumns(scheme, k);
  ASSERT_EQ(static_cast<int>(matrix->size()), k);
  for (const auto& row : *matrix) {
    ASSERT_EQ(static_cast<int>(row.size()), cols);
  }
  switch (scheme) {
    case CodingScheme::kDummy:
      for (int level = 0; level < k; ++level) {
        double sum = 0;
        for (double v : (*matrix)[static_cast<size_t>(level)]) sum += v;
        EXPECT_DOUBLE_EQ(sum, 1.0);  // Exactly one hot.
        EXPECT_DOUBLE_EQ(
            (*matrix)[static_cast<size_t>(level)][static_cast<size_t>(level)],
            1.0);
      }
      break;
    case CodingScheme::kEffect:
      // Columns sum to zero across levels (effects sum to zero).
      for (int c = 0; c < cols; ++c) {
        double sum = 0;
        for (int level = 0; level < k; ++level) {
          sum += (*matrix)[static_cast<size_t>(level)][static_cast<size_t>(c)];
        }
        EXPECT_NEAR(sum, 0.0, 1e-12);
      }
      break;
    case CodingScheme::kOrthogonal:
      for (int a = 0; a < cols; ++a) {
        double sum = 0;
        for (int b = 0; b < cols; ++b) {
          double dot = 0;
          for (int level = 0; level < k; ++level) {
            dot += (*matrix)[static_cast<size_t>(level)][static_cast<size_t>(a)] *
                   (*matrix)[static_cast<size_t>(level)][static_cast<size_t>(b)];
          }
          EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8) << "k=" << k;
        }
        for (int level = 0; level < k; ++level) {
          sum += (*matrix)[static_cast<size_t>(level)][static_cast<size_t>(a)];
        }
        EXPECT_NEAR(sum, 0.0, 1e-8);
      }
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAndCardinalities, CodingMatrixPropertyTest,
    ::testing::Combine(::testing::Values(CodingScheme::kDummy,
                                         CodingScheme::kEffect,
                                         CodingScheme::kOrthogonal),
                       ::testing::Values(2, 3, 4, 5, 8, 13, 21)));

// ---------------------------------------------------------------------------
// Predicate implication: soundness against brute-force evaluation.

class ImplicationSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ImplicationSoundnessTest, ImpliesNeverLies) {
  Random rng(GetParam());
  const std::vector<std::string> ops = {"=", "<>", "<", "<=", ">", ">="};
  for (int trial = 0; trial < 500; ++trial) {
    ColumnConstraint s{"", "x", ops[rng.Uniform(ops.size())],
                       Value::Int64(rng.UniformInt(-5, 5))};
    ColumnConstraint w{"", "x", ops[rng.Uniform(ops.size())],
                       Value::Int64(rng.UniformInt(-5, 5))};
    const bool implied = ConstraintImplies(s, w);
    if (!implied) continue;  // Soundness only: true must never be wrong.
    auto satisfies = [](const ColumnConstraint& c, int64_t x) {
      const int64_t v = c.literal.int64_value();
      if (c.op == "=") return x == v;
      if (c.op == "<>") return x != v;
      if (c.op == "<") return x < v;
      if (c.op == "<=") return x <= v;
      if (c.op == ">") return x > v;
      return x >= v;
    };
    for (int64_t x = -10; x <= 10; ++x) {
      if (satisfies(s, x)) {
        EXPECT_TRUE(satisfies(w, x))
            << "x " << s.op << " " << s.literal.ToString() << " claimed to "
            << "imply x " << w.op << " " << w.literal.ToString()
            << " but x=" << x << " violates it";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationSoundnessTest,
                         ::testing::Values(7, 21, 99, 12345));

// ---------------------------------------------------------------------------
// SGD losses: analytic gradients match finite differences.

class GradientCheckTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<ml::LossFunction> MakeLoss() const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<ml::HingeLoss>();
      case 1:
        return std::make_unique<ml::LogisticLoss>();
      default:
        return std::make_unique<ml::SquaredLoss>();
    }
  }
};

TEST_P(GradientCheckTest, AnalyticMatchesNumeric) {
  auto loss = MakeLoss();
  Random rng(static_cast<uint64_t>(GetParam()) + 5);
  constexpr double kEps = 1e-6;
  int checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    ml::LabeledPoint point;
    point.label = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    ml::DenseVector weights;
    for (int f = 0; f < 3; ++f) {
      point.features.push_back(rng.NextGaussian());
      weights.push_back(rng.NextGaussian() * 0.5);
    }
    const double intercept = rng.NextGaussian() * 0.5;

    // Hinge loss is non-differentiable at margin == 1; skip near the kink.
    if (GetParam() == 0) {
      const double y = point.label > 0.5 ? 1.0 : -1.0;
      const double margin = ml::Dot(weights, point.features) + intercept;
      if (std::fabs(1.0 - y * margin) < 1e-3) continue;
    }
    ++checked;

    ml::DenseVector grad(3, 0.0);
    double grad_intercept = 0.0;
    (void)loss->AddGradient(weights, intercept, point, &grad, &grad_intercept);

    auto loss_at = [&](const ml::DenseVector& w, double b) {
      ml::DenseVector scratch(3, 0.0);
      double scratch_b = 0.0;
      return loss->AddGradient(w, b, point, &scratch, &scratch_b);
    };
    for (int f = 0; f < 3; ++f) {
      ml::DenseVector plus = weights;
      ml::DenseVector minus = weights;
      plus[static_cast<size_t>(f)] += kEps;
      minus[static_cast<size_t>(f)] -= kEps;
      const double numeric =
          (loss_at(plus, intercept) - loss_at(minus, intercept)) / (2 * kEps);
      EXPECT_NEAR(grad[static_cast<size_t>(f)], numeric, 1e-4)
          << "feature " << f;
    }
    const double numeric_b =
        (loss_at(weights, intercept + kEps) -
         loss_at(weights, intercept - kEps)) /
        (2 * kEps);
    EXPECT_NEAR(grad_intercept, numeric_b, 1e-4);
  }
  EXPECT_GT(checked, 150);
}

std::string LossName(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0:
      return "Hinge";
    case 1:
      return "Logistic";
    default:
      return "Squared";
  }
}

INSTANTIATE_TEST_SUITE_P(Losses, GradientCheckTest,
                         ::testing::Values(0, 1, 2), LossName);

// ---------------------------------------------------------------------------
// Spill queue: order preserved across every capacity, with random sizes.

class SpillQueueSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SpillQueueSweepTest, OrderPreservedUnderRandomTraffic) {
  ScopedTempDir temp("spill_sweep");
  SpillingByteQueue::Options options;
  options.memory_capacity_bytes = GetParam();
  options.spill_enabled = true;
  options.spill_path = temp.path() + "/spill";
  SpillingByteQueue queue(options);

  Random rng(GetParam());
  constexpr int kFrames = 500;
  std::thread producer([&] {
    Random prng(GetParam() * 3 + 1);
    for (int i = 0; i < kFrames; ++i) {
      std::string frame = std::to_string(i) + ":" +
                          prng.NextString(prng.Uniform(64));
      ASSERT_TRUE(queue.Push(std::move(frame)).ok());
      if (prng.Bernoulli(0.1)) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    queue.CloseProducer();
  });
  int expected = 0;
  for (;;) {
    auto frame = queue.Pop();
    ASSERT_TRUE(frame.ok());
    if (!frame->has_value()) break;
    const std::string& text = **frame;
    const int id = std::stoi(text.substr(0, text.find(':')));
    EXPECT_EQ(id, expected++);
    if (rng.Bernoulli(0.05)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  producer.join();
  EXPECT_EQ(expected, kFrames);
}

INSTANTIATE_TEST_SUITE_P(Capacities, SpillQueueSweepTest,
                         ::testing::Values(16, 64, 256, 4096, 1 << 20));

// ---------------------------------------------------------------------------
// Replay window: under an arbitrary interleaving of appends and cumulative
// acks, (a) the in-memory footprint never exceeds the byte budget — excess
// retention overflows to the spill file — and (b) replaying from the ack
// always reproduces exactly the unacked suffix, in order, byte for byte.

class ReplayWindowPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplayWindowPropertyTest, MemoryBoundHoldsUnderRandomTraffic) {
  Random rng(GetParam() * 7919 + 11);
  ScopedTempDir temp("replay_window_prop");
  ReplayWindow::Options options;
  options.memory_capacity_bytes = 1 + rng.Uniform(2048);
  options.spill_enabled = true;
  options.spill_path = temp.path() + "/window";
  ReplayWindow window(options);

  std::map<uint64_t, std::pair<uint64_t, std::string>> retained;  // seq→frame
  uint64_t next_seq = 1;
  uint64_t acked = 0;
  for (int op = 0; op < 400; ++op) {
    if (rng.Bernoulli(0.7)) {
      // Frame sizes straddle the budget: some runs append single frames
      // larger than the whole window, which must spill immediately.
      std::string frame =
          rng.NextString(1 + rng.Uniform(options.memory_capacity_bytes + 64));
      const uint64_t rows = 1 + rng.Uniform(100);
      ASSERT_TRUE(window.Append(next_seq, rows, frame).ok());
      retained[next_seq] = {rows, std::move(frame)};
      ++next_seq;
    } else {
      acked += rng.Uniform(next_seq - acked);  // Never past the last frame.
      window.Ack(acked);
      retained.erase(retained.begin(), retained.lower_bound(acked + 1));
    }
    ASSERT_LE(window.memory_bytes(), options.memory_capacity_bytes)
        << "after op " << op << " (seq " << next_seq << ", acked " << acked
        << ")";
  }

  auto it = retained.begin();
  uint64_t replay_rows = 0;
  ASSERT_TRUE(window
                  .Replay(acked,
                          [&](uint64_t seq, uint64_t rows,
                              const std::string& frame) {
                            EXPECT_NE(it, retained.end());
                            EXPECT_EQ(seq, it->first);
                            EXPECT_EQ(rows, it->second.first);
                            EXPECT_EQ(frame, it->second.second);
                            replay_rows += rows;
                            ++it;
                            return Status::OK();
                          })
                  .ok());
  EXPECT_EQ(it, retained.end());
  ASSERT_TRUE(window.RowsThrough(window.last_seq()).ok());
  EXPECT_EQ(*window.RowsThrough(window.last_seq()),
            *window.RowsThrough(acked) + replay_rows);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayWindowPropertyTest,
                         ::testing::Range<uint64_t>(0, 8));

// ---------------------------------------------------------------------------
// RetryPolicy: backoff schedule invariants over random configurations.
// NextDelay() never sleeps, so these sweeps run the full schedule instantly.

class RetryPolicyPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  /// A random but sane configuration derived from the test seed.
  static RetryPolicy::Options RandomOptions(Random* rng) {
    RetryPolicy::Options options;
    options.initial_delay_ms = rng->UniformInt(1, 50);
    options.max_delay_ms =
        options.initial_delay_ms + rng->UniformInt(0, 1000);
    options.multiplier = 1.0 + rng->NextDouble() * 3.0;
    options.jitter = rng->NextDouble() * 0.5;
    options.deadline_ms = rng->UniformInt(1, 5000);
    options.max_attempts = 0;  // Deadline-bounded.
    options.seed = rng->NextUint64();
    return options;
  }

  static std::vector<int64_t> DrainSchedule(RetryPolicy* policy) {
    std::vector<int64_t> delays;
    while (auto delay = policy->NextDelay()) {
      delays.push_back(delay->count());
      if (delays.size() >= 100000u) {
        ADD_FAILURE() << "schedule failed to terminate";
        break;
      }
    }
    return delays;
  }
};

TEST_P(RetryPolicyPropertyTest, DelaysAreMonotoneAndCappedWithoutJitter) {
  Random rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    RetryPolicy::Options options = RandomOptions(&rng);
    options.jitter = 0.0;  // Pure exponential: strict monotonicity holds.
    RetryPolicy policy(options);
    const std::vector<int64_t> delays = DrainSchedule(&policy);
    ASSERT_FALSE(delays.empty());
    for (size_t i = 0; i < delays.size(); ++i) {
      EXPECT_GE(delays[i], 1);
      EXPECT_LE(delays[i], std::max<int64_t>(1, options.max_delay_ms));
      // Nondecreasing until the deadline clamp shrinks the final delay.
      if (i > 0 && i + 1 < delays.size()) {
        EXPECT_GE(delays[i], delays[i - 1]) << "attempt " << i;
      }
    }
  }
}

TEST_P(RetryPolicyPropertyTest, TotalDelayRespectsDeadline) {
  Random rng(GetParam() * 17 + 5);
  for (int trial = 0; trial < 50; ++trial) {
    const RetryPolicy::Options options = RandomOptions(&rng);
    RetryPolicy policy(options);
    const std::vector<int64_t> delays = DrainSchedule(&policy);
    int64_t total = 0;
    for (const int64_t delay : delays) total += delay;
    // The schedule spends the whole budget and not a millisecond more.
    EXPECT_LE(total, options.deadline_ms);
    EXPECT_EQ(total, policy.total_delay_ms());
    EXPECT_EQ(static_cast<int>(delays.size()), policy.attempts());
    // Exhaustion is permanent.
    EXPECT_FALSE(policy.NextDelay().has_value());
    EXPECT_FALSE(policy.NextDelay().has_value());
  }
}

TEST_P(RetryPolicyPropertyTest, FixedSeedReproducesJitterExactly) {
  Random rng(GetParam() * 101 + 13);
  for (int trial = 0; trial < 20; ++trial) {
    RetryPolicy::Options options = RandomOptions(&rng);
    options.jitter = 0.25;
    RetryPolicy a(options);
    RetryPolicy b(options);
    const std::vector<int64_t> schedule_a = DrainSchedule(&a);
    const std::vector<int64_t> schedule_b = DrainSchedule(&b);
    EXPECT_EQ(schedule_a, schedule_b);

    options.seed += 1;
    RetryPolicy c(options);
    const std::vector<int64_t> schedule_c = DrainSchedule(&c);
    // A different seed produces a different jitter pattern whenever the
    // schedule is long enough for jitter to matter.
    if (schedule_a.size() >= 4) {
      EXPECT_NE(schedule_a, schedule_c) << "seed " << options.seed;
    }
  }
}

TEST_P(RetryPolicyPropertyTest, MaxAttemptsCapsTheSchedule) {
  Random rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    RetryPolicy::Options options = RandomOptions(&rng);
    options.deadline_ms = 1000000000;  // Effectively unbounded (~11 days).
    options.max_attempts = static_cast<int>(rng.UniformInt(1, 8));
    RetryPolicy policy(options);
    const std::vector<int64_t> delays = DrainSchedule(&policy);
    EXPECT_EQ(static_cast<int>(delays.size()), options.max_attempts);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetryPolicyPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 42, 1234));

// ---------------------------------------------------------------------------
// SQL differential testing: the parallel engine vs a nested-loop reference.

class SqlDifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("sql_diff");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    engine_ = SqlEngine::Make(*cluster);
  }

  /// Two small random tables: t1(k INT, a INT, s STRING), t2(k INT, b INT).
  void MakeTables(Random* rng) {
    auto s1 = Schema::Make({{"k", DataType::kInt64},
                            {"a", DataType::kInt64},
                            {"s", DataType::kString}});
    t1_ = engine_->MakeTable("t1", s1);
    const int n1 = static_cast<int>(rng->UniformInt(0, 60));
    for (int i = 0; i < n1; ++i) {
      t1_->AppendRow(static_cast<size_t>(i) % 4,
                     Row{Value::Int64(rng->UniformInt(0, 9)),
                         Value::Int64(rng->UniformInt(-20, 20)),
                         Value::String(std::string(1, static_cast<char>(
                                                          'a' + rng->Uniform(4))))});
    }
    engine_->catalog()->PutTable(t1_);
    auto s2 =
        Schema::Make({{"k", DataType::kInt64}, {"b", DataType::kInt64}});
    t2_ = engine_->MakeTable("t2", s2);
    const int n2 = static_cast<int>(rng->UniformInt(0, 40));
    for (int i = 0; i < n2; ++i) {
      t2_->AppendRow(static_cast<size_t>(i) % 4,
                     Row{Value::Int64(rng->UniformInt(0, 9)),
                         Value::Int64(rng->UniformInt(-20, 20))});
    }
    engine_->catalog()->PutTable(t2_);
  }

  /// Reference evaluation: nested-loop join of t1 x t2, WHERE via the same
  /// expression evaluator over concatenated rows, then projection.
  std::multiset<std::string> ReferenceJoin(const std::string& where,
                                           const std::vector<std::string>& cols) {
    NameScope scope;
    scope.AddRelation("x", t1_->schema());
    scope.AddRelation("y", t2_->schema());
    auto registry = ScalarFunctionRegistry::WithBuiltins();
    BoundExprPtr predicate;
    if (!where.empty()) {
      auto expr = ParseExpression(where);
      EXPECT_TRUE(expr.ok());
      auto bound = BindExpression(**expr, scope, *registry);
      EXPECT_TRUE(bound.ok()) << bound.status();
      predicate = *bound;
    }
    std::vector<BoundExprPtr> projections;
    for (const std::string& col : cols) {
      auto expr = ParseExpression(col);
      EXPECT_TRUE(expr.ok());
      auto bound = BindExpression(**expr, scope, *registry);
      EXPECT_TRUE(bound.ok()) << bound.status();
      projections.push_back(*bound);
    }
    std::multiset<std::string> out;
    for (const Row& left : t1_->GatherRows()) {
      for (const Row& right : t2_->GatherRows()) {
        Row combined = left;
        combined.insert(combined.end(), right.begin(), right.end());
        if (predicate != nullptr) {
          auto keep = predicate->Evaluate(combined);
          EXPECT_TRUE(keep.ok());
          if (!IsTruthy(*keep)) continue;
        }
        std::string rendered;
        for (const BoundExprPtr& projection : projections) {
          auto value = projection->Evaluate(combined);
          EXPECT_TRUE(value.ok());
          rendered += value->ToString();
          rendered += "|";
        }
        out.insert(std::move(rendered));
      }
    }
    return out;
  }

  std::multiset<std::string> EngineRows(const std::string& sql) {
    auto result = engine_->ExecuteSql(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    std::multiset<std::string> out;
    if (!result.ok()) return out;
    for (const Row& row : (*result)->GatherRows()) {
      std::string rendered;
      for (const Value& value : row) {
        rendered += value.ToString();
        rendered += "|";
      }
      out.insert(std::move(rendered));
    }
    return out;
  }

  std::unique_ptr<ScopedTempDir> temp_;
  SqlEnginePtr engine_;
  TablePtr t1_;
  TablePtr t2_;
};

TEST_P(SqlDifferentialTest, RandomJoinFilterQueriesMatchReference) {
  Random rng(GetParam());
  MakeTables(&rng);
  const std::vector<std::string> predicates = {
      "",
      "x.k = y.k",
      "x.k = y.k AND x.a > 0",
      "x.k = y.k AND x.s = 'a'",
      "x.a < y.b",
      "x.k = y.k AND (x.a > 5 OR y.b < 0)",
      "x.k = y.k AND x.a BETWEEN -5 AND 5",
      "NOT x.s = 'b' AND x.k = y.k",
      "x.a + y.b > 10",
  };
  const std::vector<std::string> cols = {"x.a", "y.b", "x.s", "x.a + y.b"};
  for (const std::string& predicate : predicates) {
    std::string sql = "SELECT x.a, y.b, x.s, x.a + y.b FROM t1 x, t2 y";
    if (!predicate.empty()) sql += " WHERE " + predicate;
    EXPECT_EQ(EngineRows(sql), ReferenceJoin(predicate, cols))
        << "seed=" << GetParam() << " predicate: " << predicate;
  }
}

TEST_P(SqlDifferentialTest, DistinctMatchesSetSemantics) {
  Random rng(GetParam() * 7 + 3);
  MakeTables(&rng);
  auto reference = ReferenceJoin("", {"x.k", "x.s"});
  std::set<std::string> expected(reference.begin(), reference.end());
  auto actual = EngineRows("SELECT DISTINCT x.k, x.s FROM t1 x, t2 y");
  std::set<std::string> actual_set(actual.begin(), actual.end());
  EXPECT_EQ(actual.size(), actual_set.size()) << "DISTINCT left duplicates";
  if (t2_->TotalRows() > 0) {
    EXPECT_EQ(actual_set, expected);
  } else {
    EXPECT_TRUE(actual_set.empty());
  }
}

TEST_P(SqlDifferentialTest, GroupByMatchesManualAggregation) {
  Random rng(GetParam() * 13 + 1);
  MakeTables(&rng);
  std::map<int64_t, std::pair<int64_t, int64_t>> expected;  // k -> (count, sum).
  for (const Row& row : t1_->GatherRows()) {
    auto& [count, sum] = expected[row[0].int64_value()];
    ++count;
    sum += row[1].int64_value();
  }
  auto result = engine_->ExecuteSql(
      "SELECT k, COUNT(*) AS c, SUM(a) AS s FROM t1 GROUP BY k");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)->TotalRows(), expected.size());
  for (const Row& row : (*result)->GatherRows()) {
    const auto it = expected.find(row[0].int64_value());
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(row[1].int64_value(), it->second.first);
    EXPECT_EQ(row[2].int64_value(), it->second.second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlDifferentialTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// ---------------------------------------------------------------------------
// Selection-vector kernels of the vectorized executor: the batch kernels
// must agree with the boxed row semantics they replace.

class BatchKernelPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchKernelPropertyTest, FilterToSelectionMatchesRowTruthiness) {
  Random rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    // A one-column predicate batch; sometimes deliberately non-bool, which
    // must select nothing (the row engine's IsTruthy rejects non-bools).
    const DataType type =
        rng.Bernoulli(0.7) ? DataType::kBool
                           : static_cast<DataType>(rng.UniformInt(0, 3));
    auto schema = Schema::Make({{"p", type}});
    std::vector<Row> rows;
    const size_t n = rng.Uniform(200);
    for (size_t i = 0; i < n; ++i) rows.push_back(RandomRow(&rng, *schema));
    auto batch = ColumnBatch::FromRows(schema, rows);
    ASSERT_TRUE(batch.ok()) << batch.status();

    std::vector<int32_t> sel;
    FilterToSelection(batch->column(0), batch->num_rows(), &sel);

    std::vector<int32_t> expected;
    for (size_t r = 0; r < batch->num_rows(); ++r) {
      const Value v = batch->ValueAt(r, 0);
      if (IsTruthy(v)) expected.push_back(static_cast<int32_t>(r));
    }
    EXPECT_EQ(sel, expected) << "round " << round;
  }
}

TEST_P(BatchKernelPropertyTest, AppendGatherMatchesRowByRowAppend) {
  Random rng(GetParam() * 31 + 7);
  for (int round = 0; round < 20; ++round) {
    SchemaPtr schema = RandomSchema(&rng);
    std::vector<Row> rows;
    const size_t n = rng.Uniform(300);
    for (size_t i = 0; i < n; ++i) rows.push_back(RandomRow(&rng, *schema));
    auto src = ColumnBatch::FromRows(schema, rows);
    ASSERT_TRUE(src.ok()) << src.status();

    // A random selection, possibly with repeats and out of order.
    std::vector<int32_t> sel;
    const size_t picks = rng.Uniform(n + 1);
    for (size_t i = 0; i < picks; ++i) {
      sel.push_back(static_cast<int32_t>(rng.Uniform(n)));
    }

    ColumnBatch gathered;
    gathered.Reset(schema);
    ASSERT_TRUE(gathered.AppendGather(*src, sel.data(), sel.size()).ok());

    ColumnBatch appended;
    appended.Reset(schema);
    Row boxed;
    for (const int32_t r : sel) {
      src->EmitRow(static_cast<size_t>(r), &boxed);
      ASSERT_TRUE(appended.AppendRow(boxed).ok());
    }

    ASSERT_EQ(gathered.num_rows(), appended.num_rows());
    for (size_t r = 0; r < gathered.num_rows(); ++r) {
      for (size_t c = 0; c < schema->num_fields(); ++c) {
        EXPECT_EQ(gathered.ValueAt(r, c), appended.ValueAt(r, c))
            << "round " << round << " row " << r << " col " << c;
      }
    }
  }
}

TEST_P(BatchKernelPropertyTest, RowHashConsistentWithRowEquality) {
  Random rng(GetParam() * 101 + 13);
  auto schema = Schema::Make({{"k", DataType::kInt64},
                              {"s", DataType::kString},
                              {"f", DataType::kBool}});
  // Low-cardinality values so duplicates are common.
  auto random_row = [&] {
    Row row;
    row.push_back(rng.Bernoulli(0.2) ? Value::Null()
                                     : Value::Int64(rng.UniformInt(0, 3)));
    static const char* const kStrings[] = {"a", "b", ""};
    row.push_back(rng.Bernoulli(0.2)
                      ? Value::Null()
                      : Value::String(kStrings[rng.Uniform(3)]));
    row.push_back(rng.Bernoulli(0.2) ? Value::Null()
                                     : Value::Bool(rng.Bernoulli(0.5)));
    return row;
  };
  std::vector<Row> rows_a, rows_b;
  for (int i = 0; i < 60; ++i) rows_a.push_back(random_row());
  // rows_b holds the same logical rows with a prefix of extra rows, so the
  // two batches build different string dictionaries.
  for (int i = 0; i < 10; ++i) rows_b.push_back(random_row());
  rows_b.insert(rows_b.end(), rows_a.begin(), rows_a.end());
  auto a = ColumnBatch::FromRows(schema, rows_a);
  auto b = ColumnBatch::FromRows(schema, rows_b);
  ASSERT_TRUE(a.ok() && b.ok());

  // Equal rows hash equal within a batch...
  for (size_t i = 0; i < a->num_rows(); ++i) {
    for (size_t j = i; j < a->num_rows(); ++j) {
      if (BatchRowsEqual(*a, i, *a, j)) {
        EXPECT_EQ(BatchRowHash(*a, i), BatchRowHash(*a, j)) << i << "," << j;
      }
    }
  }
  // ...and across batches with different dictionaries; row i of `a` is row
  // 10+i of `b` by construction.
  for (size_t i = 0; i < a->num_rows(); ++i) {
    ASSERT_TRUE(BatchRowsEqual(*a, i, *b, 10 + i)) << i;
    EXPECT_EQ(BatchRowHash(*a, i), BatchRowHash(*b, 10 + i)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchKernelPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8));

// ---------------------------------------------------------------------------
// Costed join choice: whatever strategy the planner picks, the physical
// join algorithms must be interchangeable. Hash and sort-merge are forced
// in turn over random tables, in both engine modes, and must agree.

class JoinStrategyPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("join_prop");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    engine_ = SqlEngine::Make(*cluster);
  }

  void TearDown() override { SetVectorizedSqlEnabledForTest(-1); }

  std::multiset<std::string> Render(const std::vector<Row>& rows) {
    std::multiset<std::string> out;
    for (const Row& row : rows) {
      std::string rendered;
      for (const Value& value : row) {
        rendered += value.is_null() ? "NULL" : value.ToString();
        rendered += "|";
      }
      out.insert(std::move(rendered));
    }
    return out;
  }

  std::multiset<std::string> Run(const std::string& sql, JoinStrategy strategy,
                                 int vectorized) {
    engine_->set_join_strategy(strategy);
    SetVectorizedSqlEnabledForTest(vectorized);
    auto result = engine_->ExecuteSql(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    if (!result.ok()) return {};
    return Render((*result)->GatherRows());
  }

  std::unique_ptr<ScopedTempDir> temp_;
  SqlEnginePtr engine_;
};

TEST_P(JoinStrategyPropertyTest, HashAndSortMergeAgreeOnRandomTables) {
  Random rng(GetParam() * 17 + 5);
  // Random fact/dim pair with NULL keys, duplicate keys, and a double key
  // column so cross-type key comparison (1 vs 1.0) is exercised.
  auto fact_schema = Schema::Make({{"k", DataType::kInt64},
                                   {"x", DataType::kDouble},
                                   {"s", DataType::kString}});
  auto fact = engine_->MakeTable("fact", fact_schema);
  const int nf = static_cast<int>(rng.UniformInt(0, 120));
  for (int i = 0; i < nf; ++i) {
    fact->AppendRow(static_cast<size_t>(i) % 4,
                    Row{rng.Bernoulli(0.15)
                            ? Value::Null()
                            : Value::Int64(rng.UniformInt(0, 8)),
                        Value::Double(rng.NextGaussian()),
                        Value::String(std::string(1, static_cast<char>(
                                                         'a' + rng.Uniform(3))))});
  }
  engine_->catalog()->PutTable(fact);

  auto dim_schema =
      Schema::Make({{"k", DataType::kInt64}, {"label", DataType::kString}});
  auto dim = engine_->MakeTable("dim", dim_schema);
  const int nd = static_cast<int>(rng.UniformInt(0, 30));
  for (int i = 0; i < nd; ++i) {
    dim->AppendRow(static_cast<size_t>(i) % 4,
                   Row{rng.Bernoulli(0.15)
                           ? Value::Null()
                           : Value::Int64(rng.UniformInt(0, 8)),
                       Value::String(std::string(1, static_cast<char>(
                                                        'p' + rng.Uniform(3))))});
  }
  engine_->catalog()->PutTable(dim);

  const std::vector<std::string> queries = {
      "SELECT f.k, f.s, d.label FROM fact f JOIN dim d ON f.k = d.k",
      "SELECT f.x, d.label FROM fact f JOIN dim d ON f.k = d.k "
      "WHERE f.x > 0",
      "SELECT DISTINCT f.k, d.label FROM fact f JOIN dim d ON f.k = d.k",
      "SELECT a.k, b.label FROM dim a JOIN dim b ON a.label = b.label",
  };
  for (const std::string& sql : queries) {
    const auto hash_row = Run(sql, JoinStrategy::kHash, 0);
    const auto hash_vec = Run(sql, JoinStrategy::kHash, 1);
    const auto merge_row = Run(sql, JoinStrategy::kSortMerge, 0);
    const auto merge_vec = Run(sql, JoinStrategy::kSortMerge, 1);
    EXPECT_EQ(hash_row, hash_vec) << sql;
    EXPECT_EQ(hash_row, merge_row) << sql;
    EXPECT_EQ(hash_row, merge_vec) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinStrategyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace sqlink
