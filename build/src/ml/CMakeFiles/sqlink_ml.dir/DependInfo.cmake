
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/sqlink_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/sqlink_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/sqlink_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/sqlink_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/evaluation.cc" "src/ml/CMakeFiles/sqlink_ml.dir/evaluation.cc.o" "gcc" "src/ml/CMakeFiles/sqlink_ml.dir/evaluation.cc.o.d"
  "/root/repo/src/ml/job.cc" "src/ml/CMakeFiles/sqlink_ml.dir/job.cc.o" "gcc" "src/ml/CMakeFiles/sqlink_ml.dir/job.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/ml/CMakeFiles/sqlink_ml.dir/kmeans.cc.o" "gcc" "src/ml/CMakeFiles/sqlink_ml.dir/kmeans.cc.o.d"
  "/root/repo/src/ml/model_io.cc" "src/ml/CMakeFiles/sqlink_ml.dir/model_io.cc.o" "gcc" "src/ml/CMakeFiles/sqlink_ml.dir/model_io.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/ml/CMakeFiles/sqlink_ml.dir/naive_bayes.cc.o" "gcc" "src/ml/CMakeFiles/sqlink_ml.dir/naive_bayes.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/ml/CMakeFiles/sqlink_ml.dir/scaler.cc.o" "gcc" "src/ml/CMakeFiles/sqlink_ml.dir/scaler.cc.o.d"
  "/root/repo/src/ml/sgd.cc" "src/ml/CMakeFiles/sqlink_ml.dir/sgd.cc.o" "gcc" "src/ml/CMakeFiles/sqlink_ml.dir/sgd.cc.o.d"
  "/root/repo/src/ml/text_input_format.cc" "src/ml/CMakeFiles/sqlink_ml.dir/text_input_format.cc.o" "gcc" "src/ml/CMakeFiles/sqlink_ml.dir/text_input_format.cc.o.d"
  "/root/repo/src/ml/validation.cc" "src/ml/CMakeFiles/sqlink_ml.dir/validation.cc.o" "gcc" "src/ml/CMakeFiles/sqlink_ml.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sqlink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sqlink_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/sqlink_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/sqlink_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
