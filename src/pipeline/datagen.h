#ifndef SQLINK_PIPELINE_DATAGEN_H_
#define SQLINK_PIPELINE_DATAGEN_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "sql/engine.h"

namespace sqlink {

/// Synthetic shopping-cart workload generator — the paper's evaluation data
/// ("synthetic datasets in the context of the example query scenario":
/// a carts table joined with a users table). Row counts are configurable;
/// the paper used 1 B carts / 10 M users on a 5-server cluster, scaled down
/// here to laptop sizes.
struct CartsWorkloadOptions {
  int64_t num_users = 10000;
  int64_t num_carts = 100000;
  /// Fraction of users in the USA (the prep query's filter).
  double usa_fraction = 0.7;
  /// Abandonment base rate; the label correlates with amount, age and
  /// gender so classifiers have signal to find.
  double abandon_rate = 0.35;
  /// 0 = carts reference users uniformly; > 0 = Zipf-skewed ownership
  /// (hot users own most carts), stressing join/shuffle skew handling.
  double zipf_skew = 0.0;
  uint64_t seed = 42;
};

struct CartsWorkload {
  TablePtr users;
  TablePtr carts;
};

/// Generates users(userid, age, gender, country) and carts(cartid, userid,
/// amount, nitems, year, abandoned) partitioned for the engine, and
/// registers both in its catalog (replacing existing tables of the same
/// name). Deterministic for a fixed seed.
Result<CartsWorkload> GenerateCartsWorkload(SqlEngine* engine,
                                            const CartsWorkloadOptions& options);

/// The paper's Section 1 data-preparation query over that workload.
std::string CartsPrepQuery();

}  // namespace sqlink

#endif  // SQLINK_PIPELINE_DATAGEN_H_
