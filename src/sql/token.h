#ifndef SQLINK_SQL_TOKEN_H_
#define SQLINK_SQL_TOKEN_H_

#include <string>

namespace sqlink {

enum class TokenType : int {
  kIdentifier,   // carts, U, gender
  kKeyword,      // SELECT, FROM, ... (normalized upper-case in `text`)
  kString,       // 'USA'
  kInteger,      // 42
  kDouble,       // 3.14
  kOperator,     // = < > <= >= <> !=
  kComma,
  kDot,
  kStar,
  kLeftParen,
  kRightParen,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // Normalized: keywords upper-cased, strings unquoted.
  size_t position = 0;  // Byte offset in the query, for error messages.
};

}  // namespace sqlink

#endif  // SQLINK_SQL_TOKEN_H_
