
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/sql_shell.cpp" "examples/CMakeFiles/sql_shell.dir/sql_shell.cpp.o" "gcc" "examples/CMakeFiles/sql_shell.dir/sql_shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/sqlink_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/rewriter/CMakeFiles/sqlink_rewriter.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sqlink_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/sqlink_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/exttool/CMakeFiles/sqlink_exttool.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/sqlink_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sqlink_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sqlink_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/sqlink_table.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/sqlink_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sqlink_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sqlink_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
