#include "rewriter/canonical_query.h"

#include <algorithm>
#include <set>

#include "common/status_macros.h"
#include "common/string_util.h"

namespace sqlink {

namespace {

/// Finds the unique table whose schema has `column`; errors on ambiguity.
Result<std::string> ResolveUnqualified(
    const std::string& column,
    const std::map<std::string, std::string>& alias_to_table,
    const Catalog& catalog) {
  std::string owner;
  std::set<std::string> seen_tables;
  for (const auto& [alias, table_name] : alias_to_table) {
    if (!seen_tables.insert(table_name).second) continue;
    ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(table_name));
    if (table->schema()->HasField(column)) {
      if (!owner.empty() && owner != table_name) {
        return Status::InvalidArgument("ambiguous column in cache matching: " +
                                       column);
      }
      owner = table_name;
    }
  }
  if (owner.empty()) {
    return Status::NotFound("column not found in any FROM table: " + column);
  }
  return owner;
}

bool IsJoinCondition(const Expr& expr) {
  return expr.kind == ExprKind::kComparison && expr.op == "=" &&
         expr.children[0]->kind == ExprKind::kColumnRef &&
         expr.children[1]->kind == ExprKind::kColumnRef;
}

void SortByRendering(std::vector<ExprPtr>* exprs) {
  std::sort(exprs->begin(), exprs->end(),
            [](const ExprPtr& a, const ExprPtr& b) {
              return a->ToString() < b->ToString();
            });
}

}  // namespace

Result<ExprPtr> CanonicalizeExpr(
    const ExprPtr& expr,
    const std::map<std::string, std::string>& alias_to_table,
    const Catalog& catalog) {
  auto out = std::make_shared<Expr>(*expr);
  if (out->kind == ExprKind::kColumnRef) {
    std::string table;
    if (!out->qualifier.empty()) {
      auto it = alias_to_table.find(ToLowerAscii(out->qualifier));
      if (it == alias_to_table.end()) {
        return Status::NotFound("unknown alias: " + out->qualifier);
      }
      table = it->second;
    } else {
      ASSIGN_OR_RETURN(table,
                       ResolveUnqualified(out->column, alias_to_table, catalog));
    }
    out->qualifier = table;
    out->column = ToLowerAscii(out->column);
    return out;
  }
  out->children.clear();
  for (const ExprPtr& child : expr->children) {
    ASSIGN_OR_RETURN(ExprPtr canonical,
                     CanonicalizeExpr(child, alias_to_table, catalog));
    out->children.push_back(std::move(canonical));
  }
  // Order symmetric-operator operands deterministically.
  if ((out->kind == ExprKind::kComparison &&
       (out->op == "=" || out->op == "<>")) ||
      out->kind == ExprKind::kAnd || out->kind == ExprKind::kOr) {
    if (out->children.size() == 2 &&
        out->children[1]->ToString() < out->children[0]->ToString()) {
      std::swap(out->children[0], out->children[1]);
    }
  }
  return out;
}

Result<CanonicalQuery> CanonicalizeQuery(const SelectStmt& stmt,
                                         const Catalog& catalog) {
  if (stmt.distinct || !stmt.group_by.empty() || !stmt.order_by.empty() ||
      stmt.limit >= 0) {
    return Status::InvalidArgument(
        "only plain select-project-join queries participate in caching");
  }
  CanonicalQuery canonical;
  std::map<std::string, std::string> alias_to_table;  // Lower-cased.
  for (const TableRef& ref : stmt.from) {
    if (ref.kind != TableRef::Kind::kTable) {
      return Status::InvalidArgument(
          "cache matching requires base tables in FROM");
    }
    const std::string table = ToLowerAscii(ref.name);
    if (!catalog.HasTable(table)) {
      return Status::NotFound("unknown table: " + ref.name);
    }
    alias_to_table[ToLowerAscii(ref.BindingName())] = table;
    canonical.tables.push_back(table);
  }
  std::sort(canonical.tables.begin(), canonical.tables.end());

  for (const ExprPtr& conjunct : SplitConjuncts(stmt.where)) {
    ASSIGN_OR_RETURN(ExprPtr expr,
                     CanonicalizeExpr(conjunct, alias_to_table, catalog));
    if (IsJoinCondition(*expr)) {
      canonical.join_conditions.push_back(std::move(expr));
    } else {
      canonical.predicates.push_back(std::move(expr));
    }
  }
  SortByRendering(&canonical.join_conditions);
  SortByRendering(&canonical.predicates);

  for (const SelectItem& item : stmt.items) {
    if (item.is_star) {
      for (const TableRef& ref : stmt.from) {
        const std::string binding = ToLowerAscii(ref.BindingName());
        if (!item.star_qualifier.empty() &&
            ToLowerAscii(item.star_qualifier) != binding) {
          continue;
        }
        const std::string& table = alias_to_table[binding];
        ASSIGN_OR_RETURN(TablePtr table_ptr, catalog.GetTable(table));
        for (const Field& field : table_ptr->schema()->fields()) {
          canonical.projections.push_back(CanonicalQuery::Projection{
              ToLowerAscii(field.name), table, ToLowerAscii(field.name)});
        }
      }
      continue;
    }
    if (item.expr->kind != ExprKind::kColumnRef) {
      return Status::InvalidArgument(
          "cache matching requires plain column projections: " +
          item.expr->ToString());
    }
    ASSIGN_OR_RETURN(ExprPtr column,
                     CanonicalizeExpr(item.expr, alias_to_table, catalog));
    const std::string output =
        item.alias.empty() ? column->column : ToLowerAscii(item.alias);
    canonical.projections.push_back(CanonicalQuery::Projection{
        output, column->qualifier, column->column});
  }
  return canonical;
}

bool CanonicalQuery::SameTables(const CanonicalQuery& a,
                                const CanonicalQuery& b) {
  return a.tables == b.tables;
}

bool CanonicalQuery::SameJoins(const CanonicalQuery& a,
                               const CanonicalQuery& b) {
  if (a.join_conditions.size() != b.join_conditions.size()) return false;
  for (size_t i = 0; i < a.join_conditions.size(); ++i) {
    if (!ExprEquals(*a.join_conditions[i], *b.join_conditions[i])) {
      return false;
    }
  }
  return true;
}

const CanonicalQuery::Projection* CanonicalQuery::FindByCanonicalRef(
    const std::string& ref) const {
  for (const Projection& projection : projections) {
    if (projection.CanonicalRef() == ref) return &projection;
  }
  return nullptr;
}

const CanonicalQuery::Projection* CanonicalQuery::FindByOutputName(
    const std::string& name) const {
  const std::string lower = ToLowerAscii(name);
  for (const Projection& projection : projections) {
    if (projection.output_name == lower) return &projection;
  }
  return nullptr;
}

}  // namespace sqlink
