# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/dfs_test[1]_include.cmake")
include("/root/repo/build/tests/sql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/sql_engine_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/rewriter_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/mq_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
