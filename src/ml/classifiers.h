#ifndef SQLINK_ML_CLASSIFIERS_H_
#define SQLINK_ML_CLASSIFIERS_H_

#include "common/result.h"
#include "ml/dataset.h"
#include "ml/sgd.h"

namespace sqlink::ml {

/// Linear SVM trained with distributed SGD — the algorithm of the paper's
/// end-to-end experiment (MLlib SVMWithSGD). Labels are 0/1.
struct SvmWithSgd {
  static Result<SgdResult> Train(const Dataset& data,
                                 const SgdOptions& options = {}) {
    return RunDistributedSgd(data, HingeLoss(), options);
  }
};

/// Logistic regression with distributed SGD. Labels are 0/1.
struct LogisticRegressionWithSgd {
  static Result<SgdResult> Train(const Dataset& data,
                                 const SgdOptions& options = {}) {
    return RunDistributedSgd(data, LogisticLoss(), options);
  }
};

/// Least-squares linear regression with distributed SGD.
struct LinearRegressionWithSgd {
  static Result<SgdResult> Train(const Dataset& data,
                                 const SgdOptions& options = {}) {
    return RunDistributedSgd(data, SquaredLoss(), options);
  }
};

}  // namespace sqlink::ml

#endif  // SQLINK_ML_CLASSIFIERS_H_
