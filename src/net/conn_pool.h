#ifndef SQLINK_NET_CONN_POOL_H_
#define SQLINK_NET_CONN_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/mux.h"
#include "stream/socket.h"

namespace sqlink {

/// Reader-side pool of shared mux connections, at most MuxConnsPerPeer()
/// per sink endpoint. Channels land on a connection by hash of their
/// affinity key (the split id), so a reconnecting reader re-multiplexes
/// onto the same socket and 64 concurrent queries to one sink open at most
/// the pool's worth of sockets, not 64.
class MuxConnPool {
 public:
  /// Process-wide pool (the reader side of every transfer shares it).
  static MuxConnPool& Global();

  /// Opens a logical channel to the sink partition `sink_key` behind
  /// host:port, dialing a shared connection lazily if the affinity slot is
  /// empty or its connection has died. The embedded HELLO opens the stream;
  /// the sink answers on the channel (kResume first).
  Result<FrameChannelPtr> OpenChannel(const std::string& host, int port,
                                      uint64_t sink_key, uint64_t affinity,
                                      const HelloMessage& hello);

  /// Drops every pooled connection (tests that restart sinks on new ports).
  void ResetForTest();

 private:
  MuxConnPool() = default;

  std::mutex mu_;
  /// "host:port" → fixed slots of shared connections (lazily dialed).
  std::unordered_map<std::string, std::vector<std::shared_ptr<MuxConn>>>
      peers_;
};

/// Sink-side counterpart: ONE process-wide listener accepting the shared
/// mux connections for every sink partition in the process. Each partition
/// registers an open-channel handler and advertises the returned sink_key
/// (via coordinator registration) so readers can route kOpenChannel frames
/// to it. A per-transfer ephemeral listener would defeat the socket bound —
/// the whole point is that all partitions share the pool's connections.
class MuxSinkServer {
 public:
  /// Called on a connection's demux thread for each kOpenChannel routed to
  /// this sink_key. Must not block (hand the channel to a queue).
  using ChannelHandler =
      std::function<void(FrameChannelPtr, const OpenChannelMessage&)>;

  static MuxSinkServer& Global();

  /// Starts the shared listener on first call; returns its port.
  Result<int> EnsureStarted();

  /// Registers a partition's handler; returns its routing key (never 0).
  uint64_t Register(ChannelHandler handler);

  /// Unregisters; late kOpenChannel frames for the key are rejected with
  /// kUnavailable (retryable — the reader re-dials after the sink rebinds).
  void Unregister(uint64_t sink_key);

 private:
  MuxSinkServer() = default;

  void AcceptLoop();
  void Dispatch(FrameChannelPtr channel, const OpenChannelMessage& msg);

  std::mutex mu_;
  TcpListener listener_;
  bool started_ = false;
  int port_ = 0;
  uint64_t next_key_ = 1;
  std::unordered_map<uint64_t, ChannelHandler> handlers_;
  std::vector<std::shared_ptr<MuxConn>> conns_;
};

}  // namespace sqlink

#endif  // SQLINK_NET_CONN_POOL_H_
