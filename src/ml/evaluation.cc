#include "ml/evaluation.h"

namespace sqlink::ml {

double Accuracy(const Dataset& data,
                const std::function<double(const DenseVector&)>& predict) {
  size_t correct = 0;
  size_t total = 0;
  for (const auto& partition : data.partitions()) {
    for (const LabeledPoint& point : partition) {
      const double predicted = predict(point.features);
      if ((predicted > 0.5) == (point.label > 0.5)) ++correct;
      ++total;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) / static_cast<double>(total);
}

double MeanSquaredError(
    const Dataset& data,
    const std::function<double(const DenseVector&)>& predict) {
  double sum = 0;
  size_t total = 0;
  for (const auto& partition : data.partitions()) {
    for (const LabeledPoint& point : partition) {
      const double diff = predict(point.features) - point.label;
      sum += diff * diff;
      ++total;
    }
  }
  return total == 0 ? 0.0 : sum / static_cast<double>(total);
}

}  // namespace sqlink::ml
