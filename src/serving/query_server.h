#ifndef SQLINK_SERVING_QUERY_SERVER_H_
#define SQLINK_SERVING_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "serving/admission.h"
#include "sql/engine.h"
#include "stream/socket.h"
#include "table/schema.h"
#include "table/value.h"

namespace sqlink {

/// Client → server query submission (FrameType::kSubmitQuery payload).
struct SubmitQueryMessage {
  std::string tenant;    ///< "" = default tenant (weight 1).
  std::string sql;
  int64_t deadline_ms = 0;  ///< 0 = server default (SQLINK_QUERY_DEADLINE_MS).

  std::string Encode() const;
  static Result<SubmitQueryMessage> Decode(std::string_view payload);
};

/// Server → client result (FrameType::kQueryResult payload): the result
/// schema, the gathered rows, and server-side elapsed time.
struct QueryResultMessage {
  SchemaPtr schema;
  std::vector<Row> rows;
  int64_t elapsed_micros = 0;

  std::string Encode() const;
  static Result<QueryResultMessage> Decode(std::string_view payload);
};

/// The long-lived multi-query server: accepts one query per connection,
/// gates it through the AdmissionController, executes it on the shared
/// SqlEngine with per-query cancellation + spill budget, and streams the
/// result (or a typed error — kOverloaded for admission rejections,
/// kCancelled for disconnect/deadline) back to the client.
///
/// Cancellation sources, all funneled into one Cancellation object per
/// query: the client disconnecting mid-query, an explicit kCancelQuery
/// frame, the per-query deadline (request deadline_ms, falling back to
/// SQLINK_QUERY_DEADLINE_MS), and the `serving.cancel_query` failpoint.
class QueryServer {
 public:
  struct Options {
    int port = 0;  ///< 0 = ephemeral; see port() after Start.
    AdmissionOptions admission = {};
    /// Default per-query deadline in ms when the request carries none;
    /// <= 0 = no deadline. StartFromEnv reads SQLINK_QUERY_DEADLINE_MS.
    int64_t default_deadline_ms = 0;
  };

  /// Binds, starts the accept loop, returns the running server.
  static Result<std::unique_ptr<QueryServer>> Start(SqlEngine* engine,
                                                    Options options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Stops accepting, cancels in-flight queries, joins all workers.
  void Stop();

  int port() const { return port_; }
  AdmissionController* admission() { return &admission_; }

 private:
  QueryServer(SqlEngine* engine, Options options, TcpListener listener);

  void AcceptLoop();
  void HandleConnection(std::shared_ptr<TcpSocket> socket);

  SqlEngine* engine_;
  Options options_;
  AdmissionController admission_;
  TcpListener listener_;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
};

/// Minimal client for the query server: one query per connection.
class QueryClient {
 public:
  struct Response {
    SchemaPtr schema;
    std::vector<Row> rows;
    int64_t elapsed_micros = 0;
  };

  static Result<QueryClient> Connect(const std::string& host, int port);

  /// Submits and waits for the result. Admission rejections surface as the
  /// server's typed status (IsOverloaded() for a saturated/timed-out queue).
  Result<Response> Execute(const std::string& sql,
                           const std::string& tenant = "",
                           int64_t deadline_ms = 0);

  /// Fire-and-forget submission half of Execute (tests drive cancellation
  /// between Submit and Await).
  Status Submit(const std::string& sql, const std::string& tenant = "",
                int64_t deadline_ms = 0);
  /// Requests cancellation of the in-flight query.
  Status Cancel();
  /// Waits for the final kQueryResult / kError frame of a Submit.
  Result<Response> Await();

  /// Dropping the connection mid-query is itself a cancellation signal.
  void Disconnect() { socket_.Close(); }

 private:
  explicit QueryClient(TcpSocket socket) : socket_(std::move(socket)) {}
  TcpSocket socket_;
};

}  // namespace sqlink

#endif  // SQLINK_SERVING_QUERY_SERVER_H_
