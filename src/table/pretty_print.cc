#include "table/pretty_print.h"

#include <algorithm>
#include <vector>

namespace sqlink {

namespace {

std::string Truncate(std::string text, size_t max_width) {
  if (text.size() <= max_width) return text;
  return text.substr(0, max_width - 3) + "...";
}

}  // namespace

std::string PrettyPrintTable(const Table& table,
                             const PrettyPrintOptions& options) {
  const Schema& schema = *table.schema();
  const size_t columns = static_cast<size_t>(schema.num_fields());

  // Collect the visible rows.
  std::vector<std::vector<std::string>> cells;
  size_t total_rows = 0;
  for (size_t p = 0; p < table.num_partitions(); ++p) {
    for (const Row& row : table.partition(p)) {
      ++total_rows;
      if (cells.size() >= options.max_rows) continue;
      std::vector<std::string> rendered;
      rendered.reserve(columns);
      for (size_t c = 0; c < columns && c < row.size(); ++c) {
        rendered.push_back(
            Truncate(row[c].is_null() ? "NULL" : row[c].ToString(),
                     options.max_column_width));
      }
      cells.push_back(std::move(rendered));
    }
  }

  std::vector<size_t> widths(columns);
  for (size_t c = 0; c < columns; ++c) {
    widths[c] = Truncate(schema.field(static_cast<int>(c)).name,
                         options.max_column_width)
                    .size();
  }
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto separator = [&] {
    std::string line = "+";
    for (size_t c = 0; c < columns; ++c) {
      line += std::string(widths[c] + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };
  auto format_row = [&](const std::vector<std::string>& row, bool numeric_right) {
    std::string line = "|";
    for (size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      const DataType type = schema.field(static_cast<int>(c)).type;
      const bool right = numeric_right && (type == DataType::kInt64 ||
                                           type == DataType::kDouble);
      const size_t pad = widths[c] - cell.size();
      line += " ";
      if (right) line += std::string(pad, ' ');
      line += cell;
      if (!right) line += std::string(pad, ' ');
      line += " |";
    }
    line += "\n";
    return line;
  };

  std::string out = separator();
  std::vector<std::string> header;
  for (size_t c = 0; c < columns; ++c) {
    header.push_back(Truncate(schema.field(static_cast<int>(c)).name,
                              options.max_column_width));
  }
  out += format_row(header, /*numeric_right=*/false);
  out += separator();
  for (const auto& row : cells) {
    out += format_row(row, /*numeric_right=*/true);
  }
  out += separator();
  out += "(" + std::to_string(total_rows) + " row" +
         (total_rows == 1 ? "" : "s");
  if (total_rows > cells.size()) {
    out += ", showing first " + std::to_string(cells.size());
  }
  out += ")\n";
  return out;
}

}  // namespace sqlink
