#ifndef SQLINK_COMMON_CANCELLATION_H_
#define SQLINK_COMMON_CANCELLATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sqlink {

/// Cooperative per-query cancellation. One Cancellation object is owned by
/// the serving layer for the lifetime of a query; every stage that can block
/// or loop (executor worker loops, sink senders, streaming transfer) either
/// polls `cancelled()` / `Check()` or registers an `OnCancel` callback that
/// wakes its parked threads (queue Cancel, inbox Close, coordinator Abort).
///
/// Cancel() is idempotent: the first caller's status wins, callbacks run
/// exactly once (on the cancelling thread), and a callback registered after
/// cancellation runs inline. RemoveCallback(id) blocks until any in-flight
/// callback pass has finished, so once it returns the callback is neither
/// running nor will ever run — captures may be destroyed. Callbacks must not
/// themselves call RemoveCallback (they may call Cancel; it is a no-op).
class Cancellation {
 public:
  Cancellation() = default;
  Cancellation(const Cancellation&) = delete;
  Cancellation& operator=(const Cancellation&) = delete;

  /// True once Cancel() has been called.
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// kOk until cancelled, then the status passed to the winning Cancel().
  Status status() const;

  /// OK until cancelled; the cancellation status afterwards. Poll this from
  /// loops: `if (auto s = cancel->Check(); !s.ok()) return s;`.
  Status Check() const { return cancelled() ? status() : Status::OK(); }

  /// Requests cancellation with `status` (must be non-OK; kCancelled and
  /// kAborted are typical). The first call wins; later calls are no-ops.
  /// Runs all registered callbacks before returning.
  void Cancel(Status status);

  /// Registers `fn` to run when Cancel() fires; returns an id for
  /// RemoveCallback. If already cancelled, runs `fn` inline and returns 0
  /// (RemoveCallback(0) is safe).
  int64_t OnCancel(std::function<void()> fn);

  /// Unregisters a callback. Blocks until any in-flight callback pass has
  /// finished, so captures may be destroyed afterwards.
  void RemoveCallback(int64_t id);

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Status status_;               // guarded by mu_
  bool callbacks_done_ = false;  // guarded by mu_
  std::thread::id cancel_thread_;  // guarded by mu_
  int64_t next_id_ = 1;
  std::vector<std::pair<int64_t, std::function<void()>>> callbacks_;
};

}  // namespace sqlink

#endif  // SQLINK_COMMON_CANCELLATION_H_
