// Ablation A1: send/receive buffer size of the streaming transfer. The
// paper fixes both at 4 KB ("the sizes of the buffers are controllable
// system parameters"); this sweep shows the batching trade-off: tiny
// buffers cost per-frame overhead, large ones add latency/memory but
// plateau quickly.

#include "bench_util.h"
#include "common/stopwatch.h"
#include "stream/streaming_transfer.h"

using namespace sqlink;
using sqlink::bench::BenchEnv;

int main(int argc, char** argv) {
  const int64_t rows = sqlink::bench::RowsArg(argc, argv, 300000);
  auto env = BenchEnv::Make(rows);
  // Fix the SQL side: stream a pre-materialized table so only the
  // transfer varies.
  auto table = env->engine->MaterializeSql(
      "SELECT cartid, amount, nitems, year FROM carts", "stream_src");
  if (!table.ok()) return 1;

  std::printf("=== A1: streaming send-buffer size sweep ===\n");
  std::printf("rows: %lld (paper fixes 4096 B)\n\n",
              static_cast<long long>((*table)->TotalRows()));
  std::printf("%12s %12s %14s %14s\n", "buffer(B)", "time(s)", "frames",
              "MB/s");

  for (size_t buffer : {256u, 1024u, 4096u, 16384u, 65536u, 262144u}) {
    StreamTransferOptions options;
    options.sink.send_buffer_bytes = buffer;
    Stopwatch watch;
    auto result = StreamingTransfer::Run(env->engine.get(),
                                         "SELECT * FROM stream_src", options);
    if (!result.ok()) {
      std::fprintf(stderr, "buffer %zu: %s\n", buffer,
                   result.status().ToString().c_str());
      return 1;
    }
    const double seconds = watch.ElapsedSeconds();
    const double mb = static_cast<double>(result->bytes_sent) / (1 << 20);
    // Frames ≈ bytes / buffer (each frame flushes at the buffer size).
    const double frames =
        static_cast<double>(result->bytes_sent) / static_cast<double>(buffer);
    std::printf("%12zu %12.3f %14.0f %14.1f\n", buffer, seconds, frames,
                mb / seconds);
    sqlink::bench::BenchJsonLine("buffer_size")
        .Param("rows", rows)
        .Param("buffer_bytes", static_cast<int64_t>(buffer))
        .Param("bytes_sent", result->bytes_sent)
        .Emit(seconds * 1000.0);
    MetricsRegistry::Global().Reset();  // Per-size metric deltas.
  }
  return 0;
}
