#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "exttool/external_transform.h"
#include "ml/classifiers.h"
#include "ml/evaluation.h"
#include "ml/scaler.h"
#include "pipeline/analytics_pipeline.h"
#include "pipeline/datagen.h"
#include "pipeline/table_io.h"

namespace sqlink {
namespace {

/// Canonical (sorted) row rendering for order-insensitive comparison of
/// datasets produced by different pipelines.
std::vector<std::string> CanonicalRows(const ml::RowDataset& dataset) {
  std::vector<std::string> rows;
  for (const auto& partition : dataset.partitions) {
    for (const Row& row : partition) {
      std::string rendered;
      for (const Value& v : row) {
        rendered += v.ToString();
        rendered += "|";
      }
      rows.push_back(std::move(rendered));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("pipeline_test");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    cluster_ = *cluster;
    engine_ = SqlEngine::Make(cluster_);
    DfsOptions dfs_options;
    dfs_options.block_size = 1 << 16;
    dfs_ = std::make_shared<Dfs>(cluster_, dfs_options);

    CartsWorkloadOptions workload;
    workload.num_users = 500;
    workload.num_carts = 5000;
    ASSERT_TRUE(GenerateCartsWorkload(engine_.get(), workload).ok());
    pipeline_ = std::make_unique<AnalyticsPipeline>(engine_, dfs_);
  }

  static TransformRequest PaperRequest() {
    TransformRequest request;
    request.prep_sql = CartsPrepQuery();
    request.recode_columns = {"gender", "abandoned"};
    request.codings["gender"] = CodingScheme::kDummy;
    return request;
  }

  std::unique_ptr<ScopedTempDir> temp_;
  ClusterPtr cluster_;
  SqlEnginePtr engine_;
  DfsPtr dfs_;
  std::unique_ptr<AnalyticsPipeline> pipeline_;
};

TEST_F(PipelineTest, AllThreeApproachesProduceIdenticalData) {
  PipelineOptions naive;
  naive.approach = ConnectApproach::kNaive;
  naive.use_cache = false;
  auto naive_result = pipeline_->Prepare(PaperRequest(), naive);
  ASSERT_TRUE(naive_result.ok()) << naive_result.status();

  PipelineOptions insql;
  insql.approach = ConnectApproach::kInSql;
  insql.use_cache = false;
  auto insql_result = pipeline_->Prepare(PaperRequest(), insql);
  ASSERT_TRUE(insql_result.ok()) << insql_result.status();

  PipelineOptions stream;
  stream.approach = ConnectApproach::kInSqlStream;
  stream.use_cache = false;
  auto stream_result = pipeline_->Prepare(PaperRequest(), stream);
  ASSERT_TRUE(stream_result.ok()) << stream_result.status();

  EXPECT_GT(naive_result->dataset.TotalRows(), 0u);
  EXPECT_EQ(CanonicalRows(naive_result->dataset),
            CanonicalRows(insql_result->dataset));
  EXPECT_EQ(CanonicalRows(insql_result->dataset),
            CanonicalRows(stream_result->dataset));

  // Schemas match too (same field names in same order).
  EXPECT_EQ(naive_result->dataset.schema->ToString(),
            insql_result->dataset.schema->ToString());
  EXPECT_EQ(insql_result->dataset.schema->ToString(),
            stream_result->dataset.schema->ToString());

  // Streaming writes nothing to the DFS; the others do.
  EXPECT_GT(naive_result->dfs_bytes_written, 0);
  EXPECT_GT(insql_result->dfs_bytes_written, 0);
  EXPECT_EQ(stream_result->dfs_bytes_written, 0);
  // The naive approach materializes strictly more than insql (prep result
  // plus transformed result vs transformed result only).
  EXPECT_GT(naive_result->dfs_bytes_written, insql_result->dfs_bytes_written);
}

TEST_F(PipelineTest, TimingBreakdownMatchesApproach) {
  PipelineOptions naive;
  naive.approach = ConnectApproach::kNaive;
  auto result = pipeline_->Prepare(PaperRequest(), naive);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->timings.prep_seconds, 0);
  EXPECT_GT(result->timings.transform_seconds, 0);
  EXPECT_GT(result->timings.ml_input_seconds, 0);
  EXPECT_EQ(result->timings.prep_transform_seconds, 0);

  PipelineOptions stream;
  stream.approach = ConnectApproach::kInSqlStream;
  auto stream_result = pipeline_->Prepare(PaperRequest(), stream);
  ASSERT_TRUE(stream_result.ok());
  EXPECT_GT(stream_result->timings.prep_transform_seconds, 0);
  EXPECT_EQ(stream_result->timings.prep_seconds, 0);
  EXPECT_EQ(stream_result->timings.ml_input_seconds, 0);
}

TEST_F(PipelineTest, RecodeMapCacheSpeedsSecondRun) {
  PipelineOptions options;
  options.approach = ConnectApproach::kInSqlStream;
  auto first = pipeline_->Prepare(PaperRequest(), options);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->source, QueryRewriter::Source::kComputed);

  auto second = pipeline_->Prepare(PaperRequest(), options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->source, QueryRewriter::Source::kRecodeMapCache);
  EXPECT_EQ(CanonicalRows(first->dataset), CanonicalRows(second->dataset));
  EXPECT_EQ(pipeline_->cache()->map_hits(), 1);
}

TEST_F(PipelineTest, FullResultCacheServesSubsequentRuns) {
  PipelineOptions options;
  options.approach = ConnectApproach::kInSqlStream;
  options.cache_full_result = true;
  auto first = pipeline_->Prepare(PaperRequest(), options);
  ASSERT_TRUE(first.ok()) << first.status();

  auto second = pipeline_->Prepare(PaperRequest(), options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->source, QueryRewriter::Source::kFullResultCache);
  EXPECT_EQ(CanonicalRows(first->dataset), CanonicalRows(second->dataset));
}

TEST_F(PipelineTest, EndToEndSvmOnPipelineOutput) {
  PipelineOptions options;
  options.approach = ConnectApproach::kInSqlStream;
  auto prepared = pipeline_->Prepare(PaperRequest(), options);
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  auto dataset = AnalyticsPipeline::ToDataset(*prepared, "abandoned");
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->dimension(), 4u);  // age, gender_F, gender_M, amount.

  // Standardize before SGD, as one would with MLlib's StandardScaler.
  auto scaler = ml::StandardScaler::Fit(*dataset);
  ASSERT_TRUE(scaler.ok());
  scaler->Transform(&*dataset);

  ml::SgdOptions sgd;
  sgd.iterations = 100;
  auto model = ml::SvmWithSgd::Train(*dataset, sgd);
  ASSERT_TRUE(model.ok()) << model.status();
  // The synthetic label depends on amount; the model must beat chance
  // against the majority baseline.
  const double accuracy = ml::Accuracy(*dataset, [&](const ml::DenseVector& x) {
    return model->model.PredictClass(x);
  });
  EXPECT_GT(accuracy, 0.6);
}

TEST_F(PipelineTest, ModelComparisonReusesCachedResult) {
  // §5.1 motivating case: several classifiers on the same prepared data.
  PipelineOptions options;
  options.approach = ConnectApproach::kInSqlStream;
  options.cache_full_result = true;
  auto first = pipeline_->Prepare(PaperRequest(), options);
  ASSERT_TRUE(first.ok());
  for (int run = 0; run < 3; ++run) {
    auto again = pipeline_->Prepare(PaperRequest(), options);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->source, QueryRewriter::Source::kFullResultCache);
  }
  EXPECT_EQ(pipeline_->cache()->full_hits(), 3);
}

TEST_F(PipelineTest, EffectCodingThroughPipeline) {
  TransformRequest request = PaperRequest();
  request.codings["gender"] = CodingScheme::kEffect;
  PipelineOptions options;
  options.approach = ConnectApproach::kInSql;
  options.use_cache = false;
  auto result = pipeline_->Prepare(request, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // Effect coding of a 2-level variable yields one column.
  EXPECT_GE(result->dataset.schema->FieldIndex("gender_F"), 0);
  EXPECT_EQ(result->dataset.schema->FieldIndex("gender_M"), -1);
}

TEST_F(PipelineTest, TableIoRoundTrip) {
  auto table = engine_->ExecuteSql("SELECT * FROM users");
  ASSERT_TRUE(table.ok());
  auto bytes = WriteTableToDfs(dfs_.get(), **table, "roundtrip");
  ASSERT_TRUE(bytes.ok());
  EXPECT_GT(*bytes, 0u);
  auto read = ReadTableFromDfs(*dfs_, "users2", (*table)->schema(), "roundtrip");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ((*read)->TotalRows(), (*table)->TotalRows());
}

TEST_F(PipelineTest, SkewedWorkloadJoinsConsistently) {
  CartsWorkloadOptions options;
  options.num_users = 200;
  options.num_carts = 4000;
  options.zipf_skew = 1.2;
  ASSERT_TRUE(GenerateCartsWorkload(engine_.get(), options).ok());
  // The hottest user owns far more carts than the uniform share.
  auto top = engine_->ExecuteSql(
      "SELECT userid, COUNT(*) AS n FROM carts GROUP BY userid "
      "ORDER BY n DESC LIMIT 1");
  ASSERT_TRUE(top.ok());
  ASSERT_EQ((*top)->TotalRows(), 1u);
  EXPECT_GT((*top)->GatherRows()[0][1].int64_value(), 4000 / 200 * 5);

  // Broadcast and repartition joins agree under skew.
  const std::string sql =
      "SELECT U.userid, C.cartid FROM carts C, users U "
      "WHERE C.userid = U.userid";
  auto broadcast = engine_->ExecuteSql(sql);
  ASSERT_TRUE(broadcast.ok());
  engine_->set_broadcast_threshold_rows(0);
  auto repartition = engine_->ExecuteSql(sql);
  engine_->set_broadcast_threshold_rows(500000);
  ASSERT_TRUE(repartition.ok());
  EXPECT_EQ((*broadcast)->TotalRows(), 4000u);
  EXPECT_EQ((*broadcast)->TotalRows(), (*repartition)->TotalRows());
}

TEST_F(PipelineTest, DatagenDeterministicAndFiltered) {
  CartsWorkloadOptions options;
  options.num_users = 100;
  options.num_carts = 300;
  options.seed = 99;
  auto a = GenerateCartsWorkload(engine_.get(), options);
  ASSERT_TRUE(a.ok());
  const size_t users_a = a->users->TotalRows();
  auto b = GenerateCartsWorkload(engine_.get(), options);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(users_a, 100u);
  EXPECT_EQ(a->carts->TotalRows(), 300u);
  // Deterministic regeneration.
  EXPECT_EQ(a->users->partition(0), b->users->partition(0));
  EXPECT_EQ(a->carts->partition(2), b->carts->partition(2));
}

class ExtToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("exttool_test");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    cluster_ = *cluster;
    DfsOptions options;
    options.block_size = 512;
    dfs_ = std::make_shared<Dfs>(cluster_, options);
  }

  std::unique_ptr<ScopedTempDir> temp_;
  ClusterPtr cluster_;
  DfsPtr dfs_;
};

TEST_F(ExtToolTest, RecodesAndDummyCodesCsvFiles) {
  auto schema = Schema::Make({{"age", DataType::kInt64},
                              {"gender", DataType::kString},
                              {"abandoned", DataType::kString}});
  ASSERT_TRUE(dfs_->WriteString("in/part-0",
                                "57,F,Yes\n40,M,Yes\n35,F,No\n")
                  .ok());
  ASSERT_TRUE(dfs_->WriteString("in/part-1", "22,M,No\n61,F,Yes\n").ok());

  ExternalTransformTool tool(dfs_, cluster_);
  std::map<std::string, CodingScheme> codings{{"gender", CodingScheme::kDummy}};
  auto result = tool.Run("in", schema, {"gender", "abandoned"}, codings, "out");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows, 5u);
  EXPECT_EQ(*result->recode_map.Code("gender", "F"), 1);
  EXPECT_EQ(*result->recode_map.Code("abandoned", "No"), 1);
  EXPECT_EQ(result->output_schema->ToString(),
            "age:INT64, gender_F:INT64, gender_M:INT64, abandoned:INT64");

  // Parse the outputs back and verify one row end to end.
  auto read = ReadTableFromDfs(*dfs_, "t", result->output_schema, "out");
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ((*read)->TotalRows(), 5u);
  bool found = false;
  for (const Row& row : (*read)->GatherRows()) {
    if (row[0] == Value::Int64(57)) {
      found = true;
      EXPECT_EQ(row[1], Value::Int64(1));  // gender_F.
      EXPECT_EQ(row[2], Value::Int64(0));  // gender_M.
      EXPECT_EQ(row[3], Value::Int64(2));  // abandoned 'Yes' -> 2.
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ExtToolTest, RejectsUnRecodedCodedColumn) {
  auto schema = Schema::Make({{"gender", DataType::kString}});
  ASSERT_TRUE(dfs_->WriteString("in2/part-0", "F\n").ok());
  ExternalTransformTool tool(dfs_, cluster_);
  std::map<std::string, CodingScheme> codings{{"gender", CodingScheme::kDummy}};
  EXPECT_TRUE(tool.Run("in2", schema, {}, codings, "out2")
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace sqlink
