#include "serving/query_server.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/cancellation.h"
#include "common/coding.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/status_macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "stream/wire.h"
#include "table/row_codec.h"

namespace sqlink {

namespace {

constexpr int kWatchPollMs = 10;

/// Receives one frame by polling, so the wait can be interrupted by server
/// shutdown (RecvFrame would block in recv(2) with no way to wake it short
/// of killing the socket). `timeout_ms <= 0` = wait forever.
Result<Frame> RecvFramePolling(TcpSocket* socket,
                               const std::atomic<bool>& stop,
                               int64_t timeout_ms) {
  std::string buffer;
  Frame frame;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    size_t cursor = 0;
    ASSIGN_OR_RETURN(bool complete, ExtractFrame(buffer, &cursor, &frame));
    if (complete) return frame;
    if (stop.load(std::memory_order_acquire)) {
      return Status::Cancelled("server shutting down");
    }
    if (timeout_ms > 0 && std::chrono::steady_clock::now() >= deadline) {
      return Status::Unavailable("timed out waiting for request frame");
    }
    bool eof = false;
    ASSIGN_OR_RETURN(size_t n, socket->TryRecv(64 * 1024, &buffer, &eof));
    if (n == 0) {
      if (eof) return Status::NetworkError("connection closed");
      std::this_thread::sleep_for(std::chrono::milliseconds(kWatchPollMs));
    }
  }
}

}  // namespace

std::string SubmitQueryMessage::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, tenant);
  PutLengthPrefixed(&out, sql);
  PutVarint64Signed(&out, deadline_ms);
  return out;
}

Result<SubmitQueryMessage> SubmitQueryMessage::Decode(
    std::string_view payload) {
  Decoder decoder(payload);
  SubmitQueryMessage message;
  ASSIGN_OR_RETURN(std::string_view tenant, decoder.GetLengthPrefixed());
  message.tenant = std::string(tenant);
  ASSIGN_OR_RETURN(std::string_view sql, decoder.GetLengthPrefixed());
  message.sql = std::string(sql);
  ASSIGN_OR_RETURN(message.deadline_ms, decoder.GetVarint64Signed());
  return message;
}

std::string QueryResultMessage::Encode() const {
  std::string out;
  EncodeSchema(*schema, &out);
  PutVarint64(&out, rows.size());
  for (const Row& row : rows) RowCodec::Encode(row, &out);
  PutVarint64Signed(&out, elapsed_micros);
  return out;
}

Result<QueryResultMessage> QueryResultMessage::Decode(
    std::string_view payload) {
  Decoder decoder(payload);
  QueryResultMessage message;
  ASSIGN_OR_RETURN(message.schema, DecodeSchema(&decoder));
  ASSIGN_OR_RETURN(uint64_t n, decoder.GetVarint64());
  message.rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(Row row, RowCodec::Decode(&decoder));
    message.rows.push_back(std::move(row));
  }
  ASSIGN_OR_RETURN(message.elapsed_micros, decoder.GetVarint64Signed());
  return message;
}

QueryServer::QueryServer(SqlEngine* engine, Options options,
                         TcpListener listener)
    : engine_(engine),
      options_(std::move(options)),
      admission_(options_.admission),
      listener_(std::move(listener)),
      port_(listener_.port()) {}

Result<std::unique_ptr<QueryServer>> QueryServer::Start(SqlEngine* engine,
                                                        Options options) {
  if (options.default_deadline_ms == 0) {
    options.default_deadline_ms = EnvInt64("SQLINK_QUERY_DEADLINE_MS", 0);
  }
  ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Listen(options.port));
  std::unique_ptr<QueryServer> server(
      new QueryServer(engine, std::move(options), std::move(listener)));
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  return server;
}

QueryServer::~QueryServer() { Stop(); }

void QueryServer::Stop() {
  if (stopping_.exchange(true)) return;
  listener_.Close();
  admission_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Result<TcpSocket> socket = listener_.Accept();
    if (!socket.ok()) return;  // Listener closed: shutting down.
    auto shared = std::make_shared<TcpSocket>(std::move(*socket));
    std::lock_guard<std::mutex> lock(workers_mu_);
    if (stopping_.load(std::memory_order_acquire)) return;
    workers_.emplace_back(
        [this, shared = std::move(shared)] { HandleConnection(shared); });
  }
}

void QueryServer::HandleConnection(std::shared_ptr<TcpSocket> socket) {
  // One query per connection: the submit frame, then a single result or
  // error frame back. kOverloaded travels the wire typed, so clients can
  // distinguish "back off" from "your query is broken".
  auto reply_error = [&](const Status& status) {
    (void)SendFrame(socket.get(), FrameType::kError, EncodeStatus(status));
  };

  Result<Frame> frame =
      RecvFramePolling(socket.get(), stopping_, /*timeout_ms=*/30000);
  if (!frame.ok()) return;  // Never sent a request; nothing to answer.
  if (frame->type != FrameType::kSubmitQuery) {
    reply_error(Status::InvalidArgument("expected kSubmitQuery frame"));
    return;
  }
  Result<SubmitQueryMessage> submit =
      SubmitQueryMessage::Decode(frame->payload);
  if (!submit.ok()) {
    reply_error(submit.status().WithContext("malformed submit frame"));
    return;
  }

  Result<AdmissionTicketPtr> ticket = admission_.Admit(submit->tenant);
  if (!ticket.ok()) {
    reply_error(ticket.status());
    return;
  }

  // All cancellation sources funnel here: client disconnect, kCancelQuery,
  // deadline, the serving.cancel_query failpoint, and server shutdown.
  Cancellation cancellation;
  const int64_t deadline_ms = submit->deadline_ms > 0
                                  ? submit->deadline_ms
                                  : options_.default_deadline_ms;
  std::atomic<bool> watcher_stop{false};
  std::thread watcher([&] {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms);
    std::string buffer;
    Frame inbound;
    while (!watcher_stop.load(std::memory_order_acquire)) {
      if (SQLINK_FAILPOINT("serving.cancel_query") != FailpointOutcome::kNone) {
        cancellation.Cancel(
            Status::Cancelled("failpoint: injected query cancellation"));
        return;
      }
      if (stopping_.load(std::memory_order_acquire)) {
        cancellation.Cancel(Status::Cancelled("server shutting down"));
        return;
      }
      if (deadline_ms > 0 && std::chrono::steady_clock::now() >= deadline) {
        cancellation.Cancel(Status::Cancelled(
            "query deadline exceeded (" + std::to_string(deadline_ms) +
            " ms)"));
        return;
      }
      bool eof = false;
      Result<size_t> n = socket->TryRecv(4096, &buffer, &eof);
      if (!n.ok() || eof) {
        cancellation.Cancel(Status::Cancelled("client disconnected"));
        return;
      }
      size_t cursor = 0;
      for (;;) {
        Result<bool> complete = ExtractFrame(buffer, &cursor, &inbound);
        if (!complete.ok() || !*complete) break;
        if (inbound.type == FrameType::kCancelQuery) {
          cancellation.Cancel(Status::Cancelled("cancelled by client"));
          return;
        }
      }
      buffer.erase(0, cursor);
      std::this_thread::sleep_for(std::chrono::milliseconds(kWatchPollMs));
    }
  });

  QueryOptions query_options;
  query_options.cancellation = &cancellation;
  query_options.spill_budget = (*ticket)->spill_budget();
  query_options.tenant = submit->tenant;
  Stopwatch timer;
  Result<TablePtr> result =
      engine_->ExecuteSql(submit->sql, "result", query_options);
  const int64_t elapsed_micros = timer.ElapsedMicros();

  watcher_stop.store(true, std::memory_order_release);
  watcher.join();
  // Release the admission slot before the (possibly slow) result send: the
  // engine is done with the memory, so a queued query can start now.
  ticket->reset();

  if (!result.ok()) {
    // A cancelled query may surface a downstream symptom (queue cancelled,
    // coordinator abort); report the root cancellation status instead.
    reply_error(cancellation.cancelled() ? cancellation.status()
                                         : result.status());
    return;
  }
  QueryResultMessage response;
  response.schema = (*result)->schema();
  response.rows = (*result)->GatherRows();
  response.elapsed_micros = elapsed_micros;
  (void)SendFrame(socket.get(), FrameType::kQueryResult, response.Encode());
}

Result<QueryClient> QueryClient::Connect(const std::string& host, int port) {
  ASSIGN_OR_RETURN(TcpSocket socket, TcpConnect(host, port));
  return QueryClient(std::move(socket));
}

Status QueryClient::Submit(const std::string& sql, const std::string& tenant,
                           int64_t deadline_ms) {
  SubmitQueryMessage message;
  message.tenant = tenant;
  message.sql = sql;
  message.deadline_ms = deadline_ms;
  return SendFrame(&socket_, FrameType::kSubmitQuery, message.Encode());
}

Status QueryClient::Cancel() {
  return SendFrame(&socket_, FrameType::kCancelQuery, std::string());
}

Result<QueryClient::Response> QueryClient::Await() {
  ASSIGN_OR_RETURN(Frame frame, RecvFrame(&socket_));
  if (frame.type == FrameType::kError) {
    return DecodeStatusPayload(frame.payload);
  }
  if (frame.type != FrameType::kQueryResult) {
    return Status::NetworkError("unexpected frame type from query server");
  }
  ASSIGN_OR_RETURN(QueryResultMessage message,
                   QueryResultMessage::Decode(frame.payload));
  Response response;
  response.schema = std::move(message.schema);
  response.rows = std::move(message.rows);
  response.elapsed_micros = message.elapsed_micros;
  return response;
}

Result<QueryClient::Response> QueryClient::Execute(const std::string& sql,
                                                   const std::string& tenant,
                                                   int64_t deadline_ms) {
  RETURN_IF_ERROR(Submit(sql, tenant, deadline_ms));
  return Await();
}

}  // namespace sqlink
