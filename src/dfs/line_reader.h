#ifndef SQLINK_DFS_LINE_READER_H_
#define SQLINK_DFS_LINE_READER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "dfs/dfs.h"

namespace sqlink {

/// Reads '\n'-terminated lines from a byte range of a DFS file with Hadoop
/// TextInputFormat split semantics: a reader whose range starts at offset > 0
/// skips the (partial) first line — it belongs to the previous split — and a
/// reader finishes the line that straddles its end offset. Together, readers
/// over adjacent ranges see every line exactly once.
class DfsLineReader {
 public:
  /// `start`/`end` delimit the split in bytes; `end` may exceed file size.
  DfsLineReader(std::unique_ptr<DfsReader> reader, uint64_t start,
                uint64_t end, size_t io_buffer_size = 256 * 1024);

  /// Fetches the next line (without the trailing '\n') into `*line`.
  /// Returns false at end of split. Errors are surfaced via status().
  bool Next(std::string* line);

  const Status& status() const { return status_; }

 private:
  /// Refills buffer_ from position_; returns false at EOF or on error.
  bool Refill();

  /// Reads the next raw line regardless of split bounds. Returns false at
  /// EOF (with nothing accumulated) or on error.
  bool ReadLineRaw(std::string* line);

  std::unique_ptr<DfsReader> reader_;
  uint64_t end_;
  size_t io_buffer_size_;
  uint64_t position_;            // Next byte to fetch from the file.
  uint64_t consumed_;            // Start offset of the last emitted line.
  bool skip_first_;              // Discard the partial first line once.
  uint64_t buffer_file_offset_;  // Absolute offset of buffer_[0].
  std::string buffer_;
  size_t buffer_pos_ = 0;
  bool done_ = false;
  Status status_;
};

}  // namespace sqlink

#endif  // SQLINK_DFS_LINE_READER_H_
