#ifndef SQLINK_COMMON_STATUS_MACROS_H_
#define SQLINK_COMMON_STATUS_MACROS_H_

#include "common/result.h"
#include "common/status.h"

/// Propagates a non-OK Status to the caller.
#define RETURN_IF_ERROR(expr)                       \
  do {                                              \
    ::sqlink::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (0)

#define SQLINK_CONCAT_IMPL(x, y) x##y
#define SQLINK_CONCAT(x, y) SQLINK_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs` (which may be a declaration).
#define ASSIGN_OR_RETURN(lhs, rexpr)                              \
  ASSIGN_OR_RETURN_IMPL(SQLINK_CONCAT(_result_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                          \
  if (!tmp.ok()) return tmp.status();          \
  lhs = std::move(tmp).MoveValue()

#endif  // SQLINK_COMMON_STATUS_MACROS_H_
