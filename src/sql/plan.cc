#include "sql/plan.h"

#include <cmath>
#include <cstdio>

namespace sqlink {

namespace {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kHashJoin:
      return "HashJoin";
    case PlanKind::kDistinct:
      return "Distinct";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit";
    case PlanKind::kTableUdf:
      return "TableUdf";
    case PlanKind::kMaterialized:
      return "Materialized";
  }
  return "?";
}

}  // namespace

std::string PlanNode::ToString() const {
  std::string out = PlanKindName(kind);
  switch (kind) {
    case PlanKind::kScan:
    case PlanKind::kMaterialized:
      if (table != nullptr) out += "(" + table->name() + ")";
      break;
    case PlanKind::kHashJoin:
      if (join_algo == JoinAlgo::kSortMerge) {
        out = "MergeJoin";
        out += "[repartition]";
      } else {
        out += broadcast_build ? "[broadcast]" : "[repartition]";
      }
      break;
    case PlanKind::kTableUdf:
      out += "(" + udf_name + ")";
      break;
    case PlanKind::kLimit:
      out += "(" + std::to_string(limit) + ")";
      break;
    default:
      break;
  }
  out += " -> [" + output_schema->ToString() + "]";
  return out;
}

std::string PlanTreeToString(const PlanPtr& plan, int indent) {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += plan->ToString();
  out += "\n";
  for (const PlanPtr& child : plan->children) {
    out += PlanTreeToString(child, indent + 1);
  }
  return out;
}

namespace {

double SubtreeCost(const PlanPtr& plan) {
  double cost = plan->estimated_rows;
  for (const PlanPtr& child : plan->children) cost += SubtreeCost(child);
  return cost;
}

void AppendExplainLine(const PlanPtr& plan, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  *out += plan->ToString();
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "  (est=%lld rows, cost=%lld)",
                static_cast<long long>(std::llround(plan->estimated_rows)),
                static_cast<long long>(std::llround(SubtreeCost(plan))));
  *out += buffer;
  out->push_back('\n');
  for (const PlanPtr& child : plan->children) {
    AppendExplainLine(child, indent + 1, out);
  }
}

}  // namespace

std::string ExplainPlanText(const PlanPtr& plan) {
  std::string out;
  AppendExplainLine(plan, 0, &out);
  return out;
}

}  // namespace sqlink
