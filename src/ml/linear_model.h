#ifndef SQLINK_ML_LINEAR_MODEL_H_
#define SQLINK_ML_LINEAR_MODEL_H_

#include "ml/vector_ops.h"

namespace sqlink::ml {

/// Weights + intercept of a trained linear model (SVM, logistic or linear
/// regression).
struct LinearModel {
  DenseVector weights;
  double intercept = 0;

  /// Raw margin w·x + b.
  double Margin(const DenseVector& features) const {
    return Dot(weights, features) + intercept;
  }

  /// Binary classification: 1 when the margin is positive.
  double PredictClass(const DenseVector& features) const {
    return Margin(features) > 0 ? 1.0 : 0.0;
  }
};

}  // namespace sqlink::ml

#endif  // SQLINK_ML_LINEAR_MODEL_H_
