#ifndef SQLINK_SQL_PLAN_H_
#define SQLINK_SQL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/expr.h"
#include "sql/table_udf.h"
#include "table/table.h"

namespace sqlink {

enum class PlanKind : int {
  kScan,        // Base-table partitions.
  kFilter,      // Predicate over child rows.
  kProject,     // Expression list over child rows.
  kHashJoin,    // Equi hash join (broadcast or repartition).
  kDistinct,    // Global duplicate elimination.
  kAggregate,   // Two-phase grouped aggregation.
  kSort,        // Global sort (gathers to one partition).
  kLimit,       // Global row limit (gathers to one partition).
  kTableUdf,    // Parallel table UDF, pipelined per worker.
  kMaterialized // Pre-computed partitions (plan reuse, caches).
};

enum class AggFunc : int { kCountStar, kCount, kSum, kMin, kMax, kAvg };

/// Physical equi-join algorithm, chosen by the planner's cost model (or
/// forced via SqlEngine::set_join_strategy). Hash join streams the probe
/// side against an in-memory build table; sort-merge materializes, sorts
/// and merges both sides, trading CPU for bounded build memory.
enum class JoinAlgo : int { kHash, kSortMerge };

struct AggregateSpec {
  AggFunc func = AggFunc::kCountStar;
  BoundExprPtr argument;  // Null for COUNT(*).
  std::string output_name;
  DataType output_type = DataType::kInt64;
};

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// A bound (executable) plan node. One struct with a kind tag — the set of
/// operators is small and closed, and the executor dispatches on kind.
struct PlanNode {
  PlanKind kind = PlanKind::kScan;
  SchemaPtr output_schema;
  std::vector<PlanPtr> children;

  /// Crude cardinality estimate used to pick the join strategy.
  double estimated_rows = 0;

  /// Pre-order id stamped by AssignPlanNodeIds (sql/query_stats.h); keys
  /// this node's slot in the per-query stats tree. -1 = not numbered.
  int node_id = -1;

  // kScan / kMaterialized.
  TablePtr table;

  // kFilter (also join residual).
  BoundExprPtr predicate;

  // kProject.
  std::vector<BoundExprPtr> projections;

  // kHashJoin: children[0] = probe (left), children[1] = build (right).
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  bool broadcast_build = true;  // Else repartition both sides by key hash.
  JoinAlgo join_algo = JoinAlgo::kHash;
  BoundExprPtr residual;        // Over the concatenated row; may be null.

  // kAggregate.
  std::vector<BoundExprPtr> group_by;
  std::vector<AggregateSpec> aggregates;

  // kSort.
  std::vector<int> sort_keys;
  std::vector<bool> sort_descending;

  // kLimit.
  int64_t limit = -1;

  // kTableUdf.
  std::string udf_name;
  TableUdfPtr udf;            // Fresh instance bound by the planner.
  std::vector<Value> udf_args;

  /// Single-line operator tree rendering for tests and EXPLAIN-style output.
  std::string ToString() const;
};

/// Pretty-prints a plan tree with indentation.
std::string PlanTreeToString(const PlanPtr& plan, int indent = 0);

/// EXPLAIN rendering: the plan tree with, per node, the planner's estimated
/// cardinality and cumulative cost (C_out: the sum of estimated rows over
/// the node's subtree — the same quantity the join-order and join-strategy
/// decisions minimize). Join strategy and broadcast/repartition choice are
/// part of each node's label.
std::string ExplainPlanText(const PlanPtr& plan);

}  // namespace sqlink

#endif  // SQLINK_SQL_PLAN_H_
