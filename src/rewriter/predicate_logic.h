#ifndef SQLINK_REWRITER_PREDICATE_LOGIC_H_
#define SQLINK_REWRITER_PREDICATE_LOGIC_H_

#include <optional>
#include <string>

#include "sql/ast.h"
#include "table/value.h"

namespace sqlink {

/// A single-column comparison `column op literal` extracted from a WHERE
/// conjunct — the unit of the §5.2 "logically stronger than" test.
struct ColumnConstraint {
  std::string qualifier;  // Canonical (table name) or empty.
  std::string column;
  std::string op;  // = <> < <= > >=
  Value literal;

  /// Canonical key "qualifier.column" (lower-cased).
  std::string ColumnKey() const;
};

/// Extracts a constraint from `col op literal` or `literal op col` (the
/// operator is flipped for the latter). Returns nullopt for anything else.
std::optional<ColumnConstraint> ExtractConstraint(const Expr& expr);

/// Whether `stronger` logically implies `weaker` — sound, not complete:
/// true means every row satisfying `stronger` satisfies `weaker` (e.g.
/// a < 18 implies a <= 20, the paper's example). Both must constrain the
/// same column; comparisons follow SQL value ordering.
bool ConstraintImplies(const ColumnConstraint& stronger,
                       const ColumnConstraint& weaker);

/// Conjunct-level implication: structural equality, or both sides extract
/// to constraints with ConstraintImplies.
bool ConjunctImplies(const Expr& stronger, const Expr& weaker);

}  // namespace sqlink

#endif  // SQLINK_REWRITER_PREDICATE_LOGIC_H_
