#include "net/mux.h"

#include <sys/uio.h>

#include <cstdlib>
#include <thread>
#include <utility>

#include "common/coding.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/status_macros.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace sqlink {

namespace {

struct MuxMetrics {
  Gauge* open_channels;
  Gauge* conns;
  Counter* coalesced_frames;
  Counter* window_stalls;
  Counter* slow_channels;
  Counter* frames_sent;
  Counter* bytes_sent;

  static const MuxMetrics& Get() {
    static const MuxMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      return MuxMetrics{
          registry.GetGauge("net.mux.open_channels"),
          registry.GetGauge("net.mux.conns"),
          registry.GetCounter("net.mux.coalesced_frames"),
          registry.GetCounter("net.mux.window_stalls"),
          registry.GetCounter("net.mux.slow_channels"),
          // Shared with the direct path: a frame is a frame either way.
          registry.GetCounter("stream.wire.frames_sent"),
          registry.GetCounter("stream.wire.bytes_sent")};
    }();
    return metrics;
  }
};

/// SQLINK_SLOW_QUERY_MS doubles as the slow-channel threshold: a channel
/// that spent at least this long parked on an empty flow-control window is
/// worth a log line. Re-read per close so tests can flip it with setenv.
int64_t SlowChannelThresholdMs() {
  const char* env = std::getenv("SQLINK_SLOW_QUERY_MS");
  if (env == nullptr || *env == '\0') return -1;
  return std::strtoll(env, nullptr, 10);
}

bool IsDataFrame(FrameType type) {
  return type == FrameType::kData || type == FrameType::kColData;
}

Status ChannelClosedByPeer(const Status& close_status) {
  if (!close_status.ok()) return close_status;
  return Status::NetworkError("closed");
}

}  // namespace

// --- SocketFrameChannel -----------------------------------------------------

SocketFrameChannel::SocketFrameChannel(TcpSocket socket)
    : socket_(std::make_shared<TcpSocket>(std::move(socket))) {}

SocketFrameChannel::SocketFrameChannel(std::shared_ptr<TcpSocket> socket)
    : socket_(std::move(socket)) {}

Status SocketFrameChannel::Send(FrameType type, std::string_view payload,
                                uint64_t seq) {
  return SendFrame(socket_.get(), type, payload, seq);
}

Result<bool> SocketFrameChannel::ExtractBuffered(Frame* frame) {
  return ExtractFrame(&buffer_, frame);
}

Status SocketFrameChannel::Recv(Frame* frame) {
  if (buffer_.empty() && !peer_closed_) {
    return RecvFrameInto(socket_.get(), frame, &scratch_);
  }
  for (;;) {
    ASSIGN_OR_RETURN(bool extracted, ExtractBuffered(frame));
    if (extracted) return Status::OK();
    if (peer_closed_) {
      return Status::NetworkError(buffer_.empty() ? "closed"
                                                  : "closed mid-message");
    }
    // Block for at least one byte, then drain whatever else arrived.
    RETURN_IF_ERROR(socket_->RecvExactly(1, &scratch_));
    buffer_.append(scratch_);
    (void)socket_->TryRecv(64 << 10, &buffer_, &peer_closed_);
  }
}

Result<bool> SocketFrameChannel::TryRecv(Frame* frame, bool* closed) {
  if (!peer_closed_) {
    RETURN_IF_ERROR(
        socket_->TryRecv(64 << 10, &buffer_, &peer_closed_).status());
  }
  ASSIGN_OR_RETURN(bool extracted, ExtractBuffered(frame));
  if (extracted) return true;
  if (peer_closed_) {
    if (!buffer_.empty()) {
      return Status::NetworkError("closed mid-message");
    }
    *closed = true;
  }
  return false;
}

void SocketFrameChannel::Shutdown(const Status& status) {
  (void)status;
  socket_->ShutdownBoth();
}

// --- MuxChannel -------------------------------------------------------------

MuxChannel::MuxChannel(std::shared_ptr<MuxConn> conn, uint32_t id,
                       int64_t credit)
    : conn_(std::move(conn)), id_(id), credit_(credit) {
  MuxMetrics::Get().open_channels->Increment();
}

MuxChannel::~MuxChannel() { CloseInternal(Status::OK(), /*notify_peer=*/true); }

Status MuxChannel::Send(FrameType type, std::string_view payload,
                        uint64_t seq) {
  // Same fault surface as the direct path: chaos tests arm these points and
  // must keep biting with the mux on.
  FailpointOutcome outcome = SQLINK_FAILPOINT("stream.wire.send_frame");
  if (outcome == FailpointOutcome::kNone && IsDataFrame(type)) {
    outcome = SQLINK_FAILPOINT("stream.wire.send_data");
  }
  if (outcome == FailpointOutcome::kError) {
    return Status::NetworkError("failpoint: injected frame send error");
  }
  const bool truncate = outcome == FailpointOutcome::kClose;

  if (IsDataFrame(type) && !truncate) {
    std::unique_lock<std::mutex> lock(mu_);
    if (credit_ <= 0 && state_.ok() && !remote_closed_) {
      MuxMetrics::Get().window_stalls->Increment();
      Stopwatch stall;
      credit_cv_.wait(lock, [this] {
        return credit_ > 0 || !state_.ok() || remote_closed_;
      });
      stall_micros_ += stall.ElapsedMicros();
    }
    if (!state_.ok()) return state_;
    if (remote_closed_) return ChannelClosedByPeer(close_status_);
    // Deduct the whole frame even past zero: a frame larger than the window
    // must still make progress (the balance just goes negative).
    credit_ -= static_cast<int64_t>(payload.size());
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    if (!state_.ok()) return state_;
    if (remote_closed_) return ChannelClosedByPeer(close_status_);
  }
  return conn_->EnqueueWrite(FrameType::kChannelData, id_, seq,
                             static_cast<int>(type), payload, truncate);
}

Status MuxChannel::Recv(Frame* frame) {
  int64_t grant = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    inbox_cv_.wait(lock, [this] {
      return !inbox_.empty() || !state_.ok() || remote_closed_;
    });
    if (inbox_.empty()) {
      if (!state_.ok()) return state_;
      return ChannelClosedByPeer(close_status_);
    }
    *frame = std::move(inbox_.front());
    inbox_.pop_front();
    if (IsDataFrame(frame->type)) {
      grant = static_cast<int64_t>(frame->payload.size());
    }
  }
  if (grant > 0) {
    // Replenish the sender's window by what we just consumed. Best effort:
    // a dead connection surfaces on the next Recv.
    std::string payload;
    PutVarint64(&payload, static_cast<uint64_t>(grant));
    (void)conn_->EnqueueWrite(FrameType::kChannelWindow, id_, /*seq=*/0,
                              /*inner=*/-1, payload, /*truncate=*/false);
  }
  return Status::OK();
}

Result<bool> MuxChannel::TryRecv(Frame* frame, bool* closed) {
  int64_t grant = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inbox_.empty()) {
      if (!state_.ok()) return state_;
      if (remote_closed_) *closed = true;
      return false;
    }
    *frame = std::move(inbox_.front());
    inbox_.pop_front();
    if (IsDataFrame(frame->type)) {
      grant = static_cast<int64_t>(frame->payload.size());
    }
  }
  if (grant > 0) {
    std::string payload;
    PutVarint64(&payload, static_cast<uint64_t>(grant));
    (void)conn_->EnqueueWrite(FrameType::kChannelWindow, id_, /*seq=*/0,
                              /*inner=*/-1, payload, /*truncate=*/false);
  }
  return true;
}

void MuxChannel::Shutdown(const Status& status) {
  CloseInternal(
      status.ok() ? Status::NetworkError("channel shut down") : status,
      /*notify_peer=*/true);
}

void MuxChannel::OnFrame(Frame&& frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  inbox_.push_back(std::move(frame));
  inbox_cv_.notify_one();
}

void MuxChannel::AddCredit(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  credit_ += bytes;
  if (credit_ > 0) credit_cv_.notify_all();
}

void MuxChannel::RemoteClose(const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || remote_closed_) return;
  remote_closed_ = true;
  close_status_ = status;
  inbox_cv_.notify_all();
  credit_cv_.notify_all();
}

void MuxChannel::Fail(const Status& status) {
  CloseInternal(status.ok() ? Status::NetworkError("mux connection failed")
                            : status,
                /*notify_peer=*/false);
}

void MuxChannel::CloseInternal(const Status& status, bool notify_peer) {
  int64_t stalled_micros = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
    state_ = status.ok() ? Status::NetworkError("channel closed") : status;
    stalled_micros = stall_micros_;
    inbox_cv_.notify_all();
    credit_cv_.notify_all();
  }
  MuxMetrics::Get().open_channels->Decrement();
  const int64_t threshold_ms = SlowChannelThresholdMs();
  if (threshold_ms >= 0 && stalled_micros >= threshold_ms * 1000) {
    MuxMetrics::Get().slow_channels->Increment();
    LOG_WARNING() << "slow channel " << id_ << " ("
                  << static_cast<double>(stalled_micros) / 1000.0
                  << " ms stalled on flow-control window, threshold "
                  << threshold_ms << " ms)";
  }
  if (notify_peer && !conn_->dead()) {
    const std::string payload = status.ok() ? "" : EncodeStatus(status);
    (void)conn_->EnqueueWrite(FrameType::kCloseChannel, id_, /*seq=*/0,
                              /*inner=*/-1, payload, /*truncate=*/false);
  }
  conn_->ReleaseChannel(id_);
}

// --- MuxConn ----------------------------------------------------------------

std::shared_ptr<MuxConn> MuxConn::Spawn(TcpSocket socket, OpenHandler on_open) {
  auto conn = std::shared_ptr<MuxConn>(
      new MuxConn(std::move(socket), std::move(on_open)));
  // Detached: the thread keeps the connection alive via its own shared_ptr
  // and exits when the socket dies or is shut down.
  std::thread([conn] { conn->RecvLoop(); }).detach();
  return conn;
}

MuxConn::MuxConn(TcpSocket socket, OpenHandler on_open)
    : socket_(std::move(socket)), on_open_(std::move(on_open)) {
  MuxMetrics::Get().conns->Increment();
}

MuxConn::~MuxConn() {
  if (!dead_.load(std::memory_order_acquire)) {
    MuxMetrics::Get().conns->Decrement();
  }
  socket_.Close();
}

Result<FrameChannelPtr> MuxConn::OpenChannel(const OpenChannelMessage& msg) {
  std::shared_ptr<MuxChannel> channel;
  uint32_t id = 0;
  {
    std::lock_guard<std::mutex> lock(channels_mu_);
    if (dead()) return Status::NetworkError("mux connection failed");
    id = next_id_++;
    channel = std::make_shared<MuxChannel>(
        shared_from_this(), id, static_cast<int64_t>(msg.window_bytes));
    channels_[id] = channel;
  }
  const Status sent = EnqueueWrite(FrameType::kOpenChannel, id, /*seq=*/0,
                                   /*inner=*/-1, msg.Encode(),
                                   /*truncate=*/false);
  if (!sent.ok()) {
    channel->Fail(sent);
    return sent;
  }
  return FrameChannelPtr(channel);
}

void MuxConn::Shutdown(const Status& status) {
  socket_.ShutdownBoth();  // Wakes the demux thread, which runs Fail().
  Fail(status.ok() ? Status::NetworkError("mux connection shut down")
                   : status);
}

size_t MuxConn::open_channels() const {
  std::lock_guard<std::mutex> lock(channels_mu_);
  return channels_.size();
}

Status MuxConn::EnqueueWrite(FrameType outer, uint32_t channel, uint64_t seq,
                             int inner, std::string_view payload,
                             bool truncate) {
  PendingWrite pending;
  const size_t inner_bytes = inner >= 0 ? 1 : 0;
  EncodeFrameHeader(pending.head, outer,
                    static_cast<uint32_t>(payload.size() + inner_bytes), seq,
                    channel, Tracer::CurrentContext());
  if (inner >= 0) pending.head[kFrameHeaderBytes] = static_cast<char>(inner);
  pending.head_len = kFrameHeaderBytes + inner_bytes;
  pending.payload = payload;
  pending.truncate = truncate;

  std::unique_lock<std::mutex> lock(write_mu_);
  if (dead()) {
    // death_status_ is written under this mutex; a racing Fail() may have
    // set dead_ but not the status yet.
    return death_status_.ok() ? Status::NetworkError("mux connection failed")
                              : death_status_;
  }
  write_queue_.push_back(&pending);
  // Group commit: whoever finds no active flusher becomes it and drains the
  // queue — including frames enqueued by other channels meanwhile — with one
  // scatter-gather send per batch. Everyone else waits for their frame.
  while (flusher_active_) {
    if (pending.done) return pending.status;
    write_cv_.wait(lock);
  }
  if (pending.done) return pending.status;
  flusher_active_ = true;
  while (!write_queue_.empty()) {
    std::vector<PendingWrite*> batch(write_queue_.begin(), write_queue_.end());
    write_queue_.clear();
    if (dead()) {
      for (PendingWrite* w : batch) {
        w->status = death_status_;
        w->done = true;
      }
      break;
    }
    lock.unlock();

    Status status;
    // A truncating write (mid-frame failpoint) must be the last thing on the
    // wire: flush everything before it, ship half of it, kill the socket.
    size_t cut = batch.size();
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch[i]->truncate) {
        cut = i;
        break;
      }
    }
    std::vector<::iovec> iov;
    iov.reserve(cut * 2);
    size_t wire_bytes = 0;
    for (size_t i = 0; i < cut; ++i) {
      PendingWrite* w = batch[i];
      iov.push_back({const_cast<char*>(w->head), w->head_len});
      wire_bytes += w->head_len + w->payload.size();
      if (!w->payload.empty()) {
        iov.push_back(
            {const_cast<char*>(w->payload.data()), w->payload.size()});
      }
    }
    if (!iov.empty()) {
      status = socket_.SendAllIov(iov.data(), iov.size());
      if (status.ok()) {
        const MuxMetrics& metrics = MuxMetrics::Get();
        if (cut > 1) metrics.coalesced_frames->Add(static_cast<int64_t>(cut));
        metrics.frames_sent->Add(static_cast<int64_t>(cut));
        metrics.bytes_sent->Add(static_cast<int64_t>(wire_bytes));
      }
    }
    if (status.ok() && cut < batch.size()) {
      PendingWrite* w = batch[cut];
      const size_t total = w->head_len + w->payload.size();
      const size_t half = total / 2;
      if (half <= w->head_len) {
        (void)socket_.SendAll(std::string_view(w->head, half));
      } else {
        (void)socket_.SendAllV(std::string_view(w->head, w->head_len),
                               w->payload.substr(0, half - w->head_len));
      }
      // ShutdownBoth, not Close: the conn's RecvLoop may be blocked in
      // recv() on this fd. close() neither wakes it nor sends a FIN while
      // the syscall pins the socket, and it frees the fd number for reuse —
      // a zombie RecvLoop on a recycled fd steals frames from whoever owns
      // it next. shutdown() wakes the local reader and FINs the peer; the
      // fd itself is released by the MuxConn destructor.
      socket_.ShutdownBoth();
      status = Status::NetworkError("failpoint: connection dropped mid-frame");
    }

    lock.lock();
    for (PendingWrite* w : batch) {
      w->status = status;
      w->done = true;
    }
    write_cv_.notify_all();
    if (!status.ok()) {
      lock.unlock();
      Fail(status);
      lock.lock();
      break;
    }
  }
  flusher_active_ = false;
  write_cv_.notify_all();
  return pending.status;
}

void MuxConn::ReleaseChannel(uint32_t id) {
  std::lock_guard<std::mutex> lock(channels_mu_);
  channels_.erase(id);
}

std::shared_ptr<MuxChannel> MuxConn::FindChannel(uint32_t id) {
  std::lock_guard<std::mutex> lock(channels_mu_);
  auto it = channels_.find(id);
  if (it == channels_.end()) return nullptr;
  std::shared_ptr<MuxChannel> channel = it->second.lock();
  if (channel == nullptr) channels_.erase(it);
  return channel;
}

void MuxConn::RecvLoop() {
  Frame frame;
  std::string scratch;
  for (;;) {
    // Chaos surface for the shared connection itself: killing it here must
    // fail every multiplexed channel at once (the recovery the chaos test
    // asserts on).
    switch (SQLINK_FAILPOINT("net.mux.recv")) {
      case FailpointOutcome::kNone:
        break;
      case FailpointOutcome::kError:
      case FailpointOutcome::kClose:
        // ShutdownBoth (via Fail), not Close: a flusher thread may be
        // mid-send on this fd, and close() would free the fd number under
        // it. Fail() shuts the socket down; the destructor closes the fd.
        Fail(Status::NetworkError("failpoint: mux connection killed"));
        return;
    }
    const Status status = RecvFrameInto(&socket_, &frame, &scratch);
    if (!status.ok()) {
      Fail(status);
      return;
    }
    switch (frame.type) {
      case FrameType::kOpenChannel: {
        auto decoded = OpenChannelMessage::Decode(frame.payload);
        if (!decoded.ok()) {
          Fail(decoded.status());
          return;
        }
        std::shared_ptr<MuxChannel> channel;
        {
          std::lock_guard<std::mutex> lock(channels_mu_);
          channel = std::make_shared<MuxChannel>(
              shared_from_this(), frame.channel,
              static_cast<int64_t>(decoded->window_bytes));
          channels_[frame.channel] = channel;
        }
        if (on_open_ != nullptr) {
          on_open_(channel, *decoded);
        } else {
          channel->Shutdown(
              Status::InvalidArgument("unexpected kOpenChannel on client"));
        }
        break;
      }
      case FrameType::kChannelData: {
        if (frame.payload.empty()) {
          Fail(Status::DataLoss("empty kChannelData frame"));
          return;
        }
        std::shared_ptr<MuxChannel> channel = FindChannel(frame.channel);
        if (channel == nullptr) break;  // Late frame for a closed channel.
        Frame inner;
        inner.type = static_cast<FrameType>(frame.payload[0]);
        inner.payload.assign(frame.payload, 1, std::string::npos);
        inner.seq = frame.seq;
        inner.channel = frame.channel;
        inner.trace = frame.trace;
        channel->OnFrame(std::move(inner));
        break;
      }
      case FrameType::kChannelWindow: {
        std::shared_ptr<MuxChannel> channel = FindChannel(frame.channel);
        if (channel == nullptr) break;
        Decoder decoder(frame.payload);
        auto bytes = decoder.GetVarint64();
        if (bytes.ok()) channel->AddCredit(static_cast<int64_t>(*bytes));
        break;
      }
      case FrameType::kCloseChannel: {
        std::shared_ptr<MuxChannel> channel = FindChannel(frame.channel);
        if (channel == nullptr) break;
        channel->RemoteClose(frame.payload.empty()
                                 ? Status::OK()
                                 : DecodeStatusPayload(frame.payload));
        ReleaseChannel(frame.channel);
        break;
      }
      default:
        Fail(Status::DataLoss("unexpected frame type on mux connection"));
        return;
    }
  }
}

void MuxConn::Fail(const Status& status) {
  const Status death = status.ok()
                           ? Status::NetworkError("mux connection failed")
                           : status;
  std::vector<std::shared_ptr<MuxChannel>> channels;
  {
    std::lock_guard<std::mutex> lock(channels_mu_);
    if (dead_.exchange(true, std::memory_order_acq_rel)) return;
    for (auto& [id, weak] : channels_) {
      if (auto channel = weak.lock()) channels.push_back(std::move(channel));
    }
    channels_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    death_status_ = death;
    for (PendingWrite* w : write_queue_) {
      w->status = death;
      w->done = true;
    }
    write_queue_.clear();
    write_cv_.notify_all();
  }
  socket_.ShutdownBoth();
  MuxMetrics::Get().conns->Decrement();
  for (auto& channel : channels) channel->Fail(death);
}

}  // namespace sqlink
