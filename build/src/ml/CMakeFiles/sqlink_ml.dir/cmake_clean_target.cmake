file(REMOVE_RECURSE
  "libsqlink_ml.a"
)
