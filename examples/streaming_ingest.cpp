// Streaming ingest internals (§3): drives the coordinator / sink /
// SqlStreamInputFormat machinery directly — useful when embedding the
// transfer layer without the full pipeline — and demonstrates §6 fault
// tolerance by injecting a mid-stream connection failure and recovering,
// then §8 recovery by killing a reader outright and letting the
// coordinator reassign its split to a replacement.
//
//   ./streaming_ingest [rows]

#include <cstdio>
#include <cstdlib>
#include <set>

#include "cluster/cluster.h"
#include "common/failpoint.h"
#include "common/fs_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "pipeline/datagen.h"
#include "sql/engine.h"
#include "stream/streaming_transfer.h"

namespace {

using namespace sqlink;

int Run(int64_t rows) {
  ScopedTempDir workspace("streaming_ingest");
  auto cluster = Cluster::Make(4, workspace.path());
  if (!cluster.ok()) return 1;
  SqlEnginePtr engine = SqlEngine::Make(*cluster);

  CartsWorkloadOptions data;
  data.num_users = std::max<int64_t>(10, rows / 10);
  data.num_carts = rows;
  if (!GenerateCartsWorkload(engine.get(), data).ok()) return 1;

  const std::string query =
      "SELECT cartid, amount, nitems FROM carts WHERE amount > 50";

  // Plain streaming transfer: 4 SQL workers, k=2 -> 8 ML workers.
  {
    StreamTransferOptions options;
    options.splits_per_worker = 2;
    auto result = StreamingTransfer::Run(engine.get(), query, options);
    if (!result.ok()) {
      std::fprintf(stderr, "transfer: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("streamed %lld rows (%lld wire bytes) over %d splits, "
                "%d spilled frames\n",
                static_cast<long long>(result->rows_sent),
                static_cast<long long>(result->bytes_sent),
                result->stats.num_splits,
                static_cast<int>(result->spilled_frames));
  }

  // Fault-tolerant transfer (§6): retained logs on the SQL side, one ML
  // reader drops its connection mid-stream and replays.
  {
    StreamTransferOptions options;
    options.sink.resilient = true;
    options.reader.recovery_enabled = true;
    ScopedFailpoint fault("stream.reader.row.split2", "after(99):error(1)");
    auto result = StreamingTransfer::Run(engine.get(), query, options);
    if (!result.ok()) {
      std::fprintf(stderr, "resilient transfer: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::set<int64_t> ids;
    size_t duplicates = 0;
    for (const auto& partition : result->dataset.partitions) {
      for (const Row& row : partition) {
        if (!ids.insert(row[0].int64_value()).second) ++duplicates;
      }
    }
    std::printf("resilient run with injected failure: %zu rows delivered, "
                "%zu duplicates, %lld reconnects\n",
                result->dataset.TotalRows(), duplicates,
                static_cast<long long>(
                    engine->metrics()->Get("stream.reconnects")));
  }

  // Split reassignment (§8): readers and the sink lease their work via
  // heartbeats. One ML reader is killed outright mid-split — no local
  // reconnect — so the coordinator releases its lease and hands the split
  // to a replacement reader, which resumes from the sink's replay window.
  {
    StreamTransferOptions options;
    options.sink.resilient = true;
    options.sink.heartbeat_ms = 20;
    options.reader.heartbeat_ms = 20;
    options.reader.recovery_enabled = true;
    ScopedFailpoint fault("stream.reader.kill.split1", "after(99):error(1)");
    auto result = StreamingTransfer::Run(engine.get(), query, options);
    if (!result.ok()) {
      std::fprintf(stderr, "recovery transfer: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::set<int64_t> ids;
    size_t duplicates = 0;
    for (const auto& partition : result->dataset.partitions) {
      for (const Row& row : partition) {
        if (!ids.insert(row[0].int64_value()).second) ++duplicates;
      }
    }
    std::printf(
        "recovery run with killed reader: %zu rows delivered, "
        "%zu duplicates, %lld splits reassigned, %lld frames replayed\n",
        result->dataset.TotalRows(), duplicates,
        static_cast<long long>(
            engine->metrics()->Get("transfer.splits_reassigned")),
        static_cast<long long>(
            engine->metrics()->Get("transfer.frames_replayed")));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  sqlink::SetLogLevel(sqlink::LogLevel::kWarning);
  const int64_t rows = argc > 1 ? std::atoll(argv[1]) : 50000;
  return Run(rows);
}
