file(REMOVE_RECURSE
  "CMakeFiles/cart_abandonment.dir/cart_abandonment.cpp.o"
  "CMakeFiles/cart_abandonment.dir/cart_abandonment.cpp.o.d"
  "cart_abandonment"
  "cart_abandonment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cart_abandonment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
