#ifndef SQLINK_SQL_QUERY_REGISTRY_H_
#define SQLINK_SQL_QUERY_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sql/query_stats.h"

namespace sqlink {

/// One tracked query execution. Created by the engine when execution
/// starts, finalized when it returns; the streaming sink UDF looks its
/// record up by query id to attach per-query transfer counters, and the
/// /queries ops endpoint renders both active and recently finished records.
///
/// Identity/immutable fields are set at Begin(); the transfer counters are
/// atomics updated by sink workers while the query runs; the completion
/// fields are written under the registry mutex at Finish() and must be read
/// through the registry (ToJson) or after the query finished.
struct QueryRecord {
  uint64_t query_id = 0;
  std::string sql;          ///< Query text ("<plan>" for direct plan runs).
  std::string engine_mode;  ///< "vectorized" or "row".
  std::string tenant;       ///< Submitting tenant (serving layer); may be "".
  uint64_t trace_id = 0;    ///< Joins the record to its trace spans; 0 = unsampled.
  int64_t start_unix_ms = 0;
  std::shared_ptr<QueryStats> stats;  ///< May be null (untracked plans).

  // Streaming-transfer counters, attributed by the sink UDF via the query
  // id carried in TableUdfContext. The trace id above rides every wire
  // frame of the same transfer, joining these numbers to /tracez.
  std::atomic<int64_t> transfer_rows{0};
  std::atomic<int64_t> transfer_bytes{0};
  std::atomic<int64_t> transfer_spilled_frames{0};
  /// Logical sink→reader channels the transfer served (mux mode: these
  /// share pooled sockets — compare with net.mux.conns in /metrics).
  std::atomic<int64_t> transfer_channels{0};

  // Completion fields (guarded by the registry mutex until finished).
  bool finished = false;
  bool abandoned = false;  ///< Finished by the TrackedQuery destructor.
  bool ok = true;
  std::string error;            ///< Status message when !ok.
  int64_t duration_micros = 0;  ///< Total wall time once finished.
  double worst_qerror = 1.0;    ///< Worst per-node q-error once finished.
};

using QueryRecordPtr = std::shared_ptr<QueryRecord>;

/// Process-wide registry of query executions: the currently active set plus
/// a bounded ring of the most recently finished records. Everything the
/// /queries endpoint serves comes from here.
class QueryRegistry {
 public:
  static QueryRegistry& Global();

  QueryRegistry() = default;
  QueryRegistry(const QueryRegistry&) = delete;
  QueryRegistry& operator=(const QueryRegistry&) = delete;

  /// Registers a new active query and assigns it a fresh id. `tenant` is
  /// set before the record is published (the /queries endpoint may render
  /// it concurrently).
  QueryRecordPtr Begin(std::string sql, std::string engine_mode,
                       std::shared_ptr<QueryStats> stats, uint64_t trace_id,
                       std::string tenant = {});

  /// Moves the record from active to the finished ring. Idempotent: the
  /// first call wins; a later call (e.g. the TrackedQuery destructor racing
  /// an explicit Finish) is a no-op, so the ring never holds duplicates.
  void Finish(const QueryRecordPtr& record, const Status& status,
              int64_t duration_micros, double worst_qerror,
              bool abandoned = false);

  /// Finds an active or recently finished record; null when unknown.
  QueryRecordPtr Find(uint64_t query_id) const;

  std::vector<QueryRecordPtr> Active() const;
  /// Most recent first.
  std::vector<QueryRecordPtr> Finished() const;

  size_t active_count() const;
  size_t finished_count() const;

  /// How many finished records to retain (default 64).
  void set_finished_capacity(size_t capacity);

  /// {"active":[...],"finished":[...]} with per-record stats trees.
  std::string ToJson() const;

  /// Drops all records (tests).
  void Reset();

 private:
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  size_t finished_capacity_ = 64;
  std::unordered_map<uint64_t, QueryRecordPtr> active_;
  std::deque<QueryRecordPtr> finished_;  ///< Front = most recent.
};

/// RAII guard around one tracked execution. If the guard is destroyed
/// before Finish() ran — an abandoned engine iterator, an early return, a
/// disconnect that unwinds the serving stack — the destructor finishes the
/// record as "abandoned" so /queries never reports phantom active queries.
class TrackedQuery {
 public:
  TrackedQuery() = default;
  TrackedQuery(QueryRegistry* registry, QueryRecordPtr record)
      : registry_(registry), record_(std::move(record)) {}
  ~TrackedQuery();

  TrackedQuery(TrackedQuery&& other) noexcept { *this = std::move(other); }
  TrackedQuery& operator=(TrackedQuery&& other) noexcept {
    if (this != &other) {
      registry_ = other.registry_;
      record_ = std::move(other.record_);
      other.registry_ = nullptr;
      other.record_ = nullptr;
    }
    return *this;
  }
  TrackedQuery(const TrackedQuery&) = delete;
  TrackedQuery& operator=(const TrackedQuery&) = delete;

  /// Finalizes the record normally; the destructor then does nothing.
  void Finish(const Status& status, int64_t duration_micros,
              double worst_qerror);

  const QueryRecordPtr& record() const { return record_; }

 private:
  QueryRegistry* registry_ = nullptr;
  QueryRecordPtr record_;
};

}  // namespace sqlink

#endif  // SQLINK_SQL_QUERY_REGISTRY_H_
