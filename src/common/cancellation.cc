#include "common/cancellation.h"

namespace sqlink {

Status Cancellation::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

void Cancellation::Cancel(Status status) {
  std::vector<std::pair<int64_t, std::function<void()>>> to_run;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_.load(std::memory_order_relaxed)) return;
    status_ = status.ok() ? Status::Cancelled("cancelled") : std::move(status);
    cancel_thread_ = std::this_thread::get_id();
    cancelled_.store(true, std::memory_order_release);
    to_run.swap(callbacks_);
  }
  // Run outside the lock so callbacks may take their own locks (queue
  // Cancel, coordinator Abort) and may re-enter Cancel/status().
  for (auto& [id, fn] : to_run) {
    if (fn) fn();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    callbacks_done_ = true;
  }
  cv_.notify_all();
}

int64_t Cancellation::OnCancel(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!cancelled_.load(std::memory_order_relaxed)) {
      const int64_t id = next_id_++;
      callbacks_.emplace_back(id, std::move(fn));
      return id;
    }
  }
  // Already cancelled: run inline on the registering thread. This callback
  // is not part of the Cancel() pass, so RemoveCallback(0) need not wait.
  if (fn) fn();
  return 0;
}

void Cancellation::RemoveCallback(int64_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  for (auto it = callbacks_.begin(); it != callbacks_.end(); ++it) {
    if (it->first == id) {
      callbacks_.erase(it);
      return;
    }
  }
  // Not found: either never registered (id 0) or swapped out by a concurrent
  // Cancel() whose callback pass may still be running our captures. Wait for
  // the pass to finish — unless we ARE the cancelling thread (a caller that
  // cancels then removes would otherwise deadlock on itself).
  if (cancelled_.load(std::memory_order_relaxed) && id != 0 &&
      cancel_thread_ != std::this_thread::get_id()) {
    cv_.wait(lock, [&] { return callbacks_done_; });
  }
}

}  // namespace sqlink
