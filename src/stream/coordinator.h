#ifndef SQLINK_STREAM_COORDINATOR_H_
#define SQLINK_STREAM_COORDINATOR_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "stream/socket.h"
#include "stream/wire.h"

namespace sqlink {

/// Lifecycle of one split's consumption, driven by reader heartbeats and
/// the reaper:
///
///   kUnassigned --first heartbeat--> kAssigned --missed deadline-->
///   kSuspect --grace expired--> kReassignable --kAcquireSplit-->
///   kAssigned (epoch+1) ... --kCompleteSplit--> kCompleted
///
/// A kSuspect split returns to kAssigned if a beat arrives in time. Every
/// transition to kReassignable bumps the lease epoch, fencing the previous
/// owner, and spends one unit of the reassignment budget; an exhausted
/// budget aborts the query.
enum class SplitState {
  kUnassigned,
  kAssigned,
  kSuspect,
  kReassignable,
  kCompleted,
};

/// The long-standing coordinator service of §3 that bridges the big SQL and
/// big ML systems:
///
///  1. every SQL worker registers (worker id, endpoint, ML command, schema);
///  2. once all n have registered, the coordinator launches the ML job;
///  3. the ML job's SqlStreamInputFormat asks it for InputSplits — it
///     creates m = n·k splits, grouped k-per-SQL-worker, each carrying the
///     SQL worker's host as its locality hint;
///  4. ML workers register back; 5./6. the coordinator matches each to its
///     SQL worker's endpoint; 7./8. the data sockets are then peer-to-peer.
///
/// For §6 it also answers failure reports with the endpoint to re-dial, and
/// — when heartbeats are enabled — tracks participant liveness: readers and
/// sinks renew leases on their control connections, a reaper expires the
/// leases of silent participants (SplitState machine above), expired
/// readers' splits are handed to surviving readers via kAcquireSplit, and a
/// dead sink or exhausted reassignment budget aborts the whole query with a
/// typed Status broadcast through every heartbeat reply.
class StreamCoordinator {
 public:
  /// Runs the job's ML side; invoked once, on a dedicated thread, when all
  /// SQL workers have registered (paper step 2).
  using MlLauncher = std::function<void(const std::string& command,
                                        const std::vector<std::string>& args)>;

  struct Options {
    int port = 0;               ///< 0 = ephemeral.
    int splits_per_worker = 1;  ///< k in m = n·k.
    MlLauncher ml_launcher;
    /// How long participants may wait on registration barriers.
    int barrier_timeout_ms = 30000;
    /// Lease TTL: a participant whose last beat is older than this turns
    /// kSuspect; after another TTL/2 of silence it is declared dead. 0
    /// disables liveness tracking (no reaper thread).
    int heartbeat_timeout_ms = 0;
    /// How many times one split may be handed to a replacement reader
    /// before the coordinator gives up and aborts the query.
    int max_split_reassignments = 3;
  };

  /// Starts the accept loop on a background thread.
  static Result<std::unique_ptr<StreamCoordinator>> Start(Options options);

  /// §6 coordinator resilience (the paper suggests ZooKeeper): serializes
  /// the coordinator's durable state — registered SQL workers and the
  /// split table — so a replacement coordinator can take over matchmaking
  /// after a crash.
  std::string Checkpoint() const;

  /// Starts a coordinator restored from a checkpoint: the split table and
  /// registrations are re-established, so ML workers can immediately
  /// (re-)register and be matched without re-running the SQL side.
  static Result<std::unique_ptr<StreamCoordinator>> Resume(
      Options options, std::string_view checkpoint);

  ~StreamCoordinator();

  StreamCoordinator(const StreamCoordinator&) = delete;
  StreamCoordinator& operator=(const StreamCoordinator&) = delete;

  /// Stops the server and joins every handler. Idempotent.
  void Stop();

  /// Aborts the query: every subsequent heartbeat, split fetch, and acquire
  /// gets `status` as a typed error, so all participants drain and exit.
  void Abort(Status status);

  int port() const { return listener_.port(); }
  std::string host() const { return "localhost"; }

  /// Observability for tests and benchmarks.
  int registered_sql_workers() const;
  int registered_ml_workers() const;
  int reported_failures() const;
  int splits_reassigned() const;
  bool aborted() const;

 private:
  /// Per-split liveness bookkeeping (beside the static StreamSplitInfo).
  struct SplitRuntime {
    SplitState state = SplitState::kUnassigned;
    int64_t epoch = 1;
    int reassignments = 0;
    bool leased = false;
    std::chrono::steady_clock::time_point deadline;
    uint64_t applied_seq = 0;  ///< Reader progress (observability).
  };
  struct SinkLease {
    std::chrono::steady_clock::time_point deadline;
    bool suspect = false;
  };

  explicit StreamCoordinator(Options options) : options_(std::move(options)) {}

  void AcceptLoop();
  void HandleConnection(TcpSocket* socket);
  void ReaperLoop();

  Status HandleRegisterSql(TcpSocket* socket, const Frame& frame);
  Status HandleGetSplits(TcpSocket* socket);
  Status HandleRegisterMl(TcpSocket* socket, const Frame& frame,
                          bool is_failure);
  Status HandleHeartbeat(TcpSocket* socket, const Frame& frame);
  Status HandleAcquireSplit(TcpSocket* socket, const Frame& frame);
  Status HandleCompleteSplit(TcpSocket* socket, const Frame& frame);
  Status HandleSplitStatus(TcpSocket* socket, const Frame& frame);
  Status HandleAbortQuery(TcpSocket* socket, const Frame& frame);

  /// Blocks until the split table exists (all SQL workers registered).
  Status WaitForSplits();

  /// Declares split `i`'s current owner gone: bumps the epoch (fencing),
  /// spends reassignment budget, and either parks the split as
  /// kReassignable or aborts the query. Requires mu_.
  void ReleaseSplitLocked(size_t i, const std::string& reason);
  /// Requires mu_.
  void AbortLocked(Status status);

  Options options_;
  TcpListener listener_;
  std::thread accept_thread_;
  std::thread launcher_thread_;
  std::thread reaper_thread_;

  mutable std::mutex mu_;
  std::condition_variable splits_ready_cv_;
  std::condition_variable reaper_cv_;
  bool stopped_ = false;
  int expected_sql_workers_ = 0;
  std::map<int, RegisterSqlMessage> sql_workers_;
  bool splits_ready_ = false;
  SplitsMessage splits_;
  std::vector<SplitRuntime> split_runtime_;  ///< Parallel to splits_.splits.
  std::map<int, SinkLease> sink_leases_;
  int registered_ml_ = 0;
  int failures_ = 0;
  int splits_reassigned_ = 0;
  bool aborted_ = false;
  Status abort_status_;

  std::mutex handlers_mu_;
  std::vector<std::thread> handlers_;
  /// Live handler sockets; Stop() shuts them down to unblock handler
  /// threads parked in RecvFrame on persistent heartbeat connections.
  std::vector<std::weak_ptr<TcpSocket>> handler_sockets_;
};

}  // namespace sqlink

#endif  // SQLINK_STREAM_COORDINATOR_H_
