#include "common/coding.h"

namespace sqlink {

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int i = 0;
  while (value >= 0x80) {
    buf[i++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[i++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), i);
}

Result<uint8_t> Decoder::GetByte() {
  if (AtEnd()) return Status::DataLoss("truncated byte");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> Decoder::GetFixed32() {
  if (remaining() < 4) return Status::DataLoss("truncated fixed32");
  uint32_t value;
  std::memcpy(&value, data_.data() + pos_, 4);
  pos_ += 4;
  return value;
}

Result<uint64_t> Decoder::GetFixed64() {
  if (remaining() < 8) return Status::DataLoss("truncated fixed64");
  uint64_t value;
  std::memcpy(&value, data_.data() + pos_, 8);
  pos_ += 8;
  return value;
}

Result<double> Decoder::GetDouble() {
  if (remaining() < 8) return Status::DataLoss("truncated double");
  double value;
  std::memcpy(&value, data_.data() + pos_, 8);
  pos_ += 8;
  return value;
}

Result<uint64_t> Decoder::GetVarint64() {
  uint64_t value = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (AtEnd()) return Status::DataLoss("truncated varint");
    const unsigned char byte = static_cast<unsigned char>(data_[pos_++]);
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
  }
  return Status::DataLoss("varint too long");
}

Result<int64_t> Decoder::GetVarint64Signed() {
  auto zigzag = GetVarint64();
  if (!zigzag.ok()) return zigzag.status();
  const uint64_t z = *zigzag;
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

Result<std::string_view> Decoder::GetLengthPrefixed() {
  auto length = GetVarint64();
  if (!length.ok()) return length.status();
  if (remaining() < *length) {
    return Status::DataLoss("truncated length-prefixed string");
  }
  std::string_view value = data_.substr(pos_, *length);
  pos_ += *length;
  return value;
}

}  // namespace sqlink
