#include "table/row_codec.h"

namespace sqlink {

namespace {
constexpr unsigned char kTagNull = 0;
constexpr unsigned char kTagBool = 1;
constexpr unsigned char kTagInt64 = 2;
constexpr unsigned char kTagDouble = 3;
constexpr unsigned char kTagString = 4;
}  // namespace

void RowCodec::Encode(const Row& row, std::string* out) {
  PutVarint64(out, row.size());
  for (const Value& v : row) {
    if (v.is_null()) {
      out->push_back(static_cast<char>(kTagNull));
    } else if (v.is_bool()) {
      out->push_back(static_cast<char>(kTagBool));
      out->push_back(v.bool_value() ? 1 : 0);
    } else if (v.is_int64()) {
      out->push_back(static_cast<char>(kTagInt64));
      PutVarint64Signed(out, v.int64_value());
    } else if (v.is_double()) {
      out->push_back(static_cast<char>(kTagDouble));
      PutDouble(out, v.double_value());
    } else {
      out->push_back(static_cast<char>(kTagString));
      PutLengthPrefixed(out, v.string_value());
    }
  }
}

Result<Row> RowCodec::Decode(Decoder* decoder) {
  auto count = decoder->GetVarint64();
  if (!count.ok()) return count.status();
  Row row;
  row.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto tag = decoder->GetByte();
    if (!tag.ok()) return tag.status();
    switch (*tag) {
      case kTagNull:
        row.push_back(Value::Null());
        break;
      case kTagBool: {
        auto b = decoder->GetByte();
        if (!b.ok()) return b.status();
        row.push_back(Value::Bool(*b != 0));
        break;
      }
      case kTagInt64: {
        auto v = decoder->GetVarint64Signed();
        if (!v.ok()) return v.status();
        row.push_back(Value::Int64(*v));
        break;
      }
      case kTagDouble: {
        auto v = decoder->GetDouble();
        if (!v.ok()) return v.status();
        row.push_back(Value::Double(*v));
        break;
      }
      case kTagString: {
        auto v = decoder->GetLengthPrefixed();
        if (!v.ok()) return v.status();
        row.push_back(Value::String(std::string(*v)));
        break;
      }
      default:
        return Status::DataLoss("unknown value tag " + std::to_string(*tag));
    }
  }
  return row;
}

std::string RowCodec::EncodeRows(const std::vector<Row>& rows) {
  std::string out;
  // Pre-size with tag + ~8 payload bytes per value (strings excluded): the
  // common numeric case then appends without doubling-growth copies.
  size_t estimate = 10;
  for (const Row& row : rows) estimate += 2 + row.size() * 9;
  out.reserve(estimate);
  PutVarint64(&out, rows.size());
  for (const Row& row : rows) Encode(row, &out);
  return out;
}

Result<std::vector<Row>> RowCodec::DecodeRows(std::string_view data) {
  Decoder decoder(data);
  auto count = decoder.GetVarint64();
  if (!count.ok()) return count.status();
  std::vector<Row> rows;
  rows.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto row = Decode(&decoder);
    if (!row.ok()) return row.status();
    rows.push_back(std::move(*row));
  }
  return rows;
}

}  // namespace sqlink
