#ifndef SQLINK_COMMON_RUNTIME_FLAGS_H_
#define SQLINK_COMMON_RUNTIME_FLAGS_H_

namespace sqlink {

/// Whether the columnar hot path is enabled (SQLINK_COLUMNAR=on|off,
/// default on). Gates the sink's columnar frame encoding, the vectorized
/// transform kernels, and the columnar ML ingest; the row path stays as the
/// fallback and the two are wire-interoperable per channel (a sink picks one
/// encoding per query, readers understand both).
///
/// The environment is read once; tests flip the mode in-process with
/// SetColumnarEnabledForTest.
bool ColumnarEnabled();

/// Test hook: 1 = force on, 0 = force off, -1 = back to the environment.
void SetColumnarEnabledForTest(int enabled);

/// Whether the SQL engine runs the vectorized batch operators
/// (SQLINK_VECTORIZED_SQL=on|off, default on). Gates the executor's
/// ColumnBatch pipelines (scan/filter/project/hash join/DISTINCT); the
/// row-at-a-time operators stay as the fallback and both modes produce
/// identical results (enforced by tests/sql_differential_test.cc).
///
/// The environment is read once; tests flip the mode in-process with
/// SetVectorizedSqlEnabledForTest.
bool VectorizedSqlEnabled();

/// Test hook: 1 = force on, 0 = force off, -1 = back to the environment.
void SetVectorizedSqlEnabledForTest(int enabled);

}  // namespace sqlink

#endif  // SQLINK_COMMON_RUNTIME_FLAGS_H_
