#ifndef SQLINK_COMMON_RUNTIME_FLAGS_H_
#define SQLINK_COMMON_RUNTIME_FLAGS_H_

#include <cstdint>

namespace sqlink {

/// Whether the columnar hot path is enabled (SQLINK_COLUMNAR=on|off,
/// default on). Gates the sink's columnar frame encoding, the vectorized
/// transform kernels, and the columnar ML ingest; the row path stays as the
/// fallback and the two are wire-interoperable per channel (a sink picks one
/// encoding per query, readers understand both).
///
/// The environment is read once; tests flip the mode in-process with
/// SetColumnarEnabledForTest.
bool ColumnarEnabled();

/// Test hook: 1 = force on, 0 = force off, -1 = back to the environment.
void SetColumnarEnabledForTest(int enabled);

/// Whether the SQL engine runs the vectorized batch operators
/// (SQLINK_VECTORIZED_SQL=on|off, default on). Gates the executor's
/// ColumnBatch pipelines (scan/filter/project/hash join/DISTINCT); the
/// row-at-a-time operators stay as the fallback and both modes produce
/// identical results (enforced by tests/sql_differential_test.cc).
///
/// The environment is read once; tests flip the mode in-process with
/// SetVectorizedSqlEnabledForTest.
bool VectorizedSqlEnabled();

/// Test hook: 1 = force on, 0 = force off, -1 = back to the environment.
void SetVectorizedSqlEnabledForTest(int enabled);

/// Whether sink→reader transfers multiplex their logical channels over the
/// shared per-peer connection pool (SQLINK_MUX=on|off, default on). Off
/// keeps the one-socket-per-transfer path, wire-compatible for bisection.
///
/// The environment is read once; tests flip the mode in-process with
/// SetMuxEnabledForTest.
bool MuxEnabled();

/// Test hook: 1 = force on, 0 = force off, -1 = back to the environment.
void SetMuxEnabledForTest(int enabled);

/// Shared data connections per sink peer (SQLINK_MUX_CONNS_PER_PEER,
/// default 4). Channels map to a connection by hash of their split id, so
/// a channel reconnects onto the same socket.
int MuxConnsPerPeer();

/// Test hook: > 0 = forced pool size, <= 0 = back to the environment.
void SetMuxConnsPerPeerForTest(int conns);

/// Initial + replenished per-channel credit in bytes granted to a sink's
/// data frames (SQLINK_MUX_CHANNEL_WINDOW_BYTES, default 4 MiB). A channel
/// that exhausts its window parks alone; socket-mates keep flowing.
int64_t MuxChannelWindowBytes();

/// Test hook: > 0 = forced window, <= 0 = back to the environment.
void SetMuxChannelWindowBytesForTest(int64_t bytes);

}  // namespace sqlink

#endif  // SQLINK_COMMON_RUNTIME_FLAGS_H_
