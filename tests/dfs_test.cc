#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "dfs/dfs.h"
#include "dfs/line_reader.h"

namespace sqlink {
namespace {

class DfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("dfs_test");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok()) << cluster.status();
    cluster_ = *cluster;
    DfsOptions options;
    options.block_size = 64;  // Tiny blocks exercise multi-block paths.
    options.replication = 3;
    dfs_ = std::make_shared<Dfs>(cluster_, options);
  }

  std::unique_ptr<ScopedTempDir> temp_;
  ClusterPtr cluster_;
  DfsPtr dfs_;
};

TEST_F(DfsTest, WriteReadRoundTrip) {
  const std::string content = "hello distributed world";
  ASSERT_TRUE(dfs_->WriteString("dir/f1", content).ok());
  auto read = dfs_->ReadString("dir/f1");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, content);
  EXPECT_EQ(*dfs_->FileSize("dir/f1"), content.size());
}

TEST_F(DfsTest, MultiBlockFile) {
  std::string content;
  for (int i = 0; i < 100; ++i) {
    content += "line number " + std::to_string(i) + "\n";
  }
  ASSERT_TRUE(dfs_->WriteString("big", content).ok());
  EXPECT_EQ(*dfs_->ReadString("big"), content);
  auto locations = dfs_->GetBlockLocations("big");
  ASSERT_TRUE(locations.ok());
  EXPECT_GT(locations->size(), 1u);
  uint64_t offset = 0;
  for (const BlockLocation& loc : *locations) {
    EXPECT_EQ(loc.offset, offset);
    EXPECT_EQ(loc.nodes.size(), 3u);  // Replication factor.
    offset += loc.length;
  }
  EXPECT_EQ(offset, content.size());
}

TEST_F(DfsTest, PositionedReads) {
  std::string content(1000, 'x');
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<char>('a' + (i % 26));
  }
  ASSERT_TRUE(dfs_->WriteString("pos", content).ok());
  auto reader = dfs_->Open("pos");
  ASSERT_TRUE(reader.ok());
  std::string chunk;
  ASSERT_TRUE((*reader)->ReadAt(130, 200, &chunk).ok());
  EXPECT_EQ(chunk, content.substr(130, 200));
  // Read past EOF truncates.
  ASSERT_TRUE((*reader)->ReadAt(950, 500, &chunk).ok());
  EXPECT_EQ(chunk, content.substr(950));
  // Read at EOF is empty.
  ASSERT_TRUE((*reader)->ReadAt(1000, 10, &chunk).ok());
  EXPECT_TRUE(chunk.empty());
}

TEST_F(DfsTest, CreateFailsOnExisting) {
  ASSERT_TRUE(dfs_->WriteString("dup", "x").ok());
  EXPECT_TRUE(dfs_->Create("dup").status().IsAlreadyExists());
}

TEST_F(DfsTest, UnfinalizedFileInvisible) {
  auto writer = dfs_->Create("pending");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("data").ok());
  EXPECT_FALSE(dfs_->Exists("pending"));
  EXPECT_TRUE(dfs_->Open("pending").status().IsNotFound());
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_TRUE(dfs_->Exists("pending"));
}

TEST_F(DfsTest, DeleteRemovesFileAndBlocks) {
  ASSERT_TRUE(dfs_->WriteString("gone", std::string(500, 'q')).ok());
  ASSERT_TRUE(dfs_->Delete("gone").ok());
  EXPECT_FALSE(dfs_->Exists("gone"));
  EXPECT_TRUE(dfs_->Delete("gone").IsNotFound());
  // No leftover block files.
  size_t block_files = 0;
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    for (const auto& entry : std::filesystem::directory_iterator(
             cluster_->NodeLocalDir(n) + "/dfs")) {
      (void)entry;
      ++block_files;
    }
  }
  EXPECT_EQ(block_files, 0u);
}

TEST_F(DfsTest, ListByPrefix) {
  ASSERT_TRUE(dfs_->WriteString("warehouse/t1", "a").ok());
  ASSERT_TRUE(dfs_->WriteString("warehouse/t2", "b").ok());
  ASSERT_TRUE(dfs_->WriteString("other/t3", "c").ok());
  auto files = dfs_->List("warehouse");
  EXPECT_EQ(files.size(), 2u);
  EXPECT_EQ(dfs_->List("").size(), 3u);
}

TEST_F(DfsTest, PreferredNodeHoldsFirstReplica) {
  ASSERT_TRUE(dfs_->WriteString("local", std::string(200, 'z'), 2).ok());
  auto locations = dfs_->GetBlockLocations("local");
  ASSERT_TRUE(locations.ok());
  for (const BlockLocation& loc : *locations) {
    EXPECT_EQ(loc.nodes.front(), 2);
  }
}

TEST_F(DfsTest, BytesAccountingIncludesReplication) {
  const std::string content(100, 'r');
  ASSERT_TRUE(dfs_->WriteString("acct", content).ok());
  EXPECT_EQ(dfs_->TotalBytesWritten(), 300u);  // 100 bytes x 3 replicas.
  ASSERT_TRUE(dfs_->ReadString("acct").ok());
  EXPECT_EQ(dfs_->TotalBytesRead(), 100u);
}

TEST_F(DfsTest, ReadFailsOverToSurvivingReplicas) {
  const std::string content(50, 'f');  // Single block (block_size = 64).
  ASSERT_TRUE(dfs_->WriteString("failover", content).ok());
  auto locations = dfs_->GetBlockLocations("failover");
  ASSERT_TRUE(locations.ok());
  ASSERT_EQ(locations->size(), 1u);
  const BlockLocation& block = (*locations)[0];
  ASSERT_EQ(block.nodes.size(), 3u);
  // Simulate datanode loss: wipe the first two replicas' nodes.
  size_t deleted = 0;
  for (size_t r = 0; r < 2; ++r) {
    for (const auto& entry : std::filesystem::directory_iterator(
             cluster_->NodeLocalDir(block.nodes[r]) + "/dfs")) {
      std::filesystem::remove(entry.path());
      ++deleted;
    }
  }
  ASSERT_GT(deleted, 0u);
  // The read succeeds off the remaining replica.
  auto read = dfs_->ReadString("failover");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, content);
}

TEST_F(DfsTest, ReadFailsWhenAllReplicasLost) {
  ASSERT_TRUE(dfs_->WriteString("doomed", "payload").ok());
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    for (const auto& entry : std::filesystem::directory_iterator(
             cluster_->NodeLocalDir(n) + "/dfs")) {
      std::filesystem::remove(entry.path());
    }
  }
  EXPECT_TRUE(dfs_->ReadString("doomed").status().IsIoError());
}

// --- Line reader: Hadoop TextInputFormat split semantics ---

class LineReaderTest : public DfsTest {
 protected:
  void WriteLines(const std::string& path, int count) {
    std::string content;
    for (int i = 0; i < count; ++i) {
      content += "row-" + std::to_string(i) + "\n";
    }
    ASSERT_TRUE(dfs_->WriteString(path, content).ok());
    file_size_ = content.size();
  }

  std::vector<std::string> ReadRange(const std::string& path, uint64_t start,
                                     uint64_t end, size_t buf = 7) {
    auto reader = dfs_->Open(path);
    EXPECT_TRUE(reader.ok());
    DfsLineReader lines(std::move(*reader), start, end, buf);
    std::vector<std::string> out;
    std::string line;
    while (lines.Next(&line)) out.push_back(line);
    EXPECT_TRUE(lines.status().ok()) << lines.status();
    return out;
  }

  uint64_t file_size_ = 0;
};

TEST_F(LineReaderTest, WholeFile) {
  WriteLines("lines", 20);
  auto lines = ReadRange("lines", 0, file_size_);
  ASSERT_EQ(lines.size(), 20u);
  EXPECT_EQ(lines.front(), "row-0");
  EXPECT_EQ(lines.back(), "row-19");
}

TEST_F(LineReaderTest, SplitsCoverEachLineExactlyOnce) {
  WriteLines("split", 50);
  // Try many split boundaries, including ones in the middle of lines.
  for (uint64_t boundary = 1; boundary < file_size_; boundary += 13) {
    auto first = ReadRange("split", 0, boundary);
    auto second = ReadRange("split", boundary, file_size_);
    std::vector<std::string> all = first;
    all.insert(all.end(), second.begin(), second.end());
    ASSERT_EQ(all.size(), 50u) << "boundary=" << boundary;
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(all[static_cast<size_t>(i)], "row-" + std::to_string(i))
          << "boundary=" << boundary;
    }
  }
}

TEST_F(LineReaderTest, ManySplitsCoverExactlyOnce) {
  WriteLines("multi", 101);
  for (int num_splits : {2, 3, 7}) {
    std::vector<std::string> all;
    const uint64_t step = file_size_ / static_cast<uint64_t>(num_splits);
    for (int s = 0; s < num_splits; ++s) {
      const uint64_t start = static_cast<uint64_t>(s) * step;
      const uint64_t end = (s == num_splits - 1)
                               ? file_size_
                               : (static_cast<uint64_t>(s) + 1) * step;
      auto part = ReadRange("multi", start, end);
      all.insert(all.end(), part.begin(), part.end());
    }
    ASSERT_EQ(all.size(), 101u) << num_splits << " splits";
  }
}

TEST_F(LineReaderTest, FileWithoutTrailingNewline) {
  ASSERT_TRUE(dfs_->WriteString("notrail", "a\nb\nc").ok());
  auto lines = ReadRange("notrail", 0, 5);
  EXPECT_EQ(lines, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(LineReaderTest, EmptyLinesPreserved) {
  ASSERT_TRUE(dfs_->WriteString("empties", "a\n\n\nb\n").ok());
  auto lines = ReadRange("empties", 0, 7);
  EXPECT_EQ(lines, (std::vector<std::string>{"a", "", "", "b"}));
}

TEST_F(LineReaderTest, EmptyFile) {
  ASSERT_TRUE(dfs_->WriteString("empty", "").ok());
  EXPECT_TRUE(ReadRange("empty", 0, 0).empty());
}

}  // namespace
}  // namespace sqlink
