// Ablation A3: locality of split placement. The coordinator advertises
// each streaming split at its SQL worker's host, and the DFS input format
// advertises each block's replica nodes, so the ML scheduler can colocate
// workers with their data ("so that data transfer does not incur network
// I/O", best effort). This bench reports the achieved locality rates and,
// for the DFS path, the cost of deliberately reading remote replicas.

#include "bench_util.h"
#include "common/stopwatch.h"
#include "ml/text_input_format.h"
#include "pipeline/table_io.h"
#include "stream/streaming_transfer.h"

using namespace sqlink;
using sqlink::bench::BenchEnv;

int main(int argc, char** argv) {
  const int64_t rows = sqlink::bench::RowsArg(argc, argv, 300000);
  auto env = BenchEnv::Make(rows);
  auto table = env->engine->MaterializeSql(
      "SELECT cartid, amount, nitems, year FROM carts", "src");
  if (!table.ok()) return 1;
  auto bytes = WriteTableToDfs(env->dfs.get(), **table, "locality_input");
  if (!bytes.ok()) return 1;

  std::printf("=== A3: locality-aware split placement ===\n\n");

  // DFS ingest: every split advertises the replica nodes of its block.
  {
    Stopwatch watch;
    ml::TextFileInputFormat format(env->dfs, "locality_input",
                                   (*table)->schema());
    ml::JobContext context;
    context.cluster = env->cluster;
    ml::MlJobRunner runner(context);
    auto ingest = runner.Ingest(&format);
    if (!ingest.ok()) return 1;
    std::printf("dfs ingest:    %d/%d splits local (%.0f%%), %.3fs\n",
                ingest->stats.local_splits, ingest->stats.num_splits,
                100.0 * ingest->stats.local_splits /
                    std::max(1, ingest->stats.num_splits),
                watch.ElapsedSeconds());
  }

  // Streaming ingest: every split is located at its SQL worker's host.
  {
    Stopwatch watch;
    auto result =
        StreamingTransfer::Run(env->engine.get(), "SELECT * FROM src");
    if (!result.ok()) return 1;
    std::printf("stream ingest: %d/%d splits local (%.0f%%), %.3fs\n",
                result->stats.local_splits, result->stats.num_splits,
                100.0 * result->stats.local_splits /
                    std::max(1, result->stats.num_splits),
                watch.ElapsedSeconds());
  }

  // Remote-replica reads: open every block from a non-preferred node
  // (reader_node = -1 selects the first replica regardless of reader)
  // versus preferred local reads — on this simulation both are local disk,
  // so the difference bounds the locality benefit the mechanism protects.
  {
    Stopwatch watch;
    auto reader = env->dfs->Open("locality_input/part-0", /*reader_node=*/-1);
    if (!reader.ok()) return 1;
    auto content = (*reader)->ReadAll();
    if (!content.ok()) return 1;
    const double remote = watch.ElapsedSeconds();
    watch.Restart();
    auto local_reader =
        env->dfs->Open("locality_input/part-0", /*reader_node=*/0);
    if (!local_reader.ok()) return 1;
    auto local_content = (*local_reader)->ReadAll();
    if (!local_content.ok()) return 1;
    std::printf("replica read:  first-replica %.4fs vs preferred-node %.4fs "
                "(loopback simulation: both node-local disks)\n",
                remote, watch.ElapsedSeconds());
  }
  return 0;
}
