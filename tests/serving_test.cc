// Serving-layer tests (ISSUE 8): the admission controller (capacity,
// bounded fair queue, typed kOverloaded rejections, tenant-weighted stride
// scheduling), per-query cancellation plumbing, spill budgets as
// end-to-end backpressure, the abandoned-query registry fix, /healthz
// degradation, and the query server wire protocol end to end.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/byte_budget.h"
#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/fs_util.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "obs/ops_server.h"
#include "serving/admission.h"
#include "serving/query_server.h"
#include "sql/engine.h"
#include "sql/query_registry.h"
#include "stream/spill_queue.h"
#include "stream/socket.h"

namespace sqlink {
namespace {

// ---------------------------------------------------------------------------
// ByteBudget

TEST(ByteBudgetTest, ChargeAndRelease) {
  ByteBudget budget(100);
  EXPECT_FALSE(budget.unlimited());
  EXPECT_TRUE(budget.TryCharge(60));
  EXPECT_TRUE(budget.TryCharge(40));
  EXPECT_EQ(budget.used(), 100);
  EXPECT_FALSE(budget.TryCharge(1));  // Exhausted: non-blocking refusal.
  budget.Release(40);
  EXPECT_TRUE(budget.TryCharge(30));
  EXPECT_EQ(budget.used(), 90);
}

TEST(ByteBudgetTest, NonPositiveCapacityIsUnlimited) {
  ByteBudget budget(0);
  EXPECT_TRUE(budget.unlimited());
  EXPECT_TRUE(budget.TryCharge(1LL << 40));
}

// ---------------------------------------------------------------------------
// Cancellation

TEST(CancellationTest, FirstCancelWinsAndCallbacksRun) {
  Cancellation cancellation;
  EXPECT_FALSE(cancellation.cancelled());
  EXPECT_TRUE(cancellation.Check().ok());

  int fired = 0;
  cancellation.OnCancel([&fired] { ++fired; });
  cancellation.Cancel(Status::Cancelled("first"));
  cancellation.Cancel(Status::Cancelled("second"));  // Loses the race.
  EXPECT_TRUE(cancellation.cancelled());
  EXPECT_EQ(fired, 1);
  EXPECT_NE(cancellation.status().ToString().find("first"),
            std::string::npos);
  EXPECT_TRUE(cancellation.Check().IsCancelled());
}

TEST(CancellationTest, LateCallbackRunsInline) {
  Cancellation cancellation;
  cancellation.Cancel(Status::Cancelled("done"));
  int fired = 0;
  const int64_t id = cancellation.OnCancel([&fired] { ++fired; });
  EXPECT_EQ(fired, 1);  // Already cancelled: runs inline.
  cancellation.RemoveCallback(id);  // id 0: no-op, must not deadlock.
}

TEST(CancellationTest, RemoveCallbackPreventsFiring) {
  Cancellation cancellation;
  int fired = 0;
  const int64_t id = cancellation.OnCancel([&fired] { ++fired; });
  cancellation.RemoveCallback(id);
  cancellation.Cancel(Status::Cancelled("x"));
  EXPECT_EQ(fired, 0);
}

// ---------------------------------------------------------------------------
// TrackedQuery: the abandoned-iterator registry fix

TEST(TrackedQueryTest, AbandonedQueryStillReachesTerminalState) {
  QueryRegistry registry;
  QueryRecordPtr record = registry.Begin("SELECT 1", "row", nullptr, 0, "t1");
  EXPECT_EQ(record->tenant, "t1");
  {
    TrackedQuery tracked(&registry, record);
    EXPECT_EQ(registry.active_count(), 1u);
    // Dropped without Finish — e.g. an engine iterator abandoned mid-stream.
  }
  EXPECT_EQ(registry.active_count(), 0u);  // No phantom active query.
  EXPECT_TRUE(record->finished);
  EXPECT_TRUE(record->abandoned);
  EXPECT_NE(registry.ToJson().find("\"state\":\"abandoned\""),
            std::string::npos);
}

TEST(TrackedQueryTest, ExplicitFinishWinsOverDestructor) {
  QueryRegistry registry;
  QueryRecordPtr record = registry.Begin("SELECT 1", "row", nullptr, 0);
  {
    TrackedQuery tracked(&registry, record);
    tracked.Finish(Status::OK(), 1234, 1.0);
  }
  EXPECT_TRUE(record->finished);
  EXPECT_TRUE(record->ok);
  EXPECT_FALSE(record->abandoned);
  EXPECT_EQ(record->duration_micros, 1234);
  // A second Finish is ignored (first call wins).
  registry.Finish(record, Status::Internal("late"), 9, 9.0, true);
  EXPECT_TRUE(record->ok);
  EXPECT_FALSE(record->abandoned);
}

// ---------------------------------------------------------------------------
// AdmissionController

AdmissionOptions SmallAdmission() {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.memory_budget_bytes = 0;  // Concurrency-only unless a test opts in.
  options.queue_capacity = 64;
  options.queue_timeout_ms = 10000;
  return options;
}

TEST(AdmissionTest, ImmediateAdmitAndRelease) {
  AdmissionController controller(SmallAdmission());
  auto ticket = controller.Admit("alice");
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  EXPECT_EQ((*ticket)->tenant(), "alice");
  EXPECT_EQ((*ticket)->queue_wait_ms(), 0);
  EXPECT_EQ(controller.active(), 1);
  ticket->reset();
  EXPECT_EQ(controller.active(), 0);
}

TEST(AdmissionTest, QueueTimeoutReturnsTypedOverloaded) {
  AdmissionOptions options = SmallAdmission();
  options.queue_timeout_ms = 50;
  AdmissionController controller(options);
  auto blocker = controller.Admit("a");
  ASSERT_TRUE(blocker.ok());
  Stopwatch timer;
  auto rejected = controller.Admit("b");
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsOverloaded()) << rejected.status();
  EXPECT_NE(rejected.status().ToString().find("timeout"), std::string::npos);
  EXPECT_GE(timer.ElapsedMicros(), 50 * 1000);
}

TEST(AdmissionTest, SaturatedQueueRejectsImmediately) {
  AdmissionOptions options = SmallAdmission();
  options.queue_capacity = 0;  // No queueing at all: reject on busy.
  AdmissionController controller(options);
  auto blocker = controller.Admit("a");
  ASSERT_TRUE(blocker.ok());
  // Capacity 0 means "no queue at all": the controller always reports
  // saturation, and any admit that cannot run immediately is rejected.
  EXPECT_TRUE(controller.saturated());
  Stopwatch timer;
  auto rejected = controller.Admit("b");
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsOverloaded());
  EXPECT_NE(rejected.status().ToString().find("saturated"),
            std::string::npos);
  EXPECT_LT(timer.ElapsedMicros(), 5 * 1000 * 1000);  // No queue wait.
}

TEST(AdmissionTest, MemoryBudgetBoundsAdmissionAndCarvesSpillQuota) {
  AdmissionOptions options = SmallAdmission();
  options.max_concurrent = 8;  // Memory, not slots, is the binding limit.
  options.memory_budget_bytes = 64;
  options.per_query_mem_bytes = 32;
  options.queue_timeout_ms = 50;
  AdmissionController controller(options);
  auto first = controller.Admit("a");
  auto second = controller.Admit("a");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_NE((*first)->spill_budget(), nullptr);
  EXPECT_EQ((*first)->spill_budget()->capacity(), 32);
  auto third = controller.Admit("a");
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsOverloaded());
  first->reset();  // Frees 32 bytes: the next admit fits again.
  auto fourth = controller.Admit("a");
  EXPECT_TRUE(fourth.ok()) << fourth.status();
}

TEST(AdmissionTest, WeightedFairnessServesTenantsProportionally) {
  AdmissionOptions options = SmallAdmission();
  options.tenant_weights = {{"alice", 3.0}, {"bob", 1.0}};
  AdmissionController controller(options);
  auto blocker = controller.Admit("warmup");
  ASSERT_TRUE(blocker.ok());

  std::mutex mu;
  std::vector<std::string> grant_order;
  std::vector<std::thread> threads;
  auto waiter = [&](const std::string& tenant) {
    auto ticket = controller.Admit(tenant);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    {
      std::lock_guard<std::mutex> lock(mu);
      grant_order.push_back(tenant);
    }
    ticket->reset();  // Hands the slot to the next-fairest waiter.
  };
  for (int i = 0; i < 6; ++i) threads.emplace_back(waiter, "alice");
  for (int i = 0; i < 6; ++i) threads.emplace_back(waiter, "bob");
  while (controller.queued() < 12) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  blocker->reset();  // Opens the single slot; grants proceed one at a time.
  for (std::thread& thread : threads) thread.join();

  // Stride schedule with weights 3:1 and all 12 queued up front: virtual
  // start times are alice {0, 1/3 .. 5/3}, bob {0, 1 .. 5}, so the first
  // eight grants are six alice and two bob — deterministically, regardless
  // of arrival interleaving.
  ASSERT_EQ(grant_order.size(), 12u);
  int alice_in_first_eight = 0;
  for (int i = 0; i < 8; ++i) {
    if (grant_order[static_cast<size_t>(i)] == "alice") {
      ++alice_in_first_eight;
    }
  }
  EXPECT_EQ(alice_in_first_eight, 6) << "stride schedule violated";
}

TEST(AdmissionTest, CloseRejectsWaitersAndFutureAdmits) {
  AdmissionController controller(SmallAdmission());
  auto blocker = controller.Admit("a");
  ASSERT_TRUE(blocker.ok());
  std::thread closer([&controller] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    controller.Close();
  });
  auto waiting = controller.Admit("b");
  closer.join();
  ASSERT_FALSE(waiting.ok());
  EXPECT_TRUE(waiting.status().IsOverloaded());
  auto late = controller.Admit("c");
  EXPECT_TRUE(late.status().IsOverloaded());
}

TEST(AdmissionTest, RejectFailpointInjectsOverload) {
  AdmissionController controller(SmallAdmission());
  ScopedFailpoint fault("admission.reject", "error(1)");
  ASSERT_TRUE(fault.status().ok()) << fault.status();
  auto rejected = controller.Admit("a");
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsOverloaded());
  EXPECT_NE(rejected.status().ToString().find("injected"), std::string::npos);
  auto admitted = controller.Admit("a");  // One-shot: back to normal.
  EXPECT_TRUE(admitted.ok());
}

TEST(AdmissionTest, FromEnvParsesTenantQuota) {
  ::setenv("SQLINK_TENANT_QUOTA", "alice=3, bob=1.5,junk,neg=-2", 1);
  ::setenv("SQLINK_MAX_CONCURRENT_QUERIES", "3", 1);
  AdmissionOptions options = AdmissionOptions::FromEnv();
  ::unsetenv("SQLINK_TENANT_QUOTA");
  ::unsetenv("SQLINK_MAX_CONCURRENT_QUERIES");
  EXPECT_EQ(options.max_concurrent, 3);
  ASSERT_EQ(options.tenant_weights.size(), 2u);
  EXPECT_DOUBLE_EQ(options.tenant_weights["alice"], 3.0);
  EXPECT_DOUBLE_EQ(options.tenant_weights["bob"], 1.5);
}

// ---------------------------------------------------------------------------
// Spill budget as backpressure

TEST(SpillBudgetTest, ExhaustedBudgetParksProducerInsteadOfSpilling) {
  ScopedTempDir temp("spill_budget_test");
  auto budget = std::make_shared<ByteBudget>(100);
  SpillingByteQueue::Options options;
  options.memory_capacity_bytes = 64;
  options.spill_enabled = true;
  options.spill_path = temp.path() + "/q";
  options.spill_budget = budget;
  SpillingByteQueue queue(options);

  const int64_t parks_before =
      MetricsRegistry::Global().GetCounter("stream.spill.budget_parks")->value();
  const std::string frame(50, 'x');  // 1 fits memory; 2 fit the 100B quota.
  std::thread producer([&queue, &frame] {
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(queue.Push(frame + static_cast<char>('0' + i)).ok());
    }
    queue.CloseProducer();
  });

  // Give the producer time to hit the exhausted budget and park.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(queue.spilled_frames(), 2);  // Quota held: no unbounded spill.

  std::vector<std::string> received;
  for (;;) {
    auto frame_out = queue.Pop();
    ASSERT_TRUE(frame_out.ok()) << frame_out.status();
    if (!frame_out->has_value()) break;
    received.push_back(**frame_out);
  }
  producer.join();

  ASSERT_EQ(received.size(), 6u);
  for (int i = 0; i < 6; ++i) {  // FIFO survives budget parking.
    EXPECT_EQ(received[static_cast<size_t>(i)].back(),
              static_cast<char>('0' + i));
  }
  EXPECT_EQ(budget->used(), 0);  // Fully returned after the drain.
  EXPECT_GT(MetricsRegistry::Global()
                .GetCounter("stream.spill.budget_parks")
                ->value(),
            parks_before);
}

TEST(SpillBudgetTest, CancelReturnsChargeAndRemovesSpillFile) {
  ScopedTempDir temp("spill_budget_cancel");
  auto budget = std::make_shared<ByteBudget>(100);
  SpillingByteQueue::Options options;
  options.memory_capacity_bytes = 64;
  options.spill_enabled = true;
  options.spill_path = temp.path() + "/q";
  options.spill_budget = budget;
  SpillingByteQueue queue(options);

  const std::string frame(50, 'x');
  ASSERT_TRUE(queue.Push(frame).ok());  // Memory.
  ASSERT_TRUE(queue.Push(frame).ok());  // Spill: charges 50.
  ASSERT_TRUE(queue.Push(frame).ok());  // Spill: charges 50 more.
  EXPECT_EQ(budget->used(), 100);
  ASSERT_TRUE(std::filesystem::exists(temp.path() + "/q.spill"));

  queue.Cancel();
  EXPECT_EQ(budget->used(), 0);  // Neighbor queries get the quota back.
  EXPECT_FALSE(std::filesystem::exists(temp.path() + "/q.spill"));
  EXPECT_TRUE(queue.Push(frame).IsCancelled());
}

// ---------------------------------------------------------------------------
// /healthz degradation + serving metrics

/// Raw HTTP GET against the ops server; returns the full response text.
std::string HttpGet(int port, const std::string& path) {
  auto socket = TcpConnect("127.0.0.1", port);
  if (!socket.ok()) return "";
  if (!socket
           ->SendAll("GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n")
           .ok()) {
    return "";
  }
  std::string response;
  bool eof = false;
  while (!eof) {
    auto n = socket->TryRecv(4096, &response, &eof);
    if (!n.ok()) break;
    if (*n == 0 && !eof) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return response;
}

TEST(HealthzTest, SaturationFlipsHealthzTo503WithJsonReason) {
  std::atomic<bool> saturated{false};
  OpsServer::Options options;
  options.health_hook = [&saturated] {
    OpsServer::Health health;
    if (saturated.load()) {
      health.healthy = false;
      health.reason_json = "{\"reason\":\"admission queue saturated\"}";
    }
    return health;
  };
  auto server = OpsServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const int port = (*server)->port();

  const std::string healthy = HttpGet(port, "/healthz");
  EXPECT_NE(healthy.find("200 OK"), std::string::npos) << healthy;
  EXPECT_NE(healthy.find("ok"), std::string::npos);

  saturated.store(true);
  const std::string unhealthy = HttpGet(port, "/healthz");
  EXPECT_NE(unhealthy.find("503"), std::string::npos) << unhealthy;
  EXPECT_NE(unhealthy.find("application/json"), std::string::npos);
  EXPECT_NE(unhealthy.find("admission queue saturated"), std::string::npos);
}

TEST(ServingMetricsTest, AdmissionCountersReachPrometheusText) {
  AdmissionOptions options = SmallAdmission();
  AdmissionController controller(options);
  { auto ticket = controller.Admit("alice"); ASSERT_TRUE(ticket.ok()); }
  ScopedFailpoint fault("admission.reject", "error(1)");
  ASSERT_TRUE(fault.status().ok());
  auto rejected = controller.Admit("bob");
  ASSERT_FALSE(rejected.ok());

  const std::string text = MetricsRegistry::Global().ToPrometheusText();
  EXPECT_NE(text.find("sqlink_serving_admitted"), std::string::npos) << text;
  EXPECT_NE(text.find("sqlink_serving_rejected"), std::string::npos);
  EXPECT_NE(text.find("sqlink_serving_active"), std::string::npos);
  EXPECT_NE(text.find("sqlink_serving_queue_wait_ms"), std::string::npos);
  EXPECT_NE(text.find("sqlink_serving_tenant_alice_admitted"),
            std::string::npos);
  EXPECT_NE(text.find("sqlink_serving_tenant_bob_rejected"),
            std::string::npos);
  // The admission stats JSON backs the 503 body.
  const std::string stats = controller.StatsJson();
  EXPECT_NE(stats.find("\"active\":0"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"queue_capacity\":64"), std::string::npos);
}

// ---------------------------------------------------------------------------
// QueryServer end to end

class QueryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("query_server_test");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    engine_ = SqlEngine::Make(*cluster);
    auto schema = Schema::Make({{"id", DataType::kInt64},
                                {"feature", DataType::kDouble}});
    auto table = engine_->MakeTable("points", schema);
    for (int64_t i = 0; i < 16384; ++i) {
      table->AppendRow(static_cast<size_t>(i) % 4,
                       Row{Value::Int64(i), Value::Double(i * 0.5)});
    }
    ASSERT_TRUE(engine_->catalog()->RegisterTable(table).ok());
  }

  std::unique_ptr<QueryServer> StartServer(QueryServer::Options options = {}) {
    options.port = 0;
    auto server = QueryServer::Start(engine_.get(), options);
    EXPECT_TRUE(server.ok()) << server.status();
    return server.ok() ? std::move(*server) : nullptr;
  }

  std::unique_ptr<ScopedTempDir> temp_;
  SqlEnginePtr engine_;
};

TEST_F(QueryServerTest, RemoteResultMatchesLocalExecution) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  const std::string sql =
      "SELECT id, feature FROM points WHERE id < 100";
  auto local = engine_->ExecuteSql(sql);
  ASSERT_TRUE(local.ok()) << local.status();
  const std::vector<Row> local_rows = (*local)->GatherRows();

  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status();
  auto response = client->Execute(sql, "alice");
  ASSERT_TRUE(response.ok()) << response.status();

  // Byte-identical to serial execution: same rows, same order, same values.
  ASSERT_EQ(response->rows.size(), local_rows.size());
  for (size_t i = 0; i < local_rows.size(); ++i) {
    ASSERT_EQ(response->rows[i].size(), local_rows[i].size());
    for (size_t c = 0; c < local_rows[i].size(); ++c) {
      EXPECT_EQ(response->rows[i][c].ToString(), local_rows[i][c].ToString());
    }
  }
  EXPECT_GT(response->elapsed_micros, 0);
  EXPECT_EQ(response->schema->num_fields(), 2u);
}

TEST_F(QueryServerTest, SqlErrorsTravelTyped) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  auto response = client->Execute("SELECT nope FROM nowhere");
  ASSERT_FALSE(response.ok());
  EXPECT_FALSE(response.status().IsOverloaded());
}

TEST_F(QueryServerTest, AdmissionRejectionIsTypedOverTheWire) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  ScopedFailpoint fault("admission.reject", "error(1)");
  ASSERT_TRUE(fault.status().ok());
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  auto response = client->Execute("SELECT id FROM points");
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsOverloaded()) << response.status();
}

TEST_F(QueryServerTest, ClientCancelFrameCancelsInFlightQuery) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  // ~20 ms per executor batch keeps the scan in flight long enough for the
  // cancel frame to land mid-query.
  ScopedFailpoint pace("sql.exec.batch", "delay(20)");
  ASSERT_TRUE(pace.status().ok());
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Submit("SELECT id FROM points").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(client->Cancel().ok());
  auto response = client->Await();
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsCancelled()) << response.status();
  EXPECT_NE(response.status().ToString().find("cancelled by client"),
            std::string::npos);
  EXPECT_EQ(server->admission()->active(), 0);
}

TEST_F(QueryServerTest, CancelFailpointCancelsQuery) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  ScopedFailpoint pace("sql.exec.batch", "delay(20)");
  ASSERT_TRUE(pace.status().ok());
  ScopedFailpoint kill("serving.cancel_query", "error(1)");
  ASSERT_TRUE(kill.status().ok());
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  auto response = client->Execute("SELECT id FROM points");
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsCancelled()) << response.status();
  EXPECT_NE(response.status().ToString().find("injected query cancellation"),
            std::string::npos);
  EXPECT_EQ(kill.fires(), 1);
}

TEST_F(QueryServerTest, DeadlineCancelsSlowQuery) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  ScopedFailpoint pace("sql.exec.batch", "delay(20)");
  ASSERT_TRUE(pace.status().ok());
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  auto response =
      client->Execute("SELECT id FROM points", "", /*deadline_ms=*/40);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsCancelled()) << response.status();
  EXPECT_NE(response.status().ToString().find("deadline"), std::string::npos);
}

TEST_F(QueryServerTest, DisconnectCancelsQueryAndFreesSlot) {
  QueryServer::Options options;
  options.admission.max_concurrent = 1;  // The slot must actually free up.
  options.admission.queue_timeout_ms = 2000;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);
  {
    ScopedFailpoint pace("sql.exec.batch", "delay(20)");
    ASSERT_TRUE(pace.status().ok());
    auto client = QueryClient::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->Submit("SELECT id FROM points").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    client->Disconnect();  // Mid-query: the watcher must notice EOF.
    Stopwatch timer;
    while (server->admission()->active() > 0 &&
           timer.ElapsedMicros() < 5 * 1000 * 1000) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(server->admission()->active(), 0) << "slot leaked";
  }
  // The freed slot serves the next query; neighbor state is undisturbed.
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  auto response = client->Execute("SELECT id FROM points WHERE id < 10");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->rows.size(), 10u);
  EXPECT_EQ(QueryRegistry::Global().active_count(), 0u);
}

}  // namespace
}  // namespace sqlink
