#include "mq/broker.h"

#include <chrono>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/status_macros.h"
#include "common/stopwatch.h"

namespace sqlink {

namespace {

/// Process-wide broker instruments, resolved once. Retained messages is a
/// gauge so chaos tests can watch retention evictions drive it back down.
struct BrokerMetrics {
  Counter* produced;
  Counter* polled;
  Counter* retention_dropped;
  Gauge* retained;
  Histogram* poll_wait_micros;

  static BrokerMetrics& Get() {
    static BrokerMetrics m{
        MetricsRegistry::Global().GetCounter("mq.broker.messages_produced"),
        MetricsRegistry::Global().GetCounter("mq.broker.messages_polled"),
        MetricsRegistry::Global().GetCounter("mq.broker.retention_dropped"),
        MetricsRegistry::Global().GetGauge("mq.broker.retained_messages"),
        MetricsRegistry::Global().GetHistogram("mq.broker.poll_wait_micros")};
    return m;
  }
};

}  // namespace

MessageBroker::~MessageBroker() {
  // Undo this broker's contribution to the shared retained-messages gauge so
  // short-lived brokers (tests, per-transfer instances) don't leave it high.
  const size_t retained = TotalRetainedMessages();
  if (retained > 0) {
    BrokerMetrics::Get().retained->Add(-static_cast<int64_t>(retained));
  }
}

Status MessageBroker::CreateTopic(const std::string& topic,
                                  TopicConfig config) {
  if (config.num_partitions <= 0) {
    return Status::InvalidArgument("topic needs at least one partition");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (topics_.count(topic) > 0) {
    return Status::AlreadyExists("topic exists: " + topic);
  }
  Topic entry;
  entry.config = config;
  entry.partitions.resize(static_cast<size_t>(config.num_partitions));
  topics_.emplace(topic, std::move(entry));
  return Status::OK();
}

bool MessageBroker::HasTopic(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  return topics_.count(topic) > 0;
}

Result<int> MessageBroker::NumPartitions(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("unknown topic: " + topic);
  return static_cast<int>(it->second.partitions.size());
}

Result<MessageBroker::Partition*> MessageBroker::FindPartition(
    const std::string& topic, int partition) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("unknown topic: " + topic);
  if (partition < 0 ||
      static_cast<size_t>(partition) >= it->second.partitions.size()) {
    return Status::OutOfRange("partition " + std::to_string(partition) +
                              " out of range for topic " + topic);
  }
  return &it->second.partitions[static_cast<size_t>(partition)];
}

Result<const MessageBroker::Partition*> MessageBroker::FindPartition(
    const std::string& topic, int partition) const {
  auto result = const_cast<MessageBroker*>(this)->FindPartition(topic, partition);
  if (!result.ok()) return result.status();
  return static_cast<const Partition*>(*result);
}

Result<int64_t> MessageBroker::Produce(const std::string& topic,
                                       int partition, std::string payload) {
  if (SQLINK_FAILPOINT("mq.broker.produce") != FailpointOutcome::kNone) {
    return Status::Unavailable("failpoint: injected produce error");
  }
  std::lock_guard<std::mutex> lock(mu_);
  ASSIGN_OR_RETURN(Partition * p, FindPartition(topic, partition));
  if (p->sealed) {
    return Status::FailedPrecondition("partition is sealed");
  }
  const TopicConfig& config = topics_.find(topic)->second.config;
  p->messages.push_back(std::move(payload));
  const int64_t offset =
      p->base_offset + static_cast<int64_t>(p->messages.size()) - 1;
  BrokerMetrics& metrics = BrokerMetrics::Get();
  metrics.produced->Increment();
  metrics.retained->Increment();
  // Retention: drop the oldest messages beyond the cap.
  if (config.retention_messages > 0 &&
      p->messages.size() > config.retention_messages) {
    const size_t drop = p->messages.size() - config.retention_messages;
    p->messages.erase(p->messages.begin(),
                      p->messages.begin() + static_cast<std::ptrdiff_t>(drop));
    p->base_offset += static_cast<int64_t>(drop);
    metrics.retention_dropped->Add(static_cast<int64_t>(drop));
    metrics.retained->Add(-static_cast<int64_t>(drop));
  }
  data_available_.notify_all();
  return offset;
}

Status MessageBroker::SealPartition(const std::string& topic, int partition) {
  std::lock_guard<std::mutex> lock(mu_);
  ASSIGN_OR_RETURN(Partition * p, FindPartition(topic, partition));
  p->sealed = true;
  data_available_.notify_all();
  return Status::OK();
}

Result<MessageBroker::PollResult> MessageBroker::Poll(const std::string& topic,
                                                      int partition,
                                                      int64_t offset,
                                                      size_t max_messages,
                                                      int timeout_ms) {
  if (SQLINK_FAILPOINT("mq.broker.poll") != FailpointOutcome::kNone) {
    return Status::Unavailable("failpoint: injected poll error");
  }
  Stopwatch wait_timer;
  std::unique_lock<std::mutex> lock(mu_);
  ASSIGN_OR_RETURN(Partition * p, FindPartition(topic, partition));
  if (offset < p->base_offset) {
    return Status::OutOfRange(
        "offset " + std::to_string(offset) +
        " below retention floor " + std::to_string(p->base_offset));
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  auto end_offset = [&] {
    return p->base_offset + static_cast<int64_t>(p->messages.size());
  };
  while (offset >= end_offset() && !p->sealed) {
    if (timeout_ms <= 0 ||
        data_available_.wait_until(lock, deadline) == std::cv_status::timeout) {
      break;
    }
  }
  PollResult result;
  result.sealed = p->sealed && offset >= end_offset();
  for (int64_t o = offset;
       o < end_offset() && result.messages.size() < max_messages; ++o) {
    result.messages.push_back(Message{
        o, p->messages[static_cast<size_t>(o - p->base_offset)]});
  }
  BrokerMetrics& metrics = BrokerMetrics::Get();
  metrics.polled->Add(static_cast<int64_t>(result.messages.size()));
  metrics.poll_wait_micros->Record(wait_timer.ElapsedMicros());
  return result;
}

Result<int64_t> MessageBroker::BeginOffset(const std::string& topic,
                                           int partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  ASSIGN_OR_RETURN(const Partition* p, FindPartition(topic, partition));
  return p->base_offset;
}

Result<int64_t> MessageBroker::EndOffset(const std::string& topic,
                                         int partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  ASSIGN_OR_RETURN(const Partition* p, FindPartition(topic, partition));
  return p->base_offset + static_cast<int64_t>(p->messages.size());
}

Status MessageBroker::CommitOffset(const std::string& group,
                                   const std::string& topic, int partition,
                                   int64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  committed_[group + "/" + topic + "/" + std::to_string(partition)] = offset;
  return Status::OK();
}

Result<int64_t> MessageBroker::CommittedOffset(const std::string& group,
                                               const std::string& topic,
                                               int partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it =
      committed_.find(group + "/" + topic + "/" + std::to_string(partition));
  return it == committed_.end() ? 0 : it->second;
}

size_t MessageBroker::TotalRetainedMessages() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [name, topic] : topics_) {
    for (const Partition& partition : topic.partitions) {
      total += partition.messages.size();
    }
  }
  return total;
}

}  // namespace sqlink
