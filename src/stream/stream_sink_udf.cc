#include "stream/stream_sink_udf.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <thread>

#include "common/blocking_queue.h"
#include "common/coding.h"
#include "common/failpoint.h"
#include "common/fs_util.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/retry_policy.h"
#include "common/runtime_flags.h"
#include "common/status_macros.h"
#include "common/trace.h"
#include "net/conn_pool.h"
#include "net/mux.h"
#include "sql/query_registry.h"
#include "stream/heartbeat.h"
#include "stream/replay_window.h"
#include "stream/spill_queue.h"
#include "stream/wire.h"
#include "table/column_batch.h"
#include "table/row_codec.h"

namespace sqlink {

namespace {

/// Accumulates rows and renders data-frame payloads. Both encodings lead
/// with a varint row count, so FrameRowCount and the replay window treat
/// them uniformly.
class FrameBatcher {
 public:
  virtual ~FrameBatcher() = default;
  virtual Status Add(const Row& row) = 0;
  /// Appends the selected rows of a ColumnBatch. The default boxes each row
  /// through Add; encodings that are columnar on the wire override it to
  /// gather columns directly.
  virtual Status AddRows(const ColumnBatch& batch, const int32_t* rows,
                         size_t n) {
    Row row;
    for (size_t i = 0; i < n; ++i) {
      batch.EmitRow(static_cast<size_t>(rows[i]), &row);
      RETURN_IF_ERROR(Add(row));
    }
    return Status::OK();
  }
  virtual bool empty() const = 0;
  /// Approximate payload bytes accumulated (flush threshold).
  virtual size_t bytes() const = 0;
  /// Renders and resets. The returned buffer comes from the frame pool.
  virtual Result<std::string> Flush() = 0;
};

/// Row encoding (kData): varint row count + concatenated RowCodec rows.
class RowFrameBatcher final : public FrameBatcher {
 public:
  explicit RowFrameBatcher(FrameBufferPool* pool) : pool_(pool) {}

  Status Add(const Row& row) override {
    ++count_;
    RowCodec::Encode(row, &body_);
    return Status::OK();
  }

  bool empty() const override { return count_ == 0; }
  size_t bytes() const override { return body_.size(); }

  Result<std::string> Flush() override {
    std::string payload = pool_->Acquire();
    PutVarint64(&payload, count_);
    payload += body_;
    count_ = 0;
    body_.clear();
    return payload;
  }

 private:
  FrameBufferPool* pool_;
  uint64_t count_ = 0;
  std::string body_;
};

/// Columnar encoding (kColData): rows accumulate in typed vectors and are
/// rendered column-contiguously by the channel encoder on flush.
class ColumnarFrameBatcher final : public FrameBatcher {
 public:
  ColumnarFrameBatcher(SchemaPtr schema, ColumnarChannelEncoder* encoder,
                       FrameBufferPool* pool)
      : batch_(std::move(schema)), encoder_(encoder), pool_(pool) {}

  Status Add(const Row& row) override { return batch_.AppendRow(row); }

  Status AddRows(const ColumnBatch& batch, const int32_t* rows,
                 size_t n) override {
    return batch_.AppendGather(batch, rows, n);
  }

  bool empty() const override { return batch_.empty(); }
  size_t bytes() const override { return batch_.ByteSize(); }

  Result<std::string> Flush() override {
    std::string payload = pool_->Acquire();
    RETURN_IF_ERROR(encoder_->EncodeBatch(batch_, &payload));
    batch_.Clear();
    return payload;
  }

 private:
  ColumnBatch batch_;
  ColumnarChannelEncoder* encoder_;
  FrameBufferPool* pool_;
};

/// Row count of a data frame payload (its leading varint — shared by the
/// row and columnar encodings).
Result<uint64_t> FrameRowCount(const std::string& frame) {
  Decoder decoder(frame);
  return decoder.GetVarint64();
}

/// The reader-to-sink half of one data channel: cumulative kDataAck frames
/// and the final kAck arrive interleaved with (and independent of) the
/// outbound data stream, so the sender drains them non-blockingly between
/// sends and blocks only when waiting for the finale. Transport-agnostic:
/// the channel buffers out-of-band bytes (legacy socket) or inbox frames
/// (mux) behind the same TryRecv/Recv interface.
class AckChannel {
 public:
  explicit AckChannel(FrameChannel* channel) : channel_(channel) {}

  /// Applies every cumulative ack currently readable without blocking.
  /// A kError frame surfaces as its decoded typed status. A clean peer
  /// close is NOT an error here: buffered acks are still applied, and the
  /// send path discovers the closed channel on its next write.
  Status Poll(ReplayWindow* window) {
    for (;;) {
      bool closed = false;
      ASSIGN_OR_RETURN(bool got, channel_->TryRecv(&frame_, &closed));
      if (!got) return Status::OK();
      bool done = false;
      RETURN_IF_ERROR(Apply(window, /*final_ack=*/nullptr, &done));
      if (done) return Status::OK();
    }
  }

  /// Blocks until the reader's final kAck, applying kDataAcks on the way.
  Status AwaitFinalAck(ReplayWindow* window) {
    for (;;) {
      const Status status = channel_->Recv(&frame_);
      if (!status.ok()) {
        return Status::NetworkError("connection closed before final ack (" +
                                    status.message() + ")");
      }
      bool done = false;
      RETURN_IF_ERROR(Apply(window, &done, &done));
      if (done) return Status::OK();
    }
  }

 private:
  /// Applies the frame in `frame_`. `final_ack` != nullptr means a kAck is
  /// expected (and sets it); `done` stops the caller's drain loop.
  Status Apply(ReplayWindow* window, bool* final_ack, bool* done) {
    switch (frame_.type) {
      case FrameType::kDataAck:
        window->Ack(frame_.seq);
        return Status::OK();
      case FrameType::kAck:
        *done = true;
        if (final_ack == nullptr) {
          return Status::NetworkError("unexpected final ack mid-stream");
        }
        return Status::OK();
      case FrameType::kError:
        *done = true;
        return DecodeStatusPayload(frame_.payload);
      default:
        *done = true;
        return Status::NetworkError("unexpected frame on ack channel");
    }
  }

  FrameChannel* channel_;
  Frame frame_;  ///< Scratch reused across drains.
};

}  // namespace

Result<StreamSinkOptions> StreamSinkOptions::FromArgs(
    const std::vector<Value>& args, size_t first) {
  StreamSinkOptions options;
  if (args.size() > first && !args[first].is_null()) {
    if (!args[first].is_int64() || args[first].int64_value() <= 0) {
      return Status::InvalidArgument("buffer size must be a positive integer");
    }
    options.send_buffer_bytes = static_cast<size_t>(args[first].int64_value());
  }
  if (args.size() > first + 1) {
    if (!args[first + 1].is_int64()) {
      return Status::InvalidArgument("spill flag must be 0 or 1");
    }
    options.spill_enabled = args[first + 1].int64_value() != 0;
  }
  if (args.size() > first + 2) {
    if (!args[first + 2].is_int64()) {
      return Status::InvalidArgument("resilient flag must be 0 or 1");
    }
    options.resilient = args[first + 2].int64_value() != 0;
  }
  if (args.size() > first + 3) {
    if (!args[first + 3].is_int64() || args[first + 3].int64_value() <= 0) {
      return Status::InvalidArgument("reconnect timeout must be positive");
    }
    options.reconnect_timeout_ms =
        static_cast<int>(args[first + 3].int64_value());
  }
  if (args.size() > first + 4) {
    if (!args[first + 4].is_int64()) {
      return Status::InvalidArgument("heartbeat interval must be an integer");
    }
    options.heartbeat_ms = static_cast<int>(args[first + 4].int64_value());
  }
  if (args.size() > first + 5) {
    if (!args[first + 5].is_int64() || args[first + 5].int64_value() <= 0) {
      return Status::InvalidArgument("replay window must be positive");
    }
    options.replay_window_bytes =
        static_cast<size_t>(args[first + 5].int64_value());
  }
  return options;
}

SchemaPtr SqlStreamSinkUdf::SummarySchema() {
  return Schema::Make({{"worker", DataType::kInt64},
                       {"rows_sent", DataType::kInt64},
                       {"bytes_sent", DataType::kInt64},
                       {"spilled_frames", DataType::kInt64}});
}

Result<SchemaPtr> SqlStreamSinkUdf::Bind(const SchemaPtr& input_schema,
                                         const std::vector<Value>& args) {
  if (input_schema == nullptr) {
    return Status::InvalidArgument("sql_stream_sink needs an input relation");
  }
  if (args.size() < 3 || !args[0].is_string() || !args[1].is_int64() ||
      !args[2].is_string()) {
    return Status::InvalidArgument(
        "sql_stream_sink(query, host, port, command[, buffer, spill, "
        "resilient])");
  }
  coordinator_host_ = args[0].string_value();
  coordinator_port_ = static_cast<int>(args[1].int64_value());
  command_ = args[2].string_value();
  ASSIGN_OR_RETURN(options_, StreamSinkOptions::FromArgs(args, 3));
  input_schema_ = input_schema;
  return SummarySchema();
}

Status SqlStreamSinkUdf::ProcessPartition(const TableUdfContext& context,
                                          RowIterator* input,
                                          RowSink* output) {
  return RunTransfer(context, input, /*batches=*/nullptr, output);
}

Status SqlStreamSinkUdf::ProcessPartitionBatches(const TableUdfContext& context,
                                                 BatchIterator* input,
                                                 RowSink* output) {
  if (input == nullptr) {
    return Status::InvalidArgument("sql_stream_sink needs an input relation");
  }
  return RunTransfer(context, /*rows=*/nullptr, input, output);
}

Status SqlStreamSinkUdf::RunTransfer(const TableUdfContext& context,
                                     RowIterator* input,
                                     BatchIterator* batches, RowSink* output) {
  // Per-partition root of the SQL side of the trace. Every frame this
  // worker sends (registration, schema, data) carries a descendant of this
  // span, so the coordinator and the ML reader join the same trace.
  TraceSpan partition_span("sink.partition");
  partition_span.AddAttribute("worker", context.worker_id);
  const TraceContext partition_ctx = partition_span.context();

  // --- Step 1: open the data port and register with the coordinator. ---
  //
  // Mux mode: every partition in the process shares ONE listener (the
  // MuxSinkServer) and readers multiplex channels over the pooled
  // connections to it; the registration advertises the routing key.
  // Legacy mode keeps the per-transfer ephemeral listener.
  struct Inbound {
    FrameChannelPtr channel;
    int64_t resume_seq = -1;  ///< From HELLO: -1 = "sink decides".
    int split_id = -1;        ///< From HELLO: the split this channel serves.
  };
  /// State shared with the MuxSinkServer handler, which can fire on a
  /// connection's demux thread even as this transfer tears down — so it
  /// owns the inboxes jointly and checks `closed` under the lock.
  struct MuxRouterState {
    std::mutex mu;
    bool closed = false;
    int k = 0;  ///< 0 until registration tells us the fan-in.
    std::vector<std::shared_ptr<BlockingQueue<Inbound>>> inboxes;
    /// Channels that opened before registration told us `k`. The legacy
    /// listener's accept backlog parks early dialers for free; the mux
    /// handler must do it explicitly, or a reader racing the registration
    /// ack gets a hard reject it may not retry.
    std::vector<std::pair<FrameChannelPtr, OpenChannelMessage>> pending;
  };

  const bool mux = MuxEnabled();
  TcpListener listener;
  std::shared_ptr<MuxRouterState> mux_state;
  uint64_t sink_key = 0;
  int data_port = 0;
  if (mux) {
    ASSIGN_OR_RETURN(data_port, MuxSinkServer::Global().EnsureStarted());
    mux_state = std::make_shared<MuxRouterState>();
    sink_key = MuxSinkServer::Global().Register(
        [mux_state](FrameChannelPtr channel, const OpenChannelMessage& msg) {
          // Demux-thread context: route without blocking.
          std::shared_ptr<BlockingQueue<Inbound>> inbox;
          {
            std::lock_guard<std::mutex> lock(mux_state->mu);
            if (!mux_state->closed && mux_state->k == 0) {
              // Registration has not told us the fan-in yet: park the
              // channel; setting `k` drains the backlog into the inboxes.
              mux_state->pending.emplace_back(std::move(channel), msg);
              return;
            }
            if (!mux_state->closed && mux_state->k > 0) {
              const int slot = msg.hello.split_id % mux_state->k;
              if (slot >= 0) {
                inbox = mux_state->inboxes[static_cast<size_t>(slot)];
              }
            }
          }
          if (inbox == nullptr) {
            channel->Shutdown(Status::Unavailable("sink not serving"));
            return;
          }
          // A full or closed inbox drops the rejected Inbound, whose channel
          // destructor closes the channel — the reader backs off and
          // retries. The shared socket is untouched either way.
          (void)inbox->TryPush(Inbound{std::move(channel),
                                       msg.hello.resume_seq,
                                       msg.hello.split_id});
        });
  } else {
    ASSIGN_OR_RETURN(listener, TcpListener::Listen(0));
    data_port = listener.port();
  }
  const std::string my_host =
      context.cluster != nullptr ? context.cluster->HostName(context.worker_id)
                                 : "localhost";

  RegisterSqlMessage registration;
  registration.worker_id = context.worker_id;
  registration.num_workers = context.num_workers;
  registration.host = my_host;
  registration.port = data_port;
  registration.command = command_;
  registration.schema = input_schema_;
  registration.sink_key = sink_key;
  int k = 1;
  {
    TraceSpan register_span("sink.register");
    // Registration is idempotent on the coordinator, so transient failures
    // (dropped control connections, injected faults) are retried with
    // backoff rather than restarting the whole SQL task.
    RetryPolicy::Options retry_options;
    retry_options.deadline_ms = options_.reconnect_timeout_ms;
    retry_options.seed = static_cast<uint64_t>(context.worker_id);
    RetryPolicy retry(retry_options);
    Result<int> splits_per_worker = retry.Run([&]() -> Result<int> {
      if (SQLINK_FAILPOINT("stream.sink.register") != FailpointOutcome::kNone) {
        return Status::NetworkError("failpoint: injected registration error");
      }
      ASSIGN_OR_RETURN(TcpSocket control,
                       TcpConnect(coordinator_host_, coordinator_port_));
      RETURN_IF_ERROR(SendFrame(&control, FrameType::kRegisterSql,
                                registration.Encode()));
      ASSIGN_OR_RETURN(Frame ack, RecvFrame(&control));
      if (ack.type != FrameType::kAck) {
        return Status::NetworkError("coordinator rejected registration: " +
                                    ack.payload);
      }
      Decoder decoder(ack.payload);
      ASSIGN_OR_RETURN(uint64_t splits, decoder.GetVarint64());
      return static_cast<int>(splits);
    });
    if (!splits_per_worker.ok()) return splits_per_worker.status();
    k = *splits_per_worker;
  }

  // --- Step 7: route incoming data connections to their slot by HELLO
  // split id (slot = split_id mod k within this worker's group).
  // Reconnects and §6 replacement readers arrive the same way. Mux mode
  // routes in the MuxSinkServer handler registered above; legacy mode runs
  // a per-transfer accept/router thread. ---
  std::vector<std::shared_ptr<BlockingQueue<Inbound>>> inboxes;
  for (int j = 0; j < k; ++j) {
    inboxes.push_back(std::make_shared<BlockingQueue<Inbound>>(4));
  }
  if (mux) {
    std::lock_guard<std::mutex> lock(mux_state->mu);
    mux_state->k = k;
    mux_state->inboxes = inboxes;
    // Drain channels that beat the registration ack here. A full inbox
    // drops the parked Inbound just as the live-route path would.
    for (auto& [channel, msg] : mux_state->pending) {
      const int slot = msg.hello.split_id % k;
      (void)inboxes[static_cast<size_t>(slot)]->TryPush(
          Inbound{std::move(channel), msg.hello.resume_seq,
                  msg.hello.split_id});
    }
    mux_state->pending.clear();
  }
  std::atomic<bool> router_stop{false};
  std::thread router;
  if (!mux) {
    router = std::thread([&] {
      while (!router_stop.load()) {
        auto socket = listener.Accept();
        if (!socket.ok()) return;  // Listener closed.
        auto shared = std::make_shared<TcpSocket>(std::move(*socket));
        auto hello_frame = RecvFrame(shared.get());
        if (!hello_frame.ok() || hello_frame->type != FrameType::kHello) {
          continue;
        }
        auto hello = HelloMessage::Decode(hello_frame->payload);
        if (!hello.ok()) continue;
        const int slot = hello->split_id % k;
        if (slot < 0 || slot >= k) continue;
        inboxes[static_cast<size_t>(slot)]->Push(
            Inbound{std::make_shared<SocketFrameChannel>(std::move(shared)),
                    hello->resume_seq, hello->split_id});
      }
    });
  }
  // Always unwind the router on exit.
  struct RouterGuard {
    TcpListener* listener;
    std::atomic<bool>* stop;
    std::thread* router;
    std::vector<std::shared_ptr<BlockingQueue<Inbound>>>* inboxes;
    std::shared_ptr<MuxRouterState> mux_state;
    uint64_t sink_key;
    ~RouterGuard() {
      if (mux_state != nullptr) {
        MuxSinkServer::Global().Unregister(sink_key);
        std::lock_guard<std::mutex> lock(mux_state->mu);
        mux_state->closed = true;
        for (auto& [channel, msg] : mux_state->pending) {
          channel->Shutdown(Status::Unavailable("sink not serving"));
        }
        mux_state->pending.clear();
      }
      stop->store(true);
      listener->Close();
      if (router->joinable()) router->join();
      for (auto& inbox : *inboxes) inbox->Close();
    }
  } router_guard{&listener, &router_stop, &router,
                 &inboxes,  mux_state,    sink_key};

  // Waits for a data connection on `inbox`, pacing the poll with a backoff
  // policy so the total wait across reconnect attempts is deadline-capped
  // rather than one fixed-length block per attempt. Leaves `out` empty when
  // the inbox closes (shutdown). Between slices, `acked_out_of_band` checks
  // whether the split was already reported complete to the coordinator — a
  // reader whose final ack died with a shared connection finishes that way
  // and never reconnects; `*completed` signals that success to the caller.
  auto wait_for_inbound = [](BlockingQueue<Inbound>* inbox,
                             RetryPolicy* policy,
                             const std::function<bool()>& acked_out_of_band,
                             std::optional<Inbound>* out,
                             bool* completed) -> Status {
    for (;;) {
      const auto slice = policy->NextDelay();
      if (!slice.has_value()) {
        return Status::Unavailable("timed out waiting for ML worker");
      }
      bool timed_out = false;
      *out = inbox->PopFor(*slice, &timed_out);
      if (!timed_out) return Status::OK();
      if (acked_out_of_band != nullptr && acked_out_of_band()) {
        *completed = true;
        return Status::OK();
      }
    }
  };
  RetryPolicy::Options inbound_wait_options;
  inbound_wait_options.deadline_ms = options_.reconnect_timeout_ms;
  inbound_wait_options.jitter = 0.0;

  const std::string scratch_dir =
      context.cluster != nullptr
          ? context.cluster->NodeLocalDir(context.worker_id)
          : "/tmp";
  int64_t rows_sent = 0;
  int64_t bytes_sent = 0;
  int64_t spilled_frames = 0;

  // Columnar mode is fixed for the transfer's lifetime: every data frame on
  // a channel uses one encoding, so live and replayed frames always agree.
  const bool columnar = ColumnarEnabled();
  const FrameType data_frame_type =
      columnar ? FrameType::kColData : FrameType::kData;
  FrameBufferPool* const frame_pool = FrameBufferPool::Global();
  // One dictionary set per target channel, shared by the producer-side
  // batcher (which appends entries while encoding deltas) and the sender
  // (which snapshots it into a kDictPage on every (re)connect).
  std::vector<std::unique_ptr<ColumnarChannelEncoder>> encoders;
  if (columnar) {
    for (int j = 0; j < k; ++j) {
      encoders.push_back(
          std::make_unique<ColumnarChannelEncoder>(input_schema_));
    }
  }

  // --- Step 8: round-robin rows into per-target send buffers while sender
  // threads drain them onto the sockets. Each sender retains sent frames in
  // a replay window until the reader's cumulative ack releases them. ---
  std::vector<std::unique_ptr<SpillingByteQueue>> queues;
  for (int j = 0; j < k; ++j) {
    SpillingByteQueue::Options queue_options;
    queue_options.memory_capacity_bytes = options_.send_buffer_bytes;
    queue_options.spill_enabled = options_.spill_enabled;
    // The query id keeps scratch paths distinct when several queries run
    // concurrently on one engine — without it, two pipelines truncate and
    // delete each other's spill files.
    queue_options.spill_path = scratch_dir + "/stream_spill_q" +
                               std::to_string(context.query_id) + "_w" +
                               std::to_string(context.worker_id) + "_t" +
                               std::to_string(j);
    // Per-query spill quota (serving layer): when exhausted, Push degrades
    // to backpressure instead of growing the shared spill directory.
    queue_options.spill_budget = context.spill_budget;
    queues.push_back(std::make_unique<SpillingByteQueue>(queue_options));
  }

  // Channels the senders are actively serving, so an abort can shut each
  // LOGICAL channel down — waking a sender parked on flow-control credit or
  // a blocking ack wait — without ever touching the shared mux socket the
  // channel rides on (other queries keep flowing).
  struct ActiveChannels {
    std::mutex mu;
    std::vector<FrameChannelPtr> by_target;
    void Set(size_t j, FrameChannelPtr channel) {
      std::lock_guard<std::mutex> lock(mu);
      by_target[j] = std::move(channel);
    }
    void ShutdownAll(const Status& status) {
      std::lock_guard<std::mutex> lock(mu);
      for (auto& channel : by_target) {
        if (channel != nullptr) channel->Shutdown(status);
      }
    }
  } active_channels;
  active_channels.by_target.resize(static_cast<size_t>(k));

  // Sink lease: one heartbeat per SQL worker. Revocation means the
  // coordinator aborted the query (or fenced this sink) — cancel the send
  // queues so producer and senders unwind promptly with a typed status.
  HeartbeatSender::Options beat_options;
  beat_options.coordinator_host = coordinator_host_;
  beat_options.coordinator_port = coordinator_port_;
  beat_options.interval_ms = options_.heartbeat_ms;
  beat_options.role = HeartbeatMessage::kSink;
  beat_options.id = context.worker_id;
  beat_options.on_revoked = [&queues, &inboxes, &active_channels] {
    for (auto& queue : queues) queue->Cancel();
    // A sender parked waiting for a (re)connect must wake too: an aborted
    // query has no replacement reader coming, so sleeping out the full
    // reconnect window would stall the drain.
    for (auto& inbox : inboxes) inbox->Close();
    active_channels.ShutdownAll(Status::Aborted("sink lease revoked"));
  };
  HeartbeatSender heartbeat(beat_options);
  heartbeat.Start();

  // Per-query cancellation (client disconnect, deadline): same unwind as a
  // lease revocation — cancel the queues, wake parked senders. The guard is
  // declared after the queues so its destructor removes the callback (and
  // waits out any in-flight cancel pass) BEFORE the queues are destroyed.
  struct CancelGuard {
    Cancellation* cancellation;
    int64_t id = 0;
    ~CancelGuard() {
      if (cancellation != nullptr) cancellation->RemoveCallback(id);
    }
  } cancel_guard{context.cancellation};
  if (context.cancellation != nullptr) {
    cancel_guard.id =
        context.cancellation->OnCancel([&queues, &inboxes, &active_channels] {
          for (auto& queue : queues) queue->Cancel();
          for (auto& inbox : inboxes) inbox->Close();
          active_channels.ShutdownAll(Status::Cancelled("query cancelled"));
        });
  }

  static Counter* const replayed_counter =
      MetricsRegistry::Global().GetCounter("transfer.frames_replayed");

  std::atomic<int64_t> channels_served{0};
  std::vector<std::thread> senders;
  std::vector<Status> sender_status(static_cast<size_t>(k));
  for (int j = 0; j < k; ++j) {
    senders.emplace_back([&, j] {
      // The sender runs on its own thread, so it parents to the partition
      // span explicitly; frames it sends inherit this span's context.
      TraceSpan send_span("sink.send", partition_ctx);
      send_span.AddAttribute("target", j);
      SpillingByteQueue* queue = queues[static_cast<size_t>(j)].get();

      ReplayWindow::Options window_options;
      window_options.memory_capacity_bytes = options_.replay_window_bytes;
      window_options.spill_enabled = options_.spill_enabled;
      window_options.spill_path = scratch_dir + "/stream_replay_q" +
                                  std::to_string(context.query_id) + "_w" +
                                  std::to_string(context.worker_id) + "_t" +
                                  std::to_string(j);
      window_options.buffer_pool = frame_pool;
      ReplayWindow window(window_options);
      bool input_done = false;  ///< The send queue has been fully drained.

      // A reader that applied the whole stream can lose its final ack to a
      // dying shared connection: it reports kCompleteSplit to the
      // coordinator and never reconnects. Track the split this sender
      // serves so the reconnect wait can poll that out-of-band signal.
      int served_split = -1;
      auto split_completed = [&]() -> bool {
        if (served_split < 0) return false;
        auto control = TcpConnect(coordinator_host_, coordinator_port_);
        if (!control.ok()) return false;
        std::string payload;
        PutVarint64(&payload, static_cast<uint64_t>(served_split));
        if (!SendFrame(&*control, FrameType::kSplitStatus, payload).ok()) {
          return false;
        }
        auto reply = RecvFrame(&*control);
        if (!reply.ok() || reply->type != FrameType::kAck) return false;
        Decoder decoder(reply->payload);
        auto done = decoder.GetVarint64();
        return done.ok() && *done == 1;
      };

      // Serves one (re)connection: answer HELLO with the resume point,
      // replay the unacked suffix, then stream live frames until the input
      // is exhausted and the reader's final ack lands.
      auto serve = [&](const Inbound& conn) -> Status {
        FrameChannel* channel = conn.channel.get();
        if (conn.split_id >= 0) served_split = conn.split_id;
        AckChannel acks(channel);
        channels_served.fetch_add(1, std::memory_order_relaxed);
        // Publish the channel so an abort can wake this sender even while
        // it is parked inside a credit wait or the final-ack wait; clear it
        // on every exit path before the Inbound (and channel) dies.
        active_channels.Set(static_cast<size_t>(j), conn.channel);
        struct ActiveGuard {
          ActiveChannels* active;
          size_t j;
          ~ActiveGuard() { active->Set(j, nullptr); }
        } active_guard{&active_channels, static_cast<size_t>(j)};

        uint64_t resume = conn.resume_seq < 0
                              ? window.acked_seq()
                              : static_cast<uint64_t>(conn.resume_seq);
        // The window forgets acked frames, and never holds future ones.
        resume = std::max(resume, window.acked_seq());
        resume = std::min(resume, window.last_seq());
        ASSIGN_OR_RETURN(uint64_t resume_rows, window.RowsThrough(resume));
        ResumeMessage resume_msg;
        resume_msg.resume_seq = resume;
        resume_msg.resume_rows = resume_rows;
        RETURN_IF_ERROR(
            channel->Send(FrameType::kResume, resume_msg.Encode(), 0));

        std::string schema_payload;
        EncodeSchema(*input_schema_, &schema_payload);
        RETURN_IF_ERROR(channel->Send(FrameType::kSchema, schema_payload, 0));

        if (columnar) {
          // Full dictionary snapshot on every (re)connect: replayed delta
          // frames then only re-append entries the reader already has,
          // which the decoder skips, so replay stays idempotent.
          RETURN_IF_ERROR(
              channel->Send(FrameType::kDictPage,
                            encoders[static_cast<size_t>(j)]->SnapshotDicts(),
                            0));
        }

        RETURN_IF_ERROR(window.Replay(
            resume, [&](uint64_t seq, uint64_t rows, const std::string& frame)
                        -> Status {
              (void)rows;
              RETURN_IF_ERROR(channel->Send(data_frame_type, frame, seq));
              replayed_counter->Increment();
              return Status::OK();
            }));

        while (!input_done) {
          RETURN_IF_ERROR(acks.Poll(&window));
          ASSIGN_OR_RETURN(std::optional<std::string> frame, queue->Pop());
          if (!frame.has_value()) {
            input_done = true;
            break;
          }
          ASSIGN_OR_RETURN(uint64_t rows, FrameRowCount(*frame));
          const uint64_t seq = window.last_seq() + 1;
          // Retain before sending: a frame that dies on the wire must
          // already be replayable. The retained copy lives in a pooled
          // buffer that Ack() recycles; the popped frame goes back to the
          // pool once it is on the wire.
          std::string retained = frame_pool->Acquire();
          retained.assign(*frame);
          RETURN_IF_ERROR(window.Append(seq, rows, std::move(retained)));
          RETURN_IF_ERROR(channel->Send(data_frame_type, *frame, seq));
          frame_pool->Release(std::move(*frame));
        }

        // kEnd carries the last data sequence so the reader can detect a
        // gap, and the channel's total row count for validation.
        ASSIGN_OR_RETURN(uint64_t total_rows,
                         window.RowsThrough(window.last_seq()));
        std::string end_payload;
        PutVarint64(&end_payload, total_rows);
        RETURN_IF_ERROR(channel->Send(FrameType::kEnd, end_payload,
                                      window.last_seq()));
        return acks.AwaitFinalAck(&window);
      };

      auto run = [&]() -> Status {
        // Bounded wait shared across every (re)connect: a dead ML job
        // becomes an error, not a hang.
        RetryPolicy wait_policy(inbound_wait_options);
        Status status = Status::Cancelled("no ML worker connected");
        for (;;) {
          std::optional<Inbound> conn;
          bool acked_via_coordinator = false;
          RETURN_IF_ERROR(wait_for_inbound(
              inboxes[static_cast<size_t>(j)].get(), &wait_policy,
              split_completed, &conn, &acked_via_coordinator));
          if (acked_via_coordinator) return Status::OK();
          if (!conn.has_value()) {
            return Status::Cancelled("no ML worker connected");
          }
          // An abort can race an inbound into the queue; serving it would
          // stream rows for a query that is already dead, retrying past
          // the transfer's end instead of honoring its deadline.
          if (heartbeat.revoked()) return heartbeat.status();
          if (context.cancellation != nullptr &&
              context.cancellation->cancelled()) {
            return context.cancellation->status();
          }
          status = serve(*conn);
          if (status.ok()) return status;
          if (heartbeat.revoked()) return heartbeat.status();
          if (!options_.resilient || !RetryPolicy::IsTransient(status)) {
            return status;
          }
          LOG_WARNING() << "stream sink worker " << context.worker_id
                        << " target " << j
                        << " transfer failed, awaiting reconnect: " << status;
        }
      };
      Status status = run();
      if (heartbeat.revoked()) status = heartbeat.status();
      sender_status[static_cast<size_t>(j)] = status;
      if (!status.ok()) {
        send_span.SetError();
        // Unblock the producer so the SQL side fails fast instead of
        // filling a queue nobody drains.
        queue->Cancel();
      }
      send_span.AddAttribute("replay_spilled", window.spilled_frames());
    });
  }

  std::vector<std::unique_ptr<FrameBatcher>> batchers;
  for (int j = 0; j < k; ++j) {
    if (columnar) {
      batchers.push_back(std::make_unique<ColumnarFrameBatcher>(
          input_schema_, encoders[static_cast<size_t>(j)].get(), frame_pool));
    } else {
      batchers.push_back(std::make_unique<RowFrameBatcher>(frame_pool));
    }
  }
  Status produce_status;
  size_t next_target = 0;
  // Flushes target j's accumulated frame when it crossed the buffer size.
  auto maybe_flush = [&](size_t j) -> Status {
    FrameBatcher& batch = *batchers[j];
    if (batch.bytes() < options_.send_buffer_bytes) return Status::OK();
    ASSIGN_OR_RETURN(std::string frame, batch.Flush());
    bytes_sent += static_cast<int64_t>(frame.size());
    return queues[j]->Push(std::move(frame));
  };
  if (batches != nullptr) {
    // Batch path: per-row round-robin routing identical to the row path,
    // but each target receives its slice of the batch as one gather — in
    // columnar wire mode no row is ever boxed.
    ColumnBatch batch;
    std::vector<std::vector<int32_t>> target_sel(static_cast<size_t>(k));
    // Feeds one target's slice in threshold-sized chunks so frame sizes
    // stay near send_buffer_bytes, exactly like the per-row flush check —
    // spill/backpressure behavior must not depend on the engine mode.
    auto add_slice = [&](size_t j, const ColumnBatch& src,
                         const std::vector<int32_t>& sel) -> Status {
      const double avg_row_bytes =
          src.num_rows() > 0
              ? std::max(1.0, static_cast<double>(src.ByteSize()) /
                                  static_cast<double>(src.num_rows()))
              : 1.0;
      size_t off = 0;
      while (off < sel.size()) {
        FrameBatcher& batcher = *batchers[j];
        const size_t room = options_.send_buffer_bytes > batcher.bytes()
                                ? options_.send_buffer_bytes - batcher.bytes()
                                : 0;
        size_t take = std::max<size_t>(
            1, static_cast<size_t>(static_cast<double>(room) / avg_row_bytes));
        take = std::min(take, sel.size() - off);
        RETURN_IF_ERROR(batcher.AddRows(src, sel.data() + off, take));
        rows_sent += static_cast<int64_t>(take);
        RETURN_IF_ERROR(maybe_flush(j));
        off += take;
      }
      return Status::OK();
    };
    for (;;) {
      auto has = batches->Next(&batch);
      if (!has.ok()) {
        produce_status = has.status();
        break;
      }
      if (!*has) break;
      for (auto& sel : target_sel) sel.clear();
      for (size_t r = 0; r < batch.num_rows(); ++r) {
        target_sel[next_target].push_back(static_cast<int32_t>(r));
        next_target = (next_target + 1) % static_cast<size_t>(k);
      }
      for (size_t j = 0; j < target_sel.size() && produce_status.ok(); ++j) {
        if (target_sel[j].empty()) continue;
        produce_status = add_slice(j, batch, target_sel[j]);
      }
      if (!produce_status.ok()) break;
    }
  } else {
    Row row;
    for (;;) {
      auto has = input->Next(&row);
      if (!has.ok()) {
        produce_status = has.status();
        break;
      }
      if (!*has) break;
      produce_status = batchers[next_target]->Add(row);
      if (!produce_status.ok()) break;
      ++rows_sent;
      produce_status = maybe_flush(next_target);
      if (!produce_status.ok()) break;
      next_target = (next_target + 1) % static_cast<size_t>(k);
    }
  }
  if (produce_status.ok()) {
    for (size_t j = 0; j < batchers.size(); ++j) {
      if (batchers[j]->empty()) continue;
      Result<std::string> frame = batchers[j]->Flush();
      if (!frame.ok()) {
        produce_status = frame.status();
        break;
      }
      bytes_sent += static_cast<int64_t>(frame->size());
      produce_status = queues[j]->Push(std::move(*frame));
      if (!produce_status.ok()) break;
    }
  }
  for (auto& queue : queues) {
    if (produce_status.ok()) {
      queue->CloseProducer();
    } else {
      queue->Cancel();
    }
  }
  for (std::thread& sender : senders) sender.join();
  for (auto& queue : queues) spilled_frames += queue->spilled_frames();

  Status transfer_status = produce_status;
  if (transfer_status.ok()) {
    for (const Status& status : sender_status) {
      if (!status.ok()) {
        transfer_status = status;
        break;
      }
    }
  }
  if (heartbeat.revoked()) transfer_status = heartbeat.status();
  if (!transfer_status.ok() && context.cancellation != nullptr &&
      context.cancellation->cancelled()) {
    // Surface the typed cancellation status (kCancelled / deadline) instead
    // of the generic "queue cancelled" the unwind produced.
    transfer_status = context.cancellation->status();
  }
  if (!transfer_status.ok()) {
    // The SQL side is done for: broadcast the abort so readers and the
    // runner drain promptly instead of waiting out lease TTLs.
    heartbeat.Stop(HeartbeatMessage::kAlive);
    if (options_.heartbeat_ms > 0 && !heartbeat.revoked()) {
      auto control = TcpConnect(coordinator_host_, coordinator_port_);
      if (control.ok()) {
        (void)SendFrame(&*control, FrameType::kAbortQuery,
                        EncodeStatus(transfer_status));
        (void)RecvFrame(&*control);
      }
    }
    return transfer_status;
  }
  heartbeat.Stop(HeartbeatMessage::kCompleted);

  static Counter* const rows_counter =
      MetricsRegistry::Global().GetCounter("stream.sink.rows_sent");
  static Counter* const bytes_counter =
      MetricsRegistry::Global().GetCounter("stream.sink.bytes_sent");
  rows_counter->Add(rows_sent);
  bytes_counter->Add(bytes_sent);
  partition_span.AddAttribute("rows_sent", rows_sent);
  partition_span.AddAttribute("bytes_sent", bytes_sent);
  partition_span.AddAttribute("spilled_frames", spilled_frames);
  // Attribute the transfer to its owning query so the /queries ops endpoint
  // shows live transfer progress next to the query's operator stats.
  if (context.query_id != 0) {
    partition_span.AddAttribute("query_id",
                                static_cast<int64_t>(context.query_id));
    if (QueryRecordPtr record =
            QueryRegistry::Global().Find(context.query_id)) {
      record->transfer_rows.fetch_add(rows_sent, std::memory_order_relaxed);
      record->transfer_bytes.fetch_add(bytes_sent, std::memory_order_relaxed);
      record->transfer_spilled_frames.fetch_add(spilled_frames,
                                                std::memory_order_relaxed);
      record->transfer_channels.fetch_add(
          channels_served.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
  }
  return output->Push(Row{Value::Int64(context.worker_id),
                          Value::Int64(rows_sent), Value::Int64(bytes_sent),
                          Value::Int64(spilled_frames)});
}

Status RegisterStreamSinkUdf(SqlEngine* engine) {
  if (engine->table_udfs()->Contains("sql_stream_sink")) return Status::OK();
  Status registered = engine->table_udfs()->Register(
      "sql_stream_sink", [] { return std::make_shared<SqlStreamSinkUdf>(); });
  // Concurrent transfers race to register first; losing the race is fine.
  if (registered.IsAlreadyExists()) return Status::OK();
  return registered;
}

}  // namespace sqlink
