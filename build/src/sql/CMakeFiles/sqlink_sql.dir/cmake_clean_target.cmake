file(REMOVE_RECURSE
  "libsqlink_sql.a"
)
