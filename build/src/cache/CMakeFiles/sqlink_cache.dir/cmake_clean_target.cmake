file(REMOVE_RECURSE
  "libsqlink_cache.a"
)
