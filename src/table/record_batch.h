#ifndef SQLINK_TABLE_RECORD_BATCH_H_
#define SQLINK_TABLE_RECORD_BATCH_H_

#include <utility>
#include <vector>

#include "table/schema.h"
#include "table/value.h"

namespace sqlink {

/// A schema plus a chunk of rows: the unit of data flowing between physical
/// operators and over streaming channels.
class RecordBatch {
 public:
  RecordBatch() = default;
  RecordBatch(SchemaPtr schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const SchemaPtr& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  void Append(Row row) { rows_.push_back(std::move(row)); }

 private:
  SchemaPtr schema_;
  std::vector<Row> rows_;
};

}  // namespace sqlink

#endif  // SQLINK_TABLE_RECORD_BATCH_H_
