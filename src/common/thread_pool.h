#ifndef SQLINK_COMMON_THREAD_POOL_H_
#define SQLINK_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace sqlink {

/// Fixed-size worker pool. Tasks are arbitrary callables; Submit returns a
/// future for the task's result. The destructor drains the queue and joins.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (unbounded queue).
  void Schedule(std::function<void()> task);

  /// Enqueues a task and returns a future for its result.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Schedule([task] { (*task)(); });
    return future;
  }

  /// Blocks until every scheduled task has finished.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Runs `fn(i)` for i in [0, n) on `n` dedicated threads and joins them all.
/// This is the "one thread per worker" pattern used by the simulated cluster
/// (SQL workers, ML workers), where worker identity matters.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

}  // namespace sqlink

#endif  // SQLINK_COMMON_THREAD_POOL_H_
