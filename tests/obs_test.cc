// Observability layer tests (ISSUE 7): Prometheus text exposition, the
// query registry lifecycle, the embedded HTTP ops server, slow-query
// logging, and the tracer's bounded ring + periodic sink flush.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "obs/ops_server.h"
#include "sql/engine.h"
#include "sql/query_registry.h"
#include "sql/query_stats.h"
#include "stream/socket.h"
#include "table/table.h"

namespace sqlink {
namespace {

TEST(PrometheusTextTest, ExposesCountersGaugesAndHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("sql.queries")->Add(7);
  registry.GetGauge("sql.queries_active")->Set(2);
  registry.GetHistogram("sql.query_micros")->Record(1000);
  registry.GetHistogram("sql.query_micros")->Record(3000);

  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE sqlink_sql_queries counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sqlink_sql_queries 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sqlink_sql_queries_active gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("sqlink_sql_queries_active 2\n"), std::string::npos);
  EXPECT_NE(text.find("sqlink_sql_queries_active_max 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sqlink_sql_query_micros summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("sqlink_sql_query_micros{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("sqlink_sql_query_micros_sum 4000\n"),
            std::string::npos);
  EXPECT_NE(text.find("sqlink_sql_query_micros_count 2\n"),
            std::string::npos);
  // Dots never leak into Prometheus names.
  EXPECT_EQ(text.find("sql.queries"), std::string::npos);
}

TEST(QErrorTest, SymmetricAndClamped) {
  EXPECT_DOUBLE_EQ(QError(100, 100), 1.0);
  EXPECT_DOUBLE_EQ(QError(100, 25), 4.0);
  EXPECT_DOUBLE_EQ(QError(25, 100), 4.0);
  // Zero-row sides clamp to one row instead of dividing by zero.
  EXPECT_DOUBLE_EQ(QError(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(QError(10, 0), 10.0);
  EXPECT_DOUBLE_EQ(QError(0, 10), 10.0);
}

TEST(QueryRegistryTest, LifecycleAndFinishedRing) {
  QueryRegistry registry;
  registry.set_finished_capacity(2);

  QueryRecordPtr a = registry.Begin("SELECT 1", "vectorized", nullptr, 11);
  QueryRecordPtr b = registry.Begin("SELECT 2", "row", nullptr, 0);
  EXPECT_NE(a->query_id, b->query_id);
  EXPECT_EQ(registry.active_count(), 2u);
  EXPECT_EQ(registry.Find(a->query_id), a);

  registry.Finish(a, Status::OK(), 1500, 2.5);
  EXPECT_EQ(registry.active_count(), 1u);
  EXPECT_EQ(registry.finished_count(), 1u);
  EXPECT_TRUE(a->finished);
  EXPECT_TRUE(a->ok);
  EXPECT_EQ(a->duration_micros, 1500);
  // Finished records stay findable (the ops endpoint links to them).
  EXPECT_EQ(registry.Find(a->query_id), a);

  registry.Finish(b, Status::Internal("boom"), 10, 1.0);
  EXPECT_FALSE(b->ok);
  EXPECT_NE(b->error.find("boom"), std::string::npos);
  // Most recent first.
  ASSERT_EQ(registry.finished_count(), 2u);
  EXPECT_EQ(registry.Finished()[0], b);

  // The ring evicts the oldest beyond capacity.
  QueryRecordPtr c = registry.Begin("SELECT 3", "row", nullptr, 0);
  registry.Finish(c, Status::OK(), 1, 1.0);
  EXPECT_EQ(registry.finished_count(), 2u);
  EXPECT_EQ(registry.Find(a->query_id), nullptr);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"active\""), std::string::npos);
  EXPECT_NE(json.find("SELECT 3"), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"error\""), std::string::npos);
}

/// Raw HTTP GET against the ops server; returns the full response text.
std::string HttpGet(int port, const std::string& path) {
  auto socket = TcpConnect("127.0.0.1", port);
  if (!socket.ok()) return "";
  if (!socket
           ->SendAll("GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n")
           .ok()) {
    return "";
  }
  std::string response;
  bool eof = false;
  while (!eof) {
    auto n = socket->TryRecv(4096, &response, &eof);
    if (!n.ok()) break;
    if (*n == 0 && !eof) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return response;
}

TEST(OpsServerTest, ServesMetricsQueriesTracezAndHealth) {
  MetricsRegistry::Global().GetCounter("sql.queries")->Add(1);
  OpsServer::Options options;  // Port 0: ephemeral.
  auto server = OpsServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const int port = (*server)->port();
  ASSERT_GT(port, 0);

  const std::string health = HttpGet(port, "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE sqlink_"), std::string::npos) << metrics;

  const std::string queries = HttpGet(port, "/queries");
  EXPECT_NE(queries.find("200 OK"), std::string::npos);
  EXPECT_NE(queries.find("application/json"), std::string::npos);
  EXPECT_NE(queries.find("\"active\""), std::string::npos);

  const std::string tracez = HttpGet(port, "/tracez");
  EXPECT_NE(tracez.find("200 OK"), std::string::npos);
  EXPECT_NE(tracez.find("\"traces\""), std::string::npos);

  const std::string missing = HttpGet(port, "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  (*server)->Stop();
  (*server)->Stop();  // Idempotent.
}

TEST(OpsServerTest, StartFromEnvDisabledWhenUnset) {
  ::unsetenv("SQLINK_OPS_PORT");
  auto server = OpsServer::StartFromEnv();
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(*server, nullptr);
}

class ObsEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("obs_test");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    engine_ = SqlEngine::Make(*cluster, &metrics_);

    auto schema =
        Schema::Make({{"id", DataType::kInt64}, {"tag", DataType::kString}});
    auto table = engine_->MakeTable("items", schema);
    for (int64_t i = 0; i < 100; ++i) {
      table->AppendRow(static_cast<size_t>(i) % table->num_partitions(),
                       Row{Value::Int64(i), Value::String(i % 3 ? "a" : "b")});
    }
    ASSERT_TRUE(engine_->catalog()->RegisterTable(table).ok());
  }

  std::unique_ptr<ScopedTempDir> temp_;
  MetricsRegistry metrics_;
  SqlEnginePtr engine_;
};

TEST_F(ObsEngineTest, TrackedExecutionFeedsPlannerMetrics) {
  auto result = engine_->ExecuteSql("SELECT id FROM items WHERE tag = 'b'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(metrics_.GetCounter("sql.queries")->value(), 1);
  EXPECT_EQ(metrics_.GetGauge("sql.queries_active")->value(), 0);
  EXPECT_EQ(metrics_.GetGauge("sql.queries_active")->max_value(), 1);
  EXPECT_GT(metrics_.GetHistogram("sql.planner.qerror_x100")->count(), 0);
  EXPECT_GT(metrics_.GetHistogram("sql.query_micros")->count(), 0);
}

TEST_F(ObsEngineTest, SlowQueryThresholdLogsAndCounts) {
  ::setenv("SQLINK_SLOW_QUERY_MS", "0", 1);  // Everything is slow.
  auto result = engine_->ExecuteSql("SELECT COUNT(*) FROM items");
  ::unsetenv("SQLINK_SLOW_QUERY_MS");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(metrics_.GetCounter("sql.slow_queries")->value(), 1);
}

TEST_F(ObsEngineTest, SlowQueryDisabledByDefault) {
  ::unsetenv("SQLINK_SLOW_QUERY_MS");
  auto result = engine_->ExecuteSql("SELECT COUNT(*) FROM items");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(metrics_.GetCounter("sql.slow_queries")->value(), 0);
}

TEST(TracerRingTest, RetainsOnlyMostRecentSpans) {
  Tracer& tracer = Tracer::Global();
  tracer.Reset();
  const size_t original = tracer.ring_capacity();
  const bool was_enabled = tracer.enabled();
  tracer.set_enabled(true);
  tracer.set_ring_capacity(4);

  for (int i = 0; i < 10; ++i) {
    TraceSpan span("ring.span" + std::to_string(i));
  }
  EXPECT_EQ(tracer.span_count(), 4u);

  // Recent() is newest-first.
  auto recent = tracer.Recent(2);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].name, "ring.span9");
  EXPECT_EQ(recent[1].name, "ring.span8");

  tracer.set_ring_capacity(original);
  tracer.set_enabled(was_enabled);
  tracer.Reset();
}

TEST(TracerFlushTest, SinkRewrittenBeforeProcessExit) {
  Tracer& tracer = Tracer::Global();
  tracer.Reset();
  const bool was_enabled = tracer.enabled();
  ScopedTempDir temp("trace_flush");
  const std::string sink = temp.path() + "/spans.json";

  // Flush every 2 recorded spans: a long-running process must not wait for
  // the atexit dump.
  tracer.ConfigureSink(sink, /*flush_spans=*/2, /*flush_ms=*/3600 * 1000);
  EXPECT_TRUE(tracer.enabled());
  { TraceSpan span("flush.one"); }
  { TraceSpan span("flush.two"); }

  auto written = ReadFileToString(sink);
  ASSERT_TRUE(written.ok()) << "sink not flushed before exit";
  EXPECT_NE(written->find("flush.one"), std::string::npos);
  EXPECT_NE(written->find("flush.two"), std::string::npos);

  // A third span is below the threshold again — the sink keeps the old
  // content until the next trigger.
  { TraceSpan span("flush.three"); }
  auto after = ReadFileToString(sink);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->find("flush.three"), std::string::npos);

  tracer.ConfigureSink("");
  tracer.set_enabled(was_enabled);
  tracer.Reset();
}

}  // namespace
}  // namespace sqlink
