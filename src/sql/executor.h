#ifndef SQLINK_SQL_EXECUTOR_H_
#define SQLINK_SQL_EXECUTOR_H_

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/byte_budget.h"
#include "common/cancellation.h"
#include "common/metrics.h"
#include "common/result.h"
#include "sql/batch_iterator.h"
#include "sql/plan.h"
#include "sql/query_stats.h"
#include "table/schema.h"
#include "table/value.h"

namespace sqlink {

/// Rows of a query result, partitioned one slice per SQL worker.
struct PartitionedRows {
  SchemaPtr schema;
  std::vector<std::vector<Row>> partitions;

  size_t TotalRows() const {
    size_t total = 0;
    for (const auto& p : partitions) total += p.size();
    return total;
  }

  /// All rows concatenated (small results/tests).
  std::vector<Row> Gather() const {
    std::vector<Row> all;
    all.reserve(TotalRows());
    for (const auto& p : partitions) {
      all.insert(all.end(), p.begin(), p.end());
    }
    return all;
  }
};

/// Parallel plan executor. Each of the n SQL workers runs a pipelined
/// iterator chain over its partition; pipeline breakers (join builds,
/// repartition joins, DISTINCT, aggregation, sort, limit) materialize and
/// exchange rows between workers. Table UDFs stay pipelined: each worker
/// pumps its UDF on a dedicated thread through a bounded queue, so a
/// streaming-transfer UDF overlaps with the upstream query work exactly as
/// the paper's insql+stream pipeline does.
///
/// Two engine modes share the planner and all blocking operators. The row
/// mode chains RowIterator operators; the vectorized mode (default, gated
/// by SQLINK_VECTORIZED_SQL) chains BatchIterator operators over
/// ColumnBatch with selection-vector filters and gather-based joins, and
/// feeds batch-capable table UDFs columns directly. Both must produce
/// identical results — tests/sql_differential_test.cc holds them to it.
class Executor {
 public:
  /// Engine mode follows the SQLINK_VECTORIZED_SQL runtime flag.
  Executor(int num_workers, ClusterPtr cluster, MetricsRegistry* metrics);
  /// Engine mode forced by the caller (benchmarks, differential tests).
  Executor(int num_workers, ClusterPtr cluster, MetricsRegistry* metrics,
           bool vectorized);

  /// Runs the plan and returns its materialized, partitioned result.
  Result<PartitionedRows> Execute(const PlanPtr& plan);

  /// Per-operator stats collection target. When set (and the plan carries
  /// node ids), every operator accumulates rows/batches/time/peak memory
  /// into the matching slot. Not owned; must outlive Execute().
  void set_query_stats(QueryStats* stats) { stats_ = stats; }
  /// Id of the tracked query (flows to table UDFs via TableUdfContext).
  void set_query_id(uint64_t query_id) { query_id_ = query_id; }
  /// Cooperative cancellation source for this query. Worker loops poll it
  /// between batches (or every ~1k rows) and blocking operators check it
  /// up front, so a cancelled query unwinds promptly without disturbing
  /// neighbors. Not owned; must outlive Execute(). Also flows to table
  /// UDFs via TableUdfContext.
  void set_cancellation(Cancellation* cancellation) {
    cancellation_ = cancellation;
  }
  /// Per-query spill quota, handed to table UDFs (the streaming sink wires
  /// it into its spill queues). May be null (no quota).
  void set_spill_budget(ByteBudgetPtr budget) {
    spill_budget_ = std::move(budget);
  }

  int num_workers() const { return num_workers_; }
  bool vectorized() const { return vectorized_; }

 private:
  struct PipelineState;

  /// The stats slot for `plan`, or nullptr when collection is off or the
  /// plan was never numbered.
  OperatorActuals* NodeActuals(const PlanPtr& plan) const {
    return stats_ == nullptr ? nullptr : stats_->actuals(plan->node_id);
  }

  Result<PartitionedRows> ExecuteNode(const PlanPtr& plan);
  Result<PartitionedRows> ExecutePipeline(const PlanPtr& plan);
  Result<PartitionedRows> ExecuteDistinct(const PlanPtr& plan);
  Result<PartitionedRows> ExecuteDistinctVectorized(const PlanPtr& plan);
  Result<PartitionedRows> ExecuteAggregate(const PlanPtr& plan);
  Result<PartitionedRows> ExecuteSort(const PlanPtr& plan);
  Result<PartitionedRows> ExecuteLimit(const PlanPtr& plan);

  /// Sort-merge equi join: repartition both sides by key, sort each
  /// worker's slices, merge equal-key runs. Chosen by the planner's cost
  /// model when the build side would blow the hash-build memory budget.
  Result<PartitionedRows> ExecuteMergeJoin(const PlanPtr& plan);

  Status Prepare(const PlanPtr& plan, PipelineState* state);
  Result<RowIteratorPtr> BuildPipeline(const PlanPtr& plan, int worker,
                                       PipelineState* state);
  Result<BatchIteratorPtr> BuildBatchPipeline(const PlanPtr& plan, int worker,
                                              PipelineState* state);
  /// Operator construction for one node, without the stats wrapper.
  Result<RowIteratorPtr> BuildPipelineNode(const PlanPtr& plan, int worker,
                                           PipelineState* state);
  Result<BatchIteratorPtr> BuildBatchPipelineNode(const PlanPtr& plan,
                                                  int worker,
                                                  PipelineState* state);

  /// Hash-partitions rows by key columns into `num_workers_` slices.
  std::vector<std::vector<Row>> Repartition(std::vector<std::vector<Row>> input,
                                            const std::vector<int>& keys);

  int num_workers_;
  ClusterPtr cluster_;
  MetricsRegistry* metrics_;
  bool vectorized_;
  QueryStats* stats_ = nullptr;
  uint64_t query_id_ = 0;
  Cancellation* cancellation_ = nullptr;
  ByteBudgetPtr spill_budget_;

  /// OK while the query is live; the cancellation status once cancelled.
  Status CheckCancelled() const {
    return cancellation_ == nullptr ? Status::OK() : cancellation_->Check();
  }
};

}  // namespace sqlink

#endif  // SQLINK_SQL_EXECUTOR_H_
