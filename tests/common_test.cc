#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <thread>

#include "common/blocking_queue.h"
#include "common/coding.h"
#include "common/fs_util.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/status_macros.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace sqlink {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_TRUE(status.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.ToString(), "Not found: missing thing");
}

TEST(StatusTest, WithContextPrepends) {
  Status status = Status::IoError("disk gone").WithContext("reading blk_7");
  EXPECT_TRUE(status.IsIoError());
  EXPECT_EQ(status.message(), "reading blk_7: disk gone");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, CopyIsCheap) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(b.IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r = std::string("payload");
  std::string v = r.MoveValue();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  ASSIGN_OR_RETURN(int h, Half(x));
  ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());
}

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitString(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(JoinStrings(parts, "-"), "x-y-z");
  EXPECT_EQ(JoinStrings({}, "-"), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace("a"), "a");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLowerAscii("SeLeCt"), "select");
  EXPECT_EQ(ToUpperAscii("SeLeCt"), "SELECT");
  EXPECT_TRUE(EqualsIgnoreCase("GENDER", "gender"));
  EXPECT_FALSE(EqualsIgnoreCase("gender", "genders"));
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("node3", "node"));
  EXPECT_FALSE(StartsWith("no", "node"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(StringUtilTest, ParseInt64Strict) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_TRUE(ParseInt64("42x").status().IsParseError());
  EXPECT_TRUE(ParseInt64("").status().IsParseError());
  EXPECT_TRUE(ParseInt64("999999999999999999999").status().IsOutOfRange());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_TRUE(ParseDouble("3.5kg").status().IsParseError());
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(5ull * 1024 * 1024 * 1024), "5.0 GiB");
}

TEST(CodingTest, VarintRoundTrip) {
  std::string buf;
  const uint64_t values[] = {0, 1, 127, 128, 300, 1ull << 32, ~0ull};
  for (uint64_t v : values) PutVarint64(&buf, v);
  Decoder dec(buf);
  for (uint64_t v : values) {
    auto got = dec.GetVarint64();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodingTest, SignedVarintRoundTrip) {
  std::string buf;
  const int64_t values[] = {0, -1, 1, -64, 63, INT64_MIN, INT64_MAX};
  for (int64_t v : values) PutVarint64Signed(&buf, v);
  Decoder dec(buf);
  for (int64_t v : values) {
    auto got = dec.GetVarint64Signed();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  Decoder dec(buf);
  EXPECT_EQ(*dec.GetLengthPrefixed(), "hello");
  EXPECT_EQ(*dec.GetLengthPrefixed(), "");
  EXPECT_EQ(dec.GetLengthPrefixed()->size(), 1000u);
}

TEST(CodingTest, TruncatedInputErrors) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  Decoder dec(buf.substr(0, 3));
  EXPECT_TRUE(dec.GetLengthPrefixed().status().IsDataLoss());
  Decoder dec2("");
  EXPECT_TRUE(dec2.GetVarint64().status().IsDataLoss());
  EXPECT_TRUE(dec2.GetFixed64().status().IsDataLoss());
}

TEST(CodingTest, FixedAndDouble) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  PutDouble(&buf, 2.5);
  Decoder dec(buf);
  EXPECT_EQ(*dec.GetFixed32(), 0xdeadbeefu);
  EXPECT_EQ(*dec.GetFixed64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(*dec.GetDouble(), 2.5);
}

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(*q.Pop(), i);
}

TEST(BlockingQueueTest, CloseDrainsThenEnds) {
  BlockingQueue<int> q(10);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, BoundedBlocksProducer) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // Full.
  EXPECT_EQ(*q.TryPop(), 1);
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BlockingQueueTest, ProducerConsumerThreads) {
  BlockingQueue<int> q(4);
  constexpr int kItems = 1000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) q.Push(i);
    q.Close();
  });
  int sum = 0;
  int count = 0;
  while (auto item = q.Pop()) {
    sum += *item;
    ++count;
  }
  producer.join();
  EXPECT_EQ(count, kItems);
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
}

TEST(ThreadPoolTest, SubmitReturnsFutures) {
  ThreadPool pool(4);
  auto f1 = pool.Submit([] { return 6 * 7; });
  auto f2 = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, WaitIdleWaitsForAll) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, RunsEveryIndexOnce) {
  std::vector<int> hits(16, 0);
  ParallelFor(16, [&](size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(7);
  Random b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, UniformWithinBounds) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, GaussianRoughMoments) {
  Random rng(99);
  double sum = 0;
  double sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(ZipfTest, SkewConcentratesMassOnLowRanks) {
  Random rng(5);
  ZipfDistribution zipf(1000, 1.2);
  std::vector<int> counts(1000, 0);
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const size_t rank = zipf.Sample(&rng);
    ASSERT_LT(rank, 1000u);
    counts[rank]++;
  }
  // Rank 0 dominates and counts decrease (statistically) with rank.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], kSamples / 20);
  int top10 = 0;
  for (int r = 0; r < 10; ++r) top10 += counts[r];
  EXPECT_GT(top10, kSamples / 3);  // Heavy head.
}

TEST(ZipfTest, ZeroSkewIsNearUniform) {
  Random rng(9);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[zipf.Sample(&rng)]++;
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(FsUtilTest, TempDirLifecycle) {
  std::string path;
  {
    ScopedTempDir dir("sqlink_test");
    path = dir.path();
    EXPECT_TRUE(std::filesystem::exists(path));
    ASSERT_TRUE(WriteFileAtomic(path + "/f.txt", "content").ok());
    auto content = ReadFileToString(path + "/f.txt");
    ASSERT_TRUE(content.ok());
    EXPECT_EQ(*content, "content");
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(FsUtilTest, ReadMissingFileErrors) {
  EXPECT_TRUE(ReadFileToString("/nonexistent/nope").status().IsIoError());
}

TEST(FsUtilTest, EnsureDirNested) {
  ScopedTempDir dir("sqlink_test");
  ASSERT_TRUE(EnsureDir(dir.path() + "/a/b/c").ok());
  EXPECT_TRUE(std::filesystem::is_directory(dir.path() + "/a/b/c"));
  // Idempotent.
  ASSERT_TRUE(EnsureDir(dir.path() + "/a/b/c").ok());
}

}  // namespace
}  // namespace sqlink
