// Unit tests for the multiplexed transfer fabric (src/net): channel
// framing and FIFO isolation on a shared connection, per-channel credit
// flow control (a starved channel parks alone), close/failure semantics
// (channel close never touches the shared socket; connection death fails
// every channel), the reader-side connection pool bound, sink-key routing
// on the process-wide sink server, and the shared heartbeat bus.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/runtime_flags.h"
#include "net/conn_pool.h"
#include "net/mux.h"
#include "stream/heartbeat.h"
#include "stream/socket.h"
#include "stream/wire.h"

namespace sqlink {
namespace {

/// Channels handed to the server side's open handler, in arrival order.
struct OpenedChannels {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<FrameChannelPtr> channels;
  std::vector<OpenChannelMessage> opens;

  void Add(FrameChannelPtr channel, const OpenChannelMessage& msg) {
    std::lock_guard<std::mutex> lock(mu);
    channels.push_back(std::move(channel));
    opens.push_back(msg);
    cv.notify_all();
  }

  FrameChannelPtr Wait(size_t index) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return channels.size() > index; });
    return channels[index];
  }
};

/// One client↔server mux connection pair over loopback.
struct MuxPair {
  std::shared_ptr<OpenedChannels> opened = std::make_shared<OpenedChannels>();
  std::shared_ptr<MuxConn> client;
  std::shared_ptr<MuxConn> server;

  static MuxPair Make() {
    MuxPair pair;
    auto listener = TcpListener::Listen(0);
    EXPECT_TRUE(listener.ok()) << listener.status();
    auto dialed = TcpConnect("localhost", listener->port());
    EXPECT_TRUE(dialed.ok()) << dialed.status();
    auto accepted = listener->Accept();
    EXPECT_TRUE(accepted.ok()) << accepted.status();
    auto opened = pair.opened;
    pair.server = MuxConn::Spawn(
        std::move(*accepted),
        [opened](FrameChannelPtr channel, const OpenChannelMessage& msg) {
          opened->Add(std::move(channel), msg);
        });
    pair.client = MuxConn::Spawn(std::move(*dialed), /*on_open=*/nullptr);
    return pair;
  }

  ~MuxPair() {
    if (client != nullptr) client->Shutdown(Status::Cancelled("test done"));
    if (server != nullptr) server->Shutdown(Status::Cancelled("test done"));
  }
};

OpenChannelMessage OpenMsg(uint64_t window_bytes) {
  OpenChannelMessage msg;
  msg.sink_key = 7;
  msg.window_bytes = window_bytes;
  msg.hello.split_id = 1;
  return msg;
}

TEST(MuxTest, InterleavedChannelsKeepPerChannelFifoOrder) {
  MuxPair pair = MuxPair::Make();
  constexpr int kChannels = 3;
  constexpr int kFrames = 20;

  std::vector<FrameChannelPtr> senders;
  for (int c = 0; c < kChannels; ++c) {
    auto channel = pair.client->OpenChannel(OpenMsg(1 << 20));
    ASSERT_TRUE(channel.ok()) << channel.status();
    senders.push_back(*channel);
  }

  // All channels send concurrently: their frames interleave arbitrarily on
  // the shared socket, but each channel's stream must stay FIFO and never
  // leak into a sibling's inbox.
  std::vector<std::thread> threads;
  for (int c = 0; c < kChannels; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < kFrames; ++i) {
        const std::string payload =
            "ch" + std::to_string(c) + ":" + std::to_string(i);
        ASSERT_TRUE(senders[c]
                        ->Send(FrameType::kData, payload,
                               static_cast<uint64_t>(i + 1))
                        .ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int c = 0; c < kChannels; ++c) {
    FrameChannelPtr receiver = pair.opened->Wait(static_cast<size_t>(c));
    // Channel c's open message carried the embedded HELLO.
    EXPECT_EQ(pair.opened->opens[static_cast<size_t>(c)].hello.split_id, 1);
    // Identify which client channel this is by its first frame's payload.
    Frame frame;
    ASSERT_TRUE(receiver->Recv(&frame).ok());
    ASSERT_EQ(frame.type, FrameType::kData);
    ASSERT_EQ(frame.payload.substr(0, 2), "ch");
    const std::string prefix = frame.payload.substr(0, frame.payload.find(':'));
    EXPECT_EQ(frame.seq, 1u);
    for (int i = 1; i < kFrames; ++i) {
      ASSERT_TRUE(receiver->Recv(&frame).ok());
      EXPECT_EQ(frame.payload, prefix + ":" + std::to_string(i));
      EXPECT_EQ(frame.seq, static_cast<uint64_t>(i + 1));
    }
  }
}

TEST(MuxTest, WindowExhaustionParksOnlyTheStarvedChannel) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const int64_t stalls_before = metrics.Get("net.mux.window_stalls");
  MuxPair pair = MuxPair::Make();
  const std::string payload(32, 'x');

  // Channel A gets a 64-byte window and a server that never reads: the
  // third data frame must park the sender.
  auto starved = pair.client->OpenChannel(OpenMsg(64));
  ASSERT_TRUE(starved.ok());
  // Channel B shares the socket but has a reader, so it must keep flowing
  // while A is parked.
  auto flowing = pair.client->OpenChannel(OpenMsg(64));
  ASSERT_TRUE(flowing.ok());
  FrameChannelPtr starved_rx = pair.opened->Wait(0);
  FrameChannelPtr flowing_rx = pair.opened->Wait(1);

  std::atomic<int> starved_sent{0};
  std::thread starved_sender([&] {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*starved)
                      ->Send(FrameType::kData, payload,
                             static_cast<uint64_t>(i + 1))
                      .ok());
      starved_sent.fetch_add(1);
    }
  });

  // B makes 20 full round trips on the shared connection while A is stuck.
  Frame frame;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*flowing)
                    ->Send(FrameType::kData, payload,
                           static_cast<uint64_t>(i + 1))
                    .ok());
    ASSERT_TRUE(flowing_rx->Recv(&frame).ok());
    EXPECT_EQ(frame.seq, static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(starved_sent.load(), 2);  // Third frame is parked on credit.
  EXPECT_GT(metrics.Get("net.mux.window_stalls"), stalls_before);

  // Draining A's inbox replenishes its window (kChannelWindow) and releases
  // the parked sender.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(starved_rx->Recv(&frame).ok());
    EXPECT_EQ(frame.seq, static_cast<uint64_t>(i + 1));
  }
  starved_sender.join();
  EXPECT_EQ(starved_sent.load(), 3);
}

TEST(MuxTest, ShutdownWakesAParkedSenderWithoutTouchingTheSocket) {
  MuxPair pair = MuxPair::Make();
  auto starved = pair.client->OpenChannel(OpenMsg(16));
  ASSERT_TRUE(starved.ok());
  auto healthy = pair.client->OpenChannel(OpenMsg(1 << 20));
  ASSERT_TRUE(healthy.ok());
  FrameChannelPtr healthy_rx = pair.opened->Wait(1);

  const std::string payload(32, 'x');
  ASSERT_TRUE((*starved)->Send(FrameType::kData, payload, 1).ok());
  std::atomic<bool> woke{false};
  Status parked_status;
  std::thread parked([&] {
    parked_status = (*starved)->Send(FrameType::kData, payload, 2);
    woke.store(true);
  });
  // Replay-abort while the sender is parked on an empty window (the serving
  // layer's cancel path): the channel must wake with the abort status.
  while (!woke.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    (*starved)->Shutdown(Status::Aborted("transfer aborted"));
  }
  parked.join();
  ASSERT_FALSE(parked_status.ok());
  EXPECT_TRUE(parked_status.IsAborted()) << parked_status;

  // The shared socket survived the channel close: its socket-mate still
  // makes full round trips.
  Frame frame;
  ASSERT_TRUE((*healthy)->Send(FrameType::kData, "still alive", 1).ok());
  ASSERT_TRUE(healthy_rx->Recv(&frame).ok());
  EXPECT_EQ(frame.payload, "still alive");
  EXPECT_FALSE(pair.client->dead());
  EXPECT_FALSE(pair.server->dead());
}

TEST(MuxTest, RemoteCloseSurfacesStatusToPeerSendAndRecv) {
  MuxPair pair = MuxPair::Make();
  auto channel = pair.client->OpenChannel(OpenMsg(1 << 20));
  ASSERT_TRUE(channel.ok());
  FrameChannelPtr server_side = pair.opened->Wait(0);

  server_side->Shutdown(Status::Unavailable("sink not serving"));
  // The close races the open in the demux pipeline; both Send and Recv must
  // eventually report the peer's reason.
  Frame frame;
  Status status = (*channel)->Recv(&frame);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsUnavailable()) << status;
  status = (*channel)->Send(FrameType::kData, "late", 1);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsUnavailable()) << status;
}

TEST(MuxTest, ConnectionDeathFailsEveryChannel) {
  MuxPair pair = MuxPair::Make();
  auto a = pair.client->OpenChannel(OpenMsg(1 << 20));
  auto b = pair.client->OpenChannel(OpenMsg(1 << 20));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  (void)pair.opened->Wait(1);

  pair.server->Shutdown(Status::NetworkError("chaos: connection killed"));
  Frame frame;
  EXPECT_FALSE((*a)->Recv(&frame).ok());
  EXPECT_FALSE((*b)->Recv(&frame).ok());
  // The client side notices the dead socket and fails too.
  for (int i = 0; i < 1000 && !pair.client->dead(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(pair.client->dead());
}

TEST(MuxTest, SinkServerRoutesBySinkKeyAndRejectsUnknownKeys) {
  auto port = MuxSinkServer::Global().EnsureStarted();
  ASSERT_TRUE(port.ok()) << port.status();
  auto opened = std::make_shared<OpenedChannels>();
  const uint64_t key = MuxSinkServer::Global().Register(
      [opened](FrameChannelPtr channel, const OpenChannelMessage& msg) {
        opened->Add(std::move(channel), msg);
      });
  ASSERT_NE(key, 0u);

  HelloMessage hello;
  hello.split_id = 3;
  auto routed = MuxConnPool::Global().OpenChannel("localhost", *port, key,
                                                  /*affinity=*/3, hello);
  ASSERT_TRUE(routed.ok()) << routed.status();
  FrameChannelPtr sink_side = opened->Wait(0);
  EXPECT_EQ(opened->opens[0].hello.split_id, 3);
  ASSERT_TRUE(sink_side->Send(FrameType::kResume, "", 0).ok());
  Frame frame;
  ASSERT_TRUE((*routed)->Recv(&frame).ok());
  EXPECT_EQ(frame.type, FrameType::kResume);

  // A key nobody registered is rejected per-channel with a retryable
  // status; the shared connection stays up.
  auto rejected = MuxConnPool::Global().OpenChannel(
      "localhost", *port, key + 999, /*affinity=*/3, hello);
  ASSERT_TRUE(rejected.ok()) << rejected.status();
  Status status = (*rejected)->Recv(&frame);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsUnavailable()) << status;
  ASSERT_TRUE(sink_side->Send(FrameType::kData, "alive", 1).ok());
  ASSERT_TRUE((*routed)->Recv(&frame).ok());
  EXPECT_EQ(frame.payload, "alive");

  MuxSinkServer::Global().Unregister(key);
  MuxConnPool::Global().ResetForTest();
}

TEST(MuxTest, PoolCapsSharedConnectionsPerPeer) {
  SetMuxConnsPerPeerForTest(2);
  MuxConnPool::Global().ResetForTest();
  auto port = MuxSinkServer::Global().EnsureStarted();
  ASSERT_TRUE(port.ok()) << port.status();
  auto opened = std::make_shared<OpenedChannels>();
  const uint64_t key = MuxSinkServer::Global().Register(
      [opened](FrameChannelPtr channel, const OpenChannelMessage& msg) {
        opened->Add(std::move(channel), msg);
      });

  MetricsRegistry& metrics = MetricsRegistry::Global();
  const int64_t dials_before = metrics.Get("stream.reader.data_dials");
  std::vector<FrameChannelPtr> channels;
  for (uint64_t affinity = 0; affinity < 16; ++affinity) {
    HelloMessage hello;
    hello.split_id = static_cast<int>(affinity);
    auto channel = MuxConnPool::Global().OpenChannel("localhost", *port, key,
                                                     affinity, hello);
    ASSERT_TRUE(channel.ok()) << channel.status();
    channels.push_back(*channel);
  }
  // 16 logical streams, at most 2 sockets: that is the whole point.
  EXPECT_LE(metrics.Get("stream.reader.data_dials") - dials_before, 2);

  // Same affinity lands on the same connection, so a reconnecting reader
  // re-multiplexes instead of dialing.
  HelloMessage hello;
  auto again = MuxConnPool::Global().OpenChannel("localhost", *port, key,
                                                 /*affinity=*/5, hello);
  ASSERT_TRUE(again.ok());
  EXPECT_LE(metrics.Get("stream.reader.data_dials") - dials_before, 2);

  channels.clear();
  MuxSinkServer::Global().Unregister(key);
  MuxConnPool::Global().ResetForTest();
  SetMuxConnsPerPeerForTest(0);
}

TEST(MuxTest, HeartbeatBusSharesOneConnectionPerPeer) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const int64_t before = metrics.GetGauge("stream.heartbeat.conns")->value();
  auto first = HeartbeatBus::Global().Acquire("localhost", 19876);
  auto second = HeartbeatBus::Global().Acquire("localhost", 19876);
  // Same peer → same shared connection, counted once.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(metrics.GetGauge("stream.heartbeat.conns")->value(), before + 1);
  auto other = HeartbeatBus::Global().Acquire("localhost", 19877);
  EXPECT_NE(first.get(), other.get());
  EXPECT_EQ(metrics.GetGauge("stream.heartbeat.conns")->value(), before + 2);
  first.reset();
  second.reset();
  other.reset();
  // Last holder dropped the connection.
  EXPECT_EQ(metrics.GetGauge("stream.heartbeat.conns")->value(), before);
}

}  // namespace
}  // namespace sqlink
