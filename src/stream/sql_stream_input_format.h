#ifndef SQLINK_STREAM_SQL_STREAM_INPUT_FORMAT_H_
#define SQLINK_STREAM_SQL_STREAM_INPUT_FORMAT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "ml/input_format.h"
#include "stream/wire.h"

namespace sqlink {

/// Recovery knobs (§6 experiments/tests). Fault injection lives in the
/// failpoint registry (common/failpoint.h): arm
/// "stream.reader.row.split<ID>" to drop split ID's connection after a
/// delivered row, "stream.reader.kill.split<ID>" to kill the reader
/// mid-split (no local recovery — the split must be reassigned),
/// "stream.reader.heartbeat.split<ID>" with a delay spec to stall lease
/// renewal, or "stream.reader.frame" / "stream.reader.connect" for frame-
/// and dial-level faults.
struct StreamReaderOptions {
  /// §6 recovery: on a broken connection, report the failure to the
  /// coordinator, re-dial the matched SQL worker, and resume from the last
  /// applied frame sequence (replayed duplicates are dropped by sequence).
  bool recovery_enabled = false;
  int max_reconnects = 3;

  /// Reader lease renewal interval; <= 0 disables heartbeats and split
  /// reassignment.
  int heartbeat_ms = static_cast<int>(EnvInt64("SQLINK_HEARTBEAT_MS", 0));

  /// Benchmark knob: sleep this long after each received data frame,
  /// simulating a slow ML consumer (drives the spill/backpressure study).
  int consume_delay_micros_per_frame = 0;
};

/// The paper's specialized Hadoop InputFormat: instead of reading files, it
/// asks the coordinator for m = n·k splits (step 3) — each split locating a
/// SQL worker — and its record readers receive rows over TCP straight from
/// the SQL workers' send buffers (step 8). Using it is the *only* change an
/// ML job needs ("the only change she has to make is to use our specialized
/// SQLStreamInputFormat in the job configuration").
class SqlStreamInputFormat final : public ml::InputFormat {
 public:
  SqlStreamInputFormat(std::string coordinator_host, int coordinator_port,
                       StreamReaderOptions options = {});

  Result<std::vector<ml::InputSplitPtr>> GetSplits(
      const ml::JobContext& context) override;

  Result<std::unique_ptr<ml::RecordReader>> CreateReader(
      const ml::JobContext& context, const ml::InputSplit& split,
      int worker_id) override;

  /// Known after GetSplits (the coordinator forwards the SQL-side schema).
  SchemaPtr schema() const override { return schema_; }

  /// §6 reassignment (requires heartbeats): surviving workers poll the
  /// coordinator for splits whose reader was declared dead and resume them
  /// from the sink's replay window.
  bool SupportsReassignment() const override;
  Result<ml::ReassignedSplit> AcquireReassigned() override;
  void AbortTransfer(const Status& status) override;

 private:
  std::string coordinator_host_;
  int coordinator_port_;
  StreamReaderOptions options_;
  SchemaPtr schema_;
};

/// One streaming split: the SQL worker endpoint to drain, located at the
/// SQL worker's host so the scheduler can co-locate the ML worker (the
/// paper's locality optimization).
class StreamSplit final : public ml::InputSplit {
 public:
  explicit StreamSplit(StreamSplitInfo info) : info_(std::move(info)) {}

  const StreamSplitInfo& info() const { return info_; }

  std::vector<std::string> Locations() const override {
    return {info_.host};
  }
  std::string DebugString() const override {
    return "stream split " + std::to_string(info_.split_id) + " <- sql worker " +
           std::to_string(info_.sql_worker) + " @" + info_.host + ":" +
           std::to_string(info_.port);
  }

 private:
  StreamSplitInfo info_;
};

}  // namespace sqlink

#endif  // SQLINK_STREAM_SQL_STREAM_INPUT_FORMAT_H_
