#ifndef SQLINK_SQL_CATALOG_H_
#define SQLINK_SQL_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace sqlink {

/// Per-column statistics, computed by one full scan of the table.
struct ColumnStats {
  double distinct_values = 0;  ///< Hash-based NDV estimate; 0 = unknown.
  double null_fraction = 0;    ///< Fraction of rows where the value is NULL.
  double avg_bytes = 16;       ///< Average in-memory payload bytes per value.
};

/// Table-level statistics feeding the planner's cost model: filter
/// selectivity (NDV, null fractions), join output cardinality, and the
/// hash-build memory estimate that picks hash vs sort-merge joins.
struct TableStats {
  double row_count = 0;
  double avg_row_bytes = 0;          ///< Sum of per-column avg_bytes.
  std::vector<ColumnStats> columns;  ///< Aligned with the table schema.
};

using TableStatsPtr = std::shared_ptr<const TableStats>;

/// Thread-safe table registry (the engine's "NameNode for tables").
/// Names are case-insensitive.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status RegisterTable(TablePtr table);
  /// Registers or replaces.
  void PutTable(TablePtr table);
  Result<TablePtr> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);
  std::vector<std::string> ListTables() const;

  /// Statistics for a registered table. Computed on first request by a full
  /// scan, then cached; PutTable/DropTable invalidate the cached entry, so
  /// a stats snapshot can only go stale if a caller mutates table
  /// partitions in place behind the catalog's back.
  Result<TableStatsPtr> GetStats(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TablePtr> tables_;        // Lower-case key.
  mutable std::map<std::string, TableStatsPtr> stats_;  // Lower-case key.
};

}  // namespace sqlink

#endif  // SQLINK_SQL_CATALOG_H_
