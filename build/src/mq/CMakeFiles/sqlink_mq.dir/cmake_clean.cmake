file(REMOVE_RECURSE
  "CMakeFiles/sqlink_mq.dir/broker.cc.o"
  "CMakeFiles/sqlink_mq.dir/broker.cc.o.d"
  "CMakeFiles/sqlink_mq.dir/mq_transfer.cc.o"
  "CMakeFiles/sqlink_mq.dir/mq_transfer.cc.o.d"
  "libsqlink_mq.a"
  "libsqlink_mq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlink_mq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
