#ifndef SQLINK_SQL_ROW_ITERATOR_H_
#define SQLINK_SQL_ROW_ITERATOR_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "table/value.h"

namespace sqlink {

/// Pull-based row stream: the execution interface between physical
/// operators within one worker's pipeline.
class RowIterator {
 public:
  virtual ~RowIterator() = default;

  /// Fills `*out` with the next row and returns true, or returns false at
  /// end of stream. Errors propagate as statuses.
  virtual Result<bool> Next(Row* out) = 0;
};

using RowIteratorPtr = std::unique_ptr<RowIterator>;

/// Push-based row consumer (table UDF output, exchange input).
class RowSink {
 public:
  virtual ~RowSink() = default;
  virtual Status Push(Row row) = 0;
};

/// Iterates over a borrowed row vector (rows are copied out).
class VectorIterator final : public RowIterator {
 public:
  explicit VectorIterator(const std::vector<Row>* rows) : rows_(rows) {}

  Result<bool> Next(Row* out) override {
    if (index_ >= rows_->size()) return false;
    *out = (*rows_)[index_++];
    return true;
  }

 private:
  const std::vector<Row>* rows_;
  size_t index_ = 0;
};

/// Iterates over an owned row vector (rows are moved out).
class OwningVectorIterator final : public RowIterator {
 public:
  explicit OwningVectorIterator(std::vector<Row> rows)
      : rows_(std::move(rows)) {}

  Result<bool> Next(Row* out) override {
    if (index_ >= rows_.size()) return false;
    *out = std::move(rows_[index_++]);
    return true;
  }

 private:
  std::vector<Row> rows_;
  size_t index_ = 0;
};

/// Collects pushed rows into a vector.
class VectorSink final : public RowSink {
 public:
  Status Push(Row row) override {
    rows_.push_back(std::move(row));
    return Status::OK();
  }

  std::vector<Row>& rows() { return rows_; }
  std::vector<Row> TakeRows() { return std::move(rows_); }

 private:
  std::vector<Row> rows_;
};

}  // namespace sqlink

#endif  // SQLINK_SQL_ROW_ITERATOR_H_
