file(REMOVE_RECURSE
  "libsqlink_common.a"
)
