#include "ml/job.h"

#include "common/logging.h"
#include "common/status_macros.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace sqlink::ml {

Result<IngestResult> MlJobRunner::Ingest(InputFormat* format) {
  TraceSpan ingest_span("ml.ingest");
  const TraceContext ingest_ctx = ingest_span.context();
  ASSIGN_OR_RETURN(std::vector<InputSplitPtr> splits,
                   format->GetSplits(context_));
  if (splits.empty()) {
    return Status::InvalidArgument("input format produced no splits");
  }
  const size_t m = splits.size();

  IngestResult result;
  result.stats.num_splits = static_cast<int>(m);
  result.dataset.schema = format->schema();
  result.dataset.partitions.resize(m);

  // Worker i consumes split i. With a cluster, count how many workers run
  // local to their data (a worker's node is its split's first preferred
  // location when one exists — best-effort placement).
  if (context_.cluster != nullptr) {
    for (const InputSplitPtr& split : splits) {
      for (const std::string& host : split->Locations()) {
        if (context_.cluster->NodeFromHostName(host) >= 0) {
          ++result.stats.local_splits;
          break;
        }
      }
    }
  }

  Histogram* const split_micros =
      context_.metrics != nullptr
          ? context_.metrics->GetHistogram("ml.ingest.split_micros")
          : nullptr;
  std::vector<Status> statuses(m);
  ParallelFor(m, [&](size_t i) {
    // Pool threads have no open span; parent the per-split read ("one ML
    // iteration" of the ingest phase) to the ingest span explicitly. The
    // reader it wraps is destroyed before the span ends (LIFO nesting).
    TraceSpan split_span("ml.ingest.split", ingest_ctx);
    split_span.AddAttribute("split", static_cast<int64_t>(i));
    Stopwatch timer;
    auto run = [&]() -> Status {
      ASSIGN_OR_RETURN(
          std::unique_ptr<RecordReader> reader,
          format->CreateReader(context_, *splits[i], static_cast<int>(i)));
      Row row;
      for (;;) {
        ASSIGN_OR_RETURN(bool has, reader->Next(&row));
        if (!has) break;
        result.dataset.partitions[i].push_back(std::move(row));
      }
      return Status::OK();
    };
    statuses[i] = run();
    if (!statuses[i].ok()) split_span.SetError();
    split_span.AddAttribute(
        "rows", static_cast<int64_t>(result.dataset.partitions[i].size()));
    if (split_micros != nullptr) split_micros->Record(timer.ElapsedMicros());
  });
  for (const Status& status : statuses) {
    RETURN_IF_ERROR(status);
  }
  result.stats.rows = result.dataset.TotalRows();
  if (context_.metrics != nullptr) {
    context_.metrics->Add("ml.ingest.rows",
                          static_cast<int64_t>(result.stats.rows));
    context_.metrics->Add("ml.ingest.splits",
                          static_cast<int64_t>(result.stats.num_splits));
    context_.metrics->Add("ml.ingest.local_splits",
                          result.stats.local_splits);
  }
  return result;
}

}  // namespace sqlink::ml
