#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace sqlink {

namespace {

const char* const kKeywords[] = {
    "SELECT", "DISTINCT", "FROM",  "WHERE", "AND",    "OR",    "NOT",
    "AS",     "GROUP",    "BY",    "ORDER", "ASC",    "DESC",  "LIMIT",
    "JOIN",   "INNER",    "ON",    "TABLE", "NULL",   "TRUE",  "FALSE",
    "IS",     "IN",       "BETWEEN", "HAVING", "EXPLAIN", "ANALYZE"};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool IsSqlKeyword(std::string_view word) {
  for (const char* keyword : kKeywords) {
    if (EqualsIgnoreCase(word, keyword)) return true;
  }
  return false;
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(sql[j])) ++j;
      std::string word(sql.substr(i, j - i));
      if (IsSqlKeyword(word)) {
        tokens.push_back({TokenType::kKeyword, ToUpperAscii(word), start});
      } else {
        tokens.push_back({TokenType::kIdentifier, std::move(word), start});
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j < n && sql[j] == '.') {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      if (j < n && (sql[j] == 'e' || sql[j] == 'E')) {
        is_double = true;
        ++j;
        if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      tokens.push_back({is_double ? TokenType::kDouble : TokenType::kInteger,
                        std::string(sql.substr(i, j - i)), start});
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {
            value.push_back('\'');
            j += 2;
          } else {
            closed = true;
            ++j;
            break;
          }
        } else {
          value.push_back(sql[j]);
          ++j;
        }
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenType::kString, std::move(value), start});
      i = j;
      continue;
    }
    switch (c) {
      case ',':
        tokens.push_back({TokenType::kComma, ",", start});
        ++i;
        continue;
      case '.':
        tokens.push_back({TokenType::kDot, ".", start});
        ++i;
        continue;
      case '*':
        tokens.push_back({TokenType::kStar, "*", start});
        ++i;
        continue;
      case '(':
        tokens.push_back({TokenType::kLeftParen, "(", start});
        ++i;
        continue;
      case ')':
        tokens.push_back({TokenType::kRightParen, ")", start});
        ++i;
        continue;
      case ';':
        tokens.push_back({TokenType::kSemicolon, ";", start});
        ++i;
        continue;
      case '=':
        tokens.push_back({TokenType::kOperator, "=", start});
        ++i;
        continue;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          tokens.push_back({TokenType::kOperator, "<=", start});
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          tokens.push_back({TokenType::kOperator, "<>", start});
          i += 2;
        } else {
          tokens.push_back({TokenType::kOperator, "<", start});
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          tokens.push_back({TokenType::kOperator, ">=", start});
          i += 2;
        } else {
          tokens.push_back({TokenType::kOperator, ">", start});
          ++i;
        }
        continue;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          tokens.push_back({TokenType::kOperator, "!=", start});
          i += 2;
          continue;
        }
        return Status::ParseError("unexpected '!' at offset " +
                                  std::to_string(start));
      case '+':
      case '-':
      case '/':
        tokens.push_back({TokenType::kOperator, std::string(1, c), start});
        ++i;
        continue;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(start));
    }
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace sqlink
