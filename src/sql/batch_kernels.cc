#include "sql/batch_kernels.h"

#include <functional>
#include <string_view>

namespace sqlink {

void FilterToSelection(const Column& pred, size_t num_rows,
                       std::vector<int32_t>* sel) {
  sel->clear();
  if (pred.type != DataType::kBool) return;
  for (size_t i = 0; i < num_rows; ++i) {
    if (pred.bools[i] != 0 && !pred.IsNull(i)) {
      sel->push_back(static_cast<int32_t>(i));
    }
  }
}

namespace {

constexpr uint64_t kNullHash = 0x9e3779b97f4a7c15ULL;

inline uint64_t Mix(uint64_t h, uint64_t v) {
  // boost::hash_combine-style mixing keeps per-column order significant.
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

uint64_t ColumnCellHash(const Column& c, size_t row) {
  if (c.IsNull(row)) return kNullHash;
  switch (c.type) {
    case DataType::kBool:
      return c.bools[row] != 0 ? 1 : 0;
    case DataType::kInt64:
      return std::hash<int64_t>{}(c.ints[row]);
    case DataType::kDouble: {
      const double d = c.doubles[row];
      // +0.0 and -0.0 compare equal, so they must hash equal.
      return d == 0.0 ? 0 : std::hash<double>{}(d);
    }
    case DataType::kString:
      return std::hash<std::string_view>{}(c.dict[c.codes[row]]);
  }
  return 0;
}

}  // namespace

uint64_t BatchRowHash(const ColumnBatch& batch, size_t row) {
  uint64_t h = 0;
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    h = Mix(h, ColumnCellHash(batch.column(c), row));
  }
  return h;
}

bool BatchRowsEqual(const ColumnBatch& a, size_t ra, const ColumnBatch& b,
                    size_t rb) {
  if (a.num_columns() != b.num_columns()) return false;
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    const bool na = ca.IsNull(ra);
    const bool nb = cb.IsNull(rb);
    if (na != nb) return false;
    if (na) continue;
    if (ca.type != cb.type) return false;
    switch (ca.type) {
      case DataType::kBool:
        if ((ca.bools[ra] != 0) != (cb.bools[rb] != 0)) return false;
        break;
      case DataType::kInt64:
        if (ca.ints[ra] != cb.ints[rb]) return false;
        break;
      case DataType::kDouble:
        if (ca.doubles[ra] != cb.doubles[rb]) return false;
        break;
      case DataType::kString:
        if (ca.dict[ca.codes[ra]] != cb.dict[cb.codes[rb]]) return false;
        break;
    }
  }
  return true;
}

}  // namespace sqlink
