#ifndef SQLINK_ML_MODEL_IO_H_
#define SQLINK_ML_MODEL_IO_H_

#include <string>

#include "common/result.h"
#include "ml/decision_tree.h"
#include "ml/kmeans.h"
#include "ml/linear_model.h"
#include "ml/naive_bayes.h"
#include "ml/scaler.h"

namespace sqlink::ml {

/// Model persistence: every trained model saves to a single binary file
/// ("SQML" magic + type tag + payload) and loads back with type checking —
/// so a pipeline can train once and score elsewhere. Files are written
/// atomically.
Status SaveLinearModel(const LinearModel& model, const std::string& path);
Result<LinearModel> LoadLinearModel(const std::string& path);

Status SaveNaiveBayesModel(const NaiveBayesModel& model,
                           const std::string& path);
Result<NaiveBayesModel> LoadNaiveBayesModel(const std::string& path);

Status SaveDecisionTreeModel(const DecisionTreeModel& model,
                             const std::string& path);
Result<DecisionTreeModel> LoadDecisionTreeModel(const std::string& path);

Status SaveKMeansModel(const KMeansModel& model, const std::string& path);
Result<KMeansModel> LoadKMeansModel(const std::string& path);

Status SaveStandardScaler(const StandardScaler& scaler,
                          const std::string& path);
Result<StandardScaler> LoadStandardScaler(const std::string& path);

}  // namespace sqlink::ml

#endif  // SQLINK_ML_MODEL_IO_H_
