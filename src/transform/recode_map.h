#ifndef SQLINK_TRANSFORM_RECODE_MAP_H_
#define SQLINK_TRANSFORM_RECODE_MAP_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/string_dict.h"
#include "table/schema.h"
#include "table/table.h"

namespace sqlink {

/// The recode map of §2.1: per categorical column, the mapping from string
/// value to its consecutive integer code starting at 1 (e.g.
/// ("gender","F")→1, ("gender","M")→2). Stored in SQL as a three-column
/// table (colname, colval, recodeval) — the representation the final
/// recoding join consumes and the §5.2 cache stores. Column names are
/// canonicalized to lower case; values are case-sensitive.
///
/// Internally each column is a contiguous open-addressing dictionary
/// (StringDict heap + dense ids), so the hot-path value→code lookup the
/// batch kernels issue per distinct value is O(1) with no tree walk and no
/// string allocation.
class RecodeMap {
 public:
  /// One column's dictionary: labels stored contiguously in insertion
  /// order, an open-addressing index for O(1) lookups, and the id↔code
  /// correspondence (codes may arrive in any order via Add).
  class ColumnDict {
   public:
    /// O(1) code for `value`; 0 when absent (valid codes start at 1).
    int Lookup(std::string_view value) const {
      const int32_t id = values_.Find(value);
      return id < 0 ? 0 : code_by_id_[static_cast<size_t>(id)];
    }

    /// Like Lookup but distinguishes absence from a (pathological) 0 code.
    bool Find(std::string_view value, int* code) const {
      const int32_t id = values_.Find(value);
      if (id < 0) return false;
      *code = code_by_id_[static_cast<size_t>(id)];
      return true;
    }

    int cardinality() const { return values_.size(); }

    /// Label of 1-based `code`; empty view when the code is unknown.
    std::string_view LabelOf(int code) const {
      const size_t i = static_cast<size_t>(code) - 1;
      if (code < 1 || i >= id_by_code_.size() || id_by_code_[i] < 0) {
        return {};
      }
      return values_[id_by_code_[i]];
    }

    /// Whether the codes form exactly 1..cardinality().
    bool CodesConsecutive() const;

    Status Add(std::string_view value, int code);

    /// Visits every (value, code) pair in insertion order.
    template <typename Fn>
    void ForEach(Fn&& fn) const {
      for (int32_t id = 0; id < values_.size(); ++id) {
        fn(values_[id], code_by_id_[static_cast<size_t>(id)]);
      }
    }

    bool operator==(const ColumnDict& other) const;

   private:
    StringDict values_;             ///< value → dense insertion id.
    std::vector<int> code_by_id_;   ///< insertion id → code.
    std::vector<int32_t> id_by_code_;  ///< code-1 → insertion id (-1 unset).
    bool irregular_ = false;  ///< A code outside the dense-index range seen.
  };

  RecodeMap() = default;

  /// Schema of the SQL representation.
  static SchemaPtr TableSchema();

  /// Parses the (colname, colval, recodeval) rows of a map table.
  /// Validates that each column's codes are consecutive integers from 1.
  static Result<RecodeMap> FromTable(const Table& table);

  /// Renders this map as a map table partitioned for `num_partitions`
  /// workers (all rows on partition 0 — maps are small and broadcast).
  TablePtr ToTable(const std::string& name, size_t num_partitions) const;

  /// Adds one mapping; fails on duplicates.
  Status Add(const std::string& column, const std::string& value, int code);

  /// The code for a value, or NotFound.
  Result<int> Code(const std::string& column, const std::string& value) const;

  bool HasColumn(const std::string& column) const {
    return name_index_.Find(column) >= 0;
  }
  /// Distinct-value count of a column (0 when absent).
  int Cardinality(const std::string& column) const;

  /// Value labels of a column ordered by code (1..K).
  Result<std::vector<std::string>> Labels(const std::string& column) const;

  std::vector<std::string> Columns() const;

  /// The dictionary of `column` (name canonicalized to lower case), or null
  /// when absent — the handle the vectorized kernels hold across a batch.
  const ColumnDict* FindColumn(std::string_view column) const;

  bool operator==(const RecodeMap& other) const;

 private:
  ColumnDict* GetOrAddColumn(const std::string& lower_name);

  StringDict name_index_;  ///< lower-case column name → index into dicts_.
  std::vector<ColumnDict> dicts_;
};

}  // namespace sqlink

#endif  // SQLINK_TRANSFORM_RECODE_MAP_H_
