#include "stream/sql_stream_input_format.h"

#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/status_macros.h"
#include "stream/socket.h"
#include "table/row_codec.h"

namespace sqlink {

namespace {

/// Receives one split's row stream from its SQL worker, with optional §6
/// recovery (reconnect + replay + skip) and fault injection.
class StreamRecordReader final : public ml::RecordReader {
 public:
  StreamRecordReader(std::string coordinator_host, int coordinator_port,
                     StreamSplitInfo split, StreamReaderOptions options,
                     MetricsRegistry* metrics)
      : coordinator_host_(std::move(coordinator_host)),
        coordinator_port_(coordinator_port),
        split_(std::move(split)),
        options_(options),
        metrics_(metrics) {}

  Result<bool> Next(Row* out) override {
    for (;;) {
      if (done_) return false;
      if (!connected_) {
        const Status status = Connect(/*restart=*/delivered_ > 0);
        if (!status.ok()) return status;
      }
      auto row = NextFromConnection(out);
      if (row.ok()) {
        if (!*row) {
          done_ = true;
          return false;
        }
        ++received_this_connection_;
        // During a replay, skip rows that were already delivered before
        // the failure.
        if (received_this_connection_ <= skip_) continue;
        ++delivered_;
        // Fault injection: drop the connection once, mid-stream.
        if (options_.fail_split == split_.split_id && !failure_injected_ &&
            delivered_ >= options_.fail_after_rows &&
            options_.fail_after_rows > 0) {
          failure_injected_ = true;
          socket_.Close();
          connected_ = false;
          // The injected failure hits *after* this row was delivered; the
          // replay must skip it too.
          const Status status = HandleFailure(
              Status::NetworkError("injected connection failure"));
          if (!status.ok()) return status;
          return true;  // This row itself was delivered fine.
        }
        return true;
      }
      RETURN_IF_ERROR(HandleFailure(row.status()));
    }
  }

 private:
  /// Resolves the SQL endpoint (via the coordinator on reconnects) and
  /// performs the HELLO/SCHEMA handshake.
  Status Connect(bool restart) {
    std::string host = split_.host;
    int port = split_.port;
    if (restart) {
      // §6: report the failure; the coordinator answers with the endpoint
      // of the (restarted) SQL worker to resume from.
      ASSIGN_OR_RETURN(TcpSocket control,
                       TcpConnect(coordinator_host_, coordinator_port_));
      RegisterMlMessage report;
      report.split_id = split_.split_id;
      RETURN_IF_ERROR(SendFrame(&control, FrameType::kReportFailure,
                                report.Encode()));
      ASSIGN_OR_RETURN(Frame match_frame, RecvFrame(&control));
      if (match_frame.type != FrameType::kMatch) {
        return Status::NetworkError("coordinator failed to re-match: " +
                                    match_frame.payload);
      }
      ASSIGN_OR_RETURN(MatchMessage match,
                       MatchMessage::Decode(match_frame.payload));
      host = match.host;
      port = match.port;
      if (metrics_ != nullptr) metrics_->Increment("stream.reconnects");
    }
    ASSIGN_OR_RETURN(socket_, TcpConnect(host, port));
    HelloMessage hello;
    hello.split_id = split_.split_id;
    hello.restart = restart;
    RETURN_IF_ERROR(SendFrame(&socket_, FrameType::kHello, hello.Encode()));
    ASSIGN_OR_RETURN(Frame schema_frame, RecvFrame(&socket_));
    if (schema_frame.type != FrameType::kSchema) {
      return Status::NetworkError("expected schema frame");
    }
    connected_ = true;
    received_this_connection_ = 0;
    skip_ = restart ? delivered_ : 0;
    batch_.clear();
    batch_index_ = 0;
    return Status::OK();
  }

  /// Next row from the live connection; false at clean end-of-stream.
  Result<bool> NextFromConnection(Row* out) {
    for (;;) {
      if (batch_index_ < batch_.size()) {
        *out = std::move(batch_[batch_index_++]);
        return true;
      }
      ASSIGN_OR_RETURN(Frame frame, RecvFrame(&socket_));
      switch (frame.type) {
        case FrameType::kData: {
          Decoder decoder(frame.payload);
          ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
          batch_.clear();
          batch_.reserve(count);
          for (uint64_t i = 0; i < count; ++i) {
            ASSIGN_OR_RETURN(Row row, RowCodec::Decode(&decoder));
            batch_.push_back(std::move(row));
          }
          batch_index_ = 0;
          if (metrics_ != nullptr) {
            metrics_->Add("stream.bytes_received",
                          static_cast<int64_t>(frame.payload.size()));
          }
          if (options_.consume_delay_micros_per_frame > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(
                options_.consume_delay_micros_per_frame));
          }
          break;
        }
        case FrameType::kEnd: {
          Decoder decoder(frame.payload);
          ASSIGN_OR_RETURN(uint64_t expected, decoder.GetVarint64());
          if (expected != received_this_connection_) {
            return Status::DataLoss(
                "stream row count mismatch: got " +
                std::to_string(received_this_connection_) + ", sender sent " +
                std::to_string(expected));
          }
          // Confirm completion so the sender may release its retained
          // state; a sender tears down only after this acknowledgement.
          RETURN_IF_ERROR(SendFrame(&socket_, FrameType::kAck, ""));
          return false;
        }
        case FrameType::kError:
          return Status::Aborted("SQL worker failed: " + frame.payload);
        default:
          return Status::NetworkError("unexpected data frame type");
      }
    }
  }

  Status HandleFailure(const Status& cause) {
    socket_.Close();
    connected_ = false;
    if (!options_.recovery_enabled || reconnects_ >= options_.max_reconnects) {
      return cause;
    }
    ++reconnects_;
    LOG_WARNING() << "stream split " << split_.split_id
                  << " transfer failed (" << cause.message()
                  << "), attempting recovery " << reconnects_;
    return Status::OK();
  }

  std::string coordinator_host_;
  int coordinator_port_;
  StreamSplitInfo split_;
  StreamReaderOptions options_;
  MetricsRegistry* metrics_;

  TcpSocket socket_;
  bool connected_ = false;
  bool done_ = false;
  std::vector<Row> batch_;
  size_t batch_index_ = 0;
  uint64_t received_this_connection_ = 0;  // Rows pulled on this socket.
  uint64_t skip_ = 0;                      // Replay rows to discard.
  uint64_t delivered_ = 0;                 // Rows handed to the ML job.
  int reconnects_ = 0;
  bool failure_injected_ = false;
};

}  // namespace

SqlStreamInputFormat::SqlStreamInputFormat(std::string coordinator_host,
                                           int coordinator_port,
                                           StreamReaderOptions options)
    : coordinator_host_(std::move(coordinator_host)),
      coordinator_port_(coordinator_port),
      options_(options) {}

Result<std::vector<ml::InputSplitPtr>> SqlStreamInputFormat::GetSplits(
    const ml::JobContext& context) {
  (void)context;
  // Step 3: the customized getInputSplits contacts the coordinator.
  ASSIGN_OR_RETURN(TcpSocket control,
                   TcpConnect(coordinator_host_, coordinator_port_));
  RETURN_IF_ERROR(SendFrame(&control, FrameType::kGetSplits, ""));
  ASSIGN_OR_RETURN(Frame frame, RecvFrame(&control));
  if (frame.type != FrameType::kSplits) {
    return Status::NetworkError("coordinator did not return splits: " +
                                frame.payload);
  }
  ASSIGN_OR_RETURN(SplitsMessage msg, SplitsMessage::Decode(frame.payload));
  schema_ = msg.schema;
  std::vector<ml::InputSplitPtr> splits;
  splits.reserve(msg.splits.size());
  for (StreamSplitInfo& info : msg.splits) {
    splits.push_back(std::make_shared<StreamSplit>(std::move(info)));
  }
  return splits;
}

Result<std::unique_ptr<ml::RecordReader>> SqlStreamInputFormat::CreateReader(
    const ml::JobContext& context, const ml::InputSplit& split,
    int worker_id) {
  (void)worker_id;
  const auto* stream_split = dynamic_cast<const StreamSplit*>(&split);
  if (stream_split == nullptr) {
    return Status::InvalidArgument("SqlStreamInputFormat needs a StreamSplit");
  }
  return std::unique_ptr<ml::RecordReader>(new StreamRecordReader(
      coordinator_host_, coordinator_port_, stream_split->info(), options_,
      context.metrics));
}

}  // namespace sqlink
