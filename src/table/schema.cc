#include "table/schema.h"

#include "common/string_util.h"

namespace sqlink {

int Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Result<int> Schema::RequireField(std::string_view name) const {
  const int index = FieldIndex(name);
  if (index < 0) {
    return Status::NotFound("column '" + std::string(name) +
                            "' not in schema [" + ToString() + "]");
  }
  return index;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeToString(fields_[i].type);
  }
  return out;
}

}  // namespace sqlink
