#include "stream/sql_stream_input_format.h"

#include <chrono>
#include <optional>
#include <thread>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/retry_policy.h"
#include "common/status_macros.h"
#include "common/trace.h"
#include "stream/socket.h"
#include "table/row_codec.h"

namespace sqlink {

namespace {

RetryPolicy::Options ReconnectBackoffOptions(int split_id) {
  RetryPolicy::Options options;
  options.initial_delay_ms = 5;
  options.max_delay_ms = 200;
  options.seed = static_cast<uint64_t>(split_id);
  return options;
}

/// Receives one split's row stream from its SQL worker, with optional §6
/// recovery (reconnect + replay + skip) and fault injection.
class StreamRecordReader final : public ml::RecordReader {
 public:
  StreamRecordReader(std::string coordinator_host, int coordinator_port,
                     StreamSplitInfo split, StreamReaderOptions options,
                     MetricsRegistry* metrics)
      : coordinator_host_(std::move(coordinator_host)),
        coordinator_port_(coordinator_port),
        split_(std::move(split)),
        // Precomputed so the per-row failpoint probe costs one atomic load
        // (the macro skips the name expression when nothing is armed).
        row_failpoint_name_("stream.reader.row.split" +
                            std::to_string(split_.split_id)),
        options_(options),
        metrics_(metrics),
        bytes_received_(metrics != nullptr
                            ? metrics->GetCounter("stream.bytes_received")
                            : nullptr),
        rows_delivered_(metrics != nullptr
                            ? metrics->GetCounter("stream.reader.rows_delivered")
                            : nullptr),
        reconnect_backoff_(ReconnectBackoffOptions(split_.split_id)) {}

  ~StreamRecordReader() override { CloseStreamSpan(/*error=*/false); }

  Result<bool> Next(Row* out) override {
    for (;;) {
      if (done_) return false;
      if (!connected_) {
        const Status status = Connect(/*restart=*/delivered_ > 0);
        if (!status.ok()) {
          // A failed dial is recoverable like a broken transfer: it counts
          // against max_reconnects instead of failing the reader outright.
          RETURN_IF_ERROR(HandleFailure(status));
          continue;
        }
      }
      auto row = NextFromConnection(out);
      if (row.ok()) {
        if (!*row) {
          done_ = true;
          CloseStreamSpan(/*error=*/false);
          return false;
        }
        ++received_this_connection_;
        // During a replay, skip rows that were already delivered before
        // the failure.
        if (received_this_connection_ <= skip_) continue;
        ++delivered_;
        if (rows_delivered_ != nullptr) rows_delivered_->Increment();
        // Fault injection: drop the connection mid-stream. The failpoint
        // fires *after* this row was delivered, so the replay must skip it
        // too; the row itself is handed to the ML job normally.
        if (SQLINK_FAILPOINT(row_failpoint_name_) != FailpointOutcome::kNone) {
          socket_.Close();
          connected_ = false;
          const Status status = HandleFailure(
              Status::NetworkError("injected connection failure"));
          if (!status.ok()) return status;
        }
        return true;
      }
      RETURN_IF_ERROR(HandleFailure(row.status()));
    }
  }

 private:
  /// Resolves the SQL endpoint (via the coordinator on reconnects) and
  /// performs the HELLO/SCHEMA handshake.
  Status Connect(bool restart) {
    if (SQLINK_FAILPOINT("stream.reader.connect") != FailpointOutcome::kNone) {
      return Status::NetworkError("failpoint: injected reader connect error");
    }
    std::string host = split_.host;
    int port = split_.port;
    if (restart) {
      // §6: report the failure; the coordinator answers with the endpoint
      // of the (restarted) SQL worker to resume from.
      ASSIGN_OR_RETURN(TcpSocket control,
                       TcpConnect(coordinator_host_, coordinator_port_));
      RegisterMlMessage report;
      report.split_id = split_.split_id;
      RETURN_IF_ERROR(SendFrame(&control, FrameType::kReportFailure,
                                report.Encode()));
      ASSIGN_OR_RETURN(Frame match_frame, RecvFrame(&control));
      if (match_frame.type != FrameType::kMatch) {
        return Status::NetworkError("coordinator failed to re-match: " +
                                    match_frame.payload);
      }
      ASSIGN_OR_RETURN(MatchMessage match,
                       MatchMessage::Decode(match_frame.payload));
      host = match.host;
      port = match.port;
      if (metrics_ != nullptr) metrics_->Increment("stream.reconnects");
    }
    ASSIGN_OR_RETURN(socket_, TcpConnect(host, port));
    HelloMessage hello;
    hello.split_id = split_.split_id;
    hello.restart = restart;
    RETURN_IF_ERROR(SendFrame(&socket_, FrameType::kHello, hello.Encode()));
    ASSIGN_OR_RETURN(Frame schema_frame, RecvFrame(&socket_));
    if (schema_frame.type != FrameType::kSchema) {
      return Status::NetworkError("expected schema frame");
    }
    // The per-connection span parents to the *sender's* span carried in the
    // schema frame header: the SQL worker's trace continues on the ML side.
    CloseStreamSpan(/*error=*/false);
    stream_span_.emplace("reader.stream", schema_frame.trace);
    stream_span_->AddAttribute("split", split_.split_id);
    stream_span_->AddAttribute("restart", restart ? 1 : 0);
    connected_ = true;
    received_this_connection_ = 0;
    skip_ = restart ? delivered_ : 0;
    batch_.clear();
    batch_index_ = 0;
    return Status::OK();
  }

  /// Next row from the live connection; false at clean end-of-stream.
  Result<bool> NextFromConnection(Row* out) {
    for (;;) {
      if (batch_index_ < batch_.size()) {
        *out = std::move(batch_[batch_index_++]);
        return true;
      }
      ASSIGN_OR_RETURN(Frame frame, RecvFrame(&socket_));
      switch (frame.type) {
        case FrameType::kData: {
          if (SQLINK_FAILPOINT("stream.reader.frame") !=
              FailpointOutcome::kNone) {
            return Status::NetworkError("failpoint: injected frame error");
          }
          Decoder decoder(frame.payload);
          ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
          batch_.clear();
          batch_.reserve(count);
          for (uint64_t i = 0; i < count; ++i) {
            ASSIGN_OR_RETURN(Row row, RowCodec::Decode(&decoder));
            batch_.push_back(std::move(row));
          }
          batch_index_ = 0;
          if (bytes_received_ != nullptr) {
            bytes_received_->Add(static_cast<int64_t>(frame.payload.size()));
          }
          if (options_.consume_delay_micros_per_frame > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(
                options_.consume_delay_micros_per_frame));
          }
          break;
        }
        case FrameType::kEnd: {
          Decoder decoder(frame.payload);
          ASSIGN_OR_RETURN(uint64_t expected, decoder.GetVarint64());
          if (expected != received_this_connection_) {
            return Status::DataLoss(
                "stream row count mismatch: got " +
                std::to_string(received_this_connection_) + ", sender sent " +
                std::to_string(expected));
          }
          // Confirm completion so the sender may release its retained
          // state; a sender tears down only after this acknowledgement.
          RETURN_IF_ERROR(SendFrame(&socket_, FrameType::kAck, ""));
          return false;
        }
        case FrameType::kError:
          return Status::Aborted("SQL worker failed: " + frame.payload);
        default:
          return Status::NetworkError("unexpected data frame type");
      }
    }
  }

  /// Finishes the per-connection span, stamping the delivered-row count.
  void CloseStreamSpan(bool error) {
    if (!stream_span_.has_value()) return;
    stream_span_->AddAttribute("rows_delivered",
                               static_cast<int64_t>(delivered_));
    if (error) stream_span_->SetError();
    stream_span_.reset();
  }

  Status HandleFailure(const Status& cause) {
    socket_.Close();
    connected_ = false;
    CloseStreamSpan(/*error=*/true);
    if (!options_.recovery_enabled || reconnects_ >= options_.max_reconnects) {
      return cause;
    }
    ++reconnects_;
    LOG_WARNING() << "stream split " << split_.split_id
                  << " transfer failed (" << cause.message()
                  << "), attempting recovery " << reconnects_;
    if (!reconnect_backoff_.Backoff()) {
      // The backoff deadline bounds total recovery time even when
      // max_reconnects would allow further attempts.
      return cause;
    }
    return Status::OK();
  }

  std::string coordinator_host_;
  int coordinator_port_;
  StreamSplitInfo split_;
  const std::string row_failpoint_name_;
  StreamReaderOptions options_;
  MetricsRegistry* metrics_;
  Counter* bytes_received_;
  Counter* rows_delivered_;
  std::optional<TraceSpan> stream_span_;

  TcpSocket socket_;
  bool connected_ = false;
  bool done_ = false;
  std::vector<Row> batch_;
  size_t batch_index_ = 0;
  uint64_t received_this_connection_ = 0;  // Rows pulled on this socket.
  uint64_t skip_ = 0;                      // Replay rows to discard.
  uint64_t delivered_ = 0;                 // Rows handed to the ML job.
  int reconnects_ = 0;
  RetryPolicy reconnect_backoff_;
};

}  // namespace

SqlStreamInputFormat::SqlStreamInputFormat(std::string coordinator_host,
                                           int coordinator_port,
                                           StreamReaderOptions options)
    : coordinator_host_(std::move(coordinator_host)),
      coordinator_port_(coordinator_port),
      options_(options) {}

Result<std::vector<ml::InputSplitPtr>> SqlStreamInputFormat::GetSplits(
    const ml::JobContext& context) {
  (void)context;
  // Step 3: the customized getInputSplits contacts the coordinator. The
  // exchange is read-only on the coordinator, so dropped control
  // connections are simply retried with backoff.
  TraceSpan span("reader.get_splits");
  RetryPolicy retry(RetryPolicy::Options{});
  Result<SplitsMessage> exchange = retry.Run([&]() -> Result<SplitsMessage> {
    ASSIGN_OR_RETURN(TcpSocket control,
                     TcpConnect(coordinator_host_, coordinator_port_));
    RETURN_IF_ERROR(SendFrame(&control, FrameType::kGetSplits, ""));
    ASSIGN_OR_RETURN(Frame frame, RecvFrame(&control));
    if (frame.type != FrameType::kSplits) {
      return Status::NetworkError("coordinator did not return splits: " +
                                  frame.payload);
    }
    return SplitsMessage::Decode(frame.payload);
  });
  if (!exchange.ok()) return exchange.status();
  SplitsMessage msg = exchange.MoveValue();
  schema_ = msg.schema;
  std::vector<ml::InputSplitPtr> splits;
  splits.reserve(msg.splits.size());
  for (StreamSplitInfo& info : msg.splits) {
    splits.push_back(std::make_shared<StreamSplit>(std::move(info)));
  }
  return splits;
}

Result<std::unique_ptr<ml::RecordReader>> SqlStreamInputFormat::CreateReader(
    const ml::JobContext& context, const ml::InputSplit& split,
    int worker_id) {
  (void)worker_id;
  const auto* stream_split = dynamic_cast<const StreamSplit*>(&split);
  if (stream_split == nullptr) {
    return Status::InvalidArgument("SqlStreamInputFormat needs a StreamSplit");
  }
  return std::unique_ptr<ml::RecordReader>(new StreamRecordReader(
      coordinator_host_, coordinator_port_, stream_split->info(), options_,
      context.metrics));
}

}  // namespace sqlink
