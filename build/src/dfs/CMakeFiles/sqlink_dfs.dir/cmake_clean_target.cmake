file(REMOVE_RECURSE
  "libsqlink_dfs.a"
)
