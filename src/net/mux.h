#ifndef SQLINK_NET_MUX_H_
#define SQLINK_NET_MUX_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "stream/socket.h"
#include "stream/wire.h"

namespace sqlink {

/// One logical sink→reader transfer stream, independent of how it reaches
/// the peer: a dedicated socket (SQLINK_MUX=off) or a channel multiplexed
/// onto a shared connection. The sink's sender and the reader speak the
/// same §6 frame protocol (kResume/kSchema/kDictPage/kData/kColData/kEnd +
/// kDataAck/kAck) through this interface, so replay, dedupe, and resume are
/// transport-agnostic.
///
/// Threading: Send and Recv/TryRecv each have one caller at a time (they
/// may be different threads); Shutdown may race both.
class FrameChannel {
 public:
  virtual ~FrameChannel() = default;

  /// Sends one frame. `seq` = 0 for frames outside the replay protocol.
  /// Stamps the calling thread's current trace span.
  virtual Status Send(FrameType type, std::string_view payload,
                      uint64_t seq) = 0;

  /// Blocks for the next frame. A peer that closed the channel (or a dead
  /// transport) surfaces as a non-OK status.
  virtual Status Recv(Frame* frame) = 0;

  /// Non-blocking receive: true = a frame was produced, false = nothing
  /// pending right now. `*closed` is set when the peer has closed cleanly
  /// and every buffered frame has been drained (no more will arrive). A
  /// broken transport is an error only once buffered frames are exhausted.
  virtual Result<bool> TryRecv(Frame* frame, bool* closed) = 0;

  /// Closes this channel only — never a shared socket — waking any thread
  /// parked in Send (flow-control credit) or Recv, and telling the peer
  /// best-effort why. Safe to call from any thread, more than once.
  virtual void Shutdown(const Status& status) = 0;
};

using FrameChannelPtr = std::shared_ptr<FrameChannel>;

/// Legacy transport: one dedicated TCP socket per transfer stream. Wraps
/// either an owned socket (reader side) or a shared accepted socket (sink
/// side). Receive buffers bytes fetched out-of-band so non-blocking ack
/// drains and blocking receives interleave on one connection.
class SocketFrameChannel final : public FrameChannel {
 public:
  explicit SocketFrameChannel(TcpSocket socket);
  explicit SocketFrameChannel(std::shared_ptr<TcpSocket> socket);

  Status Send(FrameType type, std::string_view payload, uint64_t seq) override;
  Status Recv(Frame* frame) override;
  Result<bool> TryRecv(Frame* frame, bool* closed) override;
  void Shutdown(const Status& status) override;

 private:
  /// Parses one complete frame out of `buffer_`; false = need more bytes.
  Result<bool> ExtractBuffered(Frame* frame);

  std::shared_ptr<TcpSocket> socket_;
  std::string buffer_;     ///< Bytes received but not yet parsed.
  std::string scratch_;    ///< Header scratch for the blocking fast path.
  bool peer_closed_ = false;
};

class MuxConn;

/// One multiplexed channel on a shared connection. Frames travel wrapped in
/// kChannelData with a one-byte inner-type prefix; data frames additionally
/// consume per-channel credit (kChannelWindow replenishes it), so one slow
/// reader parks only its own channel, never its socket-mates.
class MuxChannel final : public FrameChannel,
                         public std::enable_shared_from_this<MuxChannel> {
 public:
  MuxChannel(std::shared_ptr<MuxConn> conn, uint32_t id, int64_t credit);
  ~MuxChannel() override;

  Status Send(FrameType type, std::string_view payload, uint64_t seq) override;
  Status Recv(Frame* frame) override;
  Result<bool> TryRecv(Frame* frame, bool* closed) override;
  void Shutdown(const Status& status) override;

  uint32_t id() const { return id_; }

  // --- Called by MuxConn's demux thread. ---
  void OnFrame(Frame&& frame);
  void AddCredit(int64_t bytes);
  /// Peer sent kCloseChannel; `status` is OK for a clean close.
  void RemoteClose(const Status& status);
  /// The shared connection died; every Send/Recv fails with `status`.
  void Fail(const Status& status);

 private:
  /// Marks the channel closed, wakes every waiter, optionally notifies the
  /// peer (kCloseChannel) and always deregisters from the connection.
  void CloseInternal(const Status& status, bool notify_peer);

  const std::shared_ptr<MuxConn> conn_;
  const uint32_t id_;

  std::mutex mu_;
  std::condition_variable credit_cv_;
  std::condition_variable inbox_cv_;
  std::deque<Frame> inbox_;
  int64_t credit_;             ///< Sender-side; only data frames deduct.
  bool closed_ = false;        ///< Local close/shutdown or transport death.
  bool remote_closed_ = false; ///< Peer sent kCloseChannel.
  Status close_status_;        ///< Why the peer closed (OK = clean close).
  Status state_;               ///< Why the channel is unusable (OK = alive).
  int64_t stall_micros_ = 0;   ///< Time spent parked on an empty window.
};

/// One shared sink→reader TCP connection carrying many channels. Owns the
/// socket, a demux thread (routes inbound frames to channel inboxes), and a
/// write-side coalescer: concurrent senders enqueue frames and the first
/// becomes the flusher, batching everything queued — across channels — into
/// one scatter-gather sendmsg (net.mux.coalesced_frames counts batched
/// frames).
class MuxConn : public std::enable_shared_from_this<MuxConn> {
 public:
  /// Invoked on the demux thread for every kOpenChannel (server side).
  using OpenHandler =
      std::function<void(FrameChannelPtr, const OpenChannelMessage&)>;

  /// Wraps `socket` and starts the demux thread. `on_open` = nullptr for
  /// the client (reader) side, which opens channels itself.
  static std::shared_ptr<MuxConn> Spawn(TcpSocket socket, OpenHandler on_open);

  ~MuxConn();

  /// Client side: allocates a channel id, registers the channel, and sends
  /// kOpenChannel. The sink's first frame on the channel answers the
  /// embedded HELLO (kResume), or kCloseChannel rejects it.
  Result<FrameChannelPtr> OpenChannel(const OpenChannelMessage& msg);

  /// Kills the connection: every channel and queued write fails with
  /// `status`, and the socket is shut down (waking the demux thread).
  void Shutdown(const Status& status);

  bool dead() const { return dead_.load(std::memory_order_acquire); }
  size_t open_channels() const;

  // --- Internal (MuxChannel). ---
  /// Sends one wrapped frame: inner >= 0 wraps it as kChannelData with that
  /// inner type byte; inner < 0 sends `outer` verbatim (control frames).
  /// `truncate` (from a mid-frame failpoint) ships only half the frame and
  /// kills the connection. Blocks until the frame is on the wire.
  Status EnqueueWrite(FrameType outer, uint32_t channel, uint64_t seq,
                      int inner, std::string_view payload, bool truncate);
  void ReleaseChannel(uint32_t id);

 private:
  MuxConn(TcpSocket socket, OpenHandler on_open);

  void RecvLoop();
  void Fail(const Status& status);
  std::shared_ptr<MuxChannel> FindChannel(uint32_t id);

  /// One frame waiting in the coalescer. `head` holds the encoded wire
  /// header (+ inner type byte for kChannelData); the payload stays a view
  /// because the enqueuing thread blocks until the flusher finishes it.
  struct PendingWrite {
    char head[kFrameHeaderBytes + 1];
    size_t head_len = 0;
    std::string_view payload;
    bool truncate = false;
    bool done = false;
    Status status;
  };

  TcpSocket socket_;
  OpenHandler on_open_;
  std::atomic<bool> dead_{false};

  std::mutex write_mu_;
  std::condition_variable write_cv_;
  std::deque<PendingWrite*> write_queue_;
  bool flusher_active_ = false;
  Status death_status_;  ///< Valid once dead_.

  mutable std::mutex channels_mu_;
  std::unordered_map<uint32_t, std::weak_ptr<MuxChannel>> channels_;
  uint32_t next_id_ = 1;
};

}  // namespace sqlink

#endif  // SQLINK_NET_MUX_H_
