#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/runtime_flags.h"
#include "common/status_macros.h"
#include "common/string_util.h"
#include "sql/engine.h"
#include "sql_corpus.h"

namespace sqlink {
namespace {

/// Sorts rows for order-insensitive comparison.
std::vector<Row> Sorted(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      if (a[i] < b[i]) return true;
      if (b[i] < a[i]) return false;
    }
    return a.size() < b.size();
  });
  return rows;
}

class SqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("sql_test");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    engine_ = SqlEngine::Make(*cluster);

    // The paper's running example: carts and users.
    auto users_schema = Schema::Make({{"userid", DataType::kInt64},
                                      {"age", DataType::kInt64},
                                      {"gender", DataType::kString},
                                      {"country", DataType::kString}});
    auto users = engine_->MakeTable("users", users_schema);
    AddUser(users.get(), 1, 57, "F", "USA");
    AddUser(users.get(), 2, 40, "M", "USA");
    AddUser(users.get(), 3, 35, "F", "CA");
    AddUser(users.get(), 4, 22, "M", "USA");
    AddUser(users.get(), 5, 61, "F", "USA");
    ASSERT_TRUE(engine_->catalog()->RegisterTable(users).ok());

    auto carts_schema = Schema::Make({{"cartid", DataType::kInt64},
                                      {"userid", DataType::kInt64},
                                      {"amount", DataType::kDouble},
                                      {"abandoned", DataType::kString}});
    auto carts = engine_->MakeTable("carts", carts_schema);
    AddCart(carts.get(), 100, 1, 153.99, "Yes");
    AddCart(carts.get(), 101, 2, 99.50, "Yes");
    AddCart(carts.get(), 102, 3, 75.25, "No");
    AddCart(carts.get(), 103, 4, 12.00, "No");
    AddCart(carts.get(), 104, 1, 300.00, "No");
    AddCart(carts.get(), 105, 9, 1.00, "Yes");  // No matching user.
    ASSERT_TRUE(engine_->catalog()->RegisterTable(carts).ok());
  }

  void AddUser(Table* t, int64_t id, int64_t age, const std::string& gender,
               const std::string& country) {
    t->AppendRow(static_cast<size_t>(id) % t->num_partitions(),
                 Row{Value::Int64(id), Value::Int64(age),
                     Value::String(gender), Value::String(country)});
  }

  void AddCart(Table* t, int64_t cart, int64_t user, double amount,
               const std::string& abandoned) {
    t->AppendRow(static_cast<size_t>(cart) % t->num_partitions(),
                 Row{Value::Int64(cart), Value::Int64(user),
                     Value::Double(amount), Value::String(abandoned)});
  }

  std::vector<Row> Run(const std::string& sql) {
    auto result = engine_->ExecuteSql(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    if (!result.ok()) return {};
    return (*result)->GatherRows();
  }

  std::unique_ptr<ScopedTempDir> temp_;
  SqlEnginePtr engine_;
};

TEST_F(SqlEngineTest, SelectStarSingleTable) {
  EXPECT_EQ(Run("SELECT * FROM users").size(), 5u);
}

TEST_F(SqlEngineTest, FilterPushdown) {
  auto rows = Run("SELECT userid FROM users WHERE country = 'USA'");
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(SqlEngineTest, PaperExampleJoin) {
  auto rows = Run(
      "SELECT U.age, U.gender, C.amount, C.abandoned "
      "FROM carts C, users U "
      "WHERE C.userid = U.userid AND U.country = 'USA'");
  // Carts 100,101,103,104 belong to USA users; 102 is CA; 105 dangles.
  ASSERT_EQ(rows.size(), 4u);
  for (const Row& row : rows) {
    EXPECT_EQ(row.size(), 4u);
    EXPECT_TRUE(row[0].is_int64());
    EXPECT_TRUE(row[1].is_string());
  }
}

TEST_F(SqlEngineTest, JoinOrderIndependent) {
  auto a = Sorted(Run(
      "SELECT U.userid, C.cartid FROM carts C, users U "
      "WHERE C.userid = U.userid"));
  auto b = Sorted(Run(
      "SELECT U.userid, C.cartid FROM users U, carts C "
      "WHERE U.userid = C.userid"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 5u);
}

TEST_F(SqlEngineTest, ProjectionExpressions) {
  auto rows = Run(
      "SELECT amount * 2 AS dbl, UPPER(abandoned) AS ab FROM carts "
      "WHERE cartid = 100");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0][0].double_value(), 307.98);
  EXPECT_EQ(rows[0][1], Value::String("YES"));
}

TEST_F(SqlEngineTest, DistinctGlobal) {
  auto rows = Run("SELECT DISTINCT gender FROM users");
  EXPECT_EQ(rows.size(), 2u);
  auto rows2 = Run("SELECT DISTINCT gender, country FROM users");
  EXPECT_EQ(rows2.size(), 3u);  // (F,USA), (M,USA), (F,CA).
}

TEST_F(SqlEngineTest, AggregateGroupBy) {
  auto rows = Sorted(Run(
      "SELECT gender, COUNT(*) AS n, MIN(age) AS young FROM users "
      "GROUP BY gender"));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::String("F"));
  EXPECT_EQ(rows[0][1], Value::Int64(3));
  EXPECT_EQ(rows[0][2], Value::Int64(35));
  EXPECT_EQ(rows[1][0], Value::String("M"));
  EXPECT_EQ(rows[1][1], Value::Int64(2));
}

TEST_F(SqlEngineTest, GlobalAggregates) {
  auto rows = Run(
      "SELECT COUNT(*), SUM(amount), AVG(amount), MAX(amount) FROM carts");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int64(6));
  EXPECT_NEAR(rows[0][1].double_value(), 641.74, 1e-9);
  EXPECT_NEAR(rows[0][2].double_value(), 641.74 / 6, 1e-9);
  EXPECT_DOUBLE_EQ(rows[0][3].double_value(), 300.0);
}

TEST_F(SqlEngineTest, GlobalAggregateOnEmptyInput) {
  auto rows = Run("SELECT COUNT(*) FROM users WHERE age > 1000");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int64(0));
}

TEST_F(SqlEngineTest, OrderByAndLimit) {
  auto rows = Run("SELECT cartid, amount FROM carts ORDER BY amount DESC");
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0][0], Value::Int64(104));
  EXPECT_EQ(rows[5][0], Value::Int64(105));
  auto limited = Run(
      "SELECT cartid FROM carts ORDER BY amount DESC LIMIT 2");
  ASSERT_EQ(limited.size(), 2u);
  EXPECT_EQ(limited[0][0], Value::Int64(104));
  EXPECT_EQ(limited[1][0], Value::Int64(100));
}

TEST_F(SqlEngineTest, SubqueryInFrom) {
  auto rows = Run(
      "SELECT big.cartid FROM "
      "(SELECT cartid, amount FROM carts WHERE amount > 90) big "
      "WHERE big.amount < 200");
  ASSERT_EQ(rows.size(), 2u);  // 100 (153.99) and 101 (99.50).
}

TEST_F(SqlEngineTest, BetweenAndOr) {
  auto rows = Run(
      "SELECT userid FROM users WHERE age BETWEEN 30 AND 60 "
      "AND (gender = 'F' OR country = 'USA')");
  EXPECT_EQ(rows.size(), 3u);  // Users 1 (57,F), 2 (40,M,USA), 3 (35,F).
}

TEST_F(SqlEngineTest, NullSemanticsInFilters) {
  auto t = engine_->MakeTable(
      "nully", Schema::Make({{"x", DataType::kInt64}}));
  t->AppendRow(0, Row{Value::Int64(1)});
  t->AppendRow(1, Row{Value::Null()});
  t->AppendRow(2, Row{Value::Int64(3)});
  ASSERT_TRUE(engine_->catalog()->RegisterTable(t).ok());
  // NULL comparisons are not TRUE -> row dropped.
  EXPECT_EQ(Run("SELECT x FROM nully WHERE x > 0").size(), 2u);
  EXPECT_EQ(Run("SELECT x FROM nully WHERE x IS NULL").size(), 1u);
  EXPECT_EQ(Run("SELECT x FROM nully WHERE x IS NOT NULL").size(), 2u);
  // NULL join keys never match.
  EXPECT_EQ(Run("SELECT a.x FROM nully a, nully b WHERE a.x = b.x").size(),
            2u);
}

TEST_F(SqlEngineTest, AmbiguousColumnRejected) {
  auto status =
      engine_->ExecuteSql("SELECT userid FROM carts C, users U").status();
  EXPECT_FALSE(status.ok());
}

TEST_F(SqlEngineTest, UnknownTableAndColumnErrors) {
  EXPECT_TRUE(
      engine_->ExecuteSql("SELECT x FROM ghost").status().IsNotFound());
  EXPECT_FALSE(engine_->ExecuteSql("SELECT ghost FROM users").ok());
}

TEST_F(SqlEngineTest, CrossJoinWithoutKeys) {
  auto rows = Run("SELECT U.userid, C.cartid FROM users U, carts C");
  EXPECT_EQ(rows.size(), 30u);
}

TEST_F(SqlEngineTest, RepartitionJoinMatchesBroadcast) {
  // Run the same join through both strategies: broadcast (default
  // threshold) and repartition (threshold forced to zero). Results must
  // agree row-for-row.
  const std::string sql =
      "SELECT U.userid, C.cartid, C.amount FROM carts C, users U "
      "WHERE C.userid = U.userid AND U.country = 'USA'";
  auto broadcast = Sorted(Run(sql));
  EXPECT_NE(PlanTreeToString(*engine_->Plan(sql)).find("[broadcast]"),
            std::string::npos);

  engine_->set_broadcast_threshold_rows(0);
  EXPECT_NE(PlanTreeToString(*engine_->Plan(sql)).find("[repartition]"),
            std::string::npos);
  auto repartition = Sorted(Run(sql));
  engine_->set_broadcast_threshold_rows(500000);

  EXPECT_EQ(broadcast, repartition);
  EXPECT_EQ(broadcast.size(), 4u);
}

TEST_F(SqlEngineTest, RepartitionJoinMultiKeyAndNulls) {
  auto t = engine_->MakeTable("pairs",
                              Schema::Make({{"x", DataType::kInt64},
                                            {"y", DataType::kString}}));
  t->AppendRow(0, Row{Value::Int64(1), Value::String("a")});
  t->AppendRow(1, Row{Value::Int64(1), Value::String("b")});
  t->AppendRow(2, Row{Value::Int64(2), Value::String("a")});
  t->AppendRow(3, Row{Value::Null(), Value::String("a")});
  ASSERT_TRUE(engine_->catalog()->RegisterTable(t).ok());
  const std::string sql =
      "SELECT l.x FROM pairs l, pairs r WHERE l.x = r.x AND l.y = r.y";
  auto broadcast = Sorted(Run(sql));
  engine_->set_broadcast_threshold_rows(0);
  auto repartition = Sorted(Run(sql));
  engine_->set_broadcast_threshold_rows(500000);
  EXPECT_EQ(broadcast, repartition);
  EXPECT_EQ(broadcast.size(), 3u);  // NULL keys never match themselves.
}

TEST_F(SqlEngineTest, ExplicitInnerJoinSyntax) {
  auto comma = Sorted(Run(
      "SELECT U.age, C.amount FROM carts C, users U "
      "WHERE C.userid = U.userid AND U.country = 'USA'"));
  auto join = Sorted(Run(
      "SELECT U.age, C.amount FROM carts C JOIN users U "
      "ON C.userid = U.userid WHERE U.country = 'USA'"));
  auto inner = Sorted(Run(
      "SELECT U.age, C.amount FROM carts C INNER JOIN users U "
      "ON C.userid = U.userid WHERE U.country = 'USA'"));
  EXPECT_EQ(comma, join);
  EXPECT_EQ(comma, inner);
  EXPECT_EQ(comma.size(), 4u);
}

TEST_F(SqlEngineTest, ChainedExplicitJoins) {
  auto t = engine_->MakeTable("countries",
                              Schema::Make({{"code", DataType::kString},
                                            {"name", DataType::kString}}));
  t->AppendRow(0, Row{Value::String("USA"), Value::String("United States")});
  t->AppendRow(1, Row{Value::String("CA"), Value::String("Canada")});
  ASSERT_TRUE(engine_->catalog()->RegisterTable(t).ok());
  auto rows = Run(
      "SELECT N.name, C.amount FROM carts C "
      "JOIN users U ON C.userid = U.userid "
      "JOIN countries N ON U.country = N.code "
      "WHERE U.age > 30");
  EXPECT_EQ(rows.size(), 4u);  // Users 1, 2, 3, 5 have carts; 4 is 22.
}

TEST_F(SqlEngineTest, InnerWithoutJoinRejected) {
  EXPECT_FALSE(
      engine_->ExecuteSql("SELECT * FROM carts INNER users").ok());
}

TEST_F(SqlEngineTest, MaterializeRegistersResult) {
  auto table = engine_->MaterializeSql(
      "SELECT userid, age FROM users WHERE country = 'USA'", "usa_users");
  ASSERT_TRUE(table.ok());
  auto rows = Run("SELECT * FROM usa_users WHERE age > 30");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(SqlEngineTest, ScalarFunctionsInPredicates) {
  auto rows = Run("SELECT userid FROM users WHERE LOWER(country) = 'usa'");
  EXPECT_EQ(rows.size(), 4u);
  auto rows2 = Run("SELECT LENGTH(country) AS l FROM users WHERE userid = 3");
  ASSERT_EQ(rows2.size(), 1u);
  EXPECT_EQ(rows2[0][0], Value::Int64(2));
}

TEST_F(SqlEngineTest, CustomScalarUdf) {
  ASSERT_TRUE(engine_
                  ->scalar_udfs()
                  ->Register(ScalarFunction{
                      "double_it",
                      [](const std::vector<DataType>& args) -> Result<DataType> {
                        if (args.size() != 1) {
                          return Status::InvalidArgument("double_it(x)");
                        }
                        return args[0];
                      },
                      [](const std::vector<Value>& args) -> Result<Value> {
                        if (args[0].is_null()) return Value::Null();
                        return Value::Int64(args[0].int64_value() * 2);
                      }})
                  .ok());
  auto rows = Run("SELECT double_it(age) FROM users WHERE userid = 1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int64(114));
}

/// A test table UDF: emits (worker_id, row_count) per partition — verifies
/// parallel per-partition execution and UDF plumbing.
class PartitionCounterUdf final : public TableUdf {
 public:
  Result<SchemaPtr> Bind(const SchemaPtr& input_schema,
                         const std::vector<Value>& args) override {
    if (input_schema == nullptr) {
      return Status::InvalidArgument("needs an input relation");
    }
    if (!args.empty()) return Status::InvalidArgument("takes no args");
    return Schema::Make(
        {{"worker", DataType::kInt64}, {"cnt", DataType::kInt64}});
  }

  Status ProcessPartition(const TableUdfContext& context, RowIterator* input,
                          RowSink* output) override {
    int64_t count = 0;
    Row row;
    for (;;) {
      auto has = input->Next(&row);
      RETURN_IF_ERROR(has.status());
      if (!*has) break;
      ++count;
    }
    return output->Push(
        Row{Value::Int64(context.worker_id), Value::Int64(count)});
  }
};

TEST_F(SqlEngineTest, TableUdfRunsPerWorker) {
  ASSERT_TRUE(engine_->table_udfs()
                  ->Register("partition_counter",
                             [] { return std::make_shared<PartitionCounterUdf>(); })
                  .ok());
  auto rows = Run(
      "SELECT * FROM TABLE(partition_counter((SELECT * FROM carts)))");
  ASSERT_EQ(rows.size(), 4u);  // One row per SQL worker.
  int64_t total = 0;
  std::set<int64_t> workers;
  for (const Row& row : rows) {
    workers.insert(row[0].int64_value());
    total += row[1].int64_value();
  }
  EXPECT_EQ(total, 6);
  EXPECT_EQ(workers.size(), 4u);
}

TEST_F(SqlEngineTest, TableUdfWithBareTableName) {
  ASSERT_TRUE(engine_->table_udfs()
                  ->Register("partition_counter2",
                             [] { return std::make_shared<PartitionCounterUdf>(); })
                  .ok());
  auto rows = Run("SELECT * FROM TABLE(partition_counter2(carts))");
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(SqlEngineTest, PlanRendering) {
  auto plan = engine_->Plan(
      "SELECT U.age FROM carts C, users U "
      "WHERE C.userid = U.userid AND U.country = 'USA'");
  ASSERT_TRUE(plan.ok()) << plan.status();
  const std::string tree = PlanTreeToString(*plan);
  EXPECT_NE(tree.find("HashJoin"), std::string::npos);
  EXPECT_NE(tree.find("Filter"), std::string::npos);  // Pushed-down filter.
  EXPECT_NE(tree.find("Scan(carts)"), std::string::npos);
}

TEST_F(SqlEngineTest, OrderByMultipleKeysMixedDirections) {
  auto rows = Run(
      "SELECT abandoned, amount FROM carts ORDER BY abandoned ASC, "
      "amount DESC");
  ASSERT_EQ(rows.size(), 6u);
  // 'No' group first (amount descending within), then 'Yes'.
  EXPECT_EQ(rows[0][0], Value::String("No"));
  EXPECT_DOUBLE_EQ(rows[0][1].double_value(), 300.0);
  EXPECT_EQ(rows[1][0], Value::String("No"));
  EXPECT_DOUBLE_EQ(rows[1][1].double_value(), 75.25);
  EXPECT_EQ(rows[3][0], Value::String("Yes"));
  EXPECT_DOUBLE_EQ(rows[3][1].double_value(), 153.99);
}

TEST_F(SqlEngineTest, OrderByOrdinalPosition) {
  auto rows = Run("SELECT userid, age FROM users ORDER BY 2 DESC LIMIT 1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value::Int64(61));  // Oldest user.
}

TEST_F(SqlEngineTest, CastFunctions) {
  auto rows = Run(
      "SELECT CAST_STRING(age), CAST_DOUBLE(age), CAST_INT64(amount) "
      "FROM carts C, users U WHERE C.userid = U.userid AND cartid = 100");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::String("57"));
  EXPECT_DOUBLE_EQ(rows[0][1].double_value(), 57.0);
  EXPECT_EQ(rows[0][2], Value::Int64(153));
  // String -> number casts parse strictly.
  auto bad = engine_->ExecuteSql(
      "SELECT CAST_INT64(gender) FROM users WHERE userid = 1");
  EXPECT_FALSE(bad.ok());
}

TEST_F(SqlEngineTest, ScalarFunctionErrorsPropagateFromWorkers) {
  // Division by zero inside a projection surfaces as a status, not a crash.
  auto status =
      engine_->ExecuteSql("SELECT amount / (cartid - cartid) FROM carts")
          .status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("division by zero"), std::string::npos);
}

TEST_F(SqlEngineTest, MinMaxOnStrings) {
  auto rows = Run("SELECT MIN(gender), MAX(country) FROM users");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::String("F"));
  EXPECT_EQ(rows[0][1], Value::String("USA"));
  // SUM over strings is rejected at planning time.
  EXPECT_TRUE(engine_->ExecuteSql("SELECT SUM(gender) FROM users")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SqlEngineTest, GlobalAggregateWithHaving) {
  auto some = Run("SELECT COUNT(*) AS n FROM carts HAVING COUNT(*) > 3");
  ASSERT_EQ(some.size(), 1u);
  EXPECT_EQ(some[0][0], Value::Int64(6));
  auto none = Run("SELECT COUNT(*) AS n FROM carts HAVING COUNT(*) > 100");
  EXPECT_EQ(none.size(), 0u);
}

TEST_F(SqlEngineTest, InListDesugarsToDisjunction) {
  auto rows = Run("SELECT userid FROM users WHERE country IN ('USA', 'MX')");
  EXPECT_EQ(rows.size(), 4u);
  auto none = Run("SELECT userid FROM users WHERE country IN ('MX', 'BR')");
  EXPECT_EQ(none.size(), 0u);
  auto negated =
      Run("SELECT userid FROM users WHERE country NOT IN ('USA')");
  EXPECT_EQ(negated.size(), 1u);  // Only the CA user.
  auto numeric = Run("SELECT userid FROM users WHERE userid IN (1, 3, 5)");
  EXPECT_EQ(numeric.size(), 3u);
}

TEST_F(SqlEngineTest, HavingFiltersGroups) {
  auto rows = Sorted(Run(
      "SELECT userid, COUNT(*) AS n FROM carts GROUP BY userid "
      "HAVING COUNT(*) > 1"));
  // Only user 1 has two carts (100, 104).
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int64(1));
  EXPECT_EQ(rows[0][1], Value::Int64(2));
}

TEST_F(SqlEngineTest, HavingOnGroupKeyAndAggregate) {
  auto rows = Run(
      "SELECT gender, MAX(age) AS oldest FROM users GROUP BY gender "
      "HAVING gender = 'F' AND MAX(age) > 50");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::String("F"));
  EXPECT_EQ(rows[0][1], Value::Int64(61));
}

TEST_F(SqlEngineTest, HavingAggregateMissingFromSelectRejected) {
  auto status = engine_
                    ->ExecuteSql(
                        "SELECT gender FROM users GROUP BY gender "
                        "HAVING SUM(age) > 10")
                    .status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("SELECT list"), std::string::npos);
}

TEST_F(SqlEngineTest, ExplainRendersPlanTree) {
  auto explain = engine_->ExplainSql(
      "SELECT U.age FROM carts C, users U WHERE C.userid = U.userid "
      "ORDER BY age LIMIT 3");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("Limit(3)"), std::string::npos);
  EXPECT_NE(explain->find("Sort"), std::string::npos);
  EXPECT_NE(explain->find("HashJoin[broadcast]"), std::string::npos);
}

/// EXPLAIN as a first-class statement: a one-column plan table with
/// per-node estimates and cumulative cost, no execution.
TEST_F(SqlEngineTest, ExplainStatementReturnsPlanRows) {
  auto result = engine_->ExecuteSql(
      "EXPLAIN SELECT U.age FROM carts C, users U WHERE C.userid = U.userid "
      "ORDER BY age LIMIT 3");
  ASSERT_TRUE(result.ok()) << result.status();
  const SchemaPtr& schema = (*result)->schema();
  ASSERT_EQ(schema->num_fields(), 1);
  EXPECT_EQ(schema->field(0).name, "plan");
  EXPECT_EQ(schema->field(0).type, DataType::kString);
  std::string text;
  for (const Row& row : (*result)->GatherRows()) {
    text += row[0].string_value();
    text += "\n";
  }
  EXPECT_NE(text.find("Limit(3)"), std::string::npos) << text;
  EXPECT_NE(text.find("HashJoin[broadcast]"), std::string::npos) << text;
  EXPECT_NE(text.find("est="), std::string::npos) << text;
  EXPECT_NE(text.find("cost="), std::string::npos) << text;
}

TEST_F(SqlEngineTest, ExplainAnalyzeReportsEstimatedVsActualRows) {
  // Join + filter + DISTINCT, the acceptance query shape, in both engine
  // modes: the analyzed root's actual row count must equal the executed
  // result's cardinality.
  const std::string query =
      "SELECT DISTINCT U.age, U.gender FROM carts C, users U "
      "WHERE C.userid = U.userid AND C.amount > 50";
  for (int vectorized : {0, 1}) {
    SCOPED_TRACE(vectorized ? "vectorized" : "row");
    SetVectorizedSqlEnabledForTest(vectorized);
    auto executed = engine_->ExecuteSql(query);
    ASSERT_TRUE(executed.ok()) << executed.status();
    const size_t expected_rows = (*executed)->TotalRows();
    ASSERT_GT(expected_rows, 0u);

    auto analyzed = engine_->ExecuteSql("EXPLAIN ANALYZE " + query);
    ASSERT_TRUE(analyzed.ok()) << analyzed.status();
    std::vector<Row> lines = (*analyzed)->GatherRows();
    ASSERT_FALSE(lines.empty());
    // Partition 0 holds the whole rendering in order; the first line is the
    // root (DISTINCT) node.
    const std::string& root = (*analyzed)->partition(0)[0][0].string_value();
    EXPECT_NE(root.find("Distinct"), std::string::npos) << root;
    EXPECT_NE(root.find("est="), std::string::npos) << root;
    EXPECT_NE(root.find("actual=" + std::to_string(expected_rows) + " rows"),
              std::string::npos)
        << root;
    // Every node line carries a q-error.
    for (const Row& row : lines) {
      EXPECT_NE(row[0].string_value().find("q="), std::string::npos)
          << row[0].string_value();
    }
  }
  SetVectorizedSqlEnabledForTest(-1);
}

TEST_F(SqlEngineTest, ExplainAnalyzeTracksQueryInRegistry) {
  QueryRegistry::Global().Reset();
  auto analyzed = engine_->ExecuteSql(
      "EXPLAIN ANALYZE SELECT U.age FROM carts C, users U "
      "WHERE C.userid = U.userid");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  ASSERT_EQ(QueryRegistry::Global().finished_count(), 1u);
  QueryRecordPtr record = QueryRegistry::Global().Finished()[0];
  EXPECT_TRUE(record->finished);
  EXPECT_TRUE(record->ok);
  EXPECT_GE(record->worst_qerror, 1.0);
  ASSERT_NE(record->stats, nullptr);
  EXPECT_EQ(record->stats->RootActualRows(), 5);
  const std::string json = QueryRegistry::Global().ToJson();
  EXPECT_NE(json.find("\"finished\""), std::string::npos);
  EXPECT_NE(json.find("\"operators\""), std::string::npos);
  QueryRegistry::Global().Reset();
}

TEST_F(SqlEngineTest, LimitWithoutSortTerminatesEarly) {
  // Early termination: LIMIT over a pipelined scan must not depend on
  // total table size for correctness, and output respects the limit.
  auto rows = Run("SELECT cartid FROM carts LIMIT 2");
  EXPECT_EQ(rows.size(), 2u);
  auto all = Run("SELECT cartid FROM carts LIMIT 100");
  EXPECT_EQ(all.size(), 6u);  // Fewer rows than the limit.
  auto zero = Run("SELECT cartid FROM carts LIMIT 0");
  EXPECT_EQ(zero.size(), 0u);
  auto joined =
      Run("SELECT U.age FROM carts C, users U WHERE C.userid = U.userid "
          "LIMIT 3");
  EXPECT_EQ(joined.size(), 3u);
}

TEST_F(SqlEngineTest, CatalogOperations) {
  EXPECT_TRUE(engine_->catalog()->HasTable("CARTS"));  // Case-insensitive.
  EXPECT_EQ(engine_->catalog()->ListTables().size(), 2u);
  EXPECT_TRUE(engine_->catalog()->DropTable("carts").ok());
  EXPECT_FALSE(engine_->catalog()->HasTable("carts"));
  EXPECT_TRUE(engine_->catalog()->DropTable("carts").IsNotFound());
}

/// Golden corpus queries against their committed .expected files, under
/// whatever engine mode (SQLINK_VECTORIZED_SQL) this test run was launched
/// with — CI runs both modes, so the goldens pin both engines.
class CorpusGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("sql_corpus");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    engine_ = SqlEngine::Make(*cluster);
    RegisterCorpusTables(engine_.get());
  }

  std::unique_ptr<ScopedTempDir> temp_;
  SqlEnginePtr engine_;
};

TEST_F(CorpusGoldenTest, QueriesMatchCommittedGoldens) {
  auto corpus = LoadQueryCorpus();
  ASSERT_GE(corpus.size(), 14u);
  for (const CorpusQuery& query : corpus) {
    SCOPED_TRACE(query.name);
    auto result = engine_->ExecuteSql(query.sql);
    ASSERT_TRUE(result.ok()) << query.sql << " -> " << result.status();
    auto golden = ReadFileToString(query.expected_path);
    ASSERT_TRUE(golden.ok())
        << query.expected_path
        << " missing; regenerate via sql_differential_test with "
           "SQLINK_UPDATE_GOLDENS=1";
    EXPECT_EQ(CanonicalResult((*result)->GatherRows()), *golden) << query.sql;
  }
}

/// EXPLAIN goldens: the rendered plan (shape, join strategy, estimates,
/// costs) for every corpus query is pinned in <name>.explain.expected and
/// must be byte-identical under both engine modes — the planner is shared,
/// so a plan that diverges by engine mode is a bug. Regenerate with
/// SQLINK_UPDATE_GOLDENS=1.
TEST_F(CorpusGoldenTest, ExplainPlansMatchCommittedGoldens) {
  auto corpus = LoadQueryCorpus();
  ASSERT_GE(corpus.size(), 14u);
  const bool update = EnvInt64("SQLINK_UPDATE_GOLDENS", 0) != 0;
  for (const CorpusQuery& query : corpus) {
    SCOPED_TRACE(query.name);
    SetVectorizedSqlEnabledForTest(0);
    auto row_plan = engine_->ExplainSql(query.sql);
    SetVectorizedSqlEnabledForTest(1);
    auto vec_plan = engine_->ExplainSql(query.sql);
    SetVectorizedSqlEnabledForTest(-1);
    ASSERT_TRUE(row_plan.ok()) << query.sql << " -> " << row_plan.status();
    ASSERT_TRUE(vec_plan.ok()) << query.sql << " -> " << vec_plan.status();
    EXPECT_EQ(*row_plan, *vec_plan)
        << query.sql << " plans differ by engine mode";

    const std::string golden_path =
        std::string(SQLINK_QUERY_DIR) + "/" + query.name + ".explain.expected";
    if (update) {
      ASSERT_TRUE(WriteFileAtomic(golden_path, *row_plan).ok());
      continue;
    }
    auto golden = ReadFileToString(golden_path);
    ASSERT_TRUE(golden.ok())
        << golden_path << " missing; regenerate with SQLINK_UPDATE_GOLDENS=1";
    EXPECT_EQ(*row_plan, *golden) << query.sql;
  }
}

}  // namespace
}  // namespace sqlink
