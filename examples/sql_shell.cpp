// Interactive SQL shell over the engine — handy for exploring the carts
// warehouse and trying the In-SQL transformation UDFs by hand.
//
//   ./sql_shell [num_carts]
//
//   sqlink> SELECT gender, COUNT(*) FROM users GROUP BY gender;
//   sqlink> EXPLAIN SELECT U.age FROM carts C JOIN users U ON C.userid = U.userid;
//   sqlink> SELECT * FROM TABLE(recode_local_distinct((SELECT * FROM carts),
//           'abandoned')) LIMIT 5;
//   sqlink> \tables      \schema carts      \quit

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "cluster/cluster.h"
#include "common/fs_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/ops_server.h"
#include "pipeline/datagen.h"
#include "sql/engine.h"
#include "table/pretty_print.h"
#include "transform/udfs.h"

namespace {

using namespace sqlink;

void HandleCommand(SqlEngine* engine, const std::string& line) {
  if (line == "\\tables") {
    for (const std::string& name : engine->catalog()->ListTables()) {
      std::printf("  %s\n", name.c_str());
    }
    return;
  }
  if (StartsWith(line, "\\schema ")) {
    const std::string name(TrimWhitespace(line.substr(8)));
    auto table = engine->catalog()->GetTable(name);
    if (!table.ok()) {
      std::printf("%s\n", table.status().ToString().c_str());
      return;
    }
    std::printf("%s (%zu rows): %s\n", (*table)->name().c_str(),
                (*table)->TotalRows(), (*table)->schema()->ToString().c_str());
    return;
  }
  std::printf("unknown command: %s (try \\tables, \\schema <t>, \\quit)\n",
              line.c_str());
}

void RunStatement(SqlEngine* engine, const std::string& sql) {
  // EXPLAIN / EXPLAIN ANALYZE are first-class statements now; their result
  // is a one-column table of plan-text lines, printed raw.
  Stopwatch watch;
  auto result = engine->ExecuteSql(sql);
  if (!result.ok()) {
    std::printf("%s\n", result.status().ToString().c_str());
    return;
  }
  const SchemaPtr& schema = (*result)->schema();
  if (schema->num_fields() == 1 && schema->field(0).name == "plan") {
    for (size_t p = 0; p < (*result)->num_partitions(); ++p) {
      for (const Row& row : (*result)->partition(p)) {
        std::printf("%s\n", row[0].string_value().c_str());
      }
    }
    return;
  }
  std::printf("%s", PrettyPrintTable(**result).c_str());
  std::printf("%.3fs\n", watch.ElapsedSeconds());
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  const int64_t num_carts = argc > 1 ? std::atoll(argv[1]) : 20000;

  ScopedTempDir workspace("sql_shell");
  auto cluster = Cluster::Make(4, workspace.path());
  if (!cluster.ok()) return 1;
  SqlEnginePtr engine = SqlEngine::Make(*cluster);
  if (!RegisterTransformUdfs(engine.get()).ok()) return 1;

  // SQLINK_OPS_PORT=<port> exposes /metrics, /queries, /tracez while the
  // shell runs.
  auto ops = OpsServer::StartFromEnv();
  if (!ops.ok()) {
    std::fprintf(stderr, "ops server: %s\n", ops.status().ToString().c_str());
    return 1;
  }
  if (*ops != nullptr) {
    std::printf("ops server on http://127.0.0.1:%d (/metrics /queries "
                "/tracez)\n",
                (*ops)->port());
  }

  CartsWorkloadOptions data;
  data.num_users = num_carts / 10;
  data.num_carts = num_carts;
  if (!GenerateCartsWorkload(engine.get(), data).ok()) return 1;
  std::printf("sqlink shell — tables: carts (%lld rows), users (%lld rows)\n"
              "End statements with ';'. \\tables lists tables, \\quit exits.\n",
              static_cast<long long>(data.num_carts),
              static_cast<long long>(data.num_users));

  std::string buffer;
  std::string line;
  std::printf("sqlink> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    const std::string trimmed(TrimWhitespace(line));
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '\\') {
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      HandleCommand(engine.get(), trimmed);
      std::printf("sqlink> ");
      std::fflush(stdout);
      continue;
    }
    buffer += line;
    buffer += " ";
    const std::string so_far(TrimWhitespace(buffer));
    if (!so_far.empty() && so_far.back() == ';') {
      RunStatement(engine.get(), so_far.substr(0, so_far.size() - 1));
      buffer.clear();
    }
    std::printf(buffer.empty() ? "sqlink> " : "   ...> ");
    std::fflush(stdout);
  }
  return 0;
}
