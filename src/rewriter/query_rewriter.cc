#include "rewriter/query_rewriter.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/status_macros.h"
#include "common/string_util.h"
#include "rewriter/canonical_query.h"
#include "rewriter/predicate_logic.h"
#include "sql/parser.h"
#include "transform/coding.h"

namespace sqlink {

namespace {

/// Quotes a string for embedding in SQL text.
std::string SqlQuote(const std::string& text) {
  std::string out = "'";
  for (char c : text) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

/// The transformation applied to one output column.
struct Treatment {
  bool recoded = false;
  std::optional<CodingScheme> coding;

  bool operator==(const Treatment&) const = default;
};

Treatment TreatmentOf(const TransformRequest& request,
                      const std::string& column) {
  Treatment treatment;
  treatment.recoded = request.WantsRecode(column);
  const CodingScheme* scheme = request.CodingFor(column);
  if (scheme != nullptr) treatment.coding = *scheme;
  return treatment;
}

/// Collects the canonical column refs used by an expression.
void CollectColumnRefs(const Expr& expr, std::vector<const Expr*>* refs) {
  if (expr.kind == ExprKind::kColumnRef) {
    refs->push_back(&expr);
    return;
  }
  for (const ExprPtr& child : expr.children) {
    CollectColumnRefs(*child, refs);
  }
}

bool ContainsExpr(const std::vector<ExprPtr>& haystack, const Expr& needle) {
  for (const ExprPtr& candidate : haystack) {
    if (ExprEquals(*candidate, needle)) return true;
  }
  return false;
}

}  // namespace

QueryRewriter::QueryRewriter(SqlEnginePtr engine, TransformCache* cache)
    : engine_(std::move(engine)), cache_(cache), transformer_(engine_) {}

std::string QueryRewriter::NextMapTableName() {
  return "recode_map_" + std::to_string(map_counter_.fetch_add(1) + 1);
}

Result<std::string> QueryRewriter::BuildTransformedSql(
    const TransformRequest& request, const RecodeMap& map,
    const std::string& map_table) const {
  ASSIGN_OR_RETURN(PlanPtr plan, engine_->Plan(request.prep_sql));
  const Schema& schema = *plan->output_schema;

  // Validate the request against the prep query's output schema.
  for (const std::string& column : request.recode_columns) {
    ASSIGN_OR_RETURN(int index, schema.RequireField(column));
    if (schema.field(index).type != DataType::kString) {
      return Status::InvalidArgument("recode column is not categorical: " +
                                     column);
    }
    if (map.Cardinality(schema.field(index).name) == 0) {
      return Status::InvalidArgument("recode map lacks column: " + column);
    }
  }
  for (const auto& [column, scheme] : request.codings) {
    (void)scheme;
    if (!request.WantsRecode(column)) {
      return Status::InvalidArgument("coded column must also be recoded: " +
                                     column);
    }
  }

  // The final recoding join of §2.1: one map-table alias per categorical
  // column, exactly the paper's
  //   SELECT T.age, Mg.recodeVal AS gender, ... FROM T, M Mg, M Ma WHERE ...
  std::string select_list;
  std::string from_list = "(" + request.prep_sql + ") T";
  std::string where;
  int map_index = 0;
  for (int i = 0; i < schema.num_fields(); ++i) {
    const std::string& column = schema.field(i).name;
    if (i > 0) select_list += ", ";
    if (request.WantsRecode(column)) {
      const std::string alias = "M" + std::to_string(map_index++);
      select_list += alias + ".recodeval AS " + column;
      from_list += ", " + map_table + " " + alias;
      if (!where.empty()) where += " AND ";
      where += alias + ".colname = " + SqlQuote(ToLowerAscii(column)) +
               " AND T." + column + " = " + alias + ".colval";
    } else {
      select_list += "T." + column;
    }
  }
  std::string sql = "SELECT " + select_list + " FROM " + from_list;
  if (!where.empty()) sql += " WHERE " + where;

  // Apply coding wrappers (§2.2), one UDF call per scheme in use.
  for (CodingScheme scheme : {CodingScheme::kDummy, CodingScheme::kEffect,
                              CodingScheme::kOrthogonal}) {
    std::vector<CodedColumnSpec> specs;
    for (int i = 0; i < schema.num_fields(); ++i) {
      const std::string& column = schema.field(i).name;
      const CodingScheme* wanted = request.CodingFor(column);
      if (wanted == nullptr || *wanted != scheme) continue;
      CodedColumnSpec spec;
      spec.column = column;
      ASSIGN_OR_RETURN(spec.labels, map.Labels(column));
      spec.cardinality = static_cast<int>(spec.labels.size());
      specs.push_back(std::move(spec));
    }
    if (specs.empty()) continue;
    sql = "SELECT * FROM TABLE(" + std::string(CodingSchemeToString(scheme)) +
          "_code((" + sql + "), " +
          SqlQuote(FormatCodedColumnSpecs(specs)) + "))";
  }
  return sql;
}

Result<std::optional<std::string>> QueryRewriter::TryFullCacheRewrite(
    const TransformRequest& request, const SelectStmt& stmt,
    const TransformCacheEntry& entry) const {
  if (!entry.has_full_result()) return std::optional<std::string>();
  auto new_canonical = CanonicalizeQuery(stmt, *engine_->catalog());
  if (!new_canonical.ok()) return std::optional<std::string>();
  auto cached_canonical =
      CanonicalizeQuery(*entry.prep_stmt, *engine_->catalog());
  if (!cached_canonical.ok()) return std::optional<std::string>();
  const CanonicalQuery& qn = *new_canonical;
  const CanonicalQuery& qc = *cached_canonical;

  // §5.1 condition 1: same tables, joins, and the cached predicates all
  // present in the new query.
  if (!CanonicalQuery::SameTables(qn, qc) || !CanonicalQuery::SameJoins(qn, qc)) {
    return std::optional<std::string>();
  }
  for (const ExprPtr& cached_pred : qc.predicates) {
    if (!ContainsExpr(qn.predicates, *cached_pred)) {
      return std::optional<std::string>();
    }
  }
  std::vector<ExprPtr> extras;
  for (const ExprPtr& new_pred : qn.predicates) {
    if (!ContainsExpr(qc.predicates, *new_pred)) extras.push_back(new_pred);
  }

  // §5.1 condition 2: projected fields subset, with matching treatments.
  struct MappedColumn {
    const CanonicalQuery::Projection* cached = nullptr;
    Treatment treatment;
  };
  std::vector<std::pair<const CanonicalQuery::Projection*, MappedColumn>>
      mapped;
  for (const CanonicalQuery::Projection& projection : qn.projections) {
    const CanonicalQuery::Projection* cached =
        qc.FindByCanonicalRef(projection.CanonicalRef());
    if (cached == nullptr) return std::optional<std::string>();
    const Treatment new_treatment = TreatmentOf(request, projection.output_name);
    const Treatment cached_treatment =
        TreatmentOf(entry.request, cached->output_name);
    if (new_treatment != cached_treatment) return std::optional<std::string>();
    mapped.push_back({&projection, MappedColumn{cached, cached_treatment}});
  }

  // §5.1 condition 3: extra conjuncts only over projected cached fields;
  // rewrite each against the transformed table's columns.
  std::vector<std::string> rewritten_extras;
  for (const ExprPtr& extra : extras) {
    const auto constraint = ExtractConstraint(*extra);
    if (constraint.has_value()) {
      const std::string ref = ToLowerAscii(constraint->qualifier) + "." +
                              ToLowerAscii(constraint->column);
      const CanonicalQuery::Projection* cached = qc.FindByCanonicalRef(ref);
      if (cached == nullptr) return std::optional<std::string>();
      const Treatment treatment =
          TreatmentOf(entry.request, cached->output_name);
      if (!treatment.recoded) {
        rewritten_extras.push_back(
            cached->output_name + " " + constraint->op + " " +
            Expr::MakeLiteral(constraint->literal)->ToString());
        continue;
      }
      // Categorical predicate: translate the literal through the map.
      if (!constraint->literal.is_string() ||
          (constraint->op != "=" && constraint->op != "<>")) {
        return std::optional<std::string>();
      }
      auto code = entry.recode_map.Code(cached->output_name,
                                        constraint->literal.string_value());
      if (!code.ok()) {
        // Value absent from the cached data: equality selects nothing.
        rewritten_extras.push_back(constraint->op == "=" ? "1 = 0" : "1 = 1");
        continue;
      }
      if (!treatment.coding.has_value()) {
        rewritten_extras.push_back(cached->output_name + " " +
                                   constraint->op + " " +
                                   std::to_string(*code));
        continue;
      }
      if (*treatment.coding != CodingScheme::kDummy) {
        // Effect/orthogonal columns do not expose per-level predicates.
        return std::optional<std::string>();
      }
      auto labels = entry.recode_map.Labels(cached->output_name);
      if (!labels.ok()) return std::optional<std::string>();
      CodedColumnSpec spec{cached->output_name,
                           static_cast<int>(labels->size()), *labels};
      const std::vector<std::string> names =
          CodedColumnNames(spec, CodingScheme::kDummy);
      const std::string& dummy_column =
          names[static_cast<size_t>(*code - 1)];
      rewritten_extras.push_back(dummy_column + (constraint->op == "="
                                                     ? " = 1"
                                                     : " = 0"));
      continue;
    }
    // General conjunct: usable only over untreated projected columns.
    std::vector<const Expr*> refs;
    CollectColumnRefs(*extra, &refs);
    auto rewritten = std::make_shared<Expr>(*extra);
    // Deep copy with qualifier rewrite.
    std::function<Result<ExprPtr>(const Expr&)> rewrite =
        [&](const Expr& node) -> Result<ExprPtr> {
      auto copy = std::make_shared<Expr>(node);
      if (copy->kind == ExprKind::kColumnRef) {
        const std::string ref = ToLowerAscii(copy->qualifier) + "." +
                                ToLowerAscii(copy->column);
        const CanonicalQuery::Projection* cached = qc.FindByCanonicalRef(ref);
        if (cached == nullptr) {
          return Status::NotFound("column not projected by cache");
        }
        const Treatment treatment =
            TreatmentOf(entry.request, cached->output_name);
        if (treatment.recoded) {
          return Status::InvalidArgument("treated column in complex predicate");
        }
        copy->qualifier.clear();
        copy->column = cached->output_name;
        return copy;
      }
      copy->children.clear();
      for (const ExprPtr& child : node.children) {
        ASSIGN_OR_RETURN(ExprPtr rewritten_child, rewrite(*child));
        copy->children.push_back(std::move(rewritten_child));
      }
      return copy;
    };
    auto rewritten_expr = rewrite(*extra);
    if (!rewritten_expr.ok()) return std::optional<std::string>();
    rewritten_extras.push_back((*rewritten_expr)->ToString());
  }

  // Assemble the rewritten query over the materialized table — the paper's
  //   SELECT age, amount, abandoned FROM T WHERE gender = 'F'
  // form, with categorical predicates translated as above.
  std::string select_list;
  bool first = true;
  for (const auto& [projection, column] : mapped) {
    const std::string& cached_name = column.cached->output_name;
    if (column.treatment.coding.has_value()) {
      auto labels = entry.recode_map.Labels(cached_name);
      if (!labels.ok()) return std::optional<std::string>();
      CodedColumnSpec spec{cached_name, static_cast<int>(labels->size()),
                           *labels};
      for (const std::string& generated :
           CodedColumnNames(spec, *column.treatment.coding)) {
        if (!first) select_list += ", ";
        first = false;
        select_list += generated;
      }
      continue;
    }
    if (!first) select_list += ", ";
    first = false;
    select_list += cached_name;
    if (cached_name != projection->output_name) {
      select_list += " AS " + projection->output_name;
    }
  }
  std::string sql = "SELECT " + select_list + " FROM " + entry.result_table;
  if (!rewritten_extras.empty()) {
    sql += " WHERE " + JoinStrings(rewritten_extras, " AND ");
  }
  return std::optional<std::string>(std::move(sql));
}

Result<std::optional<RecodeMap>> QueryRewriter::TryRecodeMapReuse(
    const TransformRequest& request, const SelectStmt& stmt,
    const TransformCacheEntry& entry) const {
  auto new_canonical = CanonicalizeQuery(stmt, *engine_->catalog());
  if (!new_canonical.ok()) return std::optional<RecodeMap>();
  auto cached_canonical =
      CanonicalizeQuery(*entry.prep_stmt, *engine_->catalog());
  if (!cached_canonical.ok()) return std::optional<RecodeMap>();
  const CanonicalQuery& qn = *new_canonical;
  const CanonicalQuery& qc = *cached_canonical;

  // §5.2 condition 1: same tables and join conditions.
  if (!CanonicalQuery::SameTables(qn, qc) ||
      !CanonicalQuery::SameJoins(qn, qc)) {
    return std::optional<RecodeMap>();
  }
  // §5.2 condition 2: every cached predicate has a same-or-stronger
  // counterpart (a smaller result can only shrink the distinct-value sets,
  // so the cached map stays a valid superset). Additional conjunctive
  // predicates (condition 4) are allowed by construction.
  for (const ExprPtr& cached_pred : qc.predicates) {
    bool implied = false;
    for (const ExprPtr& new_pred : qn.predicates) {
      if (ConjunctImplies(*new_pred, *cached_pred)) {
        implied = true;
        break;
      }
    }
    if (!implied) return std::optional<RecodeMap>();
  }
  // §5.2 condition 3: requested categorical columns must map to columns the
  // cached request recoded.
  RecodeMap reused;
  for (const std::string& column : request.recode_columns) {
    const CanonicalQuery::Projection* projection =
        qn.FindByOutputName(column);
    if (projection == nullptr) return std::optional<RecodeMap>();
    const CanonicalQuery::Projection* cached =
        qc.FindByCanonicalRef(projection->CanonicalRef());
    if (cached == nullptr ||
        !entry.request.WantsRecode(cached->output_name)) {
      return std::optional<RecodeMap>();
    }
    auto labels = entry.recode_map.Labels(cached->output_name);
    if (!labels.ok()) return std::optional<RecodeMap>();
    for (size_t i = 0; i < labels->size(); ++i) {
      // Re-key the cached column's entries under the new column name.
      const Status status = reused.Add(
          projection->output_name, (*labels)[i], static_cast<int>(i) + 1);
      if (!status.ok()) return std::optional<RecodeMap>();
    }
  }
  return std::optional<RecodeMap>(std::move(reused));
}

Result<QueryRewriter::Rewrite> QueryRewriter::RewriteWithCache(
    const TransformRequest& request) {
  ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(request.prep_sql));

  if (cache_ != nullptr) {
    // §5.1 first — a full-result hit skips query, transform and recoding.
    for (const auto& entry : cache_->Entries()) {
      ASSIGN_OR_RETURN(std::optional<std::string> rewritten,
                       TryFullCacheRewrite(request, stmt, *entry));
      if (rewritten.has_value()) {
        cache_->RecordHit(/*full_result=*/true);
        Rewrite rewrite;
        rewrite.transformed_sql = std::move(*rewritten);
        rewrite.recode_map = entry->recode_map;
        rewrite.source = Source::kFullResultCache;
        return rewrite;
      }
    }
    // §5.2 next — reuse a recode map, skipping one of the two passes.
    for (const auto& entry : cache_->Entries()) {
      ASSIGN_OR_RETURN(std::optional<RecodeMap> map,
                       TryRecodeMapReuse(request, stmt, *entry));
      if (map.has_value()) {
        cache_->RecordHit(/*full_result=*/false);
        Rewrite rewrite;
        rewrite.map_table = NextMapTableName();
        engine_->catalog()->PutTable(map->ToTable(
            rewrite.map_table, static_cast<size_t>(engine_->num_workers())));
        ASSIGN_OR_RETURN(
            rewrite.transformed_sql,
            BuildTransformedSql(request, *map, rewrite.map_table));
        rewrite.recode_map = std::move(*map);
        rewrite.source = Source::kRecodeMapCache;
        return rewrite;
      }
    }
    cache_->RecordMiss();
  }

  // Cold path: the two-phase In-SQL recoding (§2.1).
  Rewrite rewrite;
  rewrite.map_table = NextMapTableName();
  ASSIGN_OR_RETURN(rewrite.recode_map,
                   transformer_.ComputeRecodeMap(request.prep_sql,
                                                 request.recode_columns,
                                                 rewrite.map_table));
  ASSIGN_OR_RETURN(
      rewrite.transformed_sql,
      BuildTransformedSql(request, rewrite.recode_map, rewrite.map_table));
  rewrite.source = Source::kComputed;
  if (cache_ != nullptr) {
    RETURN_IF_ERROR(cache_->PutRecodeMap(
        request, std::make_shared<SelectStmt>(std::move(stmt)),
        rewrite.recode_map));
  }
  return rewrite;
}

Status QueryRewriter::CacheFullResult(const TransformRequest& request,
                                      const RecodeMap& map,
                                      const std::string& result_table) {
  if (cache_ == nullptr) {
    return Status::FailedPrecondition("rewriter has no cache");
  }
  ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(request.prep_sql));
  ASSIGN_OR_RETURN(TablePtr table, engine_->catalog()->GetTable(result_table));
  return cache_->PutFullResult(request,
                               std::make_shared<SelectStmt>(std::move(stmt)),
                               map, result_table, table->schema());
}

}  // namespace sqlink
