#ifndef SQLINK_SQL_BATCH_ITERATOR_H_
#define SQLINK_SQL_BATCH_ITERATOR_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "sql/row_iterator.h"
#include "table/column_batch.h"
#include "table/schema.h"

namespace sqlink {

/// Rows per ColumnBatch in the vectorized SQL pipelines: large enough to
/// amortize the per-batch virtual dispatch, small enough to stay cache
/// resident. Also the batch-boundary size the golden-query corpus probes
/// (sizes 0, 1, kSqlBatchRows-1, kSqlBatchRows, kSqlBatchRows+1).
inline constexpr size_t kSqlBatchRows = 1024;

/// Pull-based columnar operator interface, the vectorized counterpart of
/// RowIterator: Next fills `*out` (contents replaced) with the next batch
/// and returns false at end of stream. Emitted batches are non-empty.
class BatchIterator {
 public:
  virtual ~BatchIterator() = default;
  virtual Result<bool> Next(ColumnBatch* out) = 0;
};

using BatchIteratorPtr = std::unique_ptr<BatchIterator>;

/// Scan leaf: slices a materialized row partition into batches. Borrows the
/// rows — the caller keeps them alive for the iterator's lifetime.
class RowVectorBatchIterator final : public BatchIterator {
 public:
  RowVectorBatchIterator(const std::vector<Row>* rows, SchemaPtr schema)
      : rows_(rows), schema_(std::move(schema)) {}
  Result<bool> Next(ColumnBatch* out) override;

 private:
  const std::vector<Row>* rows_;
  SchemaPtr schema_;
  size_t pos_ = 0;
};

/// A batch stream with no rows.
class EmptyBatchIterator final : public BatchIterator {
 public:
  Result<bool> Next(ColumnBatch*) override { return false; }
};

/// Adapts a batch pipeline to the row interface (feeds row-only consumers
/// such as table UDFs without batch support).
class BatchToRowIterator final : public RowIterator {
 public:
  explicit BatchToRowIterator(BatchIterator* child) : child_(child) {}
  Result<bool> Next(Row* row) override;

 private:
  BatchIterator* child_;  // Borrowed.
  ColumnBatch batch_;
  size_t pos_ = 0;
  bool done_ = false;
};

/// Adapts a row stream to the batch interface (re-batches table-UDF output
/// back into the vectorized pipeline).
class RowToBatchIterator final : public BatchIterator {
 public:
  RowToBatchIterator(RowIteratorPtr child, SchemaPtr schema)
      : child_(std::move(child)), schema_(std::move(schema)) {}
  Result<bool> Next(ColumnBatch* out) override;

 private:
  RowIteratorPtr child_;
  SchemaPtr schema_;
  bool done_ = false;
};

}  // namespace sqlink

#endif  // SQLINK_SQL_BATCH_ITERATOR_H_
