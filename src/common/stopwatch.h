#ifndef SQLINK_COMMON_STOPWATCH_H_
#define SQLINK_COMMON_STOPWATCH_H_

#include <chrono>

namespace sqlink {

/// Monotonic wall-clock stopwatch used for the benchmark stage breakdowns.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sqlink

#endif  // SQLINK_COMMON_STOPWATCH_H_
