#ifndef SQLINK_PIPELINE_ANALYTICS_PIPELINE_H_
#define SQLINK_PIPELINE_ANALYTICS_PIPELINE_H_

#include <memory>
#include <string>

#include "cache/transform_cache.h"
#include "common/result.h"
#include "dfs/dfs.h"
#include "ml/dataset.h"
#include "rewriter/query_rewriter.h"
#include "sql/engine.h"
#include "stream/streaming_transfer.h"

namespace sqlink {

/// Which of the paper's three ways of connecting big SQL with big ML to
/// use (Figure 3):
enum class ConnectApproach {
  /// SQL → materialize on DFS → external transform tool (extra job, two
  /// more DFS materializations) → ML reads DFS.
  kNaive,
  /// In-SQL transformation pipelined with the query → materialize on DFS →
  /// ML reads DFS.
  kInSql,
  /// In-SQL transformation + parallel streaming transfer, fully pipelined;
  /// the data never touches the filesystem.
  kInSqlStream,
};

std::string_view ConnectApproachToString(ConnectApproach approach);

struct PipelineOptions {
  ConnectApproach approach = ConnectApproach::kInSqlStream;
  /// Streaming-transfer knobs (kInSqlStream only).
  StreamTransferOptions stream;
  /// Consult / populate the transformation caches (§5).
  bool use_cache = true;
  /// Materialize and register the fully transformed result for §5.1 reuse.
  bool cache_full_result = false;
  /// DFS directory for intermediate files (unique per run).
  std::string scratch_path = "pipeline";
};

/// Wall-clock stage breakdown matching Figure 3's bar segments.
struct StageTimings {
  double prep_seconds = 0;            ///< "prep": SQL query (naive only).
  double transform_seconds = 0;       ///< "trsfm": external tool (naive only).
  double prep_transform_seconds = 0;  ///< "prep+trsfm" (insql approaches;
                                      ///< includes streaming for insql+stream).
  double ml_input_seconds = 0;        ///< "input for ml": DFS read into RDD.
  double total_seconds = 0;
};

struct PipelineResult {
  ml::RowDataset dataset;  ///< The transformed rows, in ML-side memory.
  RecodeMap recode_map;
  StageTimings timings;
  QueryRewriter::Source source = QueryRewriter::Source::kComputed;
  int64_t dfs_bytes_written = 0;  ///< Intermediate DFS traffic of this run.
};

/// The end-to-end integration pipeline: data preparation SQL → In-SQL
/// transformations (or the external tool) → handover to the ML system —
/// the full system of the paper, selectable per Figure 3's three
/// configurations, with §5 caching layered on top.
class AnalyticsPipeline {
 public:
  AnalyticsPipeline(SqlEnginePtr engine, DfsPtr dfs);

  /// Prepares the ML input for `request` using the chosen approach.
  Result<PipelineResult> Prepare(const TransformRequest& request,
                                 const PipelineOptions& options = {});

  /// Converts a prepared result into a labeled dataset: `label_column` as
  /// 0/1 labels (recoded categorical labels map code 1 → 0, others → 1),
  /// remaining numeric columns as features.
  static Result<ml::Dataset> ToDataset(const PipelineResult& result,
                                       const std::string& label_column);

  TransformCache* cache() { return &cache_; }
  const SqlEnginePtr& engine() const { return engine_; }
  const DfsPtr& dfs() const { return dfs_; }

 private:
  Result<PipelineResult> PrepareNaive(const TransformRequest& request,
                                      const PipelineOptions& options);
  Result<PipelineResult> PrepareInSql(const TransformRequest& request,
                                      const PipelineOptions& options,
                                      bool streaming);

  /// Unique DFS directory per invocation.
  std::string NextScratchDir(const std::string& base);

  SqlEnginePtr engine_;
  DfsPtr dfs_;
  TransformCache cache_;
  QueryRewriter rewriter_;
  int run_counter_ = 0;
  int materialized_counter_ = 0;
};

}  // namespace sqlink

#endif  // SQLINK_PIPELINE_ANALYTICS_PIPELINE_H_
