#include "pipeline/analytics_pipeline.h"

#include "common/logging.h"
#include "common/status_macros.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "exttool/external_transform.h"
#include "ml/job.h"
#include "ml/text_input_format.h"
#include "pipeline/table_io.h"
#include "transform/udfs.h"

namespace sqlink {

std::string_view ConnectApproachToString(ConnectApproach approach) {
  switch (approach) {
    case ConnectApproach::kNaive:
      return "naive";
    case ConnectApproach::kInSql:
      return "insql";
    case ConnectApproach::kInSqlStream:
      return "insql+stream";
  }
  return "?";
}

AnalyticsPipeline::AnalyticsPipeline(SqlEnginePtr engine, DfsPtr dfs)
    : engine_(std::move(engine)),
      dfs_(std::move(dfs)),
      rewriter_(engine_, &cache_) {
  SQLINK_CHECK_OK(RegisterTransformUdfs(engine_.get()));
}

std::string AnalyticsPipeline::NextScratchDir(const std::string& base) {
  return base + "/run" + std::to_string(++run_counter_);
}

Result<PipelineResult> AnalyticsPipeline::Prepare(
    const TransformRequest& request, const PipelineOptions& options) {
  switch (options.approach) {
    case ConnectApproach::kNaive:
      return PrepareNaive(request, options);
    case ConnectApproach::kInSql:
      return PrepareInSql(request, options, /*streaming=*/false);
    case ConnectApproach::kInSqlStream:
      return PrepareInSql(request, options, /*streaming=*/true);
  }
  return Status::Internal("unknown approach");
}

Result<PipelineResult> AnalyticsPipeline::PrepareNaive(
    const TransformRequest& request, const PipelineOptions& options) {
  PipelineResult result;
  const std::string scratch = NextScratchDir(options.scratch_path);
  const uint64_t dfs_bytes_before = dfs_->TotalBytesWritten();
  Stopwatch total;
  TraceSpan pipeline_span("pipeline.prepare");
  pipeline_span.AddAttribute("approach", 0);  // kNaive
  ScopedAmbientTrace ambient(pipeline_span.context());

  // Stage "prep": run the SQL query and materialize its result on DFS.
  Stopwatch prep;
  TablePtr prep_table;
  {
    TraceSpan stage("pipeline.prep");
    ASSIGN_OR_RETURN(prep_table,
                     engine_->ExecuteSql(request.prep_sql, "prep_result"));
    ASSIGN_OR_RETURN(
        uint64_t unused_bytes,
        WriteTableToDfs(dfs_.get(), *prep_table, scratch + "/prep"));
    (void)unused_bytes;
  }
  result.timings.prep_seconds = prep.ElapsedSeconds();

  // Stage "trsfm": the external tool (Jaql stand-in) — a separate job with
  // another DFS read + write.
  Stopwatch transform;
  ExternalTransformTool tool(dfs_, engine_->cluster());
  std::map<std::string, CodingScheme> codings(request.codings.begin(),
                                              request.codings.end());
  ExternalTransformTool::Result_ transformed;
  {
    TraceSpan stage("pipeline.transform");
    ASSIGN_OR_RETURN(transformed,
                     tool.Run(scratch + "/prep", prep_table->schema(),
                              request.recode_columns, codings,
                              scratch + "/transformed"));
  }
  result.timings.transform_seconds = transform.ElapsedSeconds();
  result.recode_map = transformed.recode_map;

  // Stage "input for ml": the ML job reads the transformed files from DFS
  // into its in-memory dataset.
  Stopwatch input;
  ml::TextFileInputFormat format(dfs_, scratch + "/transformed",
                                 transformed.output_schema);
  ml::JobContext context;
  context.cluster = engine_->cluster();
  context.metrics = engine_->metrics();
  ml::MlJobRunner runner(context);
  ml::IngestResult ingest;
  {
    TraceSpan stage("pipeline.ml_input");
    ASSIGN_OR_RETURN(ingest, runner.Ingest(&format));
  }
  result.timings.ml_input_seconds = input.ElapsedSeconds();

  result.dataset = std::move(ingest.dataset);
  result.timings.total_seconds = total.ElapsedSeconds();
  result.dfs_bytes_written =
      static_cast<int64_t>(dfs_->TotalBytesWritten() - dfs_bytes_before);
  return result;
}

Result<PipelineResult> AnalyticsPipeline::PrepareInSql(
    const TransformRequest& request, const PipelineOptions& options,
    bool streaming) {
  PipelineResult result;
  const std::string scratch = NextScratchDir(options.scratch_path);
  const uint64_t dfs_bytes_before = dfs_->TotalBytesWritten();
  Stopwatch total;
  TraceSpan pipeline_span("pipeline.prepare");
  pipeline_span.AddAttribute("approach", streaming ? 2 : 1);  // kInSql[Stream]
  ScopedAmbientTrace ambient(pipeline_span.context());

  // Rewrite (§4), consulting the caches (§5) when enabled.
  Stopwatch prep_transform;
  QueryRewriter no_cache_rewriter(engine_, nullptr);
  QueryRewriter& rewriter = options.use_cache ? rewriter_ : no_cache_rewriter;
  ASSIGN_OR_RETURN(QueryRewriter::Rewrite rewrite,
                   rewriter.RewriteWithCache(request));
  result.source = rewrite.source;
  result.recode_map = rewrite.recode_map;

  std::string transformed_sql = rewrite.transformed_sql;
  if (options.cache_full_result &&
      rewrite.source != QueryRewriter::Source::kFullResultCache &&
      options.use_cache) {
    // §5.1: store the fully transformed data as a materialized table and
    // serve this run (and future matching ones) from it.
    const std::string name =
        "transformed_mv_" + std::to_string(++materialized_counter_);
    ASSIGN_OR_RETURN(TablePtr materialized,
                     engine_->MaterializeSql(transformed_sql, name));
    RETURN_IF_ERROR(
        rewriter.CacheFullResult(request, rewrite.recode_map, name));
    transformed_sql = "SELECT * FROM " + name;
  }

  if (streaming) {
    // insql+stream: prep + trsfm + ML input fully pipelined, no DFS. The
    // transfer's own root span ("stream.transfer") parents here through the
    // ambient context.
    TraceSpan stage("pipeline.stream_transfer");
    ASSIGN_OR_RETURN(
        StreamTransferResult transfer,
        StreamingTransfer::Run(engine_.get(), transformed_sql, options.stream));
    result.dataset = std::move(transfer.dataset);
    result.timings.prep_transform_seconds = prep_transform.ElapsedSeconds();
    result.timings.total_seconds = total.ElapsedSeconds();
    result.dfs_bytes_written =
        static_cast<int64_t>(dfs_->TotalBytesWritten() - dfs_bytes_before);
    return result;
  }

  // insql: pipeline query+transform inside the engine, materialize once on
  // DFS, then the ML job reads it back.
  TablePtr transformed;
  {
    TraceSpan stage("pipeline.prep_transform");
    ASSIGN_OR_RETURN(transformed,
                     engine_->ExecuteSql(transformed_sql, "transformed"));
    ASSIGN_OR_RETURN(uint64_t unused_bytes,
                     WriteTableToDfs(dfs_.get(), *transformed,
                                     scratch + "/transformed"));
    (void)unused_bytes;
  }
  result.timings.prep_transform_seconds = prep_transform.ElapsedSeconds();

  Stopwatch input;
  ml::TextFileInputFormat format(dfs_, scratch + "/transformed",
                                 transformed->schema());
  ml::JobContext context;
  context.cluster = engine_->cluster();
  context.metrics = engine_->metrics();
  ml::MlJobRunner runner(context);
  ml::IngestResult ingest;
  {
    TraceSpan stage("pipeline.ml_input");
    ASSIGN_OR_RETURN(ingest, runner.Ingest(&format));
  }
  result.timings.ml_input_seconds = input.ElapsedSeconds();

  result.dataset = std::move(ingest.dataset);
  result.timings.total_seconds = total.ElapsedSeconds();
  result.dfs_bytes_written =
      static_cast<int64_t>(dfs_->TotalBytesWritten() - dfs_bytes_before);
  return result;
}

Result<ml::Dataset> AnalyticsPipeline::ToDataset(
    const PipelineResult& result, const std::string& label_column) {
  ASSIGN_OR_RETURN(
      ml::Dataset dataset,
      ml::Dataset::FromRowsAutoFeatures(result.dataset, label_column));
  // Recoded labels are 1..K; fold to 0/1 for the binary classifiers
  // (code 1 → 0, everything else → 1).
  if (result.recode_map.Cardinality(label_column) > 0) {
    for (auto& partition : dataset.mutable_partitions()) {
      for (ml::LabeledPoint& point : partition) {
        point.label = point.label <= 1.0 ? 0.0 : 1.0;
      }
    }
  }
  return dataset;
}

}  // namespace sqlink
