#ifndef SQLINK_ML_SCALER_H_
#define SQLINK_ML_SCALER_H_

#include "common/result.h"
#include "ml/dataset.h"

namespace sqlink::ml {

/// Per-feature z-score standardization (the MLlib StandardScaler
/// equivalent). Gradient methods on raw business features (ages, dollar
/// amounts, 0/1 dummies) need this to converge at sane step sizes.
class StandardScaler {
 public:
  /// Computes per-feature mean and standard deviation; the sufficient
  /// statistics are accumulated per worker partition and merged.
  static Result<StandardScaler> Fit(const Dataset& data);

  /// Reconstructs a scaler from stored moments (model persistence).
  static StandardScaler FromMoments(DenseVector means, DenseVector stddevs) {
    StandardScaler scaler;
    scaler.means_ = std::move(means);
    scaler.stddevs_ = std::move(stddevs);
    return scaler;
  }

  /// Scales every feature to (x - mean) / stddev in place. Constant
  /// features become 0.
  void Transform(Dataset* data) const;

  /// Scales a single feature vector (applying a trained model).
  DenseVector Apply(const DenseVector& features) const;

  const DenseVector& means() const { return means_; }
  const DenseVector& stddevs() const { return stddevs_; }

 private:
  DenseVector means_;
  DenseVector stddevs_;
};

}  // namespace sqlink::ml

#endif  // SQLINK_ML_SCALER_H_
