#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>

#include "cluster/cluster.h"
#include "common/failpoint.h"
#include "common/fs_util.h"
#include "common/random.h"
#include "common/coding.h"
#include "mq/broker.h"
#include "mq/mq_transfer.h"
#include "sql/engine.h"

namespace sqlink {
namespace {

// --- Broker semantics ---

TEST(BrokerTest, ProduceAssignsMonotonicOffsets) {
  MessageBroker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {2, 0}).ok());
  EXPECT_EQ(*broker.Produce("t", 0, "a"), 0);
  EXPECT_EQ(*broker.Produce("t", 0, "b"), 1);
  EXPECT_EQ(*broker.Produce("t", 1, "c"), 0);  // Per-partition offsets.
  EXPECT_EQ(*broker.EndOffset("t", 0), 2);
  EXPECT_EQ(*broker.BeginOffset("t", 0), 0);
}

TEST(BrokerTest, TopicErrors) {
  MessageBroker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {1, 0}).ok());
  EXPECT_TRUE(broker.CreateTopic("t", {1, 0}).IsAlreadyExists());
  EXPECT_TRUE(broker.CreateTopic("bad", {0, 0}).IsInvalidArgument());
  EXPECT_TRUE(broker.Produce("ghost", 0, "x").status().IsNotFound());
  EXPECT_TRUE(broker.Produce("t", 5, "x").status().IsOutOfRange());
}

TEST(BrokerTest, PollFromOffsetAndSealedEnd) {
  MessageBroker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {1, 0}).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(broker.Produce("t", 0, "m" + std::to_string(i)).ok());
  }
  auto poll = broker.Poll("t", 0, 4, 3, 0);
  ASSERT_TRUE(poll.ok());
  ASSERT_EQ(poll->messages.size(), 3u);
  EXPECT_EQ(poll->messages[0].offset, 4);
  EXPECT_EQ(poll->messages[0].payload, "m4");
  EXPECT_FALSE(poll->sealed);

  ASSERT_TRUE(broker.SealPartition("t", 0).ok());
  EXPECT_TRUE(broker.Produce("t", 0, "late").status().IsFailedPrecondition());
  auto at_end = broker.Poll("t", 0, 10, 5, 0);
  ASSERT_TRUE(at_end.ok());
  EXPECT_TRUE(at_end->messages.empty());
  EXPECT_TRUE(at_end->sealed);
}

TEST(BrokerTest, PollBlocksUntilProduceOrSeal) {
  MessageBroker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {1, 0}).ok());
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(broker.Produce("t", 0, "late-message").ok());
  });
  auto poll = broker.Poll("t", 0, 0, 1, 2000);
  producer.join();
  ASSERT_TRUE(poll.ok());
  ASSERT_EQ(poll->messages.size(), 1u);
  EXPECT_EQ(poll->messages[0].payload, "late-message");
}

TEST(BrokerTest, RetentionDropsOldestAndFloorsOffsets) {
  MessageBroker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {1, 3}).ok());  // Keep 3 messages.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(broker.Produce("t", 0, "m" + std::to_string(i)).ok());
  }
  EXPECT_EQ(*broker.BeginOffset("t", 0), 7);
  EXPECT_EQ(*broker.EndOffset("t", 0), 10);
  EXPECT_TRUE(broker.Poll("t", 0, 2, 5, 0).status().IsOutOfRange());
  auto poll = broker.Poll("t", 0, 7, 5, 0);
  ASSERT_TRUE(poll.ok());
  ASSERT_EQ(poll->messages.size(), 3u);
  EXPECT_EQ(poll->messages[0].payload, "m7");
}

TEST(BrokerTest, CommittedOffsetsPerGroup) {
  MessageBroker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {1, 0}).ok());
  EXPECT_EQ(*broker.CommittedOffset("g1", "t", 0), 0);
  ASSERT_TRUE(broker.CommitOffset("g1", "t", 0, 42).ok());
  EXPECT_EQ(*broker.CommittedOffset("g1", "t", 0), 42);
  EXPECT_EQ(*broker.CommittedOffset("g2", "t", 0), 0);  // Independent.
}

TEST(BrokerTest, ConcurrentProducersConsumer) {
  MessageBroker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {4, 0}).ok());
  constexpr int kPerPartition = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&broker, p] {
      for (int i = 0; i < kPerPartition; ++i) {
        ASSERT_TRUE(broker.Produce("t", p, std::to_string(i)).ok());
      }
      ASSERT_TRUE(broker.SealPartition("t", p).ok());
    });
  }
  size_t consumed = 0;
  for (int p = 0; p < 4; ++p) {
    int64_t offset = 0;
    for (;;) {
      auto poll = broker.Poll("t", p, offset, 64, 2000);
      ASSERT_TRUE(poll.ok());
      if (poll->messages.empty() && poll->sealed) break;
      for (const auto& message : poll->messages) {
        offset = message.offset + 1;
        ++consumed;
      }
    }
  }
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(consumed, 4u * kPerPartition);
}

// --- Broker-mediated transfer ---

class MqTransferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_ = std::make_unique<ScopedTempDir>("mq_test");
    auto cluster = Cluster::Make(4, temp_->path());
    ASSERT_TRUE(cluster.ok());
    engine_ = SqlEngine::Make(*cluster);
    broker_ = std::make_shared<MessageBroker>();

    auto schema = Schema::Make({{"id", DataType::kInt64},
                                {"payload", DataType::kString}});
    auto table = engine_->MakeTable("events", schema);
    Random rng(77);
    for (int64_t i = 0; i < 2000; ++i) {
      table->AppendRow(static_cast<size_t>(i) % 4,
                       Row{Value::Int64(i), Value::String(rng.NextString(8))});
    }
    ASSERT_TRUE(engine_->catalog()->RegisterTable(table).ok());
  }

  std::unique_ptr<ScopedTempDir> temp_;
  SqlEnginePtr engine_;
  MessageBrokerPtr broker_;
};

TEST_F(MqTransferTest, DeliversEveryRowExactlyOnce) {
  auto result = MqTransfer::Run(engine_.get(), broker_,
                                "SELECT * FROM events");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dataset.TotalRows(), 2000u);
  EXPECT_EQ(result->rows_published, 2000);
  EXPECT_GT(result->messages_published, 0);
  EXPECT_EQ(result->messages_reread, 0);
  std::set<int64_t> ids;
  for (const auto& partition : result->dataset.partitions) {
    for (const Row& row : partition) {
      EXPECT_TRUE(ids.insert(row[0].int64_value()).second);
    }
  }
  EXPECT_EQ(ids.size(), 2000u);
}

TEST_F(MqTransferTest, MultiplePartitionsPerWorker) {
  MqTransferOptions options;
  options.partitions_per_worker = 3;
  auto result = MqTransfer::Run(engine_.get(), broker_,
                                "SELECT * FROM events", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dataset.TotalRows(), 2000u);
  EXPECT_EQ(result->dataset.partitions.size(), 12u);  // n*k splits.
}

TEST_F(MqTransferTest, ConsumerCrashResumesFromCommittedOffset) {
  MqTransferOptions options;
  options.batch_bytes = 256;  // Many small messages -> small recovery tail.
  // Partition 1's consumer "crashes" once, after 120 delivered rows.
  ScopedFailpoint fault("mq.reader.crash.p1", "after(119):error(1)");
  ASSERT_TRUE(fault.status().ok()) << fault.status();
  auto result = MqTransfer::Run(engine_.get(), broker_,
                                "SELECT * FROM events", options);
  ASSERT_TRUE(result.ok()) << result.status();
  // Exactly-once dataset despite the crash...
  EXPECT_EQ(result->dataset.TotalRows(), 2000u);
  std::set<int64_t> ids;
  for (const auto& partition : result->dataset.partitions) {
    for (const Row& row : partition) {
      EXPECT_TRUE(ids.insert(row[0].int64_value()).second);
    }
  }
  // ...and the recovery tail is bounded: only the uncommitted messages were
  // re-read, not the whole partition (the §8 Kafka advantage over the §6
  // full-replay design).
  EXPECT_GT(result->messages_reread, 0);
  EXPECT_LT(result->messages_reread, result->messages_published / 4);
}

TEST_F(MqTransferTest, SlowConsumerIsBufferedByBroker) {
  // The §8 point: the broker caches data when ML workers are slow. Produce
  // everything first (SQL side runs at full speed against the broker),
  // then consume; nothing is lost and nothing blocks.
  ASSERT_TRUE(RegisterMqSinkUdf(engine_.get(), broker_).ok());
  auto summary = engine_->ExecuteSql(
      "SELECT * FROM TABLE(mq_stream_sink((SELECT * FROM events), "
      "'buffered_topic', 1, 512))");
  ASSERT_TRUE(summary.ok()) << summary.status();
  // All messages are retained in the broker before any consumer exists.
  int64_t backlog = 0;
  for (int p = 0; p < 4; ++p) {
    backlog += *broker_->EndOffset("buffered_topic", p);
  }
  EXPECT_GT(backlog, 0);
  EXPECT_GE(broker_->TotalRetainedMessages(), static_cast<size_t>(backlog));
  // A late consumer drains the full backlog.
  size_t rows = 0;
  for (int p = 0; p < 4; ++p) {
    int64_t offset = 0;
    for (;;) {
      auto poll = broker_->Poll("buffered_topic", p, offset, 32, 1000);
      ASSERT_TRUE(poll.ok());
      if (poll->messages.empty() && poll->sealed) break;
      for (auto& message : poll->messages) {
        Decoder decoder(message.payload);
        auto count = decoder.GetVarint64();
        ASSERT_TRUE(count.ok());
        rows += *count;
        offset = message.offset + 1;
      }
    }
  }
  EXPECT_EQ(rows, 2000u);
}

TEST_F(MqTransferTest, SqlErrorSurfacesAndTerminates) {
  auto result =
      MqTransfer::Run(engine_.get(), broker_, "SELECT nope FROM events");
  EXPECT_FALSE(result.ok());
}

TEST_F(MqTransferTest, StandaloneSinkUdfInSql) {
  ASSERT_TRUE(RegisterMqSinkUdf(engine_.get(), broker_).ok());
  auto summary = engine_->ExecuteSql(
      "SELECT * FROM TABLE(mq_stream_sink((SELECT id FROM events), "
      "'manual_topic', 2, 1024))");
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ((*summary)->TotalRows(), 4u);  // One summary row per worker.
  EXPECT_EQ(*broker_->NumPartitions("manual_topic"), 8);
  int64_t end_total = 0;
  for (int p = 0; p < 8; ++p) {
    end_total += *broker_->EndOffset("manual_topic", p);
  }
  EXPECT_GT(end_total, 0);
}

}  // namespace
}  // namespace sqlink
