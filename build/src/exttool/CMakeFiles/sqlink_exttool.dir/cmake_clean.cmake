file(REMOVE_RECURSE
  "CMakeFiles/sqlink_exttool.dir/external_transform.cc.o"
  "CMakeFiles/sqlink_exttool.dir/external_transform.cc.o.d"
  "libsqlink_exttool.a"
  "libsqlink_exttool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlink_exttool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
