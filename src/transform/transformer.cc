#include "transform/transformer.h"

#include "common/logging.h"
#include "common/status_macros.h"
#include "common/string_util.h"
#include "transform/udfs.h"

namespace sqlink {

InSqlTransformer::InSqlTransformer(SqlEnginePtr engine)
    : engine_(std::move(engine)) {
  SQLINK_CHECK_OK(RegisterTransformUdfs(engine_.get()));
}

std::string InSqlTransformer::BuildRecodeMapSql(
    const std::string& prep_query, const std::vector<std::string>& columns) {
  const std::string column_list = JoinStrings(columns, ",");
  return "SELECT * FROM TABLE(recode_assign((SELECT DISTINCT colname, colval "
         "FROM TABLE(recode_local_distinct((" +
         prep_query + "), '" + column_list +
         "')) ORDER BY colname, colval)))";
}

Result<RecodeMap> InSqlTransformer::ComputeRecodeMap(
    const std::string& prep_query, const std::vector<std::string>& columns,
    const std::string& register_as) {
  if (columns.empty()) {
    return Status::InvalidArgument("no columns to recode");
  }
  const std::string sql = BuildRecodeMapSql(prep_query, columns);
  ASSIGN_OR_RETURN(TablePtr table, engine_->ExecuteSql(sql, "recode_map"));
  ASSIGN_OR_RETURN(RecodeMap map, RecodeMap::FromTable(*table));
  if (!register_as.empty()) {
    engine_->catalog()->PutTable(
        map.ToTable(register_as, static_cast<size_t>(engine_->num_workers())));
  }
  return map;
}

Result<RecodeMap> InSqlTransformer::ComputeRecodeMapPerColumnSql(
    const std::string& prep_query, const std::vector<std::string>& columns,
    const std::string& register_as) {
  if (columns.empty()) {
    return Status::InvalidArgument("no columns to recode");
  }
  RecodeMap map;
  for (const std::string& column : columns) {
    // One full pass over the prepared data per column.
    const std::string sql = "SELECT DISTINCT " + column + " FROM (" +
                            prep_query + ") prep ORDER BY " + column;
    ASSIGN_OR_RETURN(TablePtr table, engine_->ExecuteSql(sql, "distinct_col"));
    int code = 0;
    for (size_t p = 0; p < table->num_partitions(); ++p) {
      for (const Row& row : table->partition(p)) {
        if (row[0].is_null()) continue;
        if (!row[0].is_string()) {
          return Status::InvalidArgument("recoding a non-STRING column: " +
                                         column);
        }
        RETURN_IF_ERROR(map.Add(column, row[0].string_value(), ++code));
      }
    }
  }
  if (!register_as.empty()) {
    engine_->catalog()->PutTable(
        map.ToTable(register_as, static_cast<size_t>(engine_->num_workers())));
  }
  return map;
}

}  // namespace sqlink
