#include "transform/recode_map.h"

#include <algorithm>
#include <utility>

#include "common/status_macros.h"
#include "common/string_util.h"

namespace sqlink {

namespace {
// Codes are expected to be small consecutive integers; anything outside this
// range is stored but marks the column irregular instead of growing the dense
// code index without bound.
constexpr int kMaxDenseCode = 1'000'000;
}  // namespace

Status RecodeMap::ColumnDict::Add(std::string_view value, int code) {
  const int32_t before = values_.size();
  const int32_t id = values_.GetOrAdd(value);
  if (id < before) {
    return Status::AlreadyExists("duplicate recode entry");
  }
  code_by_id_.push_back(code);
  if (code < 1 || code > kMaxDenseCode) {
    irregular_ = true;
  } else {
    const size_t slot = static_cast<size_t>(code) - 1;
    if (slot >= id_by_code_.size()) {
      id_by_code_.resize(slot + 1, -1);
    }
    if (id_by_code_[slot] >= 0) {
      irregular_ = true;  // Two values share a code.
    } else {
      id_by_code_[slot] = id;
    }
  }
  return Status::OK();
}

bool RecodeMap::ColumnDict::CodesConsecutive() const {
  if (irregular_) return false;
  if (id_by_code_.size() != static_cast<size_t>(values_.size())) return false;
  for (const int32_t id : id_by_code_) {
    if (id < 0) return false;
  }
  return true;
}

bool RecodeMap::ColumnDict::operator==(const ColumnDict& other) const {
  if (values_.size() != other.values_.size()) return false;
  for (int32_t id = 0; id < values_.size(); ++id) {
    const int32_t other_id = other.values_.Find(values_[id]);
    if (other_id < 0 ||
        other.code_by_id_[static_cast<size_t>(other_id)] !=
            code_by_id_[static_cast<size_t>(id)]) {
      return false;
    }
  }
  return true;
}

SchemaPtr RecodeMap::TableSchema() {
  return Schema::Make({{"colname", DataType::kString},
                       {"colval", DataType::kString},
                       {"recodeval", DataType::kInt64}});
}

Result<RecodeMap> RecodeMap::FromTable(const Table& table) {
  if (table.schema()->num_fields() != 3) {
    return Status::InvalidArgument("recode map table needs 3 columns, got " +
                                   table.schema()->ToString());
  }
  RecodeMap map;
  for (size_t p = 0; p < table.num_partitions(); ++p) {
    for (const Row& row : table.partition(p)) {
      if (row[0].is_null() || row[1].is_null() || !row[2].is_int64()) {
        return Status::InvalidArgument("malformed recode map row");
      }
      RETURN_IF_ERROR(map.Add(row[0].string_value(), row[1].string_value(),
                              static_cast<int>(row[2].int64_value())));
    }
  }
  // Codes must be consecutive integers starting at 1 (SystemML-style
  // requirement the paper calls out).
  for (const std::string& column : map.Columns()) {
    if (!map.FindColumn(column)->CodesConsecutive()) {
      return Status::InvalidArgument("recode codes for column '" + column +
                                     "' are not consecutive from 1");
    }
  }
  return map;
}

TablePtr RecodeMap::ToTable(const std::string& name,
                            size_t num_partitions) const {
  auto table = std::make_shared<Table>(name, TableSchema(), num_partitions);
  for (const std::string& column : Columns()) {
    const ColumnDict& dict = *FindColumn(column);
    std::vector<std::pair<std::string_view, int>> entries;
    entries.reserve(static_cast<size_t>(dict.cardinality()));
    dict.ForEach([&entries](std::string_view value, int code) {
      entries.emplace_back(value, code);
    });
    std::sort(entries.begin(), entries.end());
    for (const auto& [value, code] : entries) {
      table->AppendRow(0, Row{Value::String(column),
                              Value::String(std::string(value)),
                              Value::Int64(code)});
    }
  }
  return table;
}

Status RecodeMap::Add(const std::string& column, const std::string& value,
                      int code) {
  ColumnDict* dict = GetOrAddColumn(ToLowerAscii(column));
  if (!dict->Add(value, code).ok()) {
    return Status::AlreadyExists("duplicate recode entry: " + column + "/" +
                                 value);
  }
  return Status::OK();
}

Result<int> RecodeMap::Code(const std::string& column,
                            const std::string& value) const {
  const ColumnDict* dict = FindColumn(column);
  if (dict == nullptr) {
    return Status::NotFound("column not in recode map: " + column);
  }
  int code = 0;
  if (!dict->Find(value, &code)) {
    return Status::NotFound("value not in recode map: " + column + "/" +
                            value);
  }
  return code;
}

int RecodeMap::Cardinality(const std::string& column) const {
  const ColumnDict* dict = FindColumn(column);
  return dict == nullptr ? 0 : dict->cardinality();
}

Result<std::vector<std::string>> RecodeMap::Labels(
    const std::string& column) const {
  const ColumnDict* dict = FindColumn(column);
  if (dict == nullptr) {
    return Status::NotFound("column not in recode map: " + column);
  }
  if (!dict->CodesConsecutive()) {
    return Status::InvalidArgument("recode codes for column '" +
                                   ToLowerAscii(column) +
                                   "' are not consecutive from 1");
  }
  std::vector<std::string> labels(static_cast<size_t>(dict->cardinality()));
  dict->ForEach([&labels](std::string_view value, int code) {
    labels[static_cast<size_t>(code - 1)] = std::string(value);
  });
  return labels;
}

std::vector<std::string> RecodeMap::Columns() const {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(name_index_.size()));
  for (int32_t i = 0; i < name_index_.size(); ++i) {
    names.emplace_back(name_index_[i]);
  }
  std::sort(names.begin(), names.end());
  return names;
}

const RecodeMap::ColumnDict* RecodeMap::FindColumn(
    std::string_view column) const {
  const int32_t id = name_index_.Find(ToLowerAscii(std::string(column)));
  return id < 0 ? nullptr : &dicts_[static_cast<size_t>(id)];
}

RecodeMap::ColumnDict* RecodeMap::GetOrAddColumn(
    const std::string& lower_name) {
  const int32_t id = name_index_.GetOrAdd(lower_name);
  if (static_cast<size_t>(id) == dicts_.size()) {
    dicts_.emplace_back();
  }
  return &dicts_[static_cast<size_t>(id)];
}

bool RecodeMap::operator==(const RecodeMap& other) const {
  if (dicts_.size() != other.dicts_.size()) return false;
  for (int32_t i = 0; i < name_index_.size(); ++i) {
    const int32_t other_id = other.name_index_.Find(name_index_[i]);
    if (other_id < 0 ||
        !(dicts_[static_cast<size_t>(i)] ==
          other.dicts_[static_cast<size_t>(other_id)])) {
      return false;
    }
  }
  return true;
}

}  // namespace sqlink
