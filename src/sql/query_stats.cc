#include "sql/query_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sqlink {

namespace {

int AssignIds(const PlanPtr& plan, int next) {
  plan->node_id = next++;
  for (const PlanPtr& child : plan->children) {
    next = AssignIds(child, next);
  }
  return next;
}

void AppendJsonEscaped(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

double QError(double estimated_rows, double actual_rows) {
  const double est = estimated_rows < 1.0 ? 1.0 : estimated_rows;
  const double act = actual_rows < 1.0 ? 1.0 : actual_rows;
  return est > act ? est / act : act / est;
}

int AssignPlanNodeIds(const PlanPtr& plan) { return AssignIds(plan, 0); }

QueryStats::QueryStats(const PlanPtr& plan) {
  Walk(*plan, /*parent=*/-1, /*depth=*/0);
  actuals_ = std::vector<OperatorActuals>(nodes_.size());
}

void QueryStats::Walk(const PlanNode& node, int parent, int depth) {
  NodeInfo info;
  info.id = node.node_id >= 0 ? node.node_id : static_cast<int>(nodes_.size());
  info.parent = parent;
  info.depth = depth;
  info.label = node.ToString();
  info.estimated_rows = node.estimated_rows;
  const int my_id = info.id;
  nodes_.push_back(std::move(info));
  for (const PlanPtr& child : node.children) {
    Walk(*child, my_id, depth + 1);
  }
}

OperatorActuals* QueryStats::actuals(int node_id) {
  if (node_id < 0 || static_cast<size_t>(node_id) >= actuals_.size()) {
    return nullptr;
  }
  return &actuals_[static_cast<size_t>(node_id)];
}

const OperatorActuals* QueryStats::actuals(int node_id) const {
  if (node_id < 0 || static_cast<size_t>(node_id) >= actuals_.size()) {
    return nullptr;
  }
  return &actuals_[static_cast<size_t>(node_id)];
}

int64_t QueryStats::RootActualRows() const {
  return actuals_.empty()
             ? 0
             : actuals_[0].rows.load(std::memory_order_relaxed);
}

double QueryStats::WorstQError(int* worst_node) const {
  double worst = 1.0;
  int worst_id = -1;
  for (const NodeInfo& node : nodes_) {
    const OperatorActuals* a = actuals(node.id);
    if (a == nullptr) continue;
    const double q =
        QError(node.estimated_rows,
               static_cast<double>(a->rows.load(std::memory_order_relaxed)));
    if (q > worst) {
      worst = q;
      worst_id = node.id;
    }
  }
  if (worst_node != nullptr) *worst_node = worst_id;
  return worst;
}

std::vector<std::pair<std::string, int64_t>> QueryStats::TopByTime(
    size_t n) const {
  std::vector<std::pair<std::string, int64_t>> ranked;
  ranked.reserve(nodes_.size());
  for (const NodeInfo& node : nodes_) {
    const OperatorActuals* a = actuals(node.id);
    if (a == nullptr) continue;
    ranked.emplace_back(node.label,
                        a->wall_micros.load(std::memory_order_relaxed));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& x, const auto& y) { return x.second > y.second; });
  if (ranked.size() > n) ranked.resize(n);
  return ranked;
}

std::string QueryStats::ToText() const {
  std::string out;
  char buffer[160];
  for (const NodeInfo& node : nodes_) {
    const OperatorActuals* a = actuals(node.id);
    out.append(static_cast<size_t>(node.depth) * 2, ' ');
    out += node.label;
    if (a == nullptr) {
      out.push_back('\n');
      continue;
    }
    const int64_t rows = a->rows.load(std::memory_order_relaxed);
    const double q = QError(node.estimated_rows, static_cast<double>(rows));
    std::snprintf(buffer, sizeof(buffer),
                  "  (est=%lld rows, actual=%lld rows, q=%.2f, time=%.2f ms",
                  static_cast<long long>(std::llround(node.estimated_rows)),
                  static_cast<long long>(rows), q,
                  static_cast<double>(
                      a->wall_micros.load(std::memory_order_relaxed)) /
                      1000.0);
    out += buffer;
    const int64_t batches = a->batches.load(std::memory_order_relaxed);
    if (batches > 0) {
      out += ", batches=" + std::to_string(batches);
    }
    // Selection-vector selectivity: this node's output over its input (the
    // child's output), meaningful for filters and joins.
    if (node.id + 1 < static_cast<int>(nodes_.size()) &&
        nodes_[static_cast<size_t>(node.id) + 1].parent == node.id) {
      const OperatorActuals* child = actuals(node.id + 1);
      const int64_t in =
          child == nullptr ? 0 : child->rows.load(std::memory_order_relaxed);
      if (in > 0 && rows <= in) {
        std::snprintf(buffer, sizeof(buffer), ", sel=%.1f%%",
                      100.0 * static_cast<double>(rows) /
                          static_cast<double>(in));
        out += buffer;
      }
    }
    const int64_t build = a->build_rows.load(std::memory_order_relaxed);
    if (build > 0) out += ", build=" + std::to_string(build) + " rows";
    const int64_t peak = a->peak_bytes.load(std::memory_order_relaxed);
    if (peak > 0) out += ", peak=" + std::to_string(peak) + " B";
    out += ")\n";
  }
  return out;
}

void QueryStats::AppendJson(std::string* out) const {
  out->push_back('[');
  bool first = true;
  char buffer[32];
  for (const NodeInfo& node : nodes_) {
    const OperatorActuals* a = actuals(node.id);
    if (!first) out->push_back(',');
    first = false;
    *out += "{\"id\":" + std::to_string(node.id) +
            ",\"parent\":" + std::to_string(node.parent) + ",\"label\":";
    AppendJsonEscaped(node.label, out);
    *out += ",\"estimated_rows\":" +
            std::to_string(static_cast<long long>(
                std::llround(node.estimated_rows)));
    if (a != nullptr) {
      const int64_t rows = a->rows.load(std::memory_order_relaxed);
      std::snprintf(buffer, sizeof(buffer), "%.2f",
                    QError(node.estimated_rows, static_cast<double>(rows)));
      *out += ",\"rows\":" + std::to_string(rows) + ",\"batches\":" +
              std::to_string(a->batches.load(std::memory_order_relaxed)) +
              ",\"wall_micros\":" +
              std::to_string(a->wall_micros.load(std::memory_order_relaxed)) +
              ",\"peak_bytes\":" +
              std::to_string(a->peak_bytes.load(std::memory_order_relaxed)) +
              ",\"build_rows\":" +
              std::to_string(a->build_rows.load(std::memory_order_relaxed)) +
              ",\"qerror\":";
      *out += buffer;
    }
    out->push_back('}');
  }
  out->push_back(']');
}

}  // namespace sqlink
